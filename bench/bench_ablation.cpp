// E8 — Ablation of the paper's two key design choices (DESIGN.md):
//  (a) canonical transistor renaming (Section III.B/C) — replaced by
//      "source order" naming, which is exactly what the paper warns
//      breaks cross-library learning;
//  (b) the transistor switching-activity columns of the CA-matrix.
// Both are evaluated on the cross-technology task (train 28SOI, predict
// C28), where the canonicalization matters most.
#include <iostream>

#include "bench_support.hpp"
#include "flow/report.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/strings.hpp"

#include <algorithm>

namespace {

using namespace caml;

/// Replaces the canonical order with raw netlist order (NMOS first,
/// then PMOS, each in source order) — the "no renaming" ablation.
CharacterizedCell strip_renaming(const CharacterizedCell& cell) {
  CharacterizedCell out = cell;
  CanonicalCell& canon = out.canonical;
  canon.nmos_order.clear();
  canon.pmos_order.clear();
  const Cell& c = cell.source.cell;
  canon.canonical_name.assign(c.num_transistors(), "");
  for (std::size_t ti = 0; ti < c.num_transistors(); ++ti) {
    const auto id = static_cast<TransistorId>(ti);
    if (c.transistor(id).type == MosType::kNmos) {
      canon.canonical_name[ti] = "N" + std::to_string(canon.nmos_order.size());
      canon.nmos_order.push_back(id);
    } else {
      canon.canonical_name[ti] = "P" + std::to_string(canon.pmos_order.size());
      canon.pmos_order.push_back(id);
    }
  }
  return out;
}

std::vector<CharacterizedCell> strip_all(const std::vector<CharacterizedCell>& cells) {
  std::vector<CharacterizedCell> out;
  out.reserve(cells.size());
  for (const CharacterizedCell& c : cells) out.push_back(strip_renaming(c));
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablation — canonical renaming and activity columns (28SOI -> C28)");
  Log::set_level(LogLevel::kInfo);

  // Restrict to small/medium cells (<= 16 transistors): the ablation
  // contrast is identical across sizes and this keeps four full
  // cross-library evaluations affordable on one core.
  const auto filter = [](const std::vector<CharacterizedCell>& cells) {
    std::vector<CharacterizedCell> out;
    for (const CharacterizedCell& c : cells) {
      if (c.num_transistors() <= 16) out.push_back(c);
    }
    return out;
  };
  const std::vector<CharacterizedCell> train = filter(bench::suite().soi28);
  const std::vector<CharacterizedCell> eval = filter(bench::suite().c28);
  std::cout << "evaluating " << eval.size() << " C28 cells against " << train.size()
            << " 28SOI training cells (<= 16 transistors)\n";
  const MlOptions base = bench::ml_options();

  TextTable table;
  table.new_row();
  table.cell("configuration");
  table.cell("mean acc (%)");
  table.cell("cells > 97% (%)");

  const auto run = [&](const std::string& label, const std::vector<CharacterizedCell>& tr,
                       const std::vector<CharacterizedCell>& ev, const MlOptions& options) {
    const auto evals = evaluate_cross_library(tr, ev, options);
    const AccuracyDistribution dist = summarize_distribution(evals);
    table.new_row();
    table.cell(label);
    table.cell(100.0 * dist.mean, 2);
    table.cell(100.0 * dist.fraction_above_97, 1);
    std::cout << "  " << label << " done\n";
  };

  run("full method (paper)", train, eval, base);

  MlOptions no_activity = base;
  no_activity.matrix.include_activity = false;
  run("without activity columns", train, eval, no_activity);

  MlOptions with_kind = base;
  with_kind.matrix.include_defect_kind = true;
  run("plus defect-kind column (extra)", train, eval, with_kind);

  const std::vector<CharacterizedCell> train_raw = strip_all(train);
  const std::vector<CharacterizedCell> eval_raw = strip_all(eval);
  run("without canonical renaming", train_raw, eval_raw, base);

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "expected shape: dropping the canonical renaming collapses cross-library "
               "accuracy (the paper's Section III.B claim); dropping activity columns costs "
               "a smaller but visible amount\n";

  // Feature importances of one representative group model: which
  // CA-matrix columns the forest actually uses.
  const GroupMap groups = group_cells(train);
  for (const auto& [key, members] : groups) {
    if (members.size() < 6 || key.num_transistors > 8) continue;
    std::vector<const CharacterizedCell*> cells;
    for (std::size_t m : members) cells.push_back(&train[m]);
    const Dataset data = build_training_set(cells, base);
    RandomForest forest(base.forest);
    forest.fit(data);
    const std::vector<double> importance = forest.feature_importance();
    const CaMatrix sample = build_ca_matrix(cells[0]->source.cell, cells[0]->model,
                                            cells[0]->canonical, cells[0]->sim, base.matrix);
    std::vector<std::size_t> order(importance.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return importance[a] > importance[b]; });
    std::cout << "\ntop CA-matrix columns by Gini importance, group ("
              << key.num_inputs << " in, " << key.num_transistors << " T):\n";
    for (std::size_t i = 0; i < order.size() && i < 10; ++i) {
      std::cout << "  " << sample.column_names()[order[i]] << " : "
                << format_fixed(100.0 * importance[order[i]], 1) << "%\n";
    }
    break;
  }
  return 0;
}
