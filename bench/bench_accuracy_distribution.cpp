// E4 — Paper Section V.B: the accuracy distribution analysis. Runs both
// cross-technology evaluations and correlates per-cell accuracy with
// the structural-match category (identical / equivalent / new in the
// training set) — reproducing the paper's finding that well-predicted
// cells have an identical or Fig.6-equivalent structure in the training
// data while poorly-predicted ones have new functions/configurations.
#include <iostream>
#include <map>

#include "bench_support.hpp"
#include "flow/report.hpp"
#include "flow/structural.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace caml;
  bench::print_header("Section V.B — per-cell accuracy distribution and structural analysis");
  Log::set_level(LogLevel::kInfo);

  const auto& train = bench::suite().soi28;
  const StructureIndex index(train);
  const MlOptions options = bench::ml_options();

  struct MatchStats {
    std::size_t cells = 0;
    double sum = 0.0;
    std::size_t above97 = 0;
  };

  const auto analyze = [&](const std::vector<CharacterizedCell>& eval,
                           const std::string& label) {
    const std::vector<CellEvaluation> evals = evaluate_cross_library(train, eval, options);
    const AccuracyDistribution dist = summarize_distribution(evals);
    print_distribution(std::cout, dist, "\n" + label + ": accuracy distribution");

    std::map<StructureMatch, MatchStats> by_match;
    for (const CellEvaluation& e : evals) {
      const StructureMatch m = index.classify(eval[e.cell_index].canonical);
      MatchStats& s = by_match[m];
      ++s.cells;
      s.sum += e.accuracy;
      s.above97 += e.accuracy > 0.97;
    }
    TextTable table;
    table.new_row();
    table.cell("structure vs training set");
    table.cell("cells");
    table.cell("avg acc (%)");
    table.cell("> 97% (%)");
    for (const auto& [m, s] : by_match) {
      table.new_row();
      table.cell(structure_match_name(m));
      table.cell(static_cast<long long>(s.cells));
      table.cell(100.0 * s.sum / static_cast<double>(s.cells), 2);
      table.cell(100.0 * static_cast<double>(s.above97) / static_cast<double>(s.cells), 1);
    }
    std::cout << '\n' << label << ": accuracy by structural-match category\n";
    table.print(std::cout);
    return dist;
  };

  const AccuracyDistribution c28 = analyze(bench::suite().c28, "28SOI -> C28");
  const AccuracyDistribution c40 = analyze(bench::suite().c40, "28SOI -> C40");

  std::cout << "\nsummary: cells > 97% — C28 " << format_fixed(100.0 * c28.fraction_above_97, 1)
            << "%, C40 " << format_fixed(100.0 * c40.fraction_above_97, 1) << "%\n";
  std::cout << "expected shape (paper): ~68% (C28) vs ~80% (C40); identical/equivalent "
               "structures predict well, new structures form the low tail\n";
  return 0;
}
