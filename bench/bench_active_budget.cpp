// E12 — accuracy vs. simulation budget for the active-learning flow
// (ROADMAP item 4, docs/ACTIVE_LEARNING.md). The structural baseline
// simulates every structurally new cell, which fixes a reference spend
// S; the active policy is then run at fractions of S and must buy at
// least the same model quality once it can afford the same spend.
//
// Output: one `RESULT active_budget key=value ...` line per flow run
// (parsed by scripts/run_bench.sh into BENCH_PR9.json), plus a
// human-readable curve. Exit status 1 if the active policy at the full
// budget falls more than 0.002 mean accuracy below the structural
// baseline — the acceptance gate of the active-learning PR.
//
// Deterministic: fixed builder seeds, exhaustive stimuli, and the
// active loop's by-construction determinism (fixed forest seeds, any
// jobs value).
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "active/learner.hpp"
#include "bench_support.hpp"
#include "flow/hybrid.hpp"
#include "libgen/builder.hpp"
#include "libgen/technology.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace {

using namespace caml;

/// Mean model accuracy across ALL targets: simulated/acquired cells
/// count as 1.0 (their models are exact by construction), predicted
/// cells contribute their scored agreement with ground truth.
double mean_accuracy(const HybridReport& report) {
  if (report.outcomes.empty()) return 0.0;
  double sum = 0.0;
  for (const HybridCellOutcome& o : report.outcomes) sum += o.accuracy;
  return sum / static_cast<double>(report.outcomes.size());
}

/// Fraction of targets with accuracy >= 0.98 (the EXPERIMENTS.md
/// quality bar, counting exact simulated models).
double accuracy98(const HybridReport& report) {
  if (report.outcomes.empty()) return 0.0;
  std::size_t n = 0;
  for (const HybridCellOutcome& o : report.outcomes) n += o.accuracy >= 0.98;
  return static_cast<double>(n) / static_cast<double>(report.outcomes.size());
}

void result_line(const std::string& policy, double frac, double budget, double spent,
                 std::size_t acquired, const HybridReport& report) {
  std::cout << "RESULT active_budget policy=" << policy
            << " budget_frac=" << format_fixed(frac, 2)
            << " budget_s=" << format_fixed(budget, 1) << " spent_s=" << format_fixed(spent, 1)
            << " acquired=" << acquired << " targets=" << report.outcomes.size()
            << " mean_acc=" << format_fixed(mean_accuracy(report), 4)
            << " acc98=" << format_fixed(accuracy98(report), 4) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) quick |= std::strcmp(argv[i], "--quick") == 0;

  bench::print_header("E12 — accuracy vs. simulation budget (structural vs. active routing)");
  Log::set_level(LogLevel::kWarn);

  // Compact two-technology corpus: the 28SOI training slice covers the
  // AND/OR/AOI families; the C28 target slice re-uses those shapes and
  // adds XOR/MUX/MAJ functions the training set has never seen (the
  // cells the budget has to buy).
  std::vector<std::string> train_funcs = {"INV",  "NAND2", "NAND3", "NOR2",  "NOR3",
                                          "AND2", "OR2",   "AOI21", "OAI21", "AOI22"};
  std::vector<std::string> target_funcs = {"NAND2", "NAND3", "NOR2",  "NOR3", "AND2",
                                           "OR2",   "AOI21", "OAI21", "AOI22"};
  std::vector<std::string> unseen_funcs = {"XOR2", "XNOR2", "MUX2", "MAJ3", "OAI22", "AND3"};
  if (quick) {
    train_funcs = {"INV", "NAND2", "NOR2", "AOI21"};
    target_funcs = {"NAND2", "NOR2", "AOI21"};
    unseen_funcs = {"XOR2", "MUX2"};
  }
  target_funcs.insert(target_funcs.end(), unseen_funcs.begin(), unseen_funcs.end());

  LibraryComposition comp;
  comp.drives = {{1, StructureVariant::kWide}, {2, StructureVariant::kMerged}};
  comp.flavors = {{"", 1.0}};

  comp.functions = train_funcs;
  std::cerr << "[bench] characterizing the 28SOI training slice...\n";
  const std::vector<CharacterizedCell> training =
      characterize_library(build_library(technology_28soi(), comp), bench::characterize_options());
  comp.functions = target_funcs;
  std::cerr << "[bench] characterizing the C28 target slice...\n";
  const std::vector<CharacterizedCell> targets =
      characterize_library(build_library(technology_c28(), comp), bench::characterize_options());
  std::cout << "corpus: " << training.size() << " training cells, " << targets.size()
            << " targets (" << unseen_funcs.size() << " unseen functions)\n\n";

  // Structural baseline: new structures are simulated, the rest
  // predicted. Its conventional spend on those simulations is the
  // reference budget S.
  HybridOptions structural;
  structural.ml = bench::ml_options();
  const HybridReport base = run_hybrid_flow(training, targets, structural);
  double reference_spend = 0.0;
  for (const HybridCellOutcome& o : base.outcomes) {
    if (!o.routed_to_ml) reference_spend += o.conventional_seconds;
  }
  const std::size_t base_simulated = base.outcomes.size() - base.count_routed_to_ml();
  result_line("structural", 1.0, reference_spend, reference_spend, base_simulated, base);

  const double fractions[] = {0.25, 0.5, 1.0};
  double active_full_acc = 0.0;
  for (const double frac : fractions) {
    active::ActiveOptions options;
    options.base.ml = bench::ml_options();
    options.budget_unit = active::BudgetUnit::kSeconds;
    options.sim_budget = frac * reference_spend;
    options.max_rounds = quick ? 3 : 6;
    const active::ActiveReport report = active::run_active_flow(training, targets, options);
    result_line("active", frac, report.budget, report.spent, report.acquired, report.hybrid);
    if (frac == 1.0) active_full_acc = mean_accuracy(report.hybrid);
  }

  const double base_acc = mean_accuracy(base);
  std::cout << "\nstructural baseline spend S = " << format_fixed(reference_spend, 1)
            << " modeled seconds (" << base_simulated << " simulated cells)\n";
  std::cout << "mean accuracy: structural " << format_fixed(base_acc, 4) << " vs active@1.0S "
            << format_fixed(active_full_acc, 4) << "\n";
  if (active_full_acc + 0.002 < base_acc) {
    std::cerr << "FAIL: active routing at the full budget lost more than 0.002 mean accuracy\n";
    return 1;
  }
  std::cout << "PASS: active routing at equal budget matches the structural baseline\n";
  return 0;
}
