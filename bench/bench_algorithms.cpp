// E6 — Paper Section II.B: "This choice comes from the results obtained
// after experimenting several learning algorithms (k-NN, Support Vector
// Machine, Random Forest, Linear, Ridge, etc.)". Compares every
// implemented classifier on representative groups with the
// leave-one-out protocol and reports accuracy and train+infer time.
#include <chrono>
#include <iostream>

#include "bench_support.hpp"
#include "flow/report.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  using namespace caml;
  using Clock = std::chrono::steady_clock;
  bench::print_header("Algorithm comparison — why the paper picked the Random Forest");

  const auto& all = bench::suite().soi28;
  // Representative subset: the most populous *small-cell* groups (<= 12
  // transistors) keep the comparison affordable for the slow baselines
  // (k-NN inference is O(reference rows) per row), capped at 8 cells
  // per group.
  const GroupMap groups = group_cells(all);
  std::vector<GroupKey> picked;
  for (const auto& [key, members] : groups) {
    if (key.num_transistors <= 12 && members.size() >= 4) picked.push_back(key);
  }
  std::sort(picked.begin(), picked.end(), [&](const GroupKey& a, const GroupKey& b) {
    return groups.at(a).size() > groups.at(b).size();
  });
  if (picked.size() > 3) picked.resize(3);
  std::vector<CharacterizedCell> cells;
  for (const GroupKey& key : picked) {
    const auto& members = groups.at(key);
    for (std::size_t i = 0; i < members.size() && i < 8; ++i) {
      cells.push_back(all[members[i]]);
    }
  }
  std::cout << "evaluating " << cells.size() << " cells in " << picked.size() << " groups\n";

  struct Algo {
    std::string name;
    std::function<std::unique_ptr<Classifier>()> make;
  };
  const MlOptions base = bench::ml_options();
  std::vector<Algo> algos;
  algos.push_back({"RandomForest", [&] { return std::make_unique<RandomForest>(base.forest); }});
  algos.push_back({"DecisionTree", [] { return std::make_unique<DecisionTree>(); }});
  algos.push_back({"kNN", [] { return std::make_unique<KnnClassifier>(); }});
  algos.push_back({"Logistic", [] { return std::make_unique<LogisticClassifier>(); }});
  algos.push_back({"LinearSVM", [] { return std::make_unique<LinearSvmClassifier>(); }});
  algos.push_back({"Ridge", [] { return std::make_unique<RidgeClassifier>(); }});

  TextTable table;
  table.new_row();
  table.cell("algorithm");
  table.cell("mean acc (%)");
  table.cell("min acc (%)");
  table.cell("cells > 97% (%)");
  table.cell("wall time (s)");

  for (const Algo& algo : algos) {
    MlOptions options = base;
    options.make_classifier = algo.make;
    const auto t0 = Clock::now();
    const std::vector<CellEvaluation> evals = evaluate_leave_one_out(cells, options);
    const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    const AccuracyDistribution dist = summarize_distribution(evals);
    table.new_row();
    table.cell(algo.name);
    table.cell(100.0 * dist.mean, 2);
    table.cell(100.0 * dist.min, 2);
    table.cell(100.0 * dist.fraction_above_97, 1);
    table.cell(seconds, 2);
    std::cout << "  " << algo.name << " done\n";
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "expected shape (paper): the Random Forest leads in inference accuracy, "
               "which is why the flow adopts it\n";
  return 0;
}
