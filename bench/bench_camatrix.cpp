// E7 — CA-matrix construction microbenchmarks (paper Table I / Fig. 3):
// canonicalization (branch equations + renaming) and matrix assembly
// throughput across cell sizes.
#include <benchmark/benchmark.h>

#include "camatrix/matrix.hpp"
#include "camodel/generate.hpp"
#include "libgen/builder.hpp"

namespace {

using namespace caml;

Cell make_cell(const std::string& function, const DriveSpec& drive) {
  const Technology tech = technology_28soi();
  Rng rng(42);
  return build_cell(find_function(function), tech, drive, {"", 1.0}, function, rng);
}

void BM_Canonicalize(benchmark::State& state, const std::string& function, DriveSpec drive) {
  const Cell cell = make_cell(function, drive);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonicalize(cell));
  }
  state.counters["transistors"] = static_cast<double>(cell.num_transistors());
}

void BM_BuildLabeledMatrix(benchmark::State& state, const std::string& function,
                           DriveSpec drive) {
  const Cell cell = make_cell(function, drive);
  const CaModel model = generate_ca_model(cell);
  const CanonicalCell canon = canonicalize(cell);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_ca_matrix(cell, model, canon));
  }
  state.counters["rows"] = static_cast<double>((model.defects.size() + 1) * model.stimuli.size());
}

void BM_ConventionalGeneration(benchmark::State& state, const std::string& function,
                               DriveSpec drive) {
  const Cell cell = make_cell(function, drive);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_ca_model(cell));
  }
  state.counters["sims"] = static_cast<double>(conventional_simulation_count(cell));
}

}  // namespace

int main(int argc, char** argv) {
  using V = StructureVariant;
  benchmark::RegisterBenchmark("canonicalize/NAND2X1",
                               [](benchmark::State& s) { BM_Canonicalize(s, "NAND2", {1, V::kWide}); });
  benchmark::RegisterBenchmark("canonicalize/AOI22X2S",
                               [](benchmark::State& s) { BM_Canonicalize(s, "AOI22", {2, V::kSplit}); });
  benchmark::RegisterBenchmark("canonicalize/XOR2X4M",
                               [](benchmark::State& s) { BM_Canonicalize(s, "XOR2", {4, V::kMerged}); });
  benchmark::RegisterBenchmark("matrix/NAND2X1", [](benchmark::State& s) {
    BM_BuildLabeledMatrix(s, "NAND2", {1, V::kWide});
  });
  benchmark::RegisterBenchmark("matrix/AOI22X2S", [](benchmark::State& s) {
    BM_BuildLabeledMatrix(s, "AOI22", {2, V::kSplit});
  });
  benchmark::RegisterBenchmark("generate_ca_model/NAND2X1", [](benchmark::State& s) {
    BM_ConventionalGeneration(s, "NAND2", {1, V::kWide});
  });
  benchmark::RegisterBenchmark("generate_ca_model/AOI21X2M", [](benchmark::State& s) {
    BM_ConventionalGeneration(s, "AOI21", {2, V::kMerged});
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
