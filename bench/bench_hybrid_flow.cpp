// E5 — Paper Section V.C: the hybrid CA model generation flow (Fig. 7).
// The paper evaluates a *function-representative* C40 subgroup: one
// cell per function family across the whole library (409 cells, of
// which 29% had an identical structure in the 28SOI training set, 21%
// an equivalent one and 50% were new). This bench mirrors that
// protocol: the target is the full function catalog under the C40
// technology (X1 + X2-merged forms), roughly half of whose functions
// the 28SOI training library has never seen. Costs combine the SPICE
// cost model (conventional path) with measured ML wall time.
#include <iostream>

#include "bench_support.hpp"
#include "flow/hybrid.hpp"
#include "libgen/catalog.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace caml;
  bench::print_header(
      "Section V.C — hybrid flow (train 28SOI, target: function-representative C40 subgroup)");
  Log::set_level(LogLevel::kInfo);

  const auto& train = bench::suite().soi28;

  // Function-representative C40 subgroup: every catalog function, X1 and
  // X2-merged realizations, default flavor.
  LibraryComposition comp;
  comp.functions = catalog_names();
  comp.drives = {{1, StructureVariant::kWide}, {2, StructureVariant::kMerged}};
  comp.flavors = {{"", 1.0}};
  std::cerr << "[bench] characterizing the function-representative C40 subgroup...\n";
  const std::vector<CharacterizedCell> targets =
      characterize_library(build_library(technology_c40(), comp), bench::characterize_options());

  // Structural split against the *initial* training set (the paper's
  // 29/21/50 numbers are computed before any feedback).
  const StructureIndex initial_index(train);
  std::size_t identical = 0, equivalent = 0, fresh = 0;
  for (const CharacterizedCell& cell : targets) {
    switch (initial_index.classify(cell.canonical)) {
      case StructureMatch::kIdentical: ++identical; break;
      case StructureMatch::kEquivalent: ++equivalent; break;
      case StructureMatch::kNew: ++fresh; break;
    }
  }
  const std::size_t total = targets.size();
  const auto pct = [&](std::size_t n) {
    return format_fixed(100.0 * static_cast<double>(n) / static_cast<double>(total), 1) + "%";
  };
  TextTable split;
  split.new_row();
  split.cell("structural analysis (vs initial training set)");
  split.cell("cells");
  split.cell("fraction");
  split.new_row();
  split.cell("identical structure");
  split.cell(static_cast<long long>(identical));
  split.cell(pct(identical));
  split.new_row();
  split.cell("equivalent structure (Fig. 6)");
  split.cell(static_cast<long long>(equivalent));
  split.cell(pct(equivalent));
  split.new_row();
  split.cell("new structure (simulation required)");
  split.cell(static_cast<long long>(fresh));
  split.cell(pct(fresh));
  std::cout << "\nTarget subgroup: " << total << " C40 cells ("
            << comp.functions.size() << " functions)\n";
  split.print(std::cout);
  std::cout << "paper: 29% identical / 21% equivalent / 50% new of 409 cells\n";

  HybridOptions options;
  options.ml = bench::ml_options();
  const HybridReport report = run_hybrid_flow(train, targets, options);

  const double conv = report.conventional_only_seconds();
  const double hybrid = report.hybrid_seconds();
  const auto days = [](double seconds) { return format_fixed(seconds / 86400.0, 1); };

  std::cout << "\nGeneration-time accounting (SPICE cost model + measured ML wall time):\n";
  std::cout << "  cells routed to ML (with feedback): " << report.count_routed_to_ml() << "/"
            << total << "\n";
  std::cout << "  simulation-only flow          : " << days(conv) << " modeled days\n";
  std::cout << "  hybrid flow                   : " << days(hybrid) << " modeled days\n";
  std::cout << "  reduction on ML-covered cells : "
            << format_fixed(100.0 * report.ml_portion_reduction(), 2) << "% (paper: 99.7%)\n";
  std::cout << "  overall reduction             : "
            << format_fixed(100.0 * report.overall_reduction(), 1) << "% (paper: ~38%)\n";

  std::cout << "\nQuality of the ML-generated models:\n";
  std::cout << "  ML cells with accuracy > 97%  : "
            << format_fixed(100.0 * report.ml_accuracy_above(0.97), 1)
            << "% (paper: ~80% of the C40 subgroup predicted well)\n";
  return 0;
}
