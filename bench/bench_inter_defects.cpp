// E11 (extension) — inter-transistor defects. The paper's Section IV
// notes its matrix representation covers shorts between different
// transistors even though the evaluation excludes them. This bench
// enables bridge enumeration, regenerates ground truth for a compact
// library slice, and runs the leave-one-out protocol over the enlarged
// universe — demonstrating the claim end to end. Resistive variants of
// every defect are evaluated as a second configuration.
#include <iostream>

#include "bench_support.hpp"
#include "flow/report.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace caml;

std::vector<CharacterizedCell> characterize_slice(const UniverseOptions& universe,
                                                  const MatrixOptions& matrix) {
  (void)matrix;
  LibraryComposition comp;
  comp.functions = {"NAND2", "NOR2", "AOI21", "OAI21", "NAND3", "NOR3"};
  comp.drives = {{1, StructureVariant::kWide}, {2, StructureVariant::kMerged}};
  comp.flavors = {{"", 1.0}, {"LP", 0.85}, {"HP", 1.1}};
  const Library lib = build_library(technology_28soi(), comp);
  CharacterizeOptions options = bench::characterize_options();
  options.universe = universe;
  return characterize_library(lib, options);
}

}  // namespace

int main() {
  bench::print_header("Inter-transistor and resistive defect universes (28SOI leave-one-out)");
  Log::set_level(LogLevel::kInfo);

  TextTable table;
  table.new_row();
  table.cell("defect universe");
  table.cell("defects/cell (NAND2X1)");
  table.cell("mean acc (%)");
  table.cell("cells > 97% (%)");

  struct Config {
    const char* label;
    UniverseOptions universe;
    bool needs_kind = false;
  };
  std::vector<Config> configs;
  configs.push_back({"paper universe (intra opens + shorts)", {}, false});
  {
    UniverseOptions u;
    u.inter_transistor_shorts = true;
    configs.push_back({"+ inter-transistor bridges", u, false});
  }
  {
    UniverseOptions u;
    u.resistive_variants = true;
    configs.push_back({"+ resistive variants", u, true});
  }

  for (const Config& config : configs) {
    const MlOptions base = bench::ml_options();
    MlOptions options = base;
    // Resistive and hard defects share location columns: the kind
    // feature is required to separate them.
    options.matrix.include_defect_kind = config.needs_kind;
    const std::vector<CharacterizedCell> cells =
        characterize_slice(config.universe, options.matrix);
    const std::vector<CellEvaluation> evals = evaluate_leave_one_out(cells, options);
    const AccuracyDistribution dist = summarize_distribution(evals);
    table.new_row();
    table.cell(config.label);
    table.cell(static_cast<long long>(cells.front().model.defects.size()));
    table.cell(100.0 * dist.mean, 2);
    table.cell(100.0 * dist.fraction_above_97, 1);
    std::cout << "  " << config.label << " done (" << evals.size() << " cells)\n";
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "expected shape: the enlarged universes stay learnable — accuracy comparable "
               "to the paper universe, validating the representation's flexibility claim\n";
  return 0;
}
