// E10 (extension) — training-label noise tolerance. The paper motivates
// ML-based generation partly by noting that CA models themselves carry
// test-condition noise ("few defects can be of different types ... this
// inaccuracy is usually allowed in industry"). This bench flips a
// fraction of training labels and measures how the Random Forest's
// prediction accuracy degrades — quantifying the robustness the paper
// relies on.
#include <iostream>

#include "bench_support.hpp"
#include "flow/report.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace caml;
  bench::print_header("Training-label noise tolerance (28SOI leave-one-out, one group)");

  // A populous mid-size group.
  const auto& all = bench::suite().soi28;
  const GroupMap groups = group_cells(all);
  GroupKey chosen{};
  std::size_t best = 0;
  for (const auto& [key, members] : groups) {
    if (key.num_transistors <= 12 && members.size() > best) {
      best = members.size();
      chosen = key;
    }
  }
  std::vector<const CharacterizedCell*> cells;
  for (std::size_t m : groups.at(chosen)) cells.push_back(&all[m]);
  std::cout << "group (" << chosen.num_inputs << " in, " << chosen.num_transistors << " T), "
            << cells.size() << " cells\n\n";

  const MlOptions base = bench::ml_options();
  TextTable table;
  table.new_row();
  table.cell("label noise (%)");
  table.cell("mean acc (%)");
  table.cell("min acc (%)");
  table.cell("cells > 97% (%)");

  for (double noise : {0.0, 0.005, 0.01, 0.02, 0.05, 0.10}) {
    std::vector<CellEvaluation> evals;
    Rng rng(0xA015E);
    for (std::size_t held_out = 0; held_out < cells.size(); ++held_out) {
      std::vector<const CharacterizedCell*> train;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != held_out) train.push_back(cells[i]);
      }
      Dataset data = build_training_set(train, base);
      // Flip labels uniformly at the requested rate.
      Dataset noisy(data.num_features());
      noisy.reserve(data.num_rows());
      for (std::size_t r = 0; r < data.num_rows(); ++r) {
        const std::uint8_t label = rng.chance(noise) ? static_cast<std::uint8_t>(1 - data.label(r))
                                                     : data.label(r);
        noisy.add_row(data.row(r), label, data.weight(r));
      }
      RandomForest forest(base.forest);
      forest.fit(noisy);
      const CaModel predicted = predict_ca_model(forest, *cells[held_out], base);
      evals.push_back(CellEvaluation{held_out, chosen,
                                     ca_model_agreement(cells[held_out]->model, predicted)});
    }
    const AccuracyDistribution dist = summarize_distribution(evals);
    table.new_row();
    table.cell(100.0 * noise, 1);
    table.cell(100.0 * dist.mean, 2);
    table.cell(100.0 * dist.min, 2);
    table.cell(100.0 * dist.fraction_above_97, 1);
    std::cout << "  noise " << format_fixed(100.0 * noise, 1) << "% done\n";
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "expected shape: graceful degradation — accuracy stays high for the few-percent "
               "noise levels real CA databases carry\n";
  return 0;
}
