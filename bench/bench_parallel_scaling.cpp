// E12 — parallel scaling of the two hot paths: library characterization
// (characterize_library) and forest training (RandomForest::fit). For
// each thread count the same workload is re-run and the wall-clock
// speedup over the serial (jobs=1) baseline is reported, alongside the
// per-unit (cell / tree) p50 and p99 latency pulled from the registry
// histograms the flows record into (snapshot-diffed per run), plus a
// determinism check that every thread count produced bit-identical
// output. Run on a multi-core host to see the scaling; on one core the
// table degenerates to ~1.0x across the board.
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "flow/characterize.hpp"
#include "camodel/model_io.hpp"
#include "libgen/builder.hpp"
#include "ml/forest_io.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace caml;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The distribution a single run added to a registry histogram: snapshot
/// before and after, diff. Registry metrics are process-monotonic, so
/// the diff isolates this run from earlier sweep iterations.
obs::HistogramSnapshot run_delta(const obs::Histogram& h,
                                 const obs::HistogramSnapshot& before) {
  return h.snapshot().diff(before);
}

Library make_workload_library(bool quick) {
  LibraryComposition comp;
  if (quick) {
    comp.functions = {"INV", "NAND2", "NOR2", "AOI21"};
    comp.drives = {{1, StructureVariant::kWide}};
    comp.flavors = {{"", 1.0}};
  } else {
    comp.functions = {"INV", "BUF", "NAND2", "NOR2", "AND2", "OR2",
                      "AOI21", "OAI21", "AOI22", "OAI22", "XOR2", "NAND3"};
    comp.drives = {{1, StructureVariant::kWide}, {2, StructureVariant::kMerged}};
    comp.flavors = {{"", 1.0}, {"LP", 0.85}};
  }
  return build_library(technology_28soi(), comp);
}

std::string characterization_fingerprint(const std::vector<CharacterizedCell>& cells) {
  std::ostringstream os;
  for (const CharacterizedCell& cc : cells) {
    write_ca_model(os, cc.model, cc.source.cell);
  }
  return os.str();
}

Dataset make_forest_workload(std::size_t rows) {
  Rng rng(2024);
  Dataset data(24);
  for (std::size_t r = 0; r < rows; ++r) {
    std::int8_t row[24];
    for (auto& v : row) v = static_cast<std::int8_t>(rng.range(-2, 3));
    data.add_row(row, (row[3] > 0) == (row[11] <= 1) ? 1 : 0);
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: a seconds-scale smoke of the same sweep (smaller library,
  // fewer rows/trees, jobs 1-2) used by scripts/run_bench.sh --quick and
  // the cmake verify target; the determinism checks still run.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::vector<std::size_t> job_counts =
      quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
  std::cout << "parallel scaling (hardware threads: "
            << std::thread::hardware_concurrency() << (quick ? ", quick mode" : "") << ")\n\n";

  // --- Library characterization ---------------------------------------
  const Library lib = make_workload_library(quick);
  std::cout << "characterize_library: " << lib.cells.size() << " cells, library "
            << lib.name << '\n';
  TextTable char_table;
  char_table.new_row();
  char_table.cell("jobs");
  char_table.cell("seconds");
  char_table.cell("cell p50 ms");
  char_table.cell("cell p99 ms");
  char_table.cell("speedup");
  const obs::Histogram& cell_us =
      obs::Registry::global().histogram("caml_characterize_cell_us");
  std::string baseline_fingerprint;
  double baseline_seconds = 0.0;
  bool identical = true;
  for (std::size_t jobs : job_counts) {
    CharacterizeOptions options;
    options.jobs = jobs;
    const obs::HistogramSnapshot before = cell_us.snapshot();
    const auto t0 = Clock::now();
    const std::vector<CharacterizedCell> cells = characterize_library(lib, options);
    const double elapsed = seconds_since(t0);
    const obs::HistogramSnapshot cell_lat = run_delta(cell_us, before);
    const std::string fingerprint = characterization_fingerprint(cells);
    if (jobs == 1) {
      baseline_fingerprint = fingerprint;
      baseline_seconds = elapsed;
    }
    identical = identical && fingerprint == baseline_fingerprint;
    char_table.new_row();
    char_table.cell(std::to_string(jobs));
    char_table.cell(elapsed, 3);
    char_table.cell(cell_lat.percentile(0.50) / 1000.0, 2);
    char_table.cell(cell_lat.percentile(0.99) / 1000.0, 2);
    char_table.cell(baseline_seconds / elapsed, 2);
  }
  char_table.print(std::cout);
  std::cout << "models identical across thread counts: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n\n";

  // --- Forest training --------------------------------------------------
  const Dataset train = make_forest_workload(quick ? 8000 : 60000);
  const std::size_t num_trees = quick ? 12 : 48;
  std::cout << "RandomForest::fit: " << train.num_rows() << " distinct rows, " << num_trees
            << " trees\n";
  TextTable fit_table;
  fit_table.new_row();
  fit_table.cell("jobs");
  fit_table.cell("seconds");
  fit_table.cell("tree p50 ms");
  fit_table.cell("tree p99 ms");
  fit_table.cell("speedup");
  const obs::Histogram& tree_us =
      obs::Registry::global().histogram("caml_forest_tree_fit_us");
  std::string forest_baseline;
  double forest_baseline_seconds = 0.0;
  bool forests_identical = true;
  for (std::size_t jobs : job_counts) {
    ForestParams params;
    params.num_trees = num_trees;
    params.jobs = jobs;
    RandomForest forest(params);
    const obs::HistogramSnapshot before = tree_us.snapshot();
    const auto t0 = Clock::now();
    forest.fit(train);
    const double elapsed = seconds_since(t0);
    const obs::HistogramSnapshot tree_lat = run_delta(tree_us, before);
    std::ostringstream os;
    write_forest(os, forest, train.num_features());
    if (jobs == 1) {
      forest_baseline = os.str();
      forest_baseline_seconds = elapsed;
    }
    forests_identical = forests_identical && os.str() == forest_baseline;
    fit_table.new_row();
    fit_table.cell(std::to_string(jobs));
    fit_table.cell(elapsed, 3);
    fit_table.cell(tree_lat.percentile(0.50) / 1000.0, 2);
    fit_table.cell(tree_lat.percentile(0.99) / 1000.0, 2);
    fit_table.cell(forest_baseline_seconds / elapsed, 2);
  }
  fit_table.print(std::cout);
  std::cout << "forests identical across thread counts: "
            << (forests_identical ? "yes" : "NO — DETERMINISM BUG") << '\n';
  return (identical && forests_identical) ? 0 : 1;
}
