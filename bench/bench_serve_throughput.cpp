// E13 — throughput of the serve daemon: an in-process Server answers
// kPredictCell requests from a fixed pool of concurrent clients while
// the worker-thread count sweeps 1/2/4/8. Reported: wall-clock
// requests/sec per configuration, client-observed p50/p99 latency (from
// an obs::Histogram the client threads record into), and the speedup over one worker, plus
// a determinism check that every configuration produced byte-identical
// predictions. Run on a multi-core host to see the scaling.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "flow/characterize.hpp"
#include "flow/model_store.hpp"
#include "libgen/builder.hpp"
#include "netlist/spice_writer.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace caml;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kClients = 8;             // concurrent connections
constexpr std::size_t kRequestsPerClient = 50;  // per configuration

Library make_training_library() {
  LibraryComposition comp;
  comp.functions = {"NAND2", "NOR2"};
  comp.drives = {{1, StructureVariant::kWide}};
  comp.flavors = {{"", 1.0}};
  return build_library(technology_28soi(), comp);
}

}  // namespace

int main() {
  std::cout << "serve throughput (hardware threads: "
            << std::thread::hardware_concurrency() << ")\n";

  const Library lib = make_training_library();
  const std::vector<CharacterizedCell> training =
      characterize_library(lib, CharacterizeOptions{});
  MlOptions ml;
  ml.forest.num_trees = 32;
  const GroupModelStore store = GroupModelStore::train(training, ml);
  // Query the first library cell — a served request re-derives everything
  // (parse, canonicalize, matrix, golden sim, classify) from the netlist
  // text, so querying a training member still measures the full path.
  const std::string netlist = SpiceWriter().to_string(lib.cells.front().cell);
  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       ("caml_bench_serve_" + std::to_string(::getpid()) + ".sock"))
          .string();

  std::cout << kClients << " concurrent clients x " << kRequestsPerClient
            << " requests each\n\n";

  TextTable table;
  table.new_row();
  table.cell("workers");
  table.cell("requests");
  table.cell("seconds");
  table.cell("req/s");
  table.cell("p50 ms");
  table.cell("p99 ms");
  table.cell("speedup");

  double baseline_seconds = 0.0;
  std::string baseline_model;
  bool identical = true;
  bool all_ok = true;
  for (const std::size_t workers : {1, 2, 4, 8}) {
    serve::ServerOptions options;
    options.socket_path = socket_path;
    options.jobs = workers;
    options.max_queue = kClients;
    serve::Server server(store, options);
    server.start();

    std::vector<std::string> first_model(kClients);
    std::vector<std::size_t> completed(kClients, 0);
    obs::Histogram latency;  // client-observed round-trip, microseconds
    const auto t0 = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        serve::ClientOptions copts;
        copts.socket_path = socket_path;
        serve::Client client(copts);
        for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
          try {
            const Stopwatch watch;
            const std::string model = client.predict_cell(netlist);
            latency.record(static_cast<std::uint64_t>(
                std::max<std::int64_t>(watch.elapsed_us(), 0)));
            if (r == 0) first_model[c] = model;
            ++completed[c];
          } catch (const Error& e) {
            std::cerr << "client " << c << " request failed: " << e.what() << '\n';
            return;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    server.stop();

    std::size_t total = 0;
    for (std::size_t c = 0; c < kClients; ++c) {
      total += completed[c];
      if (first_model[c].empty()) continue;
      if (baseline_model.empty()) baseline_model = first_model[c];
      identical = identical && first_model[c] == baseline_model;
    }
    all_ok = all_ok && total == kClients * kRequestsPerClient;
    if (workers == 1) baseline_seconds = elapsed;

    const obs::HistogramSnapshot lat = latency.snapshot();
    table.new_row();
    table.cell(std::to_string(workers));
    table.cell(std::to_string(total));
    table.cell(elapsed, 3);
    table.cell(static_cast<double>(total) / elapsed, 1);
    table.cell(lat.percentile(0.50) / 1000.0, 2);
    table.cell(lat.percentile(0.99) / 1000.0, 2);
    table.cell(baseline_seconds / elapsed, 2);
  }
  table.print(std::cout);
  std::cout << "all requests served: " << (all_ok ? "yes" : "NO — DROPPED REQUESTS")
            << "\npredictions identical across configurations: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << '\n';
  return (all_ok && identical) ? 0 : 1;
}
