// E13 — throughput of the serve daemon's event-loop architecture. Two
// sweeps against an in-process Server:
//
//   * roundtrip: a fixed pool of concurrent clients, one request in
//     flight per connection (the only mode the old thread-per-connection
//     server could serve), worker-thread count sweeping 1/2/4/8.
//     p50/p99 are client-observed round trips.
//   * pipelined: the same clients keep `window` requests in flight on
//     one connection each; the reactor coalesces the decoded requests
//     across connections into predict_batch sweeps. p50/p99 are
//     server-side decode-to-response-written latencies, and batch_mean
//     shows the realized coalescing.
//
// Both sweeps end with a determinism check: every configuration and
// both modes must produce byte-identical predictions. --quick shrinks
// the sweep to a seconds-scale smoke for the cmake `verify` target.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "flow/characterize.hpp"
#include "flow/model_store.hpp"
#include "libgen/builder.hpp"
#include "netlist/spice_writer.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace caml;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kClients = 8;  // concurrent connections

struct RunResult {
  std::size_t total = 0;   // requests answered kPredictOk
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double batch_mean = 0.0;  // pipelined mode only
  std::string first_model;
  bool all_ok = false;
};

Library make_training_library() {
  LibraryComposition comp;
  comp.functions = {"NAND2", "NOR2"};
  comp.drives = {{1, StructureVariant::kWide}};
  comp.flavors = {{"", 1.0}};
  return build_library(technology_28soi(), comp);
}

/// One request in flight per connection: every round trip pays the full
/// wire + dispatch + compute + wire cost before the next request starts.
RunResult run_roundtrip(const GroupModelStore& store, const std::string& netlist,
                        const std::string& socket_path, std::size_t workers,
                        std::size_t requests_per_client) {
  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.jobs = workers;
  options.max_queue = kClients;
  serve::Server server(store, options);
  server.start();

  std::vector<std::string> first_model(kClients);
  std::vector<std::size_t> completed(kClients, 0);
  obs::Histogram latency;  // client-observed round-trip, microseconds
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::ClientOptions copts;
      copts.socket_path = socket_path;
      serve::Client client(copts);
      for (std::size_t r = 0; r < requests_per_client; ++r) {
        try {
          const Stopwatch watch;
          const std::string model = client.predict_cell(netlist);
          latency.record(
              static_cast<std::uint64_t>(std::max<std::int64_t>(watch.elapsed_us(), 0)));
          if (r == 0) first_model[c] = model;
          ++completed[c];
        } catch (const Error& e) {
          std::cerr << "client " << c << " request failed: " << e.what() << '\n';
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  RunResult result;
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  server.stop();

  for (std::size_t c = 0; c < kClients; ++c) {
    result.total += completed[c];
    if (result.first_model.empty()) result.first_model = first_model[c];
  }
  result.all_ok = result.total == kClients * requests_per_client;
  const obs::HistogramSnapshot lat = latency.snapshot();
  result.p50_ms = lat.percentile(0.50) / 1000.0;
  result.p99_ms = lat.percentile(0.99) / 1000.0;
  return result;
}

/// `window` requests in flight per connection: the reactor decodes ahead
/// of the compute plane and coalesces requests across all connections
/// into predict_batch sweeps.
RunResult run_pipelined(const GroupModelStore& store, const std::string& netlist,
                        const std::string& socket_path, std::size_t workers,
                        std::size_t window, std::size_t requests_per_client) {
  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.jobs = workers;
  options.max_queue = kClients;
  serve::Server server(store, options);
  server.start();

  std::vector<std::string> first_model(kClients);
  std::vector<std::size_t> completed(kClients, 0);
  const std::vector<std::string> batch(requests_per_client, netlist);
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::ClientOptions copts;
      copts.socket_path = socket_path;
      serve::Client client(copts);
      try {
        const std::vector<serve::BatchResult> results = client.predict_cells(batch, window);
        for (const serve::BatchResult& r : results) {
          if (!r.ok()) continue;
          if (completed[c] == 0) first_model[c] = r.payload;
          ++completed[c];
        }
      } catch (const Error& e) {
        std::cerr << "client " << c << " batch failed: " << e.what() << '\n';
      }
    });
  }
  for (std::thread& t : clients) t.join();
  RunResult result;
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  const serve::StatsSnapshot stats = server.stats();
  server.stop();

  for (std::size_t c = 0; c < kClients; ++c) {
    result.total += completed[c];
    if (result.first_model.empty()) result.first_model = first_model[c];
  }
  result.all_ok = result.total == kClients * requests_per_client;
  result.p50_ms = stats.latency_p50_ms;  // server-side decode-to-written
  result.p99_ms = stats.latency_p99_ms;
  result.batch_mean = stats.batch_mean;
  return result;
}

double tail_ratio(const RunResult& r) {
  return r.p50_ms > 0.0 ? r.p99_ms / r.p50_ms : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::cout << "serve throughput (hardware threads: "
            << std::thread::hardware_concurrency() << ")\n";

  const Library lib = make_training_library();
  const std::vector<CharacterizedCell> training =
      characterize_library(lib, CharacterizeOptions{});
  MlOptions ml;
  ml.forest.num_trees = 32;
  const GroupModelStore store = GroupModelStore::train(training, ml);
  // Query the first library cell — a served request re-derives everything
  // (parse, canonicalize, matrix, golden sim, classify) from the netlist
  // text, so querying a training member still measures the full path.
  const std::string netlist = SpiceWriter().to_string(lib.cells.front().cell);
  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       ("caml_bench_serve_" + std::to_string(::getpid()) + ".sock"))
          .string();

  const std::size_t requests_per_client = quick ? 10 : 50;
  const std::vector<std::size_t> worker_sweep =
      quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<std::size_t> window_sweep =
      quick ? std::vector<std::size_t>{8} : std::vector<std::size_t>{1, 8, 32};

  std::cout << kClients << " concurrent clients x " << requests_per_client
            << " requests each" << (quick ? " (--quick)" : "") << "\n\n";

  std::string baseline_model;
  bool identical = true;
  bool all_ok = true;
  const auto check = [&](const RunResult& r) {
    all_ok = all_ok && r.all_ok;
    if (r.first_model.empty()) return;
    if (baseline_model.empty()) baseline_model = r.first_model;
    identical = identical && r.first_model == baseline_model;
  };

  std::cout << "mode roundtrip (one request in flight per connection,\n"
               "client-observed round-trip latency):\n";
  TextTable roundtrip;
  roundtrip.new_row();
  roundtrip.cell("workers");
  roundtrip.cell("requests");
  roundtrip.cell("seconds");
  roundtrip.cell("req/s");
  roundtrip.cell("p50 ms");
  roundtrip.cell("p99 ms");
  roundtrip.cell("p99/p50");
  roundtrip.cell("speedup");
  double baseline_seconds = 0.0;
  for (const std::size_t workers : worker_sweep) {
    const RunResult r =
        run_roundtrip(store, netlist, socket_path, workers, requests_per_client);
    check(r);
    if (workers == worker_sweep.front()) baseline_seconds = r.seconds;
    roundtrip.new_row();
    roundtrip.cell(std::to_string(workers));
    roundtrip.cell(std::to_string(r.total));
    roundtrip.cell(r.seconds, 3);
    roundtrip.cell(static_cast<double>(r.total) / r.seconds, 1);
    roundtrip.cell(r.p50_ms, 2);
    roundtrip.cell(r.p99_ms, 2);
    roundtrip.cell(tail_ratio(r), 1);
    roundtrip.cell(baseline_seconds / r.seconds, 2);
  }
  roundtrip.print(std::cout);

  const std::size_t pipeline_workers = worker_sweep.back();
  std::cout << "\nmode pipelined (" << pipeline_workers
            << " workers; `window` requests in flight per connection,\n"
               "server-side decode-to-response-written latency; batch_mean =\n"
               "requests coalesced per cross-connection predict_batch sweep):\n";
  TextTable pipelined;
  pipelined.new_row();
  pipelined.cell("window");
  pipelined.cell("requests");
  pipelined.cell("seconds");
  pipelined.cell("req/s");
  pipelined.cell("p50 ms");
  pipelined.cell("p99 ms");
  pipelined.cell("p99/p50");
  pipelined.cell("batch_mean");
  for (const std::size_t window : window_sweep) {
    const RunResult r = run_pipelined(store, netlist, socket_path, pipeline_workers,
                                      window, requests_per_client);
    check(r);
    pipelined.new_row();
    pipelined.cell(std::to_string(window));
    pipelined.cell(std::to_string(r.total));
    pipelined.cell(r.seconds, 3);
    pipelined.cell(static_cast<double>(r.total) / r.seconds, 1);
    pipelined.cell(r.p50_ms, 2);
    pipelined.cell(r.p99_ms, 2);
    pipelined.cell(tail_ratio(r), 1);
    pipelined.cell(r.batch_mean, 2);
  }
  pipelined.print(std::cout);

  std::cout << "all requests served: " << (all_ok ? "yes" : "NO — DROPPED REQUESTS")
            << "\npredictions identical across configurations: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << '\n';
  return (all_ok && identical) ? 0 : 1;
}
