// E9 — switch-level simulator throughput (backs the SPICE cost-model
// calibration in DESIGN.md): steady-state solves per second and defect
// simulations per second across cell sizes.
#include <benchmark/benchmark.h>

#include "defect/injector.hpp"
#include "defect/universe.hpp"
#include "libgen/builder.hpp"
#include "sim/switch_sim.hpp"

namespace {

using namespace caml;

Cell make_cell(const std::string& function, const DriveSpec& drive) {
  const Technology tech = technology_28soi();
  Rng rng(7);
  return build_cell(find_function(function), tech, drive, {"", 1.0}, function, rng);
}

void BM_ApplyPattern(benchmark::State& state, const std::string& function, DriveSpec drive) {
  const Cell cell = make_cell(function, drive);
  SwitchSim sim(cell);
  const InputPattern max = InputPattern{1} << cell.num_inputs();
  InputPattern p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.apply(p));
    p = (p + 1) % max;
  }
  state.counters["transistors"] = static_cast<double>(cell.num_transistors());
}

void BM_TwoPatternRun(benchmark::State& state, const std::string& function, DriveSpec drive) {
  const Cell cell = make_cell(function, drive);
  SwitchSim sim(cell);
  const auto stimuli = generate_stimuli(cell.num_inputs(), StimulusPolicy::kExhaustivePairs);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(stimuli[i]));
    i = (i + 1) % stimuli.size();
  }
}

void BM_DefectSimulation(benchmark::State& state, const std::string& function,
                         DriveSpec drive) {
  const Cell cell = make_cell(function, drive);
  const auto defects = enumerate_defects(cell);
  const auto stimuli = generate_stimuli(cell.num_inputs(), StimulusPolicy::kExhaustivePairs);
  std::size_t d = 0;
  for (auto _ : state) {
    const Cell faulty = inject_defect(cell, defects[d]);
    SwitchSim sim(faulty);
    Sig out = Sig::kX;
    for (const Stimulus& s : stimuli) out = sim.run(s);
    benchmark::DoNotOptimize(out);
    d = (d + 1) % defects.size();
  }
  state.counters["stimuli"] = static_cast<double>(stimuli.size());
  state.counters["defects"] = static_cast<double>(defects.size());
}

}  // namespace

int main(int argc, char** argv) {
  using V = StructureVariant;
  benchmark::RegisterBenchmark("apply/INVX1",
                               [](benchmark::State& s) { BM_ApplyPattern(s, "INV", {1, V::kWide}); });
  benchmark::RegisterBenchmark("apply/NAND2X1",
                               [](benchmark::State& s) { BM_ApplyPattern(s, "NAND2", {1, V::kWide}); });
  benchmark::RegisterBenchmark("apply/AOI22X4M",
                               [](benchmark::State& s) { BM_ApplyPattern(s, "AOI22", {4, V::kMerged}); });
  benchmark::RegisterBenchmark("apply/XOR3X1",
                               [](benchmark::State& s) { BM_ApplyPattern(s, "XOR3", {1, V::kWide}); });
  benchmark::RegisterBenchmark("two_pattern/NAND3X1", [](benchmark::State& s) {
    BM_TwoPatternRun(s, "NAND3", {1, V::kWide});
  });
  benchmark::RegisterBenchmark("two_pattern/MUX2IX1", [](benchmark::State& s) {
    BM_TwoPatternRun(s, "MUX2I", {1, V::kWide});
  });
  benchmark::RegisterBenchmark("defect_sweep/NAND2X1", [](benchmark::State& s) {
    BM_DefectSimulation(s, "NAND2", {1, V::kWide});
  });
  benchmark::RegisterBenchmark("defect_sweep/AOI21X2S", [](benchmark::State& s) {
    BM_DefectSimulation(s, "AOI21", {2, V::kSplit});
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
