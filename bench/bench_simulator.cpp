// E9 — switch-level simulator throughput (backs the SPICE cost-model
// calibration in DESIGN.md): steady-state solves per second and defect
// simulations per second across cell sizes.
//
// The defect sweeps exist in two variants so the PR-5 kernel win stays
// measurable: defect_sweep_copy/* is the pre-kernel baseline (per-defect
// inject_defect cell copy + fresh SwitchSim), defect_sweep/* is the
// zero-allocation kernel (DefectOverlay apply/revert + SwitchSim
// rebind). Both record per-defect latency into obs histograms and report
// the run's p50/p99 (snapshot-diffed, so sweep iterations don't bleed
// into each other) plus defect simulations per second.
#include <benchmark/benchmark.h>

#include "defect/injector.hpp"
#include "defect/overlay.hpp"
#include "defect/universe.hpp"
#include "legacy_switch_sim.hpp"
#include "libgen/builder.hpp"
#include "obs/metrics.hpp"
#include "sim/switch_sim.hpp"
#include "util/timing.hpp"

namespace {

using namespace caml;

Cell make_cell(const std::string& function, const DriveSpec& drive) {
  const Technology tech = technology_28soi();
  Rng rng(7);
  return build_cell(find_function(function), tech, drive, {"", 1.0}, function, rng);
}

void BM_ApplyPattern(benchmark::State& state, const std::string& function, DriveSpec drive) {
  const Cell cell = make_cell(function, drive);
  SwitchSim sim(cell);
  const InputPattern max = InputPattern{1} << cell.num_inputs();
  InputPattern p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.apply(p));
    p = (p + 1) % max;
  }
  state.counters["transistors"] = static_cast<double>(cell.num_transistors());
}

void BM_TwoPatternRun(benchmark::State& state, const std::string& function, DriveSpec drive) {
  const Cell cell = make_cell(function, drive);
  SwitchSim sim(cell);
  const auto stimuli = generate_stimuli(cell.num_inputs(), StimulusPolicy::kExhaustivePairs);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(stimuli[i]));
    i = (i + 1) % stimuli.size();
  }
}

/// Attaches the run's per-defect latency distribution (p50/p99) and
/// throughput to the benchmark counters via the obs snapshot-diff
/// machinery.
void report_defect_counters(benchmark::State& state, const obs::Histogram& hist,
                            const obs::HistogramSnapshot& before, std::size_t stimuli,
                            std::size_t defects) {
  const obs::HistogramSnapshot delta = hist.snapshot().diff(before);
  state.counters["stimuli"] = static_cast<double>(stimuli);
  state.counters["defects"] = static_cast<double>(defects);
  state.counters["defect_p50_us"] = delta.percentile(0.50);
  state.counters["defect_p99_us"] = delta.percentile(0.99);
  state.counters["defect_sims_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

/// Pre-kernel baseline, measured with the frozen seed simulator
/// (legacy_switch_sim.hpp): one full Cell copy and one freshly allocated
/// simulator per defect, per-stimulus runs, full conduction
/// re-evaluation and a confirming propagation every solve iteration.
void BM_DefectSimulationCopy(benchmark::State& state, const std::string& function,
                             DriveSpec drive) {
  const Cell cell = make_cell(function, drive);
  const auto defects = enumerate_defects(cell);
  const auto stimuli = generate_stimuli(cell.num_inputs(), StimulusPolicy::kExhaustivePairs);
  static obs::Histogram& hist = obs::Registry::global().histogram(
      "bench_defect_copy_us", "Per-defect latency of the copy-based baseline kernel");
  const obs::HistogramSnapshot before = hist.snapshot();
  std::size_t d = 0;
  for (auto _ : state) {
    const Stopwatch watch;
    const Cell faulty = inject_defect(cell, defects[d]);
    LegacySwitchSim sim(faulty);
    Sig out = Sig::kX;
    for (const Stimulus& s : stimuli) out = sim.run(s);
    benchmark::DoNotOptimize(out);
    hist.record(static_cast<std::uint64_t>(std::max<std::int64_t>(watch.elapsed_us(), 0)));
    d = (d + 1) % defects.size();
  }
  report_defect_counters(state, hist, before, stimuli.size(), defects.size());
}

/// PR-5 kernel: in-place DefectOverlay + SwitchSim::rebind, zero heap
/// allocation per defect.
void BM_DefectSimulationOverlay(benchmark::State& state, const std::string& function,
                                DriveSpec drive) {
  const Cell cell = make_cell(function, drive);
  const auto defects = enumerate_defects(cell);
  const auto stimuli = generate_stimuli(cell.num_inputs(), StimulusPolicy::kExhaustivePairs);
  static obs::Histogram& hist = obs::Registry::global().histogram(
      "bench_defect_overlay_us", "Per-defect latency of the overlay kernel");
  const obs::HistogramSnapshot before = hist.snapshot();
  DefectOverlay overlay(cell);
  SwitchSim sim(overlay.cell());
  sim.reserve(cell.num_nets() + DefectOverlay::kMaxExtraNets,
              cell.num_transistors() + DefectOverlay::kMaxExtraTransistors);
  std::vector<Sig> out(stimuli.size(), Sig::kX);
  std::size_t d = 0;
  for (auto _ : state) {
    const Stopwatch watch;
    overlay.apply(defects[d]);
    sim.rebind();
    sim.run_batch(stimuli, out.data());
    overlay.revert();
    benchmark::DoNotOptimize(out.data());
    hist.record(static_cast<std::uint64_t>(std::max<std::int64_t>(watch.elapsed_us(), 0)));
    d = (d + 1) % defects.size();
  }
  report_defect_counters(state, hist, before, stimuli.size(), defects.size());
}

}  // namespace

int main(int argc, char** argv) {
  using V = StructureVariant;
  benchmark::RegisterBenchmark("apply/INVX1",
                               [](benchmark::State& s) { BM_ApplyPattern(s, "INV", {1, V::kWide}); });
  benchmark::RegisterBenchmark("apply/NAND2X1",
                               [](benchmark::State& s) { BM_ApplyPattern(s, "NAND2", {1, V::kWide}); });
  benchmark::RegisterBenchmark("apply/AOI22X4M",
                               [](benchmark::State& s) { BM_ApplyPattern(s, "AOI22", {4, V::kMerged}); });
  benchmark::RegisterBenchmark("apply/XOR3X1",
                               [](benchmark::State& s) { BM_ApplyPattern(s, "XOR3", {1, V::kWide}); });
  benchmark::RegisterBenchmark("two_pattern/NAND3X1", [](benchmark::State& s) {
    BM_TwoPatternRun(s, "NAND3", {1, V::kWide});
  });
  benchmark::RegisterBenchmark("two_pattern/MUX2IX1", [](benchmark::State& s) {
    BM_TwoPatternRun(s, "MUX2I", {1, V::kWide});
  });
  benchmark::RegisterBenchmark("defect_sweep_copy/NAND2X1", [](benchmark::State& s) {
    BM_DefectSimulationCopy(s, "NAND2", {1, V::kWide});
  });
  benchmark::RegisterBenchmark("defect_sweep_copy/AOI21X2S", [](benchmark::State& s) {
    BM_DefectSimulationCopy(s, "AOI21", {2, V::kSplit});
  });
  benchmark::RegisterBenchmark("defect_sweep/NAND2X1", [](benchmark::State& s) {
    BM_DefectSimulationOverlay(s, "NAND2", {1, V::kWide});
  });
  benchmark::RegisterBenchmark("defect_sweep/AOI21X2S", [](benchmark::State& s) {
    BM_DefectSimulationOverlay(s, "AOI21", {2, V::kSplit});
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
