// E14 — model-store load path: text parse vs. binary mmap.
//
// Two measurements back the binary store's design claims:
//
//   * load scaling: synthetic stores (4 groups x 20 complete binary
//     trees, node count per tree swept 1x/16x/64x) are saved as both the
//     text interchange format and the binary section, then timed:
//     GroupModelStore::load_file (read + CRC + parse + tree build) vs
//     MappedModelStore::open in kFull (mmap + CRC + structural node
//     validation) and kMapOnly (mmap + header/index/section walk only —
//     the O(header+index) open, independent of forest node counts).
//     first_answer adds one batched classification on the opened store,
//     proving the mapping serves immediately (no warm-up parse).
//   * serve cold start: wall time from `open store` to `first answered
//     prediction` through a real in-process daemon, text vs binary
//     backend, on a trained NAND2 store.
//
// Output: one `RESULT key=value ...` line per measurement (parsed by
// scripts/run_bench.sh into BENCH_PR7.json) plus a human-readable table.
// A final identity check re-verifies byte-identical hexfloat
// probabilities between the text-loaded and mapped stores.
// --quick shrinks the sweep to a seconds-scale smoke.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "flow/characterize.hpp"
#include "flow/model_store.hpp"
#include "libgen/builder.hpp"
#include "ml/forest_view.hpp"
#include "netlist/spice_writer.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/binary_store.hpp"
#include "util/table.hpp"

namespace {

using namespace caml;
using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

/// Complete binary tree of `depth` levels (2^depth - 1 nodes): node i is
/// internal iff both children 2i+1/2i+2 exist — the same
/// forward-pointing shape CART emits, at a size we control exactly.
DecisionTree make_synthetic_tree(std::size_t depth, std::size_t num_features,
                                 std::uint64_t salt) {
  const std::size_t n = (std::size_t{1} << depth) - 1;
  std::vector<DecisionTree::NodeRecord> records(n);
  for (std::size_t i = 0; i < n; ++i) {
    DecisionTree::NodeRecord& r = records[i];
    if (2 * i + 2 < n) {
      r.left = static_cast<std::int32_t>(2 * i + 1);
      r.right = static_cast<std::int32_t>(2 * i + 2);
      r.feature = static_cast<std::uint16_t>((i + salt) % num_features);
      r.threshold = static_cast<std::int8_t>(static_cast<int>((i + salt) % 3) - 1);
    } else {
      r.count0 = (i * 31 + salt) % 97;
      r.count1 = (i * 17 + salt) % 89;
    }
  }
  return DecisionTree::from_records(records);
}

GroupModelStore make_synthetic_store(std::size_t tree_depth) {
  constexpr std::size_t kGroups = 4;
  constexpr std::size_t kTrees = 20;
  constexpr std::size_t kFeatures = 12;
  std::map<GroupKey, RandomForest> models;
  for (std::size_t g = 0; g < kGroups; ++g) {
    std::vector<DecisionTree> trees;
    trees.reserve(kTrees);
    for (std::size_t t = 0; t < kTrees; ++t) {
      trees.push_back(make_synthetic_tree(tree_depth, kFeatures, g * 1000 + t));
    }
    models.emplace(GroupKey{2 + g, 4 + 2 * g},
                   RandomForest::assemble(std::move(trees), kFeatures));
  }
  return GroupModelStore::assemble(std::move(models), MatrixOptions{});
}

std::vector<std::int8_t> make_rows(std::size_t n, std::size_t features) {
  std::vector<std::int8_t> rows(n * features);
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  for (std::int8_t& v : rows) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v = static_cast<std::int8_t>(static_cast<int>(x % 3) - 1);
  }
  return rows;
}

std::string hexfloat_probas(const std::vector<double>& probas) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const double p : probas) os << p << '\n';
  return os.str();
}

/// Median of `reps` timed runs of `fn` (microseconds).
template <typename Fn>
double median_us(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    times.push_back(us_since(t0));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct LoadRow {
  std::size_t scale = 1;
  std::size_t nodes_per_tree = 0;
  std::uintmax_t text_bytes = 0;
  std::uintmax_t bin_bytes = 0;
  double text_load_us = 0.0;
  double bin_open_full_us = 0.0;
  double bin_open_map_us = 0.0;
  double first_answer_us = 0.0;
};

GroupModelStore make_trained_store() {
  LibraryComposition comp;
  comp.functions = {"NAND2"};
  comp.drives = {{1, StructureVariant::kWide}};
  comp.flavors = {{"", 1.0}};
  const Library lib = build_library(technology_28soi(), comp);
  const std::vector<CharacterizedCell> training =
      characterize_library(lib, CharacterizeOptions{});
  MlOptions ml;
  ml.forest.num_trees = 8;
  return GroupModelStore::train(training, ml);
}

double serve_cold_start_us(const std::string& store_path, const std::string& netlist,
                           const char* tag) {
  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       ("caml_bench_store_" + std::to_string(::getpid()) + "_" + tag + ".sock"))
          .string();
  const auto t0 = Clock::now();
  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.jobs = 2;
  serve::Server server(store::open_model_store(store_path), options);
  server.start();
  serve::ClientOptions copts;
  copts.socket_path = socket_path;
  serve::Client client(copts);
  const std::string answer = client.predict_cell(netlist);
  const double us = us_since(t0);
  if (answer.empty()) std::cerr << "warning: empty first answer\n";
  server.stop();
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::string work =
      (std::filesystem::temp_directory_path() /
       ("caml_bench_store_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(work);

  // Depth 10 = 1023 nodes/tree (~2.6 MB store); each +2 depth is 4x.
  const std::size_t base_depth = 10;
  const std::vector<std::size_t> scales = quick ? std::vector<std::size_t>{1, 16}
                                                : std::vector<std::size_t>{1, 16, 64};
  const int reps = quick ? 3 : 7;

  std::cout << "model-store load: text parse vs binary mmap"
            << (quick ? " (--quick)" : "") << "\n\n";

  std::vector<LoadRow> rows;
  for (const std::size_t scale : scales) {
    std::size_t depth = base_depth;
    for (std::size_t s = scale; s > 1; s /= 4) depth += 2;
    const GroupModelStore synthetic = make_synthetic_store(depth);
    const std::string text_path = work + "/store_" + std::to_string(scale) + "x.caml";
    const std::string bin_path = work + "/store_" + std::to_string(scale) + "x.bin.caml";
    synthetic.save_file(text_path);
    store::write_binary_store_file(bin_path, synthetic);

    LoadRow row;
    row.scale = scale;
    row.nodes_per_tree = (std::size_t{1} << depth) - 1;
    row.text_bytes = std::filesystem::file_size(text_path);
    row.bin_bytes = std::filesystem::file_size(bin_path);
    row.text_load_us =
        median_us(reps, [&] { GroupModelStore::load_file(text_path); });
    row.bin_open_full_us = median_us(reps, [&] {
      store::MappedModelStore::open(bin_path, store::MappedModelStore::Verify::kFull);
    });
    row.bin_open_map_us = median_us(reps, [&] {
      store::MappedModelStore::open(bin_path, store::MappedModelStore::Verify::kMapOnly);
    });
    // Open (map-only) + one batched answer straight off the cold mapping.
    const std::vector<std::int8_t> probe = make_rows(64, 12);
    row.first_answer_us = median_us(reps, [&] {
      const store::MappedModelStore mapped = store::MappedModelStore::open(
          bin_path, store::MappedModelStore::Verify::kMapOnly);
      const Classifier* clf = mapped.classifier_for(GroupKey{2, 4});
      if (clf == nullptr) std::abort();
      clf->predict_batch(probe.data(), 64, 12);
    });
    rows.push_back(row);

    std::cout << "RESULT load scale=" << row.scale << " nodes_per_tree=" << row.nodes_per_tree
              << " text_bytes=" << row.text_bytes << " bin_bytes=" << row.bin_bytes
              << std::fixed << std::setprecision(1) << " text_load_us=" << row.text_load_us
              << " bin_open_full_us=" << row.bin_open_full_us
              << " bin_open_map_us=" << row.bin_open_map_us
              << " first_answer_us=" << row.first_answer_us << std::defaultfloat << "\n";
  }

  std::cout << "\n";
  TextTable table;
  table.new_row();
  table.cell("scale");
  table.cell("nodes/tree");
  table.cell("bin MB");
  table.cell("text load ms");
  table.cell("open full ms");
  table.cell("open map ms");
  table.cell("text/map");
  for (const LoadRow& row : rows) {
    table.new_row();
    table.cell(std::to_string(row.scale) + "x");
    table.cell(static_cast<long long>(row.nodes_per_tree));
    table.cell(static_cast<double>(row.bin_bytes) / (1024.0 * 1024.0), 1);
    table.cell(row.text_load_us / 1000.0, 2);
    table.cell(row.bin_open_full_us / 1000.0, 2);
    table.cell(row.bin_open_map_us / 1000.0, 2);
    table.cell(row.bin_open_map_us > 0 ? row.text_load_us / row.bin_open_map_us : 0.0, 1);
  }
  table.print(std::cout);
  std::cout << "\n";

  // Identity: the mapped store and the text-loaded store answer with the
  // same bits (hexfloat compare over every group of the largest store).
  bool identical = true;
  {
    const std::size_t scale = scales.back();
    const std::string text_path = work + "/store_" + std::to_string(scale) + "x.caml";
    const std::string bin_path = work + "/store_" + std::to_string(scale) + "x.bin.caml";
    const GroupModelStore loaded = GroupModelStore::load_file(text_path);
    const store::MappedModelStore mapped = store::MappedModelStore::open(bin_path);
    const std::vector<std::int8_t> probe = make_rows(128, 12);
    for (const GroupKey& key : loaded.group_keys()) {
      const auto* text_forest = dynamic_cast<const RandomForest*>(loaded.classifier_for(key));
      const auto* map_forest = dynamic_cast<const MappedForest*>(mapped.classifier_for(key));
      if (text_forest == nullptr || map_forest == nullptr) {
        identical = false;
        break;
      }
      identical = identical &&
                  hexfloat_probas(text_forest->predict_proba_batch(probe.data(), 128, 12)) ==
                      hexfloat_probas(map_forest->predict_proba_batch(probe.data(), 128, 12));
    }
  }
  std::cout << "predictions identical across load paths: " << (identical ? "yes" : "NO")
            << "\n\n";

  // Serve cold start on a real trained store, text vs binary backend.
  std::cout << "serve cold start (open store -> first answered prediction):\n";
  const GroupModelStore trained = make_trained_store();
  const std::string trained_text = work + "/nand2.caml";
  const std::string trained_bin = work + "/nand2.bin.caml";
  trained.save_file(trained_text);
  store::write_binary_store_file(trained_bin, trained);
  LibraryComposition comp;
  comp.functions = {"NAND2"};
  comp.drives = {{1, StructureVariant::kWide}};
  comp.flavors = {{"", 1.0}};
  const Library lib = build_library(technology_28soi(), comp);
  const std::string netlist = SpiceWriter().to_string(lib.cells.front().cell);
  const double text_cold = serve_cold_start_us(trained_text, netlist, "text");
  const double bin_cold = serve_cold_start_us(trained_bin, netlist, "bin");
  std::cout << "RESULT cold_start backend=text us=" << std::fixed << std::setprecision(1)
            << text_cold << "\n";
  std::cout << "RESULT cold_start backend=binary us=" << bin_cold << std::defaultfloat
            << "\n";

  std::filesystem::remove_all(work);
  return identical ? 0 : 1;
}
