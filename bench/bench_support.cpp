#include "bench_support.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "camodel/model_io.hpp"
#include "netlist/spice_parser.hpp"
#include "netlist/spice_writer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace caml::bench {

namespace {

using Clock = std::chrono::steady_clock;

StructureVariant variant_from_string(const std::string& s) {
  if (s == "W") return StructureVariant::kWide;
  if (s == "M") return StructureVariant::kMerged;
  if (s == "S") return StructureVariant::kSplit;
  throw Error("bad variant tag: " + s);
}

const char* variant_tag(StructureVariant v) {
  switch (v) {
    case StructureVariant::kWide: return "W";
    case StructureVariant::kMerged: return "M";
    case StructureVariant::kSplit: return "S";
  }
  throw Error("invalid variant");
}

BenchmarkSuite build_suite_for_profile(Profile p) {
  if (p != Profile::kSmoke) return build_benchmark_suite();
  // Smoke: a miniature of the same composition shape.
  const std::vector<std::string> shared = {"INV", "NAND2", "NOR2", "AOI21", "OAI21"};
  BenchmarkSuite suite;
  LibraryComposition soi;
  soi.functions = shared;
  soi.functions.push_back("AND2");
  soi.drives = {{1, StructureVariant::kWide},
                {2, StructureVariant::kMerged},
                {2, StructureVariant::kSplit}};
  soi.flavors = {{"", 1.0}, {"LP", 0.85}};
  suite.soi28 = build_library(technology_28soi(), soi);
  LibraryComposition c40;
  c40.functions = shared;
  c40.functions.push_back("OR2");
  c40.drives = {{1, StructureVariant::kWide}, {2, StructureVariant::kMerged}};
  c40.flavors = {{"", 1.0}};
  suite.c40 = build_library(technology_c40(), c40);
  LibraryComposition c28;
  c28.functions = shared;
  c28.functions.push_back("XOR2");
  c28.drives = {{1, StructureVariant::kWide}, {2, StructureVariant::kSplit}};
  c28.flavors = {{"", 1.0}};
  suite.c28 = build_library(technology_c28(), c28);
  return suite;
}

std::string cache_dir() {
  if (const char* env = std::getenv("CAML_BENCH_CACHE_DIR")) return env;
  return "bench_cache";
}

std::string cache_path(const std::string& library) {
  return cache_dir() + "/" + library + "_" + profile_name(profile()) + ".camlcache";
}

void save_library(const std::string& path, const std::vector<CharacterizedCell>& cells) {
  std::filesystem::create_directories(cache_dir());
  std::ofstream os(path);
  if (!os) return;  // cache is best-effort
  const SpiceWriter writer;
  for (const CharacterizedCell& cell : cells) {
    os << "CELLBEGIN\n";
    os << "META " << cell.source.function << ' ' << cell.source.drive << ' '
       << variant_tag(cell.source.variant) << ' '
       << (cell.source.flavor.empty() ? "-" : cell.source.flavor) << '\n';
    writer.write(os, cell.source.cell);
    write_ca_model(os, cell.model, cell.source.cell);
    os << "CELLEND\n";
  }
}

std::vector<CharacterizedCell> load_library(const std::string& path, const Technology& tech) {
  std::ifstream is(path);
  if (!is) return {};
  std::vector<CharacterizedCell> cells;
  std::string line;
  while (std::getline(is, line)) {
    if (trim(line) != "CELLBEGIN") continue;
    // META line.
    if (!std::getline(is, line)) throw Error("cache truncated: " + path);
    const std::vector<std::string> meta = split(line);
    if (meta.size() != 5 || meta[0] != "META") throw Error("bad cache META in " + path);
    // SPICE block up to .ENDS.
    std::ostringstream spice;
    while (std::getline(is, line)) {
      spice << line << '\n';
      if (starts_with_ci(trim(line), ".ENDS")) break;
    }
    const std::vector<Cell> parsed = SpiceParser().parse_string(spice.str());
    if (parsed.size() != 1) throw Error("bad cache SPICE block in " + path);

    CharacterizedCell cell;
    cell.source.cell = parsed[0];
    cell.source.function = meta[1];
    cell.source.drive = std::stoi(meta[2]);
    cell.source.variant = variant_from_string(meta[3]);
    cell.source.flavor = meta[4] == "-" ? "" : meta[4];
    cell.source.technology = tech.name;
    cell.model = read_ca_model(is, cell.source.cell);
    cell.sim = tech.sim;
    cell.canonical = canonicalize(cell.source.cell, tech.sim);
    cells.push_back(std::move(cell));
    // Consume CELLEND.
    while (std::getline(is, line)) {
      if (trim(line) == "CELLEND") break;
    }
  }
  return cells;
}

std::vector<CharacterizedCell> characterize_or_load(const Library& library) {
  const std::string path = cache_path(library.name);
  try {
    std::vector<CharacterizedCell> cached = load_library(path, library.technology);
    if (cached.size() == library.cells.size()) {
      std::cerr << "[bench] " << library.name << ": loaded " << cached.size()
                << " cells from cache\n";
      return cached;
    }
  } catch (const Error& e) {
    std::cerr << "[bench] cache for " << library.name << " unusable (" << e.what()
              << "), regenerating\n";
  }
  const auto t0 = Clock::now();
  std::vector<CharacterizedCell> cells = characterize_library(library, characterize_options());
  std::cerr << "[bench] " << library.name << ": characterized " << cells.size() << " cells in "
            << format_fixed(std::chrono::duration<double>(Clock::now() - t0).count(), 1)
            << " s\n";
  save_library(path, cells);
  return cells;
}

}  // namespace

Profile profile() {
  static const Profile p = [] {
    const char* env = std::getenv("CAML_BENCH_PROFILE");
    if (!env) return Profile::kFast;
    const std::string v = to_lower(env);
    if (v == "smoke") return Profile::kSmoke;
    if (v == "full") return Profile::kFull;
    if (v == "fast") return Profile::kFast;
    std::cerr << "[bench] unknown CAML_BENCH_PROFILE '" << v << "', using fast\n";
    return Profile::kFast;
  }();
  return p;
}

const char* profile_name(Profile p) {
  switch (p) {
    case Profile::kSmoke: return "smoke";
    case Profile::kFast: return "fast";
    case Profile::kFull: return "full";
  }
  throw Error("invalid Profile");
}

CharacterizeOptions characterize_options() {
  CharacterizeOptions options;
  switch (profile()) {
    case Profile::kSmoke: options.policy.exhaustive_max_inputs = 2; break;
    case Profile::kFast: options.policy.exhaustive_max_inputs = 3; break;
    case Profile::kFull: options.policy.exhaustive_max_inputs = 4; break;
  }
  return options;
}

MlOptions ml_options() {
  MlOptions options;
  switch (profile()) {
    case Profile::kSmoke:
      options.forest.num_trees = 10;
      break;
    case Profile::kFast:
      options.forest.num_trees = 12;
      // Safety valve for the few very large groups; rarely binding.
      options.forest.max_samples_per_tree = 250000;
      break;
    case Profile::kFull:
      options.forest.num_trees = 20;
      break;
  }
  return options;
}

const SuiteData& suite() {
  static const SuiteData data = [] {
    const BenchmarkSuite libraries = build_suite_for_profile(profile());
    SuiteData d;
    d.soi28 = characterize_or_load(libraries.soi28);
    d.c40 = characterize_or_load(libraries.c40);
    d.c28 = characterize_or_load(libraries.c28);
    return d;
  }();
  return data;
}

void print_header(const std::string& experiment) {
  std::cout << "==============================================================\n";
  std::cout << experiment << "\n";
  std::cout << "profile: " << profile_name(profile())
            << " (set CAML_BENCH_PROFILE=smoke|fast|full)\n";
  std::cout << "==============================================================\n";
}

}  // namespace caml::bench
