#pragma once

#include <string>
#include <vector>

#include "flow/characterize.hpp"
#include "flow/ml_flow.hpp"

namespace caml::bench {

/// Bench effort profile, selected by the CAML_BENCH_PROFILE environment
/// variable ("smoke" | "fast" | "full"; default "fast").
///  - smoke: reduced library composition, cheap stimuli — seconds.
///    Sanity only.
///  - fast:  the full three-library suite with exhaustive two-pattern
///    stimuli up to 3 inputs — the default; minutes on one core.
///  - full:  exhaustive stimuli up to 4 inputs, larger forests.
enum class Profile { kSmoke, kFast, kFull };

Profile profile();
const char* profile_name(Profile p);

/// The three characterized libraries (ground truth CA models), built on
/// first use and cached under CAML_BENCH_CACHE_DIR (default
/// "bench_cache" in the working directory) so each bench binary pays
/// the simulation cost only once per profile.
struct SuiteData {
  std::vector<CharacterizedCell> soi28;
  std::vector<CharacterizedCell> c40;
  std::vector<CharacterizedCell> c28;
};

const SuiteData& suite();

/// Default knobs matched to the active profile.
CharacterizeOptions characterize_options();
MlOptions ml_options();

/// Prints the standard bench header (profile, library sizes).
void print_header(const std::string& experiment);

}  // namespace caml::bench
