// E1 — Paper Table IV.a: average prediction accuracy for cells of the
// SAME technology (leave-one-out within every (inputs, transistors)
// group of the 28SOI library).
#include <iostream>

#include "bench_support.hpp"
#include "flow/report.hpp"
#include "util/log.hpp"

int main() {
  using namespace caml;
  bench::print_header(
      "Table IV.a — prediction accuracy, same technology (28SOI leave-one-out, open + short "
      "defects)");
  Log::set_level(LogLevel::kInfo);

  const auto& cells = bench::suite().soi28;
  const std::vector<CellEvaluation> evals = evaluate_leave_one_out(cells, bench::ml_options());

  const AccuracyGrid grid = aggregate_grid(evals);
  print_accuracy_grid(std::cout, grid, "\nAverage prediction accuracy (%), 28SOI -> 28SOI");
  print_distribution(std::cout, summarize_distribution(evals), "\nPer-cell accuracy distribution");

  // Paper-shape checks (reported, not asserted): same-technology LOO is
  // expected ~99-100% with many perfectly predicted groups.
  std::size_t green = 0;
  for (const auto& [key, stats] : grid) green += stats.any_perfect();
  std::cout << "\ngroups evaluated: " << grid.size() << ", groups with a 100% cell: " << green
            << "\n";
  std::cout << "expected shape (paper): averages ~99-100%, most groups green\n";
  return 0;
}
