// E2 — Paper Table IV.b: average prediction accuracy for cells of a
// DIFFERENT technology: train on every 28SOI cell of a group, evaluate
// every C28 cell of that group.
#include <iostream>

#include "bench_support.hpp"
#include "flow/report.hpp"
#include "util/log.hpp"

int main() {
  using namespace caml;
  bench::print_header(
      "Table IV.b — prediction accuracy across technologies (train 28SOI, predict C28)");
  Log::set_level(LogLevel::kInfo);

  const auto& train = bench::suite().soi28;
  const auto& eval = bench::suite().c28;
  const std::vector<CellEvaluation> evals =
      evaluate_cross_library(train, eval, bench::ml_options());

  const AccuracyGrid grid = aggregate_grid(evals);
  print_accuracy_grid(std::cout, grid, "\nAverage prediction accuracy (%), 28SOI -> C28");
  const AccuracyDistribution dist = summarize_distribution(evals);
  print_distribution(std::cout, dist, "\nPer-cell accuracy distribution");

  std::cout << "\nexpected shape (paper): globally lower than Table IV.a, ~68% of cells above "
               "97%, a distinct low-accuracy tail from structures/functions absent in 28SOI\n";
  return 0;
}
