// E3 — Paper Table IV.c: average prediction accuracy for cells with
// DIFFERENT transistor sizes: train on 28SOI, evaluate the C40 library
// (markedly larger devices, same logic families).
#include <iostream>

#include "bench_support.hpp"
#include "flow/report.hpp"
#include "util/log.hpp"

int main() {
  using namespace caml;
  bench::print_header(
      "Table IV.c — prediction accuracy across transistor sizes (train 28SOI, predict C40)");
  Log::set_level(LogLevel::kInfo);

  const auto& train = bench::suite().soi28;
  const auto& eval = bench::suite().c40;
  const std::vector<CellEvaluation> evals =
      evaluate_cross_library(train, eval, bench::ml_options());

  const AccuracyGrid grid = aggregate_grid(evals);
  print_accuracy_grid(std::cout, grid, "\nAverage prediction accuracy (%), 28SOI -> C40");
  const AccuracyDistribution dist = summarize_distribution(evals);
  print_distribution(std::cout, dist, "\nPer-cell accuracy distribution");

  std::cout << "\nexpected shape (paper): better than Table IV.b (~80% of cells above 97%) — "
               "sizing changes degrade prediction less than new structures do\n";
  return 0;
}
