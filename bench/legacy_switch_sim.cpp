// Frozen pre-PR-5 simulator used only as the bench_simulator baseline.
// Deliberately byte-for-byte the seed algorithm (including its per-call
// allocations); do not "fix" or optimize it — see legacy_switch_sim.hpp.
#include "legacy_switch_sim.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caml {

LegacySwitchSim::LegacySwitchSim(const Cell& cell, SimConfig config) : cell_(&cell), config_(config) {
  device_strength_.reserve(cell.num_transistors());
  for (const Transistor& t : cell.transistors()) {
    device_strength_.push_back(config_.device_strength(t));
  }
  channel_adj_.assign(cell.num_nets(), {});
  for (std::size_t ti = 0; ti < cell.num_transistors(); ++ti) {
    const Transistor& t = cell.transistor(static_cast<TransistorId>(ti));
    channel_adj_[static_cast<std::size_t>(t.drain)].push_back(static_cast<TransistorId>(ti));
    channel_adj_[static_cast<std::size_t>(t.source)].push_back(static_cast<TransistorId>(ti));
  }
  value_.assign(cell.num_nets(), Sig::kZ);
  strength_.assign(cell.num_nets(), 0);
  retained_.assign(cell.num_nets(), Sig::kZ);
  driven_.assign(cell.num_nets(), false);
  pinned_x_.assign(cell.num_nets(), false);
}

void LegacySwitchSim::reset() {
  std::fill(retained_.begin(), retained_.end(), Sig::kZ);
  std::fill(value_.begin(), value_.end(), Sig::kZ);
  std::fill(strength_.begin(), strength_.end(), 0);
  oscillated_ = false;
}

LegacySwitchSim::Conduction LegacySwitchSim::conduction_of(TransistorId id) const {
  const Transistor& t = cell_->transistor(id);
  const Sig g = value_[static_cast<std::size_t>(t.gate)];
  switch (g) {
    case Sig::kZero: return t.type == MosType::kPmos ? Conduction::kOn : Conduction::kOff;
    case Sig::kOne: return t.type == MosType::kNmos ? Conduction::kOn : Conduction::kOff;
    case Sig::kX: return Conduction::kUnknown;
    case Sig::kZ: return Conduction::kOff;  // truly floating gate: no channel
  }
  throw Error("invalid Sig");
}

namespace {

/// Join of two values meeting at the same strength.
Sig join(Sig a, Sig b) {
  if (a == b) return a;
  if (a == Sig::kZ) return b;
  if (b == Sig::kZ) return a;
  return Sig::kX;
}

}  // namespace

void LegacySwitchSim::propagate() {
  const Cell& cell = *cell_;
  const std::size_t nets = cell.num_nets();

  // Conduction states are frozen for this propagation (the outer solve
  // loop re-evaluates them between propagations).
  std::vector<Conduction> cond(cell.num_transistors());
  for (std::size_t ti = 0; ti < cell.num_transistors(); ++ti) {
    cond[ti] = conduction_of(static_cast<TransistorId>(ti));
  }

  // Initialize every net from its sources: driven nets at drive
  // strength, oscillation-pinned nets at drive strength (X), floating
  // nets at their retained charge.
  for (std::size_t n = 0; n < nets; ++n) {
    if (driven_[n]) {
      strength_[n] = config_.drive_strength;
    } else if (pinned_x_[n]) {
      value_[n] = Sig::kX;
      strength_[n] = config_.drive_strength;
    } else if (retained_[n] != Sig::kZ) {
      value_[n] = retained_[n];
      strength_[n] = config_.charge_strength;
    } else {
      value_[n] = Sig::kZ;
      strength_[n] = 0;
    }
  }

  // Worklist relaxation over a monotone lattice: a net's strength only
  // rises, and at its top strength the value only degrades towards X.
  // Each net re-enters the worklist a bounded number of times, so the
  // fixpoint is reached unconditionally — pass-transistor cycles cannot
  // oscillate here.
  std::vector<std::uint8_t> queued(nets, 1);
  std::vector<std::size_t> worklist;
  worklist.reserve(nets * 2);
  for (std::size_t n = 0; n < nets; ++n) worklist.push_back(n);

  const auto offer = [&](std::size_t to, Sig v, int s) -> bool {
    if (driven_[to] || pinned_x_[to]) return false;  // fixed nets
    if (v == Sig::kZ || s <= 0) return false;        // nothing to offer
    if (s > strength_[to]) {
      strength_[to] = s;
      value_[to] = v;
      return true;
    }
    if (s == strength_[to]) {
      const Sig joined = join(value_[to], v);
      if (joined != value_[to]) {
        value_[to] = joined;
        return true;
      }
    }
    return false;
  };

  while (!worklist.empty()) {
    const std::size_t n = worklist.back();
    worklist.pop_back();
    queued[n] = 0;
    if (value_[n] == Sig::kZ) continue;
    for (const TransistorId ti : channel_adj_[n]) {
      const auto t_idx = static_cast<std::size_t>(ti);
      if (cond[t_idx] == Conduction::kOff) continue;
      const Transistor& t = cell.transistor(ti);
      const auto other = static_cast<std::size_t>(
          static_cast<std::size_t>(t.drain) == n ? t.source : t.drain);
      const Sig v = cond[t_idx] == Conduction::kUnknown ? Sig::kX : value_[n];
      const int s = std::min(strength_[n], device_strength_[t_idx]);
      if (offer(other, v, s) && !queued[other]) {
        queued[other] = 1;
        worklist.push_back(other);
      }
    }
  }
}

bool LegacySwitchSim::solve(std::size_t cap) {
  std::vector<Sig> previous;
  for (std::size_t iter = 0; iter < cap; ++iter) {
    previous = value_;
    propagate();
    if (value_ == previous && iter > 0) return true;
    // iter 0 always runs a second time: the first propagation computed
    // conduction from the pre-solve values.
  }
  return false;
}

Sig LegacySwitchSim::apply(InputPattern pattern) {
  const Cell& cell = *cell_;
  // The previous steady state becomes the retained charge.
  retained_ = value_;
  std::fill(driven_.begin(), driven_.end(), false);
  std::fill(pinned_x_.begin(), pinned_x_.end(), false);
  oscillated_ = false;

  const auto drive = [&](NetId net, Sig v) {
    value_[static_cast<std::size_t>(net)] = v;
    driven_[static_cast<std::size_t>(net)] = true;
  };
  drive(cell.vdd(), Sig::kOne);
  drive(cell.vss(), Sig::kZero);
  const auto& inputs = cell.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    drive(inputs[i], sig_from_bool((pattern >> i) & 1u));
  }

  // Conduction changes at most once per transistor per settled stage in
  // feedforward cells; the cap only matters for genuine feedback loops.
  const std::size_t cap = 2 * cell.num_transistors() + 8;
  if (!solve(cap)) {
    // Conduction-level oscillation (e.g. a gate-drain short forming an
    // inverting loop): pin the nets still moving to X and re-solve.
    oscillated_ = true;
    std::vector<Sig> before = value_;
    propagate();
    for (std::size_t n = 0; n < cell.num_nets(); ++n) {
      if (value_[n] != before[n]) pinned_x_[n] = true;
    }
    if (!solve(cap)) {
      // Multi-phase oscillation: pessimize every floating net.
      for (std::size_t n = 0; n < cell.num_nets(); ++n) {
        if (!driven_[n]) pinned_x_[n] = true;
      }
      propagate();
    }
  }
  return net_value(cell.output());
}

Sig LegacySwitchSim::run(const Stimulus& stimulus) {
  CAML_ASSERT(stimulus.num_inputs() == cell_->num_inputs());
  reset();
  Sig out = apply(stimulus.initial_pattern());
  if (!stimulus.is_static()) out = apply(stimulus.final_pattern());
  return out;
}

Sig LegacySwitchSim::net_value(NetId net) const { return value_.at(static_cast<std::size_t>(net)); }

}  // namespace caml
