#pragma once

// Frozen copy of the pre-PR-5 switch-level simulator, kept ONLY as the
// benchmark baseline for the zero-allocation defect kernel (see
// bench_simulator defect_sweep_copy/*). The live kernel in
// sim/switch_sim.hpp shares none of this code; this reference keeps the
// "2x over the pre-PR kernel" comparison honest even as the library
// kernel keeps improving, because the library's own solve() speedups
// would otherwise leak into the baseline. Byte-equivalence of the two
// kernels' outputs is asserted by tests/kernel_identity_test.cpp against
// goldens generated from this exact algorithm.

#include <vector>

#include "logic/stimulus.hpp"
#include "logic/wave.hpp"
#include "netlist/cell.hpp"
#include "sim/switch_sim.hpp"  // SimConfig

namespace caml {

/// The seed SwitchSim: per-construction full adjacency build, a fresh
/// conduction vector and worklist allocation per propagation, full
/// conduction re-evaluation every solve iteration, and a confirming
/// propagation to detect convergence.
class LegacySwitchSim {
 public:
  explicit LegacySwitchSim(const Cell& cell, SimConfig config = {});

  const Cell& cell() const { return *cell_; }
  const SimConfig& config() const { return config_; }

  /// Forget all stored charge (all non-driven nets return to Z).
  void reset();

  /// Apply an input pattern and settle to steady state. Returns the cell
  /// output value. Stored charge from the previous steady state is kept.
  Sig apply(InputPattern pattern);

  /// Full stimulus from a cold start: reset, apply the initial pattern,
  /// then (for dynamic stimuli) the final pattern. Returns the final
  /// output value.
  Sig run(const Stimulus& stimulus);

  /// Steady-state value of any net after the last apply().
  Sig net_value(NetId net) const;

  /// True if the last apply() hit the sweep cap (oscillation detected and
  /// contained by pinning to X).
  bool last_solve_oscillated() const { return oscillated_; }

 private:
  enum class Conduction : std::uint8_t { kOff, kOn, kUnknown };

  Conduction conduction_of(TransistorId id) const;

  void propagate();
  bool solve(std::size_t cap);

  const Cell* cell_;
  SimConfig config_;
  std::vector<int> device_strength_;
  /// channel_adj_[net] = transistors whose source or drain touches net.
  std::vector<std::vector<TransistorId>> channel_adj_;

  std::vector<Sig> value_;       ///< current net values
  std::vector<int> strength_;    ///< strength backing each value
  std::vector<Sig> retained_;    ///< steady value of previous pattern (charge)
  std::vector<bool> driven_;     ///< fixed by input/rail this pattern
  std::vector<bool> pinned_x_;   ///< oscillation containment
  bool oscillated_ = false;
};

}  // namespace caml
