// Library characterization: generate a synthetic standard-cell library
// for a technology, run the conventional CA generation flow on every
// cell, and write the library netlist plus all CA models to disk —
// the producer side of the paper's training database.
//
//   $ ./characterize_library [out_dir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "camodel/model_io.hpp"
#include "flow/characterize.hpp"
#include "netlist/spice_writer.hpp"

int main(int argc, char** argv) {
  using namespace caml;
  const std::string out_dir = argc > 1 ? argv[1] : "ca_library_out";
  std::filesystem::create_directories(out_dir);

  // A compact 28SOI-style library: 6 functions x 3 drives x 2 flavors.
  LibraryComposition comp;
  comp.functions = {"INV", "NAND2", "NOR2", "AOI21", "OAI21", "XOR2"};
  comp.drives = {{1, StructureVariant::kWide},
                 {2, StructureVariant::kMerged},
                 {2, StructureVariant::kSplit}};
  comp.flavors = {{"", 1.0}, {"LP", 0.85}};
  const Library library = build_library(technology_28soi(), comp);
  std::cout << "built " << library.cells.size() << " cells for " << library.name << "\n";

  // Emit the SPICE library.
  {
    std::ofstream os(out_dir + "/" + library.name + ".sp");
    SpiceWriter writer({.nmos_model = library.technology.nmos_model,
                        .pmos_model = library.technology.pmos_model});
    std::vector<Cell> cells;
    for (const LibraryCell& c : library.cells) cells.push_back(c.cell);
    writer.write_library(os, cells);
  }

  // Characterize and emit one CA model file per cell.
  CharacterizeOptions options;
  options.policy.exhaustive_max_inputs = 3;
  std::size_t static_total = 0, dynamic_total = 0;
  for (const LibraryCell& lc : library.cells) {
    const CharacterizedCell cell = characterize_cell(lc, library.technology, options);
    std::ofstream os(out_dir + "/" + lc.cell.name() + ".camodel");
    write_ca_model(os, cell.model, lc.cell);
    static_total += cell.model.count_class(DefectClass::kStatic);
    dynamic_total += cell.model.count_class(DefectClass::kDynamic);
    std::cout << "  " << lc.cell.name() << ": " << cell.model.defects.size() << " defects, "
              << cell.model.equivalence_classes.size() << " equivalence classes\n";
  }
  std::cout << "\nwrote netlist + " << library.cells.size() << " CA models to " << out_dir
            << "\n";
  std::cout << "defect classes across the library: " << static_total << " static, "
            << dynamic_total << " dynamic\n";
  return 0;
}
