// Cross-technology prediction: train a Random Forest on 28SOI cells of
// one (inputs, transistors) group and predict the CA model of a C28
// cell — no defect simulation on the target technology. This is the
// paper's core result (Section V.A.2) in miniature.
//
//   $ ./cross_tech_prediction
#include <iostream>

#include "flow/ml_flow.hpp"
#include "util/strings.hpp"

int main() {
  using namespace caml;

  const Technology soi = technology_28soi();
  const Technology c28 = technology_c28();
  CharacterizeOptions copt;

  // Training set: NAND2/NOR2 drive and flavor variants from "28SOI".
  std::cout << "characterizing the 28SOI training cells (simulation-based)...\n";
  std::vector<CharacterizedCell> train;
  Rng rng(2024);
  for (const std::string& function : {"NAND2", "NOR2"}) {
    for (const FlavorSpec flavor : {FlavorSpec{"", 1.0}, FlavorSpec{"LP", 0.85},
                                    FlavorSpec{"HP", 1.1}}) {
      Rng cell_rng = rng.fork();
      LibraryCell lc;
      lc.cell = build_cell(find_function(function), soi, {1, StructureVariant::kWide}, flavor,
                           function + "X1" + (flavor.suffix.empty() ? "" : "_" + flavor.suffix),
                           cell_rng);
      lc.function = function;
      lc.technology = soi.name;
      train.push_back(characterize_cell(lc, soi, copt));
    }
  }
  std::cout << "  " << train.size() << " cells characterized\n";

  // Target: a C28 NAND2 — different sizing, vendor naming and netlist
  // order. Its ground-truth model is generated only to score the
  // prediction.
  Rng target_rng(7);
  LibraryCell target_lc;
  target_lc.cell = build_cell(find_function("NAND2"), c28, {1, StructureVariant::kWide},
                              {"", 1.0}, "C28_NAND2X1", target_rng);
  target_lc.function = "NAND2";
  target_lc.technology = c28.name;
  const CharacterizedCell target = characterize_cell(target_lc, c28, copt);

  MlOptions ml;
  ml.forest.num_trees = 16;
  std::vector<const CharacterizedCell*> pool;
  for (const CharacterizedCell& c : train) pool.push_back(&c);
  std::cout << "training the Random Forest on the group (2 inputs, 4 transistors)...\n";
  const auto classifier = train_group_classifier(pool, ml);

  std::cout << "predicting the C28 cell's CA model (no defect simulation)...\n";
  const CaModel predicted = predict_ca_model(*classifier, target, ml);

  const double accuracy = ca_model_agreement(target.model, predicted);
  std::cout << "\nprediction accuracy vs simulated ground truth: "
            << format_fixed(100.0 * accuracy, 2) << "%\n";
  std::cout << "defect classes (truth vs predicted):\n";
  std::cout << "  static    : " << target.model.count_class(DefectClass::kStatic) << " vs "
            << predicted.count_class(DefectClass::kStatic) << '\n';
  std::cout << "  dynamic   : " << target.model.count_class(DefectClass::kDynamic) << " vs "
            << predicted.count_class(DefectClass::kDynamic) << '\n';
  std::cout << "  undetected: " << target.model.count_class(DefectClass::kUndetected) << " vs "
            << predicted.count_class(DefectClass::kUndetected) << '\n';

  std::cout << "\nper-defect agreement (first 10 defects):\n";
  for (std::size_t d = 0; d < predicted.defects.size() && d < 10; ++d) {
    std::size_t agree = 0;
    for (std::size_t s = 0; s < predicted.stimuli.size(); ++s) {
      agree += predicted.defects[d].detection[s] == target.model.defects[d].detection[s];
    }
    std::cout << "  " << predicted.defects[d].defect.describe(target.source.cell) << ": "
              << agree << "/" << predicted.stimuli.size() << " stimuli agree\n";
  }
  return 0;
}
