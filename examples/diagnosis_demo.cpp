// Cell-aware diagnosis demo: inject a hidden defect into a cell,
// observe only the tester pass/fail signature, and let the CA
// dictionary identify the culprit equivalence class — the diagnosis
// application of CA models described in the paper's introduction.
//
//   $ ./diagnosis_demo [seed]
#include <iostream>

#include "camodel/diagnosis.hpp"
#include "camodel/generate.hpp"
#include "libgen/builder.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace caml;
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 2026;

  // Build an AOI21 cell and its CA dictionary.
  const Technology tech = technology_28soi();
  Rng rng(seed);
  const Cell cell = build_cell(find_function("AOI21"), tech, {1, StructureVariant::kWide},
                               {"", 1.0}, "AOI21X1", rng);
  const CaModel model = generate_ca_model(cell);
  std::cout << "cell " << cell.name() << ": " << model.defects.size() << " defects in "
            << model.equivalence_classes.size() << " equivalence classes\n";

  // Pick a detectable defect as the hidden culprit.
  std::size_t culprit = model.defects.size();
  for (std::size_t d = 0; d < model.defects.size(); ++d) {
    const std::size_t pick = (d + seed) % model.defects.size();
    if (model.defects[pick].klass != DefectClass::kUndetected) {
      culprit = pick;
      break;
    }
  }
  std::cout << "hidden culprit: " << model.defects[culprit].defect.describe(cell) << " ("
            << defect_class_name(model.defects[culprit].klass) << ")\n";

  // The tester only sees pass/fail per stimulus.
  const TesterResponse observed =
      simulate_tester_response(cell, model, model.defects[culprit].defect);
  std::cout << "tester signature: " << observed.num_failing() << "/"
            << model.stimuli.size() << " stimuli fail\n\n";

  // Diagnose.
  const auto candidates = diagnose(model, observed);
  std::cout << "top candidates:\n";
  for (std::size_t i = 0; i < candidates.size() && i < 5; ++i) {
    const DiagnosisCandidate& c = candidates[i];
    std::cout << "  #" << i + 1 << " score " << format_fixed(c.score, 3)
              << (c.exact ? " [exact]" : "") << " — class of "
              << model.defects[c.defect_index].defect.describe(cell) << " ("
              << c.members.size() << " equivalent defect site"
              << (c.members.size() == 1 ? "" : "s") << ")\n";
  }

  const bool hit = !candidates.empty() &&
                   candidates.front().equivalence_class ==
                       model.defects[culprit].equivalence_class;
  std::cout << "\nculprit class " << (hit ? "IDENTIFIED" : "NOT ranked first") << '\n';
  return hit ? 0 : 1;
}
