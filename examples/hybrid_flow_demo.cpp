// Hybrid flow demo (paper Fig. 7): route the cells of a target library
// through structural analysis — ML inference for cells whose structure
// is known, conventional simulation (with feedback into the training
// pool) for the rest — and report the time accounting.
//
//   $ ./hybrid_flow_demo
#include <iostream>

#include "flow/hybrid.hpp"
#include "util/strings.hpp"

int main() {
  using namespace caml;

  CharacterizeOptions copt;
  copt.policy.exhaustive_max_inputs = 3;

  // Training library: a 28SOI slice.
  LibraryComposition train_comp;
  train_comp.functions = {"INV", "NAND2", "NOR2", "NAND3", "AOI21", "OAI21"};
  train_comp.drives = {{1, StructureVariant::kWide}, {2, StructureVariant::kMerged}};
  train_comp.flavors = {{"", 1.0}, {"LP", 0.85}};
  std::cout << "characterizing the 28SOI training library...\n";
  const std::vector<CharacterizedCell> train =
      characterize_library(build_library(technology_28soi(), train_comp), copt);

  // Target library: C40 — shared functions in new sizes, one
  // Fig.6-equivalent drive form, and two functions 28SOI never saw.
  LibraryComposition target_comp;
  target_comp.functions = {"NAND2", "NOR2", "AOI21", "XOR2", "MUX2I"};
  target_comp.drives = {{1, StructureVariant::kWide}, {2, StructureVariant::kSplit}};
  target_comp.flavors = {{"", 1.0}};
  std::cout << "characterizing the C40 target library (ground truth for scoring)...\n";
  const std::vector<CharacterizedCell> targets =
      characterize_library(build_library(technology_c40(), target_comp), copt);

  HybridOptions options;
  options.ml.forest.num_trees = 12;
  const HybridReport report = run_hybrid_flow(train, targets, options);

  std::cout << "\nper-cell routing:\n";
  for (const HybridCellOutcome& o : report.outcomes) {
    const CharacterizedCell& cell = targets[o.cell_index];
    std::cout << "  " << cell.model.cell_name << " [" << structure_match_name(o.match) << "] -> "
              << (o.routed_to_ml ? "ML" : "simulation");
    if (o.routed_to_ml) {
      std::cout << ", accuracy " << format_fixed(100.0 * o.accuracy, 2) << "%, "
                << format_fixed(o.ml_seconds, 3) << " s vs "
                << format_fixed(o.conventional_seconds / 3600.0, 1) << " modeled SPICE hours";
    }
    std::cout << '\n';
  }

  std::cout << "\ntotals:\n";
  std::cout << "  simulation-only: " << format_fixed(report.conventional_only_seconds() / 86400.0, 2)
            << " modeled days\n";
  std::cout << "  hybrid         : " << format_fixed(report.hybrid_seconds() / 86400.0, 2)
            << " modeled days\n";
  std::cout << "  reduction on ML-covered cells: "
            << format_fixed(100.0 * report.ml_portion_reduction(), 2) << "%\n";
  std::cout << "  overall reduction            : "
            << format_fixed(100.0 * report.overall_reduction(), 1) << "%\n";
  return 0;
}
