// Quickstart: from a SPICE netlist to a cell-aware model and its
// ML-friendly CA-matrix, on the paper's running NAND2 example (Fig. 4).
//
//   $ ./quickstart
#include <iostream>

#include "camatrix/matrix.hpp"
#include "camodel/generate.hpp"
#include "camodel/model_io.hpp"
#include "netlist/spice_parser.hpp"

int main() {
  using namespace caml;

  // 1. A vendor-style CDL netlist of a NAND2 cell.
  const std::string netlist = R"(
.SUBCKT NAND2X1 A B Z VDD VSS
*.PININFO A:I B:I Z:O VDD:P VSS:G
MN10 Z A net0 VSS nch W=0.40U L=0.03U
MN11 net0 B VSS VSS nch W=0.40U L=0.03U
MPx Z A VDD VDD pch W=0.60U L=0.03U
MPy Z B VDD VDD pch W=0.60U L=0.03U
.ENDS
)";
  const Cell cell = SpiceParser().parse_string(netlist).at(0);
  std::cout << "parsed " << cell.name() << ": " << cell.num_inputs() << " inputs, "
            << cell.num_transistors() << " transistors\n\n";

  // 2. Conventional (simulation-based) CA model generation: exhaustive
  //    static + two-pattern stimuli against every open and short.
  const CaModel model = generate_ca_model(cell);
  std::cout << "CA model: " << model.defects.size() << " defects x " << model.num_stimuli()
            << " stimuli\n";
  std::cout << "  static defects    : " << model.count_class(DefectClass::kStatic) << '\n';
  std::cout << "  dynamic defects   : " << model.count_class(DefectClass::kDynamic)
            << "  (stuck-open class: need two-pattern tests)\n";
  std::cout << "  undetected        : " << model.count_class(DefectClass::kUndetected) << '\n';
  std::cout << "  equivalence classes: " << model.equivalence_classes.size() << "\n\n";

  // 3. Canonical renaming (Section III): technology-independent
  //    transistor names from branch equations + activity values.
  const CanonicalCell canon = canonicalize(cell);
  std::cout << "branch equation: " << canon.branches.at(0).anon_equation << '\n';
  for (std::size_t ti = 0; ti < cell.num_transistors(); ++ti) {
    std::cout << "  " << cell.transistors()[ti].name << " -> " << canon.canonical_name[ti]
              << "  (activity " << canon.activity[ti].to_uint64() << ")\n";
  }

  // 4. The CA-matrix (Table I): the ML view of the same data.
  const CaMatrix matrix = build_ca_matrix(cell, model, canon);
  std::cout << "\nCA-matrix: " << matrix.num_rows() << " rows x " << matrix.num_features()
            << " features\n  columns:";
  for (const std::string& c : matrix.column_names()) std::cout << ' ' << c;
  std::cout << "\n  first defect row:";
  const std::size_t r = model.num_stimuli();  // first row after the free block
  for (std::size_t c = 0; c < matrix.num_features(); ++c) {
    std::cout << ' ' << static_cast<int>(matrix.at(r, c));
  }
  std::cout << "  -> label " << static_cast<int>(matrix.labels()[r]) << '\n';

  // 5. Persist the model in the text interchange format.
  std::cout << "\nCA model text format (first lines):\n";
  const std::string text = ca_model_to_string(model, cell);
  std::cout << text.substr(0, text.find('\n', text.find("DETECT")) + 1);
  return 0;
}
