#!/usr/bin/env bash
# Active-learning smoke test: runs `caml hybrid --routing active` end to
# end on the generated example library (split into a training and a
# target half) and checks the subsystem's contract:
#   (a) the budget is respected (spent <= --sim-budget),
#   (b) stdout, the acquisition journal and the saved model store are
#       byte-identical for --jobs 1 and --jobs 4,
#   (c) a run capped at --rounds 1 then resumed to --rounds 2 produces
#       the same journal, store and stdout as an uninterrupted run,
#   (d) the `caml active` verb is the same flow,
#   (e) active reaches at least the structural baseline's mean ML
#       accuracy on this corpus.
# Pass a different build dir as $1.
set -eu
BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j --target caml_cli characterize_library >/dev/null
CAML="$BUILD_DIR/tools/caml"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== generate example library and split it into train / target halves"
"$BUILD_DIR"/examples/characterize_library "$WORK/lib" >/dev/null
# Even-numbered SUBCKT blocks train, odd-numbered ones are the targets:
# every group shape stays represented on both sides while some target
# functions are unseen.
awk '/^\.SUBCKT/{n++} /^\.SUBCKT/,/^\.ENDS/{if (n % 2 == 0) print}' \
  "$WORK/lib/28SOI.sp" > "$WORK/train.sp"
awk '/^\.SUBCKT/{n++} /^\.SUBCKT/,/^\.ENDS/{if (n % 2 == 1) print}' \
  "$WORK/lib/28SOI.sp" > "$WORK/target.sp"
grep -q '^\.SUBCKT' "$WORK/train.sp" && grep -q '^\.SUBCKT' "$WORK/target.sp" \
  || { echo "FAIL: library split produced an empty half"; exit 1; }

"$CAML" characterize "$WORK/train.sp" -o "$WORK/train_cam" >/dev/null 2>&1
"$CAML" characterize "$WORK/target.sp" -o "$WORK/target_cam" >/dev/null 2>&1

BUDGET=3000
run_active() { # run_active JOBS CHECKPOINT_DIR STORE ROUNDS [extra...]
  jobs="$1"; ck="$2"; store="$3"; rounds="$4"; shift 4
  "$CAML" hybrid "$WORK/train.sp" "$WORK/train_cam" "$WORK/target.sp" "$WORK/target_cam" \
    --routing active --sim-budget "$BUDGET" --rounds "$rounds" --trees-per-round 2 \
    --jobs "$jobs" --checkpoint "$ck" -o "$store" "$@" 2>/dev/null
}

echo "== structural baseline"
"$CAML" hybrid "$WORK/train.sp" "$WORK/train_cam" "$WORK/target.sp" "$WORK/target_cam" \
  2>/dev/null > "$WORK/structural.out"
grep -q '^routing=structural' "$WORK/structural.out" \
  || { echo "FAIL: structural summary line missing"; exit 1; }

echo "== active: --jobs 1 vs --jobs 4 must be byte-identical"
run_active 1 "$WORK/ck1" "$WORK/m1.caml" 2 > "$WORK/active1.out"
run_active 4 "$WORK/ck4" "$WORK/m4.caml" 2 > "$WORK/active4.out"
cmp -s "$WORK/active1.out" "$WORK/active4.out" \
  || { echo "FAIL: active stdout differs between --jobs 1 and --jobs 4"; exit 1; }
cmp -s "$WORK/ck1/checkpoint.journal" "$WORK/ck4/checkpoint.journal" \
  || { echo "FAIL: acquisition journals differ between job counts"; exit 1; }
cmp -s "$WORK/m1.caml" "$WORK/m4.caml" \
  || { echo "FAIL: model stores differ between job counts"; exit 1; }

echo "== budget respected"
awk -v budget="$BUDGET" '/^routing=active/ {
  for (i = 1; i <= NF; i++) if ($i ~ /^spent=/) {
    sub(/^spent=/, "", $i)
    if ($i + 0 > budget + 0) { print "FAIL: spent " $i " exceeds budget " budget; exit 1 }
    found = 1
  }
} END { exit found ? 0 : 1 }' "$WORK/active1.out" \
  || { echo "FAIL: budget check (no summary line or overspend)"; exit 1; }

echo "== interrupted at --rounds 1 + resumed equals uninterrupted"
run_active 1 "$WORK/ckr" "$WORK/partial.caml" 1 > /dev/null
run_active 1 "$WORK/ckr" "$WORK/mr.caml" 2 --resume > "$WORK/resumed.out"
cmp -s "$WORK/ckr/checkpoint.journal" "$WORK/ck1/checkpoint.journal" \
  || { echo "FAIL: resumed journal differs from uninterrupted run"; exit 1; }
cmp -s "$WORK/mr.caml" "$WORK/m1.caml" \
  || { echo "FAIL: resumed model store differs from uninterrupted run"; exit 1; }
cmp -s "$WORK/resumed.out" "$WORK/active1.out" \
  || { echo "FAIL: resumed stdout differs from uninterrupted run"; exit 1; }

echo "== 'caml active' verb is the same flow"
"$CAML" active "$WORK/train.sp" "$WORK/train_cam" "$WORK/target.sp" "$WORK/target_cam" \
  --sim-budget "$BUDGET" --rounds 2 --trees-per-round 2 --jobs 1 \
  2>/dev/null > "$WORK/verb.out"
cmp -s "$WORK/verb.out" "$WORK/active1.out" \
  || { echo "FAIL: 'caml active' output differs from 'caml hybrid --routing active'"; exit 1; }

echo "== active accuracy >= structural baseline"
acc() { awk -v pol="$1" '$0 ~ "^routing=" pol {
  for (i = 1; i <= NF; i++) if ($i ~ /^mean-ml-accuracy=/) { sub(/^mean-ml-accuracy=/, "", $i); print $i }
}' "$2"; }
STRUCT_ACC="$(acc structural "$WORK/structural.out")"
ACTIVE_ACC="$(acc active "$WORK/active1.out")"
[ -n "$STRUCT_ACC" ] && [ -n "$ACTIVE_ACC" ] \
  || { echo "FAIL: could not parse mean-ml-accuracy"; exit 1; }
awk -v a="$ACTIVE_ACC" -v s="$STRUCT_ACC" 'BEGIN { exit (a + 0.002 >= s) ? 0 : 1 }' \
  || { echo "FAIL: active accuracy $ACTIVE_ACC below structural baseline $STRUCT_ACC"; exit 1; }
echo "   structural=$STRUCT_ACC active=$ACTIVE_ACC"

echo "PASS: active-learning smoke (budget, determinism, resume, accuracy)"
