#!/usr/bin/env bash
# Chaos harness for the serve plane: builds an instrumented tree with
# -DCAML_FAULT_INJECTION=ON and drives the daemon through seeded socket
# fault storms, client crashes, process kills, SIGHUP storms, in-place
# store truncation, and deadline sheds — asserting after every scenario
# that
#
#   * the daemon never crashes (only explicit SIGKILL/SIGTERM ends it),
#   * recovery is bounded (restart-to-ready and post-fault serving are
#     re-checked under a fixed poll deadline, never open-ended),
#   * every SUCCESSFUL response is byte-identical to the in-process
#     `caml predict` reference — fault handling may fail a request
#     loudly, but must never corrupt an answer,
#   * DEADLINE_EXCEEDED sheds consume no compute-plane work
#     (shed_expired rises while cells_predicted stays at requests_ok).
#
# Faults are injected deterministically via CAML_FAULT=<point>:<kind>:
# <nth>[:<param>] (see src/util/fault.hpp), so every scenario is
# reproducible. Exits nonzero on any violation. Pass a different build
# dir as $1.
set -eu
BUILD_DIR="${1:-build-fault}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$ROOT" -DCAML_FAULT_INJECTION=ON >/dev/null
cmake --build "$BUILD_DIR" -j --target caml_cli characterize_library >/dev/null
CAML="$BUILD_DIR/tools/caml"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $1"; [ -f "$WORK/server.err" ] && tail -20 "$WORK/server.err"; exit 1; }

# Polls the daemon to readiness within a fixed deadline (the bounded-
# recovery assertion: 50 x 0.1 s, never open-ended).
wait_ready() {
  local sock="$1"
  for _ in $(seq 1 50); do
    if "$CAML" query --ping --socket "$sock" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

assert_alive() { kill -0 "$SERVER_PID" 2>/dev/null || fail "$1: daemon died"; }

# Fetches one counter out of the live daemon's Prometheus snapshot.
stat_of() {
  "$CAML" query --stats --socket "$1" 2>/dev/null \
    | awk -v m="$2" '$1 == m {print $2; found=1} END {if (!found) print 0}'
}

stop_server() {
  kill -TERM "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

echo "== setup: library, store, reference predictions"
"$BUILD_DIR"/examples/characterize_library "$WORK/lib" >/dev/null
"$CAML" train "$WORK/lib/28SOI.sp" "$WORK/lib" -o "$WORK/groups.caml" --trees 16 >/dev/null
"$CAML" store "$WORK/groups.caml" --to-binary "$WORK/groups.bin.caml" >/dev/null
"$CAML" predict "$WORK/lib/28SOI.sp" -m "$WORK/groups.caml" -o "$WORK/ref" --jobs 1 >/dev/null
CELL=NAND2X1
awk "/^\.SUBCKT $CELL /,/^\.ENDS/" "$WORK/lib/28SOI.sp" > "$WORK/cell.sp"
[ -s "$WORK/cell.sp" ] || fail "could not extract $CELL from the library"
REF="$WORK/ref/$CELL.camodel"

# Runs $2 queries against $1 and byte-compares every answer to the
# reference. The daemon must survive; every query must succeed.
storm_and_compare() {
  local sock="$1" count="$2" label="$3" out
  for i in $(seq 1 "$count"); do
    out="$WORK/chaos_out"
    rm -rf "$out"
    "$CAML" query "$WORK/cell.sp" --socket "$sock" -o "$out" >/dev/null 2>&1 \
      || fail "$label: query $i errored"
    cmp -s "$REF" "$out/$CELL.camodel" || fail "$label: query $i answer differs"
  done
  assert_alive "$label"
}

echo "== scenario A: daemon-side socket fault storms"
# Each spec runs against a fresh daemon whose CAML_FAULT arms the named
# injection point for the whole process lifetime.
for spec in \
  "net-read:short-read:1:7" \
  "net-write:short-write:1:64" \
  "net-poll:eintr:1:500" \
  "net-read:eintr:1:200" \
  "net-read:eagain:1:100"; do
  SOCK="$WORK/a.sock"; rm -f "$SOCK"
  CAML_FAULT="$spec" "$CAML" serve "$WORK/groups.caml" --socket "$SOCK" --jobs 1 \
    2>"$WORK/server.err" &
  SERVER_PID=$!
  wait_ready "$SOCK" || fail "daemon[$spec] never became ready"
  storm_and_compare "$SOCK" 5 "daemon fault $spec"
  stop_server
  echo "   ok: daemon survived $spec, 5/5 byte-identical"
done

echo "== scenario B: client-side socket faults against a clean daemon"
SOCK="$WORK/b.sock"
"$CAML" serve "$WORK/groups.caml" --socket "$SOCK" --jobs 1 2>"$WORK/server.err" &
SERVER_PID=$!
wait_ready "$SOCK" || fail "clean daemon never became ready"
for spec in \
  "net-read:short-read:1:5" \
  "net-write:short-write:1:9" \
  "net-read:eintr:1:50" \
  "net-read:econnreset:1"; do
  rm -rf "$WORK/chaos_out"
  CAML_FAULT="$spec" "$CAML" query "$WORK/cell.sp" --socket "$SOCK" -o "$WORK/chaos_out" \
    >/dev/null 2>&1 || fail "client fault $spec: query errored (retry should absorb it)"
  cmp -s "$REF" "$WORK/chaos_out/$CELL.camodel" || fail "client fault $spec: answer differs"
  echo "   ok: client absorbed $spec, answer byte-identical"
done
assert_alive "client faults"

echo "== scenario C: clients dying mid-stream"
# A clean-EOF abort: the client stalls before its first send and is
# SIGKILLed, so the daemon sees a connection that opens and dies silently.
CAML_FAULT="net-write:stall:1:5000" \
  "$CAML" query "$WORK/cell.sp" --socket "$SOCK" -o "$WORK/dead_out" >/dev/null 2>&1 &
DEAD=$!
sleep 0.3
kill -9 "$DEAD" 2>/dev/null || true
wait "$DEAD" 2>/dev/null || true
# A mid-frame abort: 4 header bytes arrive, then the writer vanishes.
python3 - "$SOCK" <<'EOF'
import socket, sys, time
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.send(b"CAMQ")          # first 4 of 20 header bytes, then nothing
time.sleep(0.2)
s.close()                # mid-frame EOF
EOF
storm_and_compare "$SOCK" 3 "after mid-stream client deaths"
echo "   ok: daemon shrugged off killed and half-frame clients"
stop_server

echo "== scenario D: daemon SIGKILL -> restart-to-ready, then SIGHUP storm"
SOCK="$WORK/d.sock"
"$CAML" serve "$WORK/groups.caml" --socket "$SOCK" --jobs 1 2>"$WORK/server.err" &
SERVER_PID=$!
wait_ready "$SOCK" || fail "daemon never became ready before SIGKILL"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
rm -f "$SOCK"
"$CAML" serve "$WORK/groups.caml" --socket "$SOCK" --jobs 1 2>"$WORK/server.err" &
SERVER_PID=$!
wait_ready "$SOCK" || fail "daemon did not restart to ready within the drain deadline"
for _ in $(seq 1 5); do kill -HUP "$SERVER_PID"; sleep 0.05; done
storm_and_compare "$SOCK" 5 "SIGHUP storm"
sleep 0.2  # let the last reload land before sampling the counter
RELOADS="$(stat_of "$SOCK" caml_serve_reloads_total)"
[ "$RELOADS" -ge 1 ] || fail "SIGHUP storm: expected >= 1 reload, saw $RELOADS"
echo "   ok: restart within deadline, $RELOADS reloads under storm, answers identical"
stop_server

echo "== scenario E: backing store truncated under the live mapping"
SOCK="$WORK/e.sock"
cp "$WORK/groups.bin.caml" "$WORK/live.bin.caml"
"$CAML" serve "$WORK/live.bin.caml" --socket "$SOCK" --jobs 1 2>"$WORK/server.err" &
SERVER_PID=$!
wait_ready "$SOCK" || fail "binary-store daemon never became ready"
storm_and_compare "$SOCK" 1 "mapped store baseline"
truncate -s 4096 "$WORK/live.bin.caml"
# The in-flight mapping is now unhealthy: the next predict must fail
# loudly (INTERNAL), never crash the daemon or hand back garbage.
if "$CAML" query "$WORK/cell.sp" --socket "$SOCK" -o "$WORK/trunc_out" >/dev/null 2>&1; then
  fail "truncated store: query succeeded against a faulted mapping"
fi
assert_alive "store truncation"
FAULTS="$(stat_of "$SOCK" caml_serve_store_faults_total)"
[ "$FAULTS" -ge 1 ] || fail "truncated store: expected >= 1 store fault, saw $FAULTS"
# Restore the bytes: the refresh/reload path (or the now-consistent
# mapping) must serve byte-identical answers again, within the deadline.
cp "$WORK/groups.bin.caml" "$WORK/live.bin.caml"
wait_ready "$SOCK" || fail "daemon unreachable after store restore"
storm_and_compare "$SOCK" 3 "after store restore"
echo "   ok: store fault surfaced ($FAULTS counted), recovery byte-identical"
stop_server

echo "== scenario F: deadline sheds consume no compute"
SOCK="$WORK/f.sock"
"$CAML" serve "$WORK/groups.caml" --socket "$SOCK" --jobs 1 --max-batch 1 \
  2>"$WORK/server.err" &
SERVER_PID=$!
wait_ready "$SOCK" || fail "shed daemon never became ready"
# Saturate the single worker with no-deadline queries while 1 ms-deadline
# queries pile into the queue behind them; their budgets expire in-queue.
pids=""
for i in $(seq 1 8); do
  "$CAML" query "$WORK/cell.sp" --socket "$SOCK" -o "$WORK/blk_$i" >/dev/null 2>&1 &
  pids="$pids $!"
done
for i in $(seq 1 8); do
  "$CAML" query "$WORK/cell.sp" --socket "$SOCK" --deadline-ms 1 -o "$WORK/ddl_$i" \
    >/dev/null 2>&1 &
  pids="$pids $!"
done
for pid in $pids; do wait "$pid" || true; done  # deadline queries may fail: that IS the shed
assert_alive "deadline storm"
SHED="$(stat_of "$SOCK" caml_serve_shed_expired_total)"
OK="$(stat_of "$SOCK" caml_serve_requests_ok_total)"
CELLS="$(stat_of "$SOCK" caml_serve_cells_predicted_total)"
[ "$SHED" -ge 1 ] || fail "deadline storm: expected >= 1 expired shed, saw $SHED"
[ "$CELLS" = "$OK" ] \
  || fail "deadline storm: cells_predicted ($CELLS) != requests_ok ($OK) — sheds consumed compute"
# Every no-deadline query must have been answered byte-identically.
for i in $(seq 1 8); do
  cmp -s "$REF" "$WORK/blk_$i/$CELL.camodel" || fail "deadline storm: blocker $i answer differs"
done
echo "   ok: $SHED sheds, zero compute consumed (cells_predicted == requests_ok == $OK)"
stop_server

echo "== scenario G: sojourn-target admission under overload"
SOCK="$WORK/g.sock"
"$CAML" serve "$WORK/groups.caml" --socket "$SOCK" --jobs 1 --max-batch 1 \
  --shed-target-ms 1 2>"$WORK/server.err" &
SERVER_PID=$!
wait_ready "$SOCK" || fail "shed-target daemon never became ready"
pids=""
for i in $(seq 1 20); do
  "$CAML" query "$WORK/cell.sp" --socket "$SOCK" -o "$WORK/ovl_$i" >/dev/null 2>&1 &
  pids="$pids $!"
done
ok_count=0
for pid in $pids; do
  if wait "$pid"; then ok_count=$((ok_count + 1)); fi
done
assert_alive "overload shed storm"
# Successful answers stay byte-identical even while the policy sheds.
for i in $(seq 1 20); do
  [ -f "$WORK/ovl_$i/$CELL.camodel" ] || continue
  cmp -s "$REF" "$WORK/ovl_$i/$CELL.camodel" || fail "overload storm: answer $i differs"
done
OVER="$(stat_of "$SOCK" caml_serve_shed_overload_total)"
echo "   ok: daemon alive, $ok_count/20 served identically, $OVER admission sheds"
stop_server

echo "chaos harness passed: zero daemon crashes, bounded recovery, all answers byte-identical"
