#!/usr/bin/env bash
# Crash-safety harness: builds an instrumented tree with
# -DCAML_FAULT_INJECTION=ON, runs the fault-gated unit tests, then
# drives the CLI end to end:
#
#   * kill sweep — SIGKILLs `caml characterize` at the Nth persistence
#     operation for N = 1, 2, ... (via CAML_FAULT="*:kill:N"), resumes
#     with --resume, and byte-compares the final model directory against
#     an uninterrupted reference run;
#   * corrupt-store rejection — a bit-flipped model store must make
#     `caml serve` refuse startup with exit code 3 and `caml predict`
#     fail loudly;
#   * binary-store publish sweep — SIGKILL at the Nth persistence op and
#     a torn rename during `caml store --to-binary` must leave the
#     target byte-identical to the previous complete store;
#   * SIGHUP hot reload — a failed reload (corrupt file on disk) keeps
#     the daemon serving the old models; a good reload is counted.
#     Exercised against both the text and the binary (mmap) backend.
#
# Exits nonzero on any violation. Pass a different build dir as $1.
set -eu
BUILD_DIR="${1:-build-fault}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$ROOT" -DCAML_FAULT_INJECTION=ON >/dev/null
cmake --build "$BUILD_DIR" -j --target caml_cli caml_tests characterize_library >/dev/null
CAML="$BUILD_DIR/tools/caml"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

corrupt_byte() {
  # Flips one byte near the end of $1 (inside the framed payload, past
  # the container header — exactly what the CRC must catch).
  local file="$1" size offset
  size=$(wc -c < "$file")
  offset=$((size - 4))
  printf '\377' | dd of="$file" bs=1 seek="$offset" conv=notrunc 2>/dev/null
}

echo "== fault-gated unit tests"
"$BUILD_DIR"/tests/caml_tests --gtest_filter='IoFault*:DurabilityFault*' \
  | grep -q 'PASSED' || { echo "FAIL: fault-injection unit tests failed"; exit 1; }

echo "== generate a small library"
"$BUILD_DIR"/examples/characterize_library "$WORK/lib" >/dev/null
# First three cells are plenty for the kill sweep and keep it fast.
awk '/^\.SUBCKT/{n++} n<=3' "$WORK/lib/28SOI.sp" > "$WORK/small.sp"
grep -q '^\.SUBCKT' "$WORK/small.sp" || { echo "FAIL: no cells extracted"; exit 1; }

echo "== kill sweep: SIGKILL at the Nth persistence op, resume, byte-compare"
"$CAML" characterize "$WORK/small.sp" -o "$WORK/ref" --jobs 1 --checkpoint-every 1 \
  >/dev/null 2>&1
completed_without_kill=0
for n in $(seq 1 24); do
  rm -rf "$WORK/run"
  status=0
  CAML_FAULT="*:kill:$n" "$CAML" characterize "$WORK/small.sp" -o "$WORK/run" \
    --jobs 1 --checkpoint-every 1 >/dev/null 2>&1 || status=$?
  if [ "$status" = 0 ]; then
    # The run outlived the fault: every persistence op < n already
    # survived a kill, so the sweep is complete.
    completed_without_kill=1
    diff -r "$WORK/ref" "$WORK/run" >/dev/null \
      || { echo "FAIL: un-killed run at n=$n differs from reference"; exit 1; }
    break
  fi
  [ "$status" = 137 ] \
    || { echo "FAIL: kill:$n exited with $status, expected SIGKILL (137)"; exit 1; }
  "$CAML" characterize "$WORK/small.sp" -o "$WORK/run" --resume \
    --jobs 1 --checkpoint-every 1 >/dev/null 2>&1 \
    || { echo "FAIL: resume after kill:$n failed"; exit 1; }
  diff -r "$WORK/ref" "$WORK/run" >/dev/null \
    || { echo "FAIL: resumed directory differs from reference after kill:$n"; diff -r "$WORK/ref" "$WORK/run" | head; exit 1; }
done
[ "$completed_without_kill" = 1 ] \
  || { echo "FAIL: sweep never ran past the last persistence op (raise the bound)"; exit 1; }

echo "== active-flow kill sweep: SIGKILL mid-acquisition, resume, byte-compare"
# Three more cells as the target half; the active loop journals each
# acquisition, so a killed run resumed with --resume must converge to
# the same journal and model-store bytes as an uninterrupted one.
awk '/^\.SUBCKT/{n++} n>=4 && n<=6' "$WORK/lib/28SOI.sp" > "$WORK/target.sp"
grep -q '^\.SUBCKT' "$WORK/target.sp" || { echo "FAIL: no target cells extracted"; exit 1; }
"$CAML" characterize "$WORK/target.sp" -o "$WORK/target_cam" --jobs 1 >/dev/null 2>&1
active_run() { # active_run CHECKPOINT_DIR STORE [extra...]
  ck="$1"; store="$2"; shift 2
  "$CAML" hybrid "$WORK/small.sp" "$WORK/ref" "$WORK/target.sp" "$WORK/target_cam" \
    --routing active --sim-budget 2 --budget-unit count --rounds 2 \
    --trees-per-round 2 --jobs 1 --checkpoint "$ck" -o "$store" "$@"
}
active_run "$WORK/act_ref" "$WORK/act_ref.caml" >/dev/null 2>&1
completed_without_kill=0
for n in $(seq 1 24); do
  rm -rf "$WORK/act_run"
  rm -f "$WORK/act_run.caml"
  status=0
  CAML_FAULT="*:kill:$n" active_run "$WORK/act_run" "$WORK/act_run.caml" \
    >/dev/null 2>&1 || status=$?
  if [ "$status" = 0 ]; then
    completed_without_kill=1
    cmp -s "$WORK/act_run.caml" "$WORK/act_ref.caml" \
      || { echo "FAIL: un-killed active run at n=$n differs from reference"; exit 1; }
    break
  fi
  [ "$status" = 137 ] \
    || { echo "FAIL: active kill:$n exited with $status, expected SIGKILL (137)"; exit 1; }
  active_run "$WORK/act_run" "$WORK/act_run.caml" --resume >/dev/null 2>&1 \
    || { echo "FAIL: active resume after kill:$n failed"; exit 1; }
  cmp -s "$WORK/act_run.caml" "$WORK/act_ref.caml" \
    || { echo "FAIL: resumed active store differs from reference after kill:$n"; exit 1; }
  cmp -s "$WORK/act_run/checkpoint.journal" "$WORK/act_ref/checkpoint.journal" \
    || { echo "FAIL: resumed active journal differs from reference after kill:$n"; exit 1; }
done
[ "$completed_without_kill" = 1 ] \
  || { echo "FAIL: active sweep never ran past the last persistence op (raise the bound)"; exit 1; }

echo "== corrupt-store rejection"
"$CAML" train "$WORK/small.sp" "$WORK/ref" -o "$WORK/groups.caml" --trees 8 >/dev/null 2>&1
cp "$WORK/groups.caml" "$WORK/groups.bad.caml"
corrupt_byte "$WORK/groups.bad.caml"
status=0
"$CAML" serve "$WORK/groups.bad.caml" --socket "$WORK/reject.sock" \
  >/dev/null 2>"$WORK/reject.err" || status=$?
[ "$status" = 3 ] \
  || { echo "FAIL: serve accepted a corrupt store (exit $status, want 3)"; exit 1; }
grep -q "refusing to serve" "$WORK/reject.err" \
  || { echo "FAIL: serve rejection is not a structured error"; cat "$WORK/reject.err"; exit 1; }
status=0
"$CAML" predict "$WORK/small.sp" -m "$WORK/groups.bad.caml" -o "$WORK/nope" \
  >/dev/null 2>"$WORK/predict.err" || status=$?
[ "$status" != 0 ] || { echo "FAIL: predict loaded a corrupt store"; exit 1; }
grep -q "groups.bad.caml" "$WORK/predict.err" \
  || { echo "FAIL: predict error does not name the corrupt file"; cat "$WORK/predict.err"; exit 1; }

echo "== binary store: kill/torn-rename sweep over 'caml store --to-binary'"
# The binary writer is deterministic, so after ANY interrupted rewrite
# the target must be byte-identical to the reference: either the old
# complete bytes survived or the new (identical) bytes were published.
"$CAML" store "$WORK/groups.caml" --to-binary "$WORK/groups.bin.caml" >/dev/null
cp "$WORK/groups.bin.caml" "$WORK/groups.bin.ref"
"$CAML" store "$WORK/groups.bin.caml" --info >/dev/null \
  || { echo "FAIL: freshly converted binary store does not validate"; exit 1; }
completed_without_kill=0
for n in $(seq 1 16); do
  status=0
  CAML_FAULT="store:kill:$n" "$CAML" store "$WORK/groups.caml" \
    --to-binary "$WORK/groups.bin.caml" >/dev/null 2>&1 || status=$?
  if [ "$status" = 0 ]; then
    completed_without_kill=1
  elif [ "$status" != 137 ]; then
    echo "FAIL: store kill:$n exited with $status, expected SIGKILL (137)"; exit 1
  fi
  cmp -s "$WORK/groups.bin.caml" "$WORK/groups.bin.ref" \
    || { echo "FAIL: torn/partial binary store after kill:$n"; exit 1; }
  "$CAML" store "$WORK/groups.bin.caml" --info >/dev/null \
    || { echo "FAIL: binary store does not validate after kill:$n"; exit 1; }
  [ "$completed_without_kill" = 1 ] && break
done
[ "$completed_without_kill" = 1 ] \
  || { echo "FAIL: binary-save sweep never ran past the last persistence op"; exit 1; }
# SIGKILL legitimately strands staging temps (no destructor runs); clear
# them so the torn-rename check below only sees files IT leaks.
rm -f "$WORK"/groups.bin.caml.tmp.*
status=0
CAML_FAULT="store:torn-rename:1" "$CAML" store "$WORK/groups.caml" \
  --to-binary "$WORK/groups.bin.caml" >/dev/null 2>&1 || status=$?
[ "$status" != 0 ] || { echo "FAIL: torn rename during binary save went unnoticed"; exit 1; }
cmp -s "$WORK/groups.bin.caml" "$WORK/groups.bin.ref" \
  || { echo "FAIL: torn rename corrupted the published binary store"; exit 1; }
ls "$WORK"/groups.bin.caml.tmp.* >/dev/null 2>&1 \
  && { echo "FAIL: torn rename left a staging temp file behind"; exit 1; }
# Round trip back to text: conversion must be lossless.
"$CAML" store "$WORK/groups.bin.caml" --to-text "$WORK/groups.rt.caml" >/dev/null
cmp -s "$WORK/groups.caml" "$WORK/groups.rt.caml" \
  || { echo "FAIL: text -> binary -> text round trip is not byte-identical"; exit 1; }
# Corrupt binary store: same startup contract as the text path.
cp "$WORK/groups.bin.ref" "$WORK/groups.bin.bad"
corrupt_byte "$WORK/groups.bin.bad"
status=0
"$CAML" serve "$WORK/groups.bin.bad" --socket "$WORK/rejectbin.sock" \
  >/dev/null 2>"$WORK/rejectbin.err" || status=$?
[ "$status" = 3 ] \
  || { echo "FAIL: serve accepted a corrupt binary store (exit $status, want 3)"; exit 1; }
grep -q "refusing to serve" "$WORK/rejectbin.err" \
  || { echo "FAIL: binary rejection is not a structured error"; cat "$WORK/rejectbin.err"; exit 1; }

echo "== SIGHUP hot reload (failed reload keeps serving, good reload counted)"
SOCK="$WORK/serve.sock"
"$CAML" serve "$WORK/groups.caml" --socket "$SOCK" --jobs 2 2>"$WORK/server.err" &
SERVER_PID=$!
ready=0
for _ in $(seq 1 50); do
  if "$CAML" query --ping --socket "$SOCK" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.1
done
[ "$ready" = 1 ] || { echo "FAIL: server never answered ping"; cat "$WORK/server.err"; exit 1; }

# Corrupt the store on disk, SIGHUP: the reload must fail validation and
# the daemon must keep answering with the models it already has.
corrupt_byte "$WORK/groups.caml"
kill -HUP "$SERVER_PID"
sleep 0.5
"$CAML" query --ping --socket "$SOCK" >/dev/null 2>&1 \
  || { echo "FAIL: daemon died or stopped serving after a failed reload"; cat "$WORK/server.err"; exit 1; }
grep -q "reload of .* failed" "$WORK/server.err" \
  || { echo "FAIL: failed reload was not logged"; cat "$WORK/server.err"; exit 1; }

# Restore a valid store, SIGHUP again: the swap must be logged/counted.
"$CAML" train "$WORK/small.sp" "$WORK/ref" -o "$WORK/groups.caml" --trees 8 >/dev/null 2>&1
kill -HUP "$SERVER_PID"
sleep 0.5
grep -q "model store reloaded" "$WORK/server.err" \
  || { echo "FAIL: good reload not applied"; cat "$WORK/server.err"; exit 1; }

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: server exited nonzero"; cat "$WORK/server.err"; exit 1; }
SERVER_PID=""
awk '/reloads/ {v=$2} END {exit (v == 1) ? 0 : 1}' "$WORK/server.err" \
  || { echo "FAIL: stats do not count exactly one successful reload"; cat "$WORK/server.err"; exit 1; }

echo "== SIGHUP hot reload on the binary (mmap) backend"
cp "$WORK/groups.bin.ref" "$WORK/groups.bin.caml"
SOCKB="$WORK/servebin.sock"
"$CAML" serve "$WORK/groups.bin.caml" --socket "$SOCKB" --jobs 2 2>"$WORK/serverbin.err" &
SERVER_PID=$!
ready=0
for _ in $(seq 1 50); do
  if "$CAML" query --ping --socket "$SOCKB" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.1
done
[ "$ready" = 1 ] \
  || { echo "FAIL: binary-store server never answered ping"; cat "$WORK/serverbin.err"; exit 1; }
grep -q "opened binary model store" "$WORK/serverbin.err" \
  || { echo "FAIL: server did not open the store via the mmap path"; cat "$WORK/serverbin.err"; exit 1; }

# Corrupt the mapped store on disk, SIGHUP: the daemon must reject the
# reload (validation happens before the swap) and keep answering.
corrupt_byte "$WORK/groups.bin.caml"
kill -HUP "$SERVER_PID"
sleep 0.5
"$CAML" query --ping --socket "$SOCKB" >/dev/null 2>&1 \
  || { echo "FAIL: binary-store daemon stopped serving after a failed reload"; cat "$WORK/serverbin.err"; exit 1; }
grep -q "reload of .* failed" "$WORK/serverbin.err" \
  || { echo "FAIL: failed binary reload was not logged"; cat "$WORK/serverbin.err"; exit 1; }

# Restore the good store, SIGHUP again: the re-map must be applied.
cp "$WORK/groups.bin.ref" "$WORK/groups.bin.caml"
kill -HUP "$SERVER_PID"
sleep 0.5
grep -q "model store reloaded" "$WORK/serverbin.err" \
  || { echo "FAIL: good binary reload not applied"; cat "$WORK/serverbin.err"; exit 1; }

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: binary-store server exited nonzero"; cat "$WORK/serverbin.err"; exit 1; }
SERVER_PID=""
awk '/reloads/ {v=$2} END {exit (v == 1) ? 0 : 1}' "$WORK/serverbin.err" \
  || { echo "FAIL: binary stats do not count exactly one successful reload"; cat "$WORK/serverbin.err"; exit 1; }

echo "crash-safety check passed (kill sweeps byte-identical, corrupt stores rejected, hot reload safe on both backends)"
