#!/usr/bin/env bash
# Fixed-seed fuzz smoke of the serve protocol decoders, run under
# ASan+UBSan: builds caml_fuzz_protocol in an address-sanitized tree and
# drives it for a bounded wall-clock budget. Any decoder crash, leak,
# overflow or round-trip identity violation fails the script. Not a
# soak — a deterministic CI gate (fixed seed, ~30 s) that keeps the
# attacker-facing byte parsers honest on every merge.
#
# Usage: check_fuzz_smoke.sh [build-dir] [seconds]
set -eu
BUILD_DIR="${1:-build-asan}"
SECONDS_BUDGET="${2:-30}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$ROOT" -DCAML_SANITIZE=address >/dev/null
cmake --build "$BUILD_DIR" -j --target caml_fuzz_protocol >/dev/null

FUZZER="$BUILD_DIR/tests/fuzz/caml_fuzz_protocol"
echo "== fuzz smoke: protocol decoders, ${SECONDS_BUDGET}s, fixed seed, ASan+UBSan"
if "$FUZZER" --help 2>&1 | grep -q libFuzzer; then
  # Coverage-guided build (clang): bounded run, no corpus persistence.
  "$FUZZER" -max_total_time="$SECONDS_BUDGET" -seed=20260808 -print_final_stats=1
else
  "$FUZZER" --seconds "$SECONDS_BUDGET" --seed 20260808
fi
echo "fuzz smoke passed"
