#!/usr/bin/env bash
# Observability smoke test: runs the characterize / train / predict
# flows with --trace and --profile on the generated example library and
# checks that (a) each flow emits a well-formed Chrome-trace JSON
# containing the stage spans it is supposed to, (b) the profile summary
# table appears, (c) outputs are byte-identical with observability on
# and off, and (d) a live daemon answers `caml query --stats` with the
# unified registry exposition. Pass a different build dir as $1.
set -eu
BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j --target caml_cli characterize_library >/dev/null
CAML="$BUILD_DIR/tools/caml"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# check_trace FILE SPAN... — well-formed JSON containing every span name.
check_trace() {
  trace="$1"; shift
  [ -s "$trace" ] || { echo "FAIL: trace $trace missing or empty"; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$trace" "$@" <<'EOF' || exit 1
import json, sys
path, spans = sys.argv[1], sys.argv[2:]
with open(path) as f:
    doc = json.load(f)  # parse failure => malformed trace
events = doc["traceEvents"]
assert events, f"{path}: no trace events"
names = {e["name"] for e in events}
for e in events:
    for key in ("name", "ph", "pid", "tid", "ts", "dur"):
        assert key in e, f"{path}: event missing {key}: {e}"
missing = [s for s in spans if s not in names]
assert not missing, f"{path}: missing spans {missing}; have {sorted(names)}"
assert doc.get("otherData", {}).get("dropped_events") == 0, f"{path}: dropped events"
EOF
  else
    # No python3: at least require every span name to appear.
    for span in "$@"; do
      grep -q "\"$span\"" "$trace" \
        || { echo "FAIL: $trace lacks span $span"; exit 1; }
    done
  fi
}

echo "== generate example library"
"$BUILD_DIR"/examples/characterize_library "$WORK/lib" >/dev/null
LIB="$WORK/lib/28SOI.sp"

echo "== characterize: --trace/--profile vs plain must be byte-identical"
"$CAML" characterize "$LIB" -o "$WORK/char_plain" --jobs 2 >"$WORK/char_plain.out"
"$CAML" characterize "$LIB" -o "$WORK/char_obs" --jobs 2 \
  --trace "$WORK/char.trace.json" --profile \
  >"$WORK/char_obs.out" 2>"$WORK/char_obs.err"
# The journal names its directory-invariant content identically; compare
# the artifacts and the report.
diff -r "$WORK/char_plain" "$WORK/char_obs" >/dev/null \
  || { echo "FAIL: characterize output differs with --trace/--profile"; exit 1; }
# The report's last line names the output dir; compare everything else.
diff <(grep -v "^wrote " "$WORK/char_plain.out") \
     <(grep -v "^wrote " "$WORK/char_obs.out") >/dev/null \
  || { echo "FAIL: characterize report differs with --trace/--profile"; exit 1; }
check_trace "$WORK/char.trace.json" \
  characterize_cell generate_ca_model golden_sim simulate checkpoint_flush
grep -q "profile (wall" "$WORK/char_obs.err" \
  || { echo "FAIL: no profile summary on stderr"; cat "$WORK/char_obs.err"; exit 1; }
grep -q "generate_ca_model" "$WORK/char_obs.err" \
  || { echo "FAIL: profile summary lacks generate_ca_model"; cat "$WORK/char_obs.err"; exit 1; }

echo "== train: trace covers matrix build and forest fitting"
"$CAML" train "$LIB" "$WORK/char_plain" -o "$WORK/groups.caml" --trees 8 \
  --trace "$WORK/train.trace.json" >/dev/null 2>&1
check_trace "$WORK/train.trace.json" train_group matrix_build forest_fit

echo "== predict: trace covers matrix build, golden sim and prediction"
"$CAML" predict "$LIB" -m "$WORK/groups.caml" -o "$WORK/pred_plain" --jobs 2 >/dev/null
"$CAML" predict "$LIB" -m "$WORK/groups.caml" -o "$WORK/pred_obs" --jobs 2 \
  --trace "$WORK/predict.trace.json" >/dev/null
diff -r "$WORK/pred_plain" "$WORK/pred_obs" >/dev/null \
  || { echo "FAIL: predict output differs with --trace"; exit 1; }
check_trace "$WORK/predict.trace.json" \
  predict_ca_model matrix_build predict golden_sim

echo "== serve: caml query --stats returns the unified registry snapshot"
SOCK="$WORK/serve.sock"
"$CAML" serve "$WORK/groups.caml" --socket "$SOCK" --jobs 2 2>"$WORK/server.err" &
SERVER_PID=$!
ready=0
for _ in $(seq 1 50); do
  if "$CAML" query --ping --socket "$SOCK" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.1
done
[ "$ready" = 1 ] || { echo "FAIL: server never answered ping"; cat "$WORK/server.err"; exit 1; }

CELL=NAND2X1
awk "/^\.SUBCKT $CELL /,/^\.ENDS/" "$LIB" > "$WORK/cell.sp"
"$CAML" query "$WORK/cell.sp" --socket "$SOCK" >/dev/null

"$CAML" query --stats --socket "$SOCK" > "$WORK/stats.txt"
for needle in \
  "# TYPE caml_serve_requests_ok_total counter" \
  "# TYPE caml_serve_request_latency_us histogram" \
  "caml_serve_request_latency_us_count" \
  "caml_forest_rows_predicted_total" \
  "caml_pool_tasks_total"; do
  grep -q "$needle" "$WORK/stats.txt" \
    || { echo "FAIL: --stats output lacks '$needle'"; cat "$WORK/stats.txt"; exit 1; }
done

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: server exited nonzero"; cat "$WORK/server.err"; exit 1; }
SERVER_PID=""

echo "obs smoke test passed (traces well-formed, outputs byte-identical, --stats live)"
