#!/usr/bin/env bash
# End-to-end smoke test of the serve daemon: builds the CLI, trains a
# model store from the generated 28SOI example library, starts `caml
# serve` on a Unix socket, fires 100 concurrent `caml query` clients at
# it, and checks every served prediction byte-for-byte against `caml
# predict` output. Also exercises the SIGUSR1 stats dump and graceful
# SIGTERM shutdown, and checks that `caml predict --jobs` is
# thread-count-invariant. The same storm then runs against a daemon
# serving the mmap'ed binary store (`caml store --to-binary`) — every
# answer must match the text-backed reference byte-for-byte. Exits
# nonzero on any mismatch. Pass a different build dir as $1.
set -eu
BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j --target caml_cli characterize_library >/dev/null
CAML="$BUILD_DIR/tools/caml"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== generate + characterize example library"
"$BUILD_DIR"/examples/characterize_library "$WORK/lib" >/dev/null
"$CAML" train "$WORK/lib/28SOI.sp" "$WORK/lib" -o "$WORK/groups.caml" --trees 16 >/dev/null

echo "== reference predictions (and --jobs invariance)"
"$CAML" predict "$WORK/lib/28SOI.sp" -m "$WORK/groups.caml" -o "$WORK/ref" --jobs 1 >/dev/null
"$CAML" predict "$WORK/lib/28SOI.sp" -m "$WORK/groups.caml" -o "$WORK/par" --jobs 4 >/dev/null
diff -r "$WORK/ref" "$WORK/par" >/dev/null \
  || { echo "FAIL: caml predict output differs between --jobs 1 and --jobs 4"; exit 1; }

# One single-cell netlist for the query storm.
CELL=NAND2X1
awk "/^\.SUBCKT $CELL /,/^\.ENDS/" "$WORK/lib/28SOI.sp" > "$WORK/cell.sp"
[ -s "$WORK/cell.sp" ] || { echo "FAIL: could not extract $CELL from the library"; exit 1; }

echo "== start daemon"
SOCK="$WORK/serve.sock"
"$CAML" serve "$WORK/groups.caml" --socket "$SOCK" --jobs 2 --max-queue 128 \
  2>"$WORK/server.err" &
SERVER_PID=$!

ready=0
for _ in $(seq 1 50); do
  if "$CAML" query --ping --socket "$SOCK" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.1
done
[ "$ready" = 1 ] || { echo "FAIL: server never answered ping"; cat "$WORK/server.err"; exit 1; }

echo "== 100 concurrent queries"
pids=""
for i in $(seq 1 100); do
  "$CAML" query "$WORK/cell.sp" --socket "$SOCK" -o "$WORK/out_$i" >/dev/null 2>&1 &
  pids="$pids $!"
done
failed=0
for pid in $pids; do
  wait "$pid" || failed=$((failed + 1))
done
[ "$failed" = 0 ] || { echo "FAIL: $failed of 100 queries errored"; cat "$WORK/server.err"; exit 1; }

mismatch=0
for i in $(seq 1 100); do
  cmp -s "$WORK/ref/$CELL.camodel" "$WORK/out_$i/$CELL.camodel" || mismatch=$((mismatch + 1))
done
[ "$mismatch" = 0 ] \
  || { echo "FAIL: $mismatch of 100 served predictions differ from caml predict"; exit 1; }

echo "== stats dump (SIGUSR1) + graceful shutdown (SIGTERM)"
kill -USR1 "$SERVER_PID"
sleep 0.3
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: server exited nonzero"; cat "$WORK/server.err"; exit 1; }

grep -q "serve_stats:" "$WORK/server.err" \
  || { echo "FAIL: no serve_stats block in server log"; cat "$WORK/server.err"; exit 1; }
awk '/requests_ok/ {v=$2} END {exit (v >= 100) ? 0 : 1}' "$WORK/server.err" \
  || { echo "FAIL: stats report fewer than 100 ok requests"; cat "$WORK/server.err"; exit 1; }

echo "== binary-store daemon: convert, serve, same storm"
"$CAML" store "$WORK/groups.caml" --to-binary "$WORK/groups.bin.caml" >/dev/null
SOCKB="$WORK/servebin.sock"
"$CAML" serve "$WORK/groups.bin.caml" --socket "$SOCKB" --jobs 2 --max-queue 128 \
  2>"$WORK/serverbin.err" &
SERVER_PID=$!

ready=0
for _ in $(seq 1 50); do
  if "$CAML" query --ping --socket "$SOCKB" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.1
done
[ "$ready" = 1 ] \
  || { echo "FAIL: binary-store server never answered ping"; cat "$WORK/serverbin.err"; exit 1; }
grep -q "opened binary model store" "$WORK/serverbin.err" \
  || { echo "FAIL: daemon did not open the store via the mmap path"; cat "$WORK/serverbin.err"; exit 1; }

pids=""
for i in $(seq 1 100); do
  "$CAML" query "$WORK/cell.sp" --socket "$SOCKB" -o "$WORK/bin_$i" >/dev/null 2>&1 &
  pids="$pids $!"
done
failed=0
for pid in $pids; do
  wait "$pid" || failed=$((failed + 1))
done
[ "$failed" = 0 ] \
  || { echo "FAIL: $failed of 100 binary-store queries errored"; cat "$WORK/serverbin.err"; exit 1; }

mismatch=0
for i in $(seq 1 100); do
  cmp -s "$WORK/ref/$CELL.camodel" "$WORK/bin_$i/$CELL.camodel" || mismatch=$((mismatch + 1))
done
[ "$mismatch" = 0 ] \
  || { echo "FAIL: $mismatch of 100 binary-store answers differ from the text reference"; exit 1; }

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: binary-store server exited nonzero"; cat "$WORK/serverbin.err"; exit 1; }
SERVER_PID=""
awk '/requests_ok/ {v=$2} END {exit (v >= 100) ? 0 : 1}' "$WORK/serverbin.err" \
  || { echo "FAIL: binary-store stats report fewer than 100 ok requests"; cat "$WORK/serverbin.err"; exit 1; }

echo "serve smoke test passed (100/100 byte-identical on both backends)"
