#!/usr/bin/env bash
# Vets the concurrent paths (ThreadPool, parallel characterization,
# parallel forest training, the active-learning scoring/retraining
# loop, and the serve reactor + compute plane:
# reactor thread, worker batches, wakeup pipe, stats, hot reload, the
# sojourn-shed admission policy and store-fault recovery) under
# ThreadSanitizer. Fault injection is compiled in so the NetFault
# regression tests (EINTR/EAGAIN storms, trickles, injected resets) run
# instead of skipping. Intended for local pre-merge checks and CI; pass
# a different build dir as $1.
set -eu
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." -DCAML_SANITIZE=thread -DCAML_FAULT_INJECTION=ON
cmake --build "$BUILD_DIR" -j --target caml_tests
"$BUILD_DIR"/tests/caml_tests --gtest_filter='ThreadPool*:Parallel*:ResolveJobs*:RandomForest*:Characterize*:Obs*:Serve*:NetFault*:BinaryStore*:Active*'
echo "TSan concurrency check passed"
