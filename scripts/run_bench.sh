#!/usr/bin/env bash
# Performance snapshot: builds the Release benchmarks and runs
#   - bench_simulator      (defect-sweep kernel: frozen pre-PR baseline
#                           vs. zero-allocation overlay kernel),
#   - bench_parallel_scaling (characterize_library / forest fit),
#   - bench_serve_throughput (daemon: roundtrip worker sweep plus
#                             pipelined cross-connection coalescing),
#   - bench_store_load       (model store: text parse vs. binary mmap
#                             open, serve cold start per backend),
#   - bench_active_budget     (active-learning routing: accuracy vs.
#                             simulation budget against the structural
#                             baseline),
# then distills the numbers that matter — cells/s, defect-sims/s,
# baseline-vs-kernel speedup, p50/p99 latencies, tail ratios, realized
# batch sizes — into BENCH_PR6.json, the store load/cold-start
# numbers into BENCH_PR7.json, and the accuracy-vs-budget curve into
# BENCH_PR9.json.
#
# Every workload is seeded deterministically inside the benches
# (cell builder Rng(7), forest dataset Rng(2024), stimulus enumeration
# is exhaustive), so runs are comparable across checkouts.
#
# Usage: scripts/run_bench.sh [--quick] [BUILD_DIR]
#   --quick   seconds-scale smoke of the same pipeline (used by the
#             cmake `verify` target); still emits all three JSON reports.
# The JSON lands in BUILD_DIR/BENCH_PR6.json, BUILD_DIR/BENCH_PR7.json
# and BUILD_DIR/BENCH_PR9.json.
set -eu

QUICK=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target \
  bench_simulator bench_parallel_scaling bench_serve_throughput bench_store_load \
  bench_active_budget >/dev/null

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

if [ "$QUICK" -eq 1 ]; then
  SIM_ARGS="--benchmark_filter=defect_sweep --benchmark_min_time=0.05s"
  SCALING_ARGS="--quick"
  SERVE_ARGS="--quick"
  STORE_ARGS="--quick"
  ACTIVE_ARGS="--quick"
else
  SIM_ARGS="--benchmark_min_time=1s"
  SCALING_ARGS=""
  SERVE_ARGS=""
  STORE_ARGS=""
  ACTIVE_ARGS=""
fi

echo "== bench_simulator =="
# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_simulator" $SIM_ARGS \
  --benchmark_format=console --benchmark_out_format=json \
  --benchmark_out="$WORK/simulator.json" | tee "$WORK/simulator.txt"

echo
echo "== bench_parallel_scaling =="
# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_parallel_scaling" $SCALING_ARGS | tee "$WORK/scaling.txt"

echo
echo "== bench_serve_throughput =="
# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_serve_throughput" $SERVE_ARGS | tee "$WORK/serve.txt"

echo
echo "== bench_store_load =="
# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_store_load" $STORE_ARGS | tee "$WORK/store.txt"

echo
echo "== bench_active_budget =="
# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_active_budget" $ACTIVE_ARGS | tee "$WORK/active.txt"

python3 - "$WORK" "$BUILD_DIR/BENCH_PR6.json" "$QUICK" <<'EOF'
import json, re, sys

work, out_path, quick = sys.argv[1], sys.argv[2], sys.argv[3] == "1"

report = {"quick_mode": quick, "benchmarks": {}}

# --- bench_simulator: google-benchmark JSON counters ------------------
with open(f"{work}/simulator.json") as f:
    sim = json.load(f)
report["context"] = {
    "host_cpus": sim["context"]["num_cpus"],
    "build_type": sim["context"].get("library_build_type", "unknown"),
}
sweeps = {}
for b in sim["benchmarks"]:
    name = b["name"]
    if "defect_sweep" not in name:
        continue
    sweeps[name] = {
        "ns_per_defect": b["real_time"],
        "defect_sims_per_s": b.get("defect_sims_per_s"),
        "defect_p50_us": b.get("defect_p50_us"),
        "defect_p99_us": b.get("defect_p99_us"),
        "stimuli": b.get("stimuli"),
        "defects": b.get("defects"),
    }
report["benchmarks"]["defect_sweep"] = sweeps

# Kernel speedup per cell: frozen pre-PR baseline vs. overlay kernel.
speedups = {}
for name, row in sweeps.items():
    m = re.match(r"defect_sweep/(.*)", name)
    if not m:
        continue
    legacy = sweeps.get(f"defect_sweep_copy/{m.group(1)}")
    if legacy and row["defect_sims_per_s"] and legacy["defect_sims_per_s"]:
        speedups[m.group(1)] = round(
            row["defect_sims_per_s"] / legacy["defect_sims_per_s"], 2)
report["benchmarks"]["kernel_speedup_vs_prepr"] = speedups

# --- bench_parallel_scaling: text tables ------------------------------
def parse_rows(text, header_key):
    """Rows of the TextTable that follows the line containing header_key."""
    lines = text.splitlines()
    rows = []
    grab = False
    for ln in lines:
        if header_key in ln:
            grab = True
            continue
        if grab and ln.startswith("|") and not any(
                key in ln for key in ("jobs", "workers", "window")):
            cells = [c.strip() for c in ln.strip("|").split("|")]
            rows.append(cells)
        elif grab and rows and not ln.startswith(("|", "+")):
            break
    return rows

scaling = open(f"{work}/scaling.txt").read()
m = re.search(r"characterize_library: (\d+) cells", scaling)
num_cells = int(m.group(1)) if m else 0
char_rows = parse_rows(scaling, "characterize_library")
char = {}
for cells in char_rows:
    jobs, seconds, p50, p99, speedup = cells[:5]
    char[f"jobs_{jobs}"] = {
        "seconds": float(seconds),
        "cells_per_s": round(num_cells / float(seconds), 2) if float(seconds) else None,
        "cell_p50_ms": float(p50),
        "cell_p99_ms": float(p99),
        "speedup": float(speedup),
    }
report["benchmarks"]["characterize"] = char
report["benchmarks"]["characterize"]["models_identical"] = \
    "models identical across thread counts: yes" in scaling

forest_rows = parse_rows(scaling, "RandomForest::fit")
forest = {}
for cells in forest_rows:
    jobs, seconds, p50, p99, speedup = cells[:5]
    forest[f"jobs_{jobs}"] = {
        "seconds": float(seconds),
        "tree_p50_ms": float(p50),
        "tree_p99_ms": float(p99),
        "speedup": float(speedup),
    }
report["benchmarks"]["forest_fit"] = forest
report["benchmarks"]["forest_fit"]["forests_identical"] = \
    "forests identical across thread counts: yes" in scaling

# --- bench_serve_throughput -------------------------------------------
serve = open(f"{work}/serve.txt").read()
srv = {"identical": "predictions identical across configurations: yes" in serve}
roundtrip = {}
for cells in parse_rows(serve, "mode roundtrip"):
    workers, requests, seconds, rps, p50, p99, tail, speedup = cells[:8]
    roundtrip[f"workers_{workers}"] = {
        "requests_per_s": float(rps),
        "p50_ms": float(p50),
        "p99_ms": float(p99),
        "p99_over_p50": float(tail),
    }
srv["roundtrip"] = roundtrip
pipelined = {}
for cells in parse_rows(serve, "mode pipelined"):
    window, requests, seconds, rps, p50, p99, tail, batch_mean = cells[:8]
    pipelined[f"window_{window}"] = {
        "requests_per_s": float(rps),
        "p50_ms": float(p50),
        "p99_ms": float(p99),
        "p99_over_p50": float(tail),
        "batch_mean": float(batch_mean),
    }
srv["pipelined"] = pipelined
report["benchmarks"]["serve"] = srv

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"\nwrote {out_path}")

# Sanity gates: the kernel claim of this PR and both determinism checks.
if not quick:
    for cell, ratio in report["benchmarks"]["kernel_speedup_vs_prepr"].items():
        assert ratio >= 2.0, f"kernel speedup regressed below 2x on {cell}: {ratio}"
assert report["benchmarks"]["characterize"]["models_identical"]
assert report["benchmarks"]["forest_fit"]["forests_identical"]
assert report["benchmarks"]["serve"]["identical"], \
    "served predictions must be byte-identical across every configuration"
# Tail-latency gate for the event-loop serve plane: under roundtrip load
# the p99/p50 ratio must stay single-digit (the pinned-worker design sat
# near 200x at workers=1 because queued connections served their whole
# keep-alive burst before the next connection was picked up).
for row in report["benchmarks"]["serve"]["roundtrip"].values():
    assert row["p99_over_p50"] < 10.0, f"serve tail ratio regressed: {row}"
EOF

python3 - "$WORK" "$BUILD_DIR/BENCH_PR7.json" "$QUICK" <<'EOF'
import json, re, sys

work, out_path, quick = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
store = open(f"{work}/store.txt").read()

# --- bench_store_load: RESULT key=value lines -------------------------
def kv(line):
    return {k: v for k, v in re.findall(r"(\w+)=(\S+)", line)}

report = {"quick_mode": quick, "load": {}, "cold_start_us": {},
          "identical": "predictions identical across load paths: yes" in store}
for line in store.splitlines():
    if line.startswith("RESULT load "):
        row = kv(line)
        report["load"][f"scale_{row['scale']}x"] = {
            "nodes_per_tree": int(row["nodes_per_tree"]),
            "text_bytes": int(row["text_bytes"]),
            "bin_bytes": int(row["bin_bytes"]),
            "text_load_us": float(row["text_load_us"]),
            "bin_open_full_us": float(row["bin_open_full_us"]),
            "bin_open_map_us": float(row["bin_open_map_us"]),
            "first_answer_us": float(row["first_answer_us"]),
        }
    elif line.startswith("RESULT cold_start "):
        row = kv(line)
        report["cold_start_us"][row["backend"]] = float(row["us"])

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")

# Gates for the binary store's design claims.
assert report["identical"], \
    "mapped and text-loaded stores must predict byte-identically"
rows = report["load"]
assert "scale_1x" in rows and len(rows) >= 2, f"expected a scale sweep, got {list(rows)}"
largest = max(rows.values(), key=lambda r: r["nodes_per_tree"])
base = rows["scale_1x"]
growth = largest["nodes_per_tree"] / base["nodes_per_tree"]
assert growth >= 10, f"largest store must be >=10x the base forest, got {growth:.0f}x"
# O(header+index) open: map-only open time must not track forest size.
# The forest grew >=10x; allow 5x of slack for page-fault noise.
ratio = largest["bin_open_map_us"] / max(base["bin_open_map_us"], 1.0)
assert ratio < 5.0, \
    f"map-only open scaled with forest size ({ratio:.1f}x for {growth:.0f}x nodes)"
# And the mapped open must beat the text parse outright at scale.
assert largest["bin_open_map_us"] * 10 < largest["text_load_us"], \
    "binary map-only open should be >=10x faster than text parse at scale"
EOF

python3 - "$WORK" "$BUILD_DIR/BENCH_PR9.json" "$QUICK" <<'EOF'
import json, re, sys

work, out_path, quick = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
active = open(f"{work}/active.txt").read()

# --- bench_active_budget: RESULT active_budget key=value lines --------
def kv(line):
    return {k: v for k, v in re.findall(r"(\w+)=(\S+)", line)}

report = {"quick_mode": quick, "structural": None, "active": {}}
for line in active.splitlines():
    if not line.startswith("RESULT active_budget "):
        continue
    row = kv(line)
    point = {
        "budget_s": float(row["budget_s"]),
        "spent_s": float(row["spent_s"]),
        "acquired": int(row["acquired"]),
        "targets": int(row["targets"]),
        "mean_acc": float(row["mean_acc"]),
        "acc98": float(row["acc98"]),
    }
    if row["policy"] == "structural":
        report["structural"] = point
    else:
        report["active"][f"budget_{row['budget_frac']}"] = point

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")

# Gates for the active-learning design claims.
assert report["structural"], "structural baseline line missing"
assert len(report["active"]) >= 3, \
    f"expected >=3 budget points, got {list(report['active'])}"
full = report["active"]["budget_1.00"]
base = report["structural"]
# At equal spend the uncertainty-driven policy must match the
# simulate-every-new-structure baseline.
assert full["mean_acc"] + 0.002 >= base["mean_acc"], \
    f"active@1.0S lost accuracy: {full['mean_acc']} vs {base['mean_acc']}"
# The budget is a hard ceiling at every point of the curve.
for name, point in report["active"].items():
    assert point["spent_s"] <= point["budget_s"] + 1e-6, \
        f"{name} overspent: {point}"
# The curve is monotone in acquisitions: more budget never buys fewer
# simulations.
acquired = [p["acquired"] for _, p in sorted(report["active"].items())]
assert acquired == sorted(acquired), f"acquisitions not monotone: {acquired}"
EOF
