#!/usr/bin/env bash
# Regenerates every paper artefact: runs all bench binaries and records
# their reports under results/. Profile via CAML_BENCH_PROFILE
# (smoke | fast | full; default fast).
set -u
BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results}"
mkdir -p "$OUT_DIR"

status=0
for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "=== $name ==="
  if ! "$bench" 2>&1 | tee "$OUT_DIR/$name.txt"; then
    echo "!!! $name failed" >&2
    status=1
  fi
done
echo "reports written to $OUT_DIR/"
exit $status
