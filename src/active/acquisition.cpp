#include "active/acquisition.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caml::active {

double structural_prior(StructureMatch match) {
  switch (match) {
    case StructureMatch::kIdentical: return 1.0;
    case StructureMatch::kEquivalent: return 0.6;
    case StructureMatch::kNew: return 0.0;
  }
  return 0.0;
}

double blended_confidence(const std::vector<double>& proba, const std::vector<double>& margin) {
  CAML_ASSERT(!proba.empty());
  CAML_ASSERT(proba.size() == margin.size());
  double sum = 0.0;
  for (std::size_t r = 0; r < proba.size(); ++r) {
    sum += 0.5 * std::abs(2.0 * proba[r] - 1.0) + 0.5 * margin[r];
  }
  return sum / static_cast<double>(proba.size());
}

void sort_into_acquisition_order(std::vector<CandidateScore>& scores) {
  std::sort(scores.begin(), scores.end(), [](const CandidateScore& a, const CandidateScore& b) {
    if (a.confidence != b.confidence) return a.confidence < b.confidence;
    return a.cell_index < b.cell_index;
  });
}

}  // namespace caml::active
