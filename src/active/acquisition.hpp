#pragma once

#include <cstddef>
#include <vector>

#include "flow/structural.hpp"

namespace caml::active {

/// Per-candidate acquisition score of one round. `confidence` is the
/// blended certainty in [0, 1] — 0 means the model knows nothing about
/// the cell (simulate it first), 1 means the ensemble is unanimous on
/// every row (simulating it teaches nothing new).
struct CandidateScore {
  std::size_t cell_index = 0;
  double confidence = 0.0;
};

/// Structural-similarity prior of the hybrid policy: how much the
/// structure index already vouches for a cell before the forest has
/// seen a single row of it. Identical structures are fully covered by
/// construction (the paper's sweet spot), equivalent ones mostly, new
/// ones not at all.
double structural_prior(StructureMatch match);

/// Blended per-cell confidence: the mean over the cell's CA-matrix rows
/// of 0.5 * |2p - 1| (soft-vote margin from predict_proba_batch) +
/// 0.5 * vote-disagreement margin (predict_margin_batch). Rows
/// accumulate in matrix order, so the value is a deterministic function
/// of the two input vectors. Both vectors must have equal length > 0.
double blended_confidence(const std::vector<double>& proba, const std::vector<double>& margin);

/// Sorts scores into acquisition order: ascending confidence, ties
/// broken by ascending cell index — a total order, so the result is
/// identical no matter how the scores were produced or batched.
void sort_into_acquisition_order(std::vector<CandidateScore>& scores);

}  // namespace caml::active
