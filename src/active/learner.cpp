#include "active/learner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>

#include "active/acquisition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace caml::active {

namespace {

/// Acquisition-loop observability: round/acquisition/prediction
/// volumes, the confidence distribution the selector saw, and the
/// budget position. Like every obs hook in this library, recording
/// never influences flow outputs.
struct ActiveMetrics {
  obs::Counter& rounds;
  obs::Counter& acquired;
  obs::Counter& predicted;
  obs::Counter& forced;
  obs::Counter& degraded;
  obs::Counter& replayed;
  obs::Histogram& confidence_milli;
  obs::Histogram& round_acquired;
  obs::Gauge& budget_spent_milli;

  static ActiveMetrics& get() {
    obs::Registry& reg = obs::Registry::global();
    static ActiveMetrics m{
        reg.counter("caml_active_rounds_total", "Acquisition rounds run (live or replayed)"),
        reg.counter("caml_active_acquired_total",
                    "Cells acquired (simulated) by the active loop"),
        reg.counter("caml_active_predicted_total",
                    "Cells predicted by the final forests after the loop"),
        reg.counter("caml_active_forced_conventional_total",
                    "Cells simulated outside the budget for lack of a group model"),
        reg.counter("caml_active_degraded_total",
                    "Cells that fell back after an ML prediction failure"),
        reg.counter("caml_active_replayed_total",
                    "Acquisitions replayed from a checkpoint journal"),
        reg.histogram("caml_active_confidence_milli",
                      "Blended candidate confidence x1000 at scoring time"),
        reg.histogram("caml_active_round_acquired", "Cells acquired per round"),
        reg.gauge("caml_active_budget_spent_milli",
                  "Cumulative acquisition budget spent x1000 (seconds or count)"),
    };
    return m;
  }
};

std::string acq_unit(std::size_t round, std::size_t cell_index) {
  std::ostringstream os;
  os << "acq:" << std::setw(6) << std::setfill('0') << round << ':' << std::setw(6)
     << std::setfill('0') << cell_index;
  return os.str();
}

std::string round_unit(std::size_t round) {
  std::ostringstream os;
  os << "round:" << std::setw(6) << std::setfill('0') << round;
  return os.str();
}

std::optional<double> parse_real(const std::string& t) {
  char* end = nullptr;
  const double value = std::strtod(t.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == t.c_str()) return std::nullopt;
  return value;
}

/// Journal payload of one acquisition: structural match at acquisition
/// time plus the score and cost that selected it. Doubles are hexfloat
/// so a replayed run reconstructs the recorded values bit-exactly.
struct AcqRecord {
  StructureMatch match = StructureMatch::kNew;
  double confidence = 0.0;
  double cost = 0.0;
};

std::string encode_acq(const AcqRecord& rec) {
  std::ostringstream os;
  os << static_cast<unsigned>(rec.match) << ' ' << std::hexfloat << rec.confidence << ' '
     << rec.cost;
  return os.str();
}

std::optional<AcqRecord> decode_acq(const std::string& text) {
  const std::vector<std::string> tok = split(text);
  if (tok.size() != 3) return std::nullopt;
  const auto match = try_parse_uint64(tok[0]);
  const auto confidence = parse_real(tok[1]);
  const auto cost = parse_real(tok[2]);
  if (!match || *match > static_cast<unsigned>(StructureMatch::kNew) || !confidence || !cost) {
    return std::nullopt;
  }
  AcqRecord rec;
  rec.match = static_cast<StructureMatch>(*match);
  rec.confidence = *confidence;
  rec.cost = *cost;
  return rec;
}

/// Round marker payload: the round's aggregate stats. Its presence in
/// the journal certifies the round's acquisitions were all recorded
/// (units flush sorted, so a marker never lands before its members).
std::string encode_round(const RoundStats& stats) {
  std::ostringstream os;
  os << stats.acquired << ' ' << std::hexfloat << stats.spent_after << ' '
     << stats.min_confidence << ' ' << stats.mean_confidence;
  return os.str();
}

std::optional<RoundStats> decode_round(const std::string& text) {
  const std::vector<std::string> tok = split(text);
  if (tok.size() != 4) return std::nullopt;
  const auto acquired = try_parse_uint64(tok[0]);
  const auto spent = parse_real(tok[1]);
  const auto min_conf = parse_real(tok[2]);
  const auto mean_conf = parse_real(tok[3]);
  if (!acquired || !spent || !min_conf || !mean_conf) return std::nullopt;
  RoundStats stats;
  stats.acquired = static_cast<std::size_t>(*acquired);
  stats.spent_after = *spent;
  stats.min_confidence = *min_conf;
  stats.mean_confidence = *mean_conf;
  return stats;
}

}  // namespace

const char* budget_unit_name(BudgetUnit unit) {
  switch (unit) {
    case BudgetUnit::kSeconds: return "seconds";
    case BudgetUnit::kCount: return "count";
  }
  return "?";
}

std::optional<BudgetUnit> parse_budget_unit(std::string_view name) {
  if (name == "seconds") return BudgetUnit::kSeconds;
  if (name == "count") return BudgetUnit::kCount;
  return std::nullopt;
}

ActiveReport run_active_flow(const std::vector<CharacterizedCell>& training,
                             const std::vector<CharacterizedCell>& targets,
                             const ActiveOptions& options) {
  using Clock = std::chrono::steady_clock;
  const HybridOptions& base = options.base;
  if (base.routing == RoutingPolicy::kStructural) {
    throw Error(
        "run_active_flow implements the active and hybrid policies; route 'structural' "
        "through run_hybrid_flow");
  }
  const bool use_prior = base.routing == RoutingPolicy::kHybrid;

  CAML_TRACE_SPAN_ITEMS("active_flow", targets.size());
  ActiveMetrics& metrics = ActiveMetrics::get();

  ActiveReport report;
  report.policy = base.routing;
  report.budget = options.sim_budget;

  // --- mutable loop state -------------------------------------------------
  StructureIndex index(training);
  std::map<GroupKey, std::vector<const CharacterizedCell*>> pool;
  for (const auto& [key, members] : group_cells(training)) {
    for (std::size_t m : members) pool[key].push_back(&training[m]);
  }
  std::map<GroupKey, RandomForest> forests;
  // Groups whose pool grew since their forest was last (re)fitted.
  std::map<GroupKey, bool> dirty;
  for (const auto& [key, cells] : pool) dirty[key] = true;
  std::map<GroupKey, double> training_seconds;

  std::vector<char> acquired(targets.size(), 0);
  // One prepared (unlabeled matrix + model skeleton) per target, built
  // on first use and reused across every scoring round and the final
  // prediction.
  std::vector<std::optional<PreparedPrediction>> prepared(targets.size());
  const auto prepared_for = [&](std::size_t i) -> PreparedPrediction& {
    if (!prepared[i]) {
      const CharacterizedCell& cell = targets[i];
      std::vector<Defect> defects;
      defects.reserve(cell.model.defects.size());
      for (const CaDefectEntry& e : cell.model.defects) defects.push_back(e.defect);
      prepared[i].emplace(prepare_prediction(cell.source.cell, cell.canonical,
                                             cell.model.policy, cell.sim, base.ml.matrix,
                                             std::move(defects)));
    }
    return *prepared[i];
  };

  // Acquisition cost per target under the configured budget unit. A
  // pure function of the cell, so live and resumed runs agree exactly.
  std::vector<double> cost(targets.size(), 1.0);
  if (options.budget_unit == BudgetUnit::kSeconds) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      cost[i] = base.cost.conventional_seconds(targets[i]);
    }
  }

  std::optional<CheckpointJournal> journal;
  if (base.checkpoint.enabled()) {
    journal.emplace(base.checkpoint.dir, base.checkpoint.every);
    if (base.checkpoint.resume) journal->load();
  }

  // Trains every dirty group on its current pool: full fit for new
  // groups (or with full_refit), warm-start growth of trees_per_round
  // trees otherwise. Runs at each round start and once after the loop,
  // so live and resumed runs walk the same (dataset, increment)
  // sequence per group — the incremental forests are byte-identical.
  const auto retrain = [&] {
    for (auto& [key, is_dirty] : dirty) {
      if (!is_dirty) continue;
      is_dirty = false;
      const auto pit = pool.find(key);
      if (pit == pool.end() || pit->second.empty()) continue;
      const auto t0 = Clock::now();
      try {
        const Dataset data = build_training_set(pit->second, base.ml);
        const auto fit = forests.find(key);
        if (fit == forests.end()) {
          RandomForest forest(base.ml.forest);
          forest.fit(data);
          forests.emplace(key, std::move(forest));
        } else if (options.full_refit) {
          fit->second = RandomForest(base.ml.forest);
          fit->second.fit(data);
        } else {
          fit->second.fit_more(data, options.trees_per_round);
        }
        training_seconds[key] +=
            std::chrono::duration<double>(Clock::now() - t0).count();
      } catch (const Error& e) {
        // A group that cannot train serves conventionally until its
        // pool changes again — degradation, never a fatal error.
        log_warn() << "active: training failed for group (" << key.num_inputs << " in, "
                   << key.num_transistors << " T): " << e.what()
                   << "; group serves conventionally";
        forests.erase(key);
      }
    }
  };

  // Applies one acquisition: the cell is simulated (ground truth — only
  // its cost is accounted), joins the pool and the structure index, and
  // its conventional outcome is recorded.
  std::map<std::size_t, HybridCellOutcome> acquired_outcomes;
  const auto acquire = [&](std::size_t i, StructureMatch match) {
    const CharacterizedCell& cell = targets[i];
    const GroupKey key{cell.num_inputs(), cell.num_transistors()};
    HybridCellOutcome outcome;
    outcome.cell_index = i;
    outcome.match = match;
    outcome.routed_to_ml = false;
    outcome.conventional_seconds = base.cost.conventional_seconds(cell);
    acquired_outcomes.emplace(i, outcome);
    acquired[i] = 1;
    pool[key].push_back(&cell);
    dirty[key] = true;
    index.add(cell.canonical);
  };

  double spent = 0.0;
  const std::size_t round_cap =
      options.acquisitions_per_round > 0
          ? options.acquisitions_per_round
          : std::max<std::size_t>(
                1, (targets.size() + std::max<std::size_t>(options.max_rounds, 1) - 1) /
                       std::max<std::size_t>(options.max_rounds, 1));

  // --- acquisition rounds -------------------------------------------------
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    retrain();

    // Replay: a journaled round marker certifies the round's
    // acquisitions are all recorded — apply them without rescoring.
    // Selection is a pure function of (forest state, acquired set,
    // remaining budget), so rounds past the journal's horizon recompute
    // exactly what the killed run would have chosen.
    if (journal && base.checkpoint.resume && journal->completed(round_unit(round))) {
      const std::optional<RoundStats> stats = decode_round(journal->payload(round_unit(round)));
      std::vector<std::pair<std::size_t, AcqRecord>> units;
      bool ok = stats.has_value();
      for (std::size_t i = 0; ok && i < targets.size(); ++i) {
        if (acquired[i] || !journal->completed(acq_unit(round, i))) continue;
        const std::optional<AcqRecord> rec = decode_acq(journal->payload(acq_unit(round, i)));
        if (!rec) {
          ok = false;
          break;
        }
        units.emplace_back(i, *rec);
      }
      if (ok) {
        for (const auto& [i, rec] : units) {
          acquire(i, rec.match);
          spent += cost[i];
        }
        RoundStats replayed = *stats;
        replayed.round = round;
        replayed.replayed = true;
        report.rounds.push_back(replayed);
        metrics.rounds.add();
        metrics.replayed.add(units.size());
        metrics.round_acquired.record(units.size());
        if (units.empty()) break;  // the journaled run stopped here
        continue;
      }
      log_warn() << "active: discarding unreadable journal round " << round
                 << "; re-deriving it (selection is deterministic)";
    }

    // Score every unacquired target. Scoring only reads shared state;
    // parallel_map keeps input order, each cell's rows classify in one
    // batch with tree-order accumulation — confidences are identical
    // for any jobs value.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (!acquired[i]) candidates.push_back(i);
    }
    if (candidates.empty()) break;
    parallel_for(candidates.size(), options.jobs,
                 [&](std::size_t k) { prepared_for(candidates[k]); });
    std::vector<CandidateScore> scores =
        parallel_map(candidates, options.jobs, [&](const std::size_t& i) {
          const CharacterizedCell& cell = targets[i];
          const GroupKey key{cell.num_inputs(), cell.num_transistors()};
          double confidence = 0.0;
          const auto fit = forests.find(key);
          if (fit != forests.end()) {
            const CaMatrix& matrix = prepared[i]->matrix;
            if (matrix.num_rows() == 0) {
              confidence = 1.0;  // nothing to predict; never worth a simulation
            } else {
              const std::vector<double> proba = fit->second.predict_proba_batch(
                  matrix.features().data(), matrix.num_rows(), matrix.num_features());
              const std::vector<double> margin = fit->second.predict_margin_batch(
                  matrix.features().data(), matrix.num_rows(), matrix.num_features());
              confidence = blended_confidence(proba, margin);
            }
          }
          if (use_prior) {
            confidence = (1.0 - options.structural_prior_weight) * confidence +
                         options.structural_prior_weight *
                             structural_prior(index.classify(cell.canonical));
          }
          return CandidateScore{i, confidence};
        });

    RoundStats stats;
    stats.round = round;
    stats.min_confidence = std::numeric_limits<double>::infinity();
    double conf_sum = 0.0;
    for (const CandidateScore& s : scores) {
      stats.min_confidence = std::min(stats.min_confidence, s.confidence);
      conf_sum += s.confidence;
      metrics.confidence_milli.record(
          static_cast<std::uint64_t>(std::lround(std::clamp(s.confidence, 0.0, 1.0) * 1000.0)));
    }
    stats.mean_confidence = conf_sum / static_cast<double>(scores.size());

    // Greedy selection under the remaining budget: walk candidates from
    // least to most confident, take what fits (skipping unaffordable
    // cells keeps cheaper uncertain ones reachable), stop at the round
    // cap or the convergence margin.
    sort_into_acquisition_order(scores);
    std::map<std::size_t, double> picked;  // cell index -> confidence
    double round_spent = 0.0;
    for (const CandidateScore& s : scores) {
      if (picked.size() >= round_cap) break;
      if (s.confidence >= options.converge_margin) break;
      if (options.sim_budget > 0 && spent + round_spent + cost[s.cell_index] > options.sim_budget) {
        continue;
      }
      picked.emplace(s.cell_index, s.confidence);
      round_spent += cost[s.cell_index];
    }

    stats.acquired = picked.size();
    stats.spent_after = spent + round_spent;
    // Acquisitions apply (and journal) in ascending cell index — the
    // same order replay applies them — so pool growth order, and with
    // it every retrained forest, is identical across live, parallel and
    // resumed runs.
    for (const auto& [i, confidence] : picked) {
      const StructureMatch match = index.classify(targets[i].canonical);
      acquire(i, match);
      spent += cost[i];
      metrics.acquired.add();
      if (journal) journal->record(acq_unit(round, i), encode_acq({match, confidence, cost[i]}));
    }
    if (journal && !picked.empty()) journal->record(round_unit(round), encode_round(stats));
    report.rounds.push_back(stats);
    metrics.rounds.add();
    metrics.round_acquired.record(picked.size());
    metrics.budget_spent_milli.set(static_cast<std::int64_t>(std::llround(spent * 1000.0)));
    if (picked.empty()) break;  // converged, or nothing affordable remains
  }
  retrain();  // learn the final round's acquisitions

  // --- final pass: predict everything still unacquired --------------------
  std::map<GroupKey, std::size_t> served;
  std::vector<char> predicted_live(targets.size(), 0);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (acquired[i]) {
      report.hybrid.outcomes.push_back(acquired_outcomes.at(i));
      continue;
    }
    const CharacterizedCell& cell = targets[i];
    const GroupKey key{cell.num_inputs(), cell.num_transistors()};
    HybridCellOutcome outcome;
    outcome.cell_index = i;
    outcome.match = index.classify(cell.canonical);
    outcome.conventional_seconds = base.cost.conventional_seconds(cell);
    const auto fit = forests.find(key);
    if (fit == forests.end()) {
      // No model ever reached this group: simulate conventionally, like
      // the structural baseline does for unmatched cells. Accounted in
      // the report, not against the acquisition budget.
      ++report.forced_conventional;
      metrics.forced.add();
    } else {
      try {
        const auto t0 = Clock::now();
        PreparedPrediction& prep = prepared_for(i);
        const CaMatrix& matrix = prep.matrix;
        const std::vector<std::uint8_t> labels =
            matrix.num_rows() == 0
                ? std::vector<std::uint8_t>{}
                : fit->second.predict_batch(matrix.features().data(), matrix.num_rows(),
                                            matrix.num_features());
        const CaModel predicted = finish_prediction(std::move(prep), labels.data());
        prepared[i].reset();  // consumed
        outcome.ml_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
        outcome.accuracy = ca_model_agreement(cell.model, predicted);
        outcome.routed_to_ml = true;
        ++served[key];
        predicted_live[i] = 1;
        metrics.predicted.add();
      } catch (const Error& e) {
        log_warn() << "active: prediction failed for target " << i << " ("
                   << cell.source.cell.name() << "): " << e.what()
                   << "; falling back to conventional generation";
        outcome.routed_to_ml = false;
        outcome.degraded = true;
        outcome.ml_seconds = 0.0;
        outcome.accuracy = 1.0;
        metrics.degraded.add();
      }
    }
    report.hybrid.outcomes.push_back(outcome);
  }
  if (journal) journal->flush();

  // Amortize each group's training time over the cells it predicted,
  // mirroring the structural flow's accounting.
  for (HybridCellOutcome& o : report.hybrid.outcomes) {
    if (!o.routed_to_ml || !predicted_live[o.cell_index]) continue;
    const GroupKey key{targets[o.cell_index].num_inputs(),
                       targets[o.cell_index].num_transistors()};
    o.ml_seconds += training_seconds[key] / static_cast<double>(served[key]);
  }

  report.spent = spent;
  report.acquired_mask.assign(acquired.begin(), acquired.end());
  report.acquired = static_cast<std::size_t>(
      std::count(acquired.begin(), acquired.end(), static_cast<char>(1)));
  report.models = GroupModelStore::assemble(std::move(forests), base.ml.matrix);
  return report;
}

}  // namespace caml::active
