#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "flow/hybrid.hpp"
#include "flow/model_store.hpp"

namespace caml::active {

/// What a unit of --sim-budget means.
enum class BudgetUnit {
  kSeconds,  ///< modeled SPICE seconds via CostModel (default)
  kCount,    ///< number of simulated cells
};

const char* budget_unit_name(BudgetUnit unit);
std::optional<BudgetUnit> parse_budget_unit(std::string_view name);

/// Knobs of the budgeted acquisition loop. `base.routing` selects the
/// score: kActive = pure forest uncertainty, kHybrid = uncertainty
/// blended with the structural-similarity prior. The loop is
/// deterministic by construction: fixed seeds + any `jobs` value yield
/// the same acquisition order, journals and final forests byte for
/// byte (see docs/ACTIVE_LEARNING.md).
struct ActiveOptions {
  ActiveOptions() { base.routing = RoutingPolicy::kActive; }

  /// ml / cost / checkpoint / feedback knobs shared with the structural
  /// flow. `base.checkpoint` journals acquisition rounds (units
  /// `acq:<round>:<cell>` and `round:<round>`) so a killed run resumes
  /// byte-identically.
  HybridOptions base;
  /// Total simulation budget the acquisition loop may spend; <= 0 means
  /// unlimited (the loop is then bounded by max_rounds / convergence).
  double sim_budget = 0.0;
  BudgetUnit budget_unit = BudgetUnit::kSeconds;
  /// Acquisition rounds before the loop gives up (each round scores,
  /// selects, simulates and retrains once).
  std::size_t max_rounds = 8;
  /// Cells acquired per round at most; 0 = auto (targets / max_rounds,
  /// at least 1).
  std::size_t acquisitions_per_round = 0;
  /// Trees grown per retrain when warm-starting (RandomForest::fit_more
  /// on the enlarged pool). Ignored with full_refit.
  std::size_t trees_per_round = 4;
  /// Fallback switch: refit every dirty group's forest from scratch
  /// each round instead of growing trees_per_round trees.
  bool full_refit = false;
  /// Weight of the structural prior under RoutingPolicy::kHybrid
  /// (confidence' = (1-w) * confidence + w * prior).
  double structural_prior_weight = 0.25;
  /// Convergence: the loop stops once every remaining candidate's
  /// blended confidence reaches this margin.
  double converge_margin = 0.995;
  /// Worker threads for candidate scoring (0 = hardware concurrency).
  /// Any value produces identical results.
  std::size_t jobs = 0;
};

/// One acquisition round as the loop saw it.
struct RoundStats {
  std::size_t round = 0;
  std::size_t acquired = 0;
  /// Cumulative budget spent after this round (seconds or count,
  /// per BudgetUnit).
  double spent_after = 0.0;
  /// Confidence distribution over the round's candidates (before its
  /// acquisitions).
  double min_confidence = 0.0;
  double mean_confidence = 0.0;
  /// Reconstructed from the checkpoint journal instead of scored live.
  bool replayed = false;
};

struct ActiveReport {
  /// Per-cell outcomes in target order, same vocabulary as the
  /// structural flow: acquired cells appear as conventional
  /// (routed_to_ml = false, accuracy 1.0), the rest as ML predictions
  /// scored against ground truth.
  HybridReport hybrid;
  std::vector<RoundStats> rounds;
  RoutingPolicy policy = RoutingPolicy::kActive;
  double budget = 0.0;  ///< <= 0 = unlimited
  double spent = 0.0;   ///< total acquisition cost actually spent
  std::size_t acquired = 0;
  /// One flag per target: 1 when the cell was acquired (simulated under
  /// the budget), 0 otherwise.
  std::vector<std::uint8_t> acquired_mask;
  /// Targets that ended with no usable group model (no budget ever
  /// reached their group): simulated conventionally outside the budget,
  /// exactly like the structural baseline simulates unmatched cells.
  std::size_t forced_conventional = 0;
  /// Final per-group forests — the byte-identity witness of the
  /// determinism contract (save_file yields the same bytes for any
  /// jobs value and across kill+resume).
  GroupModelStore models;
};

/// Runs the budgeted active-learning generation flow (ROADMAP item 4):
/// score every unacquired target by forest uncertainty, simulate the
/// least certain under the budget, fold them into the training pool,
/// retrain incrementally, repeat until the budget is spent or margins
/// converge — then predict everything still unacquired with the final
/// forests. `options.base.routing` must be kActive or kHybrid.
ActiveReport run_active_flow(const std::vector<CharacterizedCell>& training,
                             const std::vector<CharacterizedCell>& targets,
                             const ActiveOptions& options = {});

}  // namespace caml::active
