#include "camatrix/activity.hpp"

#include "util/error.hpp"

namespace caml {

ActivityValue ActivityValue::from_pattern_bits(const std::vector<bool>& bits) {
  ActivityValue v;
  v.msb_first_.reserve(bits.size());
  // Pattern 0 carries the MSB: significance decreases with increasing
  // pattern value, so MSB-first storage is simply pattern order.
  for (bool b : bits) v.msb_first_.push_back(static_cast<std::uint8_t>(b));
  return v;
}

std::uint64_t ActivityValue::to_uint64() const {
  CAML_ASSERT(msb_first_.size() <= 64);
  std::uint64_t out = 0;
  for (std::uint8_t b : msb_first_) out = (out << 1) | b;
  return out;
}

std::string ActivityValue::to_string() const {
  std::string s;
  s.reserve(msb_first_.size());
  for (std::uint8_t b : msb_first_) s += b ? '1' : '0';
  return s;
}

std::strong_ordering ActivityValue::operator<=>(const ActivityValue& other) const {
  // Shorter vectors compare as numerically smaller big integers only if
  // equal length; activity values are always compared within one cell
  // group where lengths match.
  if (auto c = msb_first_.size() <=> other.msb_first_.size(); c != 0) return c;
  for (std::size_t i = 0; i < msb_first_.size(); ++i) {
    if (auto c = msb_first_[i] <=> other.msb_first_[i]; c != 0) return c;
  }
  return std::strong_ordering::equal;
}

std::vector<ActivityValue> compute_activity_values(const Cell& cell, const SimConfig& config) {
  const std::size_t n = cell.num_inputs();
  CAML_ASSERT(n >= 1 && n <= 20);
  const InputPattern patterns = InputPattern{1} << n;
  std::vector<std::vector<bool>> bits(cell.num_transistors(),
                                      std::vector<bool>(patterns, false));
  // The paper enumerates stimuli as (in0, in1, ...) tuples with the
  // first input as the most significant digit; our InputPattern keeps
  // input i in bit i. Reverse the bits so activity values match the
  // paper's numbering (Table II).
  const auto paper_index = [n](InputPattern p) {
    InputPattern r = 0;
    for (std::size_t i = 0; i < n; ++i) r |= ((p >> i) & 1u) << (n - 1 - i);
    return r;
  };
  SwitchSim sim(cell, config);
  for (InputPattern p = 0; p < patterns; ++p) {
    sim.reset();
    sim.apply(p);
    for (std::size_t ti = 0; ti < cell.num_transistors(); ++ti) {
      const Transistor& t = cell.transistor(static_cast<TransistorId>(ti));
      const Sig g = sim.net_value(t.gate);
      if (!sig_is_binary(g)) {
        throw Error("cell " + cell.name() + ": gate of '" + t.name +
                    "' is not binary while computing activity values");
      }
      bits[ti][paper_index(p)] = t.type == MosType::kNmos ? g == Sig::kOne : g == Sig::kZero;
    }
  }
  std::vector<ActivityValue> out;
  out.reserve(cell.num_transistors());
  for (auto& b : bits) out.push_back(ActivityValue::from_pattern_bits(b));
  return out;
}

}  // namespace caml
