#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cell.hpp"
#include "sim/switch_sim.hpp"

namespace caml {

/// The paper's per-transistor *activity value* (Section III.C): a
/// 2^n-bit integer whose MSB is the transistor's activation (active=1 /
/// passive=0) under the all-zero input pattern and whose LSB is the
/// activation under the all-one pattern — bit significance decreases as
/// the binary value of the pattern increases.
///
/// Stored as an explicit bit vector (MSB first) so cells with more than
/// 6 inputs are supported; ordering is the numeric ordering of the
/// underlying big integer.
class ActivityValue {
 public:
  ActivityValue() = default;
  /// bits[p] = activation under input pattern p (note: *pattern* order;
  /// the MSB-first storage is handled internally).
  static ActivityValue from_pattern_bits(const std::vector<bool>& bits);

  std::size_t num_patterns() const { return msb_first_.size(); }

  /// Numeric value for cells with <= 6 inputs (fits 64 bits).
  std::uint64_t to_uint64() const;

  /// "0011"-style MSB-first rendering.
  std::string to_string() const;

  std::strong_ordering operator<=>(const ActivityValue& other) const;
  bool operator==(const ActivityValue& other) const = default;

 private:
  std::vector<std::uint8_t> msb_first_;
};

/// Computes the activity value of every transistor from a golden
/// static-pattern sweep (an NMOS is active when its gate is 1, a PMOS
/// when its gate is 0). Throws caml::Error if a gate fails to settle to
/// a binary value.
std::vector<ActivityValue> compute_activity_values(const Cell& cell,
                                                   const SimConfig& config = {});

}  // namespace caml
