#include "camatrix/branch.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace caml {

SpNode SpNode::leaf(TransistorId id) {
  SpNode n;
  n.kind = Kind::kDevice;
  n.device = id;
  return n;
}

SpNode SpNode::series(std::vector<SpNode> children) {
  CAML_ASSERT(!children.empty());
  if (children.size() == 1) return std::move(children.front());
  SpNode n;
  n.kind = Kind::kSeries;
  // Flatten nested series to keep equations canonical.
  for (SpNode& c : children) {
    if (c.kind == Kind::kSeries) {
      for (SpNode& g : c.children) n.children.push_back(std::move(g));
    } else {
      n.children.push_back(std::move(c));
    }
  }
  return n;
}

SpNode SpNode::parallel(std::vector<SpNode> children) {
  CAML_ASSERT(!children.empty());
  if (children.size() == 1) return std::move(children.front());
  SpNode n;
  n.kind = Kind::kParallel;
  for (SpNode& c : children) {
    if (c.kind == Kind::kParallel) {
      for (SpNode& g : c.children) n.children.push_back(std::move(g));
    } else {
      n.children.push_back(std::move(c));
    }
  }
  return n;
}

void SpNode::collect_devices(std::vector<TransistorId>& out) const {
  if (kind == Kind::kDevice) {
    out.push_back(device);
    return;
  }
  for (const SpNode& c : children) c.collect_devices(out);
}

std::size_t SpNode::num_devices() const {
  std::vector<TransistorId> devices;
  collect_devices(devices);
  return devices.size();
}

std::string anonymize(const SpNode& node, const Cell& cell) {
  switch (node.kind) {
    case SpNode::Kind::kDevice:
      return cell.transistor(node.device).type == MosType::kNmos ? "1n" : "1p";
    case SpNode::Kind::kSeries: {
      std::string out = "(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out += '&';
        out += anonymize(node.children[i], cell);
      }
      return out + ")";
    }
    case SpNode::Kind::kParallel: {
      std::vector<std::string> parts;
      parts.reserve(node.children.size());
      for (const SpNode& c : node.children) parts.push_back(anonymize(c, cell));
      std::sort(parts.begin(), parts.end());
      std::string out = "(";
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out += '|';
        out += parts[i];
      }
      return out + ")";
    }
  }
  throw Error("invalid SpNode kind");
}

namespace {

/// Edge of the reduction multigraph: an SP subtree oriented u -> v.
struct SpEdge {
  int u = -1;
  int v = -1;
  SpNode node;
};

/// Reverses the orientation of an SP subtree (series children flip).
SpNode reverse_node(SpNode n) {
  if (n.kind == SpNode::Kind::kSeries) {
    std::reverse(n.children.begin(), n.children.end());
  }
  for (SpNode& c : n.children) c = reverse_node(std::move(c));
  return n;
}

/// Orients edge so that it runs from `from`; returns the node.
SpNode oriented(SpEdge e, int from) {
  CAML_ASSERT(e.u == from || e.v == from);
  if (e.u == from) return std::move(e.node);
  return reverse_node(std::move(e.node));
}

/// Series/parallel reduction of the two-terminal multigraph between
/// vertex `source` (exit) and vertex `sink` (merged rails). Returns
/// true on success with the final tree oriented source -> sink.
bool reduce_sp(std::vector<SpEdge> edges, int source, int sink, SpNode& out) {
  for (;;) {
    if (edges.size() == 1 && ((edges[0].u == source && edges[0].v == sink) ||
                              (edges[0].u == sink && edges[0].v == source))) {
      out = oriented(std::move(edges[0]), source);
      return true;
    }
    bool changed = false;

    // Parallel reduction: merge all edges sharing an endpoint pair.
    {
      std::map<std::pair<int, int>, std::vector<std::size_t>> groups;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        groups[{std::min(edges[i].u, edges[i].v), std::max(edges[i].u, edges[i].v)}]
            .push_back(i);
      }
      for (auto& [key, idx] : groups) {
        if (idx.size() < 2) continue;
        const int a = key.first;
        std::vector<SpNode> children;
        children.reserve(idx.size());
        for (std::size_t i : idx) children.push_back(oriented(std::move(edges[i]), a));
        SpEdge merged;
        merged.u = a;
        merged.v = key.second;
        merged.node = SpNode::parallel(std::move(children));
        // Remove merged edges (descending index), add the new one.
        std::sort(idx.rbegin(), idx.rend());
        for (std::size_t i : idx) edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(i));
        edges.push_back(std::move(merged));
        changed = true;
        break;  // degrees changed; recompute groups
      }
    }
    if (changed) continue;

    // Series reduction: an internal vertex of degree exactly 2.
    {
      std::map<int, std::vector<std::size_t>> incident;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        incident[edges[i].u].push_back(i);
        incident[edges[i].v].push_back(i);
      }
      for (auto& [w, idx] : incident) {
        if (w == source || w == sink || idx.size() != 2 || idx[0] == idx[1]) continue;
        SpEdge e1 = std::move(edges[idx[0]]);
        SpEdge e2 = std::move(edges[idx[1]]);
        const int a = e1.u == w ? e1.v : e1.u;
        const int b = e2.u == w ? e2.v : e2.u;
        std::vector<SpNode> chain;
        chain.push_back(oriented(std::move(e1), a));  // a -> w
        chain.push_back(oriented(std::move(e2), w));  // w -> b
        SpEdge merged;
        merged.u = a;
        merged.v = b;
        merged.node = SpNode::series(std::move(chain));
        std::size_t hi = std::max(idx[0], idx[1]);
        std::size_t lo = std::min(idx[0], idx[1]);
        edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(hi));
        edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(lo));
        edges.push_back(std::move(merged));
        changed = true;
        break;
      }
    }
    if (!changed) return false;  // irreducible (bridge topology)
  }
}

}  // namespace

std::vector<Branch> extract_branches(const Cell& cell,
                                     const std::vector<ActivityValue>& activity) {
  CAML_ASSERT(activity.size() == cell.num_transistors());
  const CellGraph graph(cell);
  const NetId vdd = cell.vdd();
  const NetId vss = cell.vss();
  const NetId output = cell.output();

  std::vector<Branch> branches;
  for (const std::vector<TransistorId>& component : graph.channel_connected_components()) {
    Branch b;
    b.transistors = component;

    // Exit: the component's non-rail channel net that feeds downstream
    // gates or is the cell output.
    std::vector<NetId> exits;
    for (NetId net : graph.component_channel_nets(component)) {
      if (net == output || !graph.gate_loads(net).empty()) exits.push_back(net);
    }
    const bool single_exit = exits.size() == 1;
    if (single_exit) b.exit = exits.front();

    bool reduced = false;
    if (single_exit) {
      // Vertices: nets, with both rails merged into one sink vertex.
      const int kRail = -2;
      std::vector<SpEdge> edges;
      for (TransistorId id : component) {
        const Transistor& t = cell.transistor(id);
        const auto vertex = [&](NetId n) { return (n == vdd || n == vss) ? kRail : n; };
        SpEdge e;
        e.u = vertex(t.drain);
        e.v = vertex(t.source);
        e.node = SpNode::leaf(id);
        edges.push_back(std::move(e));
      }
      SpNode tree;
      if (reduce_sp(std::move(edges), b.exit, kRail, tree)) {
        b.tree = std::move(tree);
        b.is_sp = true;
        reduced = true;
      }
    }
    if (!reduced) {
      // Fallback: flat parallel of all devices (stable, hash-like
      // signature; canonical renaming degrades gracefully).
      std::vector<SpNode> leaves;
      for (TransistorId id : component) leaves.push_back(SpNode::leaf(id));
      b.tree = leaves.size() == 1 ? std::move(leaves.front())
                                  : SpNode::parallel(std::move(leaves));
      b.is_sp = false;
    }
    b.anon_equation = (b.is_sp ? "" : "NONSP") + anonymize(b.tree, cell);
    branches.push_back(std::move(b));
  }

  // Levels: BFS from the output branch through gate connections.
  // branch_of_transistor for quick lookup.
  std::vector<int> branch_of(cell.num_transistors(), -1);
  for (std::size_t bi = 0; bi < branches.size(); ++bi) {
    for (TransistorId id : branches[bi].transistors) {
      branch_of[static_cast<std::size_t>(id)] = static_cast<int>(bi);
    }
  }
  const int kUnset = 1 << 20;
  for (Branch& b : branches) b.level = kUnset;
  // Iterative relaxation (cells are shallow; converges in a few passes).
  for (std::size_t pass = 0; pass < branches.size() + 2; ++pass) {
    bool changed = false;
    for (Branch& b : branches) {
      int lvl = kUnset;
      if (b.exit == output) {
        lvl = 1;
      } else if (b.exit != kNoNet) {
        for (TransistorId load : graph.gate_loads(b.exit)) {
          const int down = branches[static_cast<std::size_t>(
                               branch_of[static_cast<std::size_t>(load)])].level;
          if (down != kUnset) lvl = std::min(lvl, down + 1);
        }
      }
      if (lvl < b.level) {
        b.level = lvl;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Activity signature per branch for the determinism tie-break.
  const auto signature = [&](const Branch& b) {
    std::vector<ActivityValue> sig;
    for (TransistorId id : b.transistors) sig.push_back(activity[static_cast<std::size_t>(id)]);
    std::sort(sig.begin(), sig.end());
    return sig;
  };

  std::sort(branches.begin(), branches.end(), [&](const Branch& a, const Branch& b) {
    if (a.level != b.level) return a.level < b.level;
    if (a.transistors.size() != b.transistors.size()) {
      return a.transistors.size() < b.transistors.size();
    }
    if (a.anon_equation != b.anon_equation) return a.anon_equation < b.anon_equation;
    return signature(a) < signature(b);
  });
  return branches;
}

}  // namespace caml
