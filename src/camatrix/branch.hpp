#pragma once

#include <string>
#include <vector>

#include "camatrix/activity.hpp"
#include "netlist/graph.hpp"

namespace caml {

/// Node of an oriented series/parallel decomposition of a branch: the
/// two-terminal transistor network between the branch's exit net and the
/// (merged) power/ground rails. Series children are ordered from the
/// exit towards the rails.
struct SpNode {
  enum class Kind : std::uint8_t { kDevice, kSeries, kParallel };
  Kind kind = Kind::kDevice;
  TransistorId device = -1;
  std::vector<SpNode> children;

  static SpNode leaf(TransistorId id);
  static SpNode series(std::vector<SpNode> children);
  static SpNode parallel(std::vector<SpNode> children);

  /// All device ids in DFS order.
  void collect_devices(std::vector<TransistorId>& out) const;
  std::size_t num_devices() const;
};

/// One branch (paper Section III.B): a group of transistors connected by
/// their source/drain terminals, bounded by the rails. The exit is "the
/// connection net between the NMOS and PMOS transistors" — in practice
/// the net that drives downstream gates or the cell output.
struct Branch {
  std::vector<TransistorId> transistors;
  NetId exit = kNoNet;
  /// 1 = drives the cell output; level k+1 drives gates of level-k
  /// branches.
  int level = 0;
  /// Oriented SP tree between exit and the merged rails; when the
  /// network is not series/parallel-decomposable the tree degenerates to
  /// a flat parallel of all devices and `is_sp` is false.
  SpNode tree;
  bool is_sp = true;
  /// Anonymized equation, e.g. "((1n&1n)|1p|1p)": leaves are "1n"/"1p",
  /// '&' is series, '|' parallel; parallel children sorted
  /// alphabetically so the string is order-independent.
  std::string anon_equation;
};

/// Extracts every branch of the cell and sorts them by the paper's
/// deterministic criteria: level ascending, transistor count ascending,
/// anonymized equation alphabetical — plus, as a determinism extension,
/// the sorted member activity signature (the paper leaves equal-key
/// branch order unspecified; e.g. the two input inverters of an XOR2
/// tie on all three published criteria).
std::vector<Branch> extract_branches(const Cell& cell,
                                     const std::vector<ActivityValue>& activity);

/// Anonymized equation of an SP tree ("1n"/"1p" leaves).
std::string anonymize(const SpNode& node, const Cell& cell);

}  // namespace caml
