#include "camatrix/canonical.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caml {

namespace {

/// Ordering / identity key of an SP subtree: its anonymized equation and
/// the sorted multiset of member activity values.
struct NodeKey {
  std::string anon;
  std::vector<ActivityValue> activities;

  bool operator<(const NodeKey& other) const {
    if (anon != other.anon) return anon < other.anon;
    return activities < other.activities;
  }
  bool operator==(const NodeKey& other) const = default;
};

NodeKey key_of(const SpNode& node, const Cell& cell,
               const std::vector<ActivityValue>& activity) {
  NodeKey k;
  k.anon = anonymize(node, cell);
  std::vector<TransistorId> devices;
  node.collect_devices(devices);
  for (TransistorId id : devices) k.activities.push_back(activity[static_cast<std::size_t>(id)]);
  std::sort(k.activities.begin(), k.activities.end());
  return k;
}

/// Sorts parallel children canonically, recursively. Series children
/// keep their exit-to-rail order (the electrical orientation).
SpNode canonical_order(SpNode node, const Cell& cell,
                       const std::vector<ActivityValue>& activity) {
  for (SpNode& c : node.children) c = canonical_order(std::move(c), cell, activity);
  if (node.kind == SpNode::Kind::kParallel) {
    std::stable_sort(node.children.begin(), node.children.end(),
                     [&](const SpNode& a, const SpNode& b) {
                       return key_of(a, cell, activity) < key_of(b, cell, activity);
                     });
  }
  return node;
}

/// Collapses runs of identical parallel siblings (same anonymized
/// structure and activity multiset) to a single representative —
/// normalizing the paper's Fig. 6 merged/split drive variants to the X1
/// structure. Children must already be canonically ordered.
SpNode collapse_duplicates(SpNode node, const Cell& cell,
                           const std::vector<ActivityValue>& activity) {
  for (SpNode& c : node.children) c = collapse_duplicates(std::move(c), cell, activity);
  if (node.kind == SpNode::Kind::kParallel) {
    std::vector<SpNode> kept;
    std::vector<NodeKey> keys;
    for (SpNode& c : node.children) {
      NodeKey k = key_of(c, cell, activity);
      if (!keys.empty() && keys.back() == k) continue;  // duplicate sibling
      keys.push_back(std::move(k));
      kept.push_back(std::move(c));
    }
    if (kept.size() == 1) return std::move(kept.front());
    node.children = std::move(kept);
  }
  return node;
}

}  // namespace

std::size_t CanonicalCell::canonical_index(TransistorId original) const {
  for (std::size_t i = 0; i < nmos_order.size(); ++i) {
    if (nmos_order[i] == original) return i;
  }
  for (std::size_t i = 0; i < pmos_order.size(); ++i) {
    if (pmos_order[i] == original) return nmos_order.size() + i;
  }
  throw Error("canonical_index: unknown transistor id");
}

CanonicalCell canonicalize(const Cell& cell, const SimConfig& config) {
  CanonicalCell out;
  out.activity = compute_activity_values(cell, config);
  out.branches = extract_branches(cell, out.activity);

  out.canonical_name.resize(cell.num_transistors());
  std::vector<std::string> full_parts;
  std::vector<std::string> reduced_parts;

  for (Branch& b : out.branches) {
    b.tree = canonical_order(std::move(b.tree), cell, out.activity);
    b.anon_equation = (b.is_sp ? "" : "NONSP") + anonymize(b.tree, cell);
    full_parts.push_back(std::to_string(b.level) + ":" + b.anon_equation);

    const SpNode reduced = collapse_duplicates(b.tree, cell, out.activity);
    reduced_parts.push_back(std::to_string(b.level) + ":" + (b.is_sp ? "" : "NONSP") +
                            anonymize(reduced, cell));

    // Renaming: DFS of the canonical tree, exit towards rails.
    std::vector<TransistorId> dfs;
    b.tree.collect_devices(dfs);
    for (TransistorId id : dfs) {
      if (cell.transistor(id).type == MosType::kNmos) {
        out.canonical_name[static_cast<std::size_t>(id)] =
            "N" + std::to_string(out.nmos_order.size());
        out.nmos_order.push_back(id);
      } else {
        out.canonical_name[static_cast<std::size_t>(id)] =
            "P" + std::to_string(out.pmos_order.size());
        out.pmos_order.push_back(id);
      }
    }
  }

  // Branch parts are emitted in sorted-branch order; the signature also
  // sorts the strings so that equal-keyed branch permutations compare
  // equal.
  std::sort(full_parts.begin(), full_parts.end());
  std::sort(reduced_parts.begin(), reduced_parts.end());
  out.structure_signature = join(full_parts, ";");
  out.reduced_signature = join(reduced_parts, ";");
  return out;
}

}  // namespace caml
