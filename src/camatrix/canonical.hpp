#pragma once

#include <string>
#include <vector>

#include "camatrix/branch.hpp"

namespace caml {

/// Result of the paper's transistor-renaming step (Sections III.B/C):
/// a canonical ordering of the cell's transistors that is invariant
/// under device renaming, netlist reordering and technology sizing.
/// Canonical names are N0..Nk-1 / P0..Pm-1, assigned while walking the
/// sorted branches' SP trees (series children from the exit towards the
/// rails; parallel children ordered by anonymized equation, then by
/// activity — the paper's parallel-transistor disambiguation).
struct CanonicalCell {
  /// Sorted branches (level, size, equation, activity signature).
  std::vector<Branch> branches;
  /// Per-transistor activity values (original transistor ids).
  std::vector<ActivityValue> activity;
  /// nmos_order[i] = original id of canonical transistor Ni.
  std::vector<TransistorId> nmos_order;
  /// pmos_order[i] = original id of canonical transistor Pi.
  std::vector<TransistorId> pmos_order;
  /// canonical_name[original id] = "N0", "P3", ...
  std::vector<std::string> canonical_name;
  /// Whole-cell transistor-structure signature: the sorted anonymized
  /// branch equations with their levels, e.g. "1:((1n&1n)|1p|1p)".
  /// Technology-independent; identical for structurally identical cells.
  std::string structure_signature;
  /// Signature after collapsing duplicated parallel subtrees (identical
  /// anonymized structure *and* identical activity multiset) — the
  /// paper's Fig. 6 merged/split drive configurations map to the same
  /// reduced signature as their X1 form.
  std::string reduced_signature;

  std::size_t num_transistors() const { return canonical_name.size(); }

  /// Canonical index of an original transistor: Ni -> i, Pj -> nmos + j
  /// (all NMOS columns first, then all PMOS — the CA-matrix column
  /// order). Throws if the id is unknown.
  std::size_t canonical_index(TransistorId original) const;
};

/// Runs the full canonicalization: golden static sweep for activity
/// values, branch extraction and sorting, SP-tree canonical ordering,
/// renaming and signature construction.
CanonicalCell canonicalize(const Cell& cell, const SimConfig& config = {});

}  // namespace caml
