#include "camatrix/matrix.hpp"

#include "sim/evaluator.hpp"
#include "util/error.hpp"

namespace caml {

namespace {

std::int8_t wave_code(Wave w) { return static_cast<std::int8_t>(w); }

std::int8_t activity_code(Wave w, MosType type) {
  const auto code = static_cast<std::int8_t>(w);
  return type == MosType::kNmos ? code : static_cast<std::int8_t>(-(code + 1));
}

Wave response_wave(Sig initial, Sig final) {
  return wave_from_pair(initial == Sig::kOne, final == Sig::kOne);
}

}  // namespace

class MatrixBuilder {
 public:
  MatrixBuilder(const Cell& cell, const CanonicalCell& canon, const MatrixOptions& options)
      : cell_(cell), canon_(canon), options_(options) {
    matrix_.column_names_ = column_names();
  }

  CaMatrix build(const std::vector<Stimulus>& stimuli, const GoldenResult& golden,
                 const std::vector<Defect>& defects,
                 const std::vector<const std::vector<std::uint8_t>*>& detection) {
    const std::size_t cols = matrix_.num_features();
    const std::size_t defect_rows = defects.size() * stimuli.size();
    const std::size_t free_rows = options_.include_free_rows ? stimuli.size() : 0;
    matrix_.features_.reserve((defect_rows + free_rows) * cols);
    matrix_.labels_.reserve(defect_rows + free_rows);

    // Truth-table columns: golden responses of the static stimuli, which
    // generate_stimuli always places first in pattern order.
    std::vector<std::int8_t> truth;
    if (options_.include_truth_table) {
      const std::size_t patterns = std::size_t{1} << cell_.num_inputs();
      CAML_ASSERT(stimuli.size() >= patterns);
      for (std::size_t p = 0; p < patterns; ++p) {
        CAML_ASSERT(stimuli[p].is_static() && stimuli[p].initial_pattern() == p);
        truth.push_back(golden.responses[p] == Sig::kOne ? 1 : 0);
      }
    }

    // Pre-encode the stimulus-dependent prefix of every row.
    const std::size_t t_count = cell_.num_transistors();
    std::vector<std::vector<std::int8_t>> prefix(stimuli.size());
    for (std::size_t s = 0; s < stimuli.size(); ++s) {
      auto& row = prefix[s];
      for (Wave w : stimuli[s].waves()) row.push_back(wave_code(w));
      if (options_.include_response) {
        row.push_back(
            wave_code(response_wave(golden.initial_responses[s], golden.responses[s])));
      }
      row.insert(row.end(), truth.begin(), truth.end());
      if (options_.include_activity) {
        row.resize(row.size() + t_count);
        for (std::size_t ti = 0; ti < t_count; ++ti) {
          const auto id = static_cast<TransistorId>(ti);
          const std::size_t c = canon_.canonical_index(id);
          row[row.size() - t_count + c] =
              activity_code(golden.activity[s][ti], cell_.transistor(id).type);
        }
      }
    }

    const auto emit_rows = [&](std::int32_t defect_index,
                               const std::vector<std::int8_t>& defect_cols, std::int8_t kind,
                               const std::vector<std::uint8_t>* det) {
      for (std::size_t s = 0; s < stimuli.size(); ++s) {
        matrix_.features_.insert(matrix_.features_.end(), prefix[s].begin(), prefix[s].end());
        matrix_.features_.insert(matrix_.features_.end(), defect_cols.begin(),
                                 defect_cols.end());
        if (options_.include_defect_kind) matrix_.features_.push_back(kind);
        matrix_.labels_.push_back(det ? (*det)[s] : 0);
        matrix_.row_defect_.push_back(defect_index);
        matrix_.row_stimulus_.push_back(static_cast<std::uint32_t>(s));
      }
    };

    if (options_.include_free_rows) {
      emit_rows(CaMatrix::kFreeRow, std::vector<std::int8_t>(4 * t_count, 0), 0, nullptr);
    }
    for (std::size_t d = 0; d < defects.size(); ++d) {
      std::vector<std::int8_t> defect_cols(4 * t_count, 0);
      const auto mark = [&](const TerminalRef& r) {
        const std::size_t c = canon_.canonical_index(r.transistor);
        defect_cols[c * 4 + static_cast<std::size_t>(r.terminal)] = 1;
      };
      mark(defects[d].a);
      if (defects[d].kind == DefectKind::kShort) mark(defects[d].b);
      // 1/2 = hard open/short, 3/4 = resistive open/short. Universes
      // with resistive variants need include_defect_kind: location
      // columns alone cannot separate a hard from a resistive defect at
      // the same terminals.
      const std::int8_t kind = static_cast<std::int8_t>(
          (defects[d].kind == DefectKind::kOpen ? 1 : 2) +
          (defects[d].strength == DefectStrength::kResistive ? 2 : 0));
      emit_rows(static_cast<std::int32_t>(d), defect_cols, kind,
                detection.empty() ? nullptr : detection[d]);
    }
    matrix_.has_labels_ = !detection.empty();
    return std::move(matrix_);
  }

 private:
  std::vector<std::string> column_names() const {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < cell_.num_inputs(); ++i) {
      names.push_back("IN" + std::to_string(i));
    }
    if (options_.include_response) names.push_back("Z");
    if (options_.include_truth_table) {
      for (std::size_t p = 0; p < (std::size_t{1} << cell_.num_inputs()); ++p) {
        names.push_back("TT" + std::to_string(p));
      }
    }
    const std::size_t t_count = cell_.num_transistors();
    std::vector<std::string> canon_names(t_count);
    for (std::size_t ti = 0; ti < t_count; ++ti) {
      canon_names[canon_.canonical_index(static_cast<TransistorId>(ti))] =
          canon_.canonical_name[ti];
    }
    if (options_.include_activity) {
      for (const std::string& n : canon_names) names.push_back(n);
    }
    for (const std::string& n : canon_names) {
      for (const char* term : {"_D", "_G", "_S", "_B"}) names.push_back(n + term);
    }
    if (options_.include_defect_kind) names.push_back("KIND");
    return names;
  }

  const Cell& cell_;
  const CanonicalCell& canon_;
  MatrixOptions options_;
  CaMatrix matrix_;
};

CaMatrix build_ca_matrix(const Cell& cell, const CaModel& model, const CanonicalCell& canon,
                         const SimConfig& sim, const MatrixOptions& options) {
  CAML_ASSERT(model.num_inputs == cell.num_inputs());
  const GoldenResult golden = simulate_golden(cell, model.stimuli, sim);
  std::vector<Defect> defects;
  std::vector<const std::vector<std::uint8_t>*> detection;
  defects.reserve(model.defects.size());
  detection.reserve(model.defects.size());
  for (const CaDefectEntry& e : model.defects) {
    defects.push_back(e.defect);
    detection.push_back(&e.detection);
  }
  MatrixBuilder builder(cell, canon, options);
  return builder.build(model.stimuli, golden, defects, detection);
}

CaMatrix build_unlabeled_matrix(const Cell& cell, const std::vector<Defect>& defects,
                                StimulusPolicy policy, const CanonicalCell& canon,
                                const SimConfig& sim, const MatrixOptions& options) {
  const std::vector<Stimulus> stimuli = generate_stimuli(cell.num_inputs(), policy);
  const GoldenResult golden = simulate_golden(cell, stimuli, sim);
  MatrixOptions opt = options;
  opt.include_free_rows = false;  // inference rows only
  MatrixBuilder builder(cell, canon, opt);
  return builder.build(stimuli, golden, defects, {});
}

std::size_t matrix_feature_count(std::size_t num_inputs, std::size_t num_transistors,
                                 const MatrixOptions& options) {
  std::size_t n = num_inputs + 4 * num_transistors;
  if (options.include_response) n += 1;
  if (options.include_truth_table) n += std::size_t{1} << num_inputs;
  if (options.include_activity) n += num_transistors;
  if (options.include_defect_kind) n += 1;
  return n;
}

}  // namespace caml
