#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "camatrix/canonical.hpp"
#include "camodel/ca_model.hpp"
#include "defect/defect.hpp"

namespace caml {

/// Column selection / ablation knobs for the CA-matrix.
struct MatrixOptions {
  /// Per-transistor switching-activity columns (paper Table I). Turning
  /// them off is the E8 ablation.
  bool include_activity = true;
  /// The golden response column (paper's "Z").
  bool include_response = true;
  /// The cell's static truth table (2^n columns, constant across the
  /// cell's rows). An aggregate of the "cell patterns and responses"
  /// information the paper's flow already derives from the defect-free
  /// simulation; it disambiguates rows of different-function cells that
  /// otherwise collide feature-for-feature within a group (e.g. NAND2
  /// vs NOR2 under the all-zero stimulus). See DESIGN.md.
  bool include_truth_table = true;
  /// Add the defect kind (free/open/short) as a feature. The paper
  /// excludes the "about defect" columns from the ML inputs; kept as an
  /// ablation knob.
  bool include_defect_kind = false;
  /// Emit the defect-free ("free") rows with label 0, as in Table I.
  bool include_free_rows = true;
};

/// The paper's CA-matrix: one row per (stimulus, defect) pair — plus the
/// defect-free rows — with 4-valued input columns, the response column,
/// per-transistor switching activity in canonical transistor order (all
/// N columns, then all P columns) and per-terminal defect-location
/// columns. Features are small signed integers:
///   waves: 0, 1, R=2, F=3;  PMOS activity is sign-flipped to -(code+1)
///   (the paper's "'-' character before the PMOS values");
///   defect terminal flags: 0/1.
class CaMatrix {
 public:
  std::size_t num_rows() const { return labels_.size(); }
  std::size_t num_features() const { return column_names_.size(); }

  std::int8_t at(std::size_t row, std::size_t col) const {
    return features_[row * num_features() + col];
  }
  const std::int8_t* row(std::size_t r) const { return features_.data() + r * num_features(); }
  const std::vector<std::int8_t>& features() const { return features_; }

  /// Detection label per row (0 for every row when built unlabeled).
  const std::vector<std::uint8_t>& labels() const { return labels_; }
  bool has_labels() const { return has_labels_; }

  const std::vector<std::string>& column_names() const { return column_names_; }

  /// Index into the source defect list per row; kFreeRow for free rows.
  static constexpr std::int32_t kFreeRow = -1;
  const std::vector<std::int32_t>& row_defect() const { return row_defect_; }
  /// Stimulus index per row.
  const std::vector<std::uint32_t>& row_stimulus() const { return row_stimulus_; }

 private:
  friend class MatrixBuilder;
  std::vector<std::string> column_names_;
  std::vector<std::int8_t> features_;
  std::vector<std::uint8_t> labels_;
  std::vector<std::int32_t> row_defect_;
  std::vector<std::uint32_t> row_stimulus_;
  bool has_labels_ = false;
};

/// Builds the labeled CA-matrix of a cell from its CA model (training
/// data, paper Fig. 3). The canonical form must come from the same cell.
CaMatrix build_ca_matrix(const Cell& cell, const CaModel& model, const CanonicalCell& canon,
                         const SimConfig& sim = {}, const MatrixOptions& options = {});

/// Builds the unlabeled CA-matrix of a *new* cell (inference data): same
/// columns, rows for every (stimulus, defect) pair, labels all zero.
CaMatrix build_unlabeled_matrix(const Cell& cell, const std::vector<Defect>& defects,
                                StimulusPolicy policy, const CanonicalCell& canon,
                                const SimConfig& sim = {}, const MatrixOptions& options = {});

/// Number of feature columns a matrix will have for a cell group with
/// the given shape under the given options.
std::size_t matrix_feature_count(std::size_t num_inputs, std::size_t num_transistors,
                                 const MatrixOptions& options = {});

}  // namespace caml
