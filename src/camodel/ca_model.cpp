#include "camodel/ca_model.hpp"

#include <map>

#include "util/error.hpp"

namespace caml {

const char* defect_class_name(DefectClass c) {
  switch (c) {
    case DefectClass::kStatic: return "static";
    case DefectClass::kDynamic: return "dynamic";
    case DefectClass::kUndetected: return "undetected";
  }
  throw Error("invalid DefectClass");
}

std::size_t CaModel::count_class(DefectClass c) const {
  std::size_t n = 0;
  for (const CaDefectEntry& d : defects) {
    if (d.klass == c) ++n;
  }
  return n;
}

double CaModel::detection_density() const {
  std::size_t set = 0, total = 0;
  for (const CaDefectEntry& d : defects) {
    for (std::uint8_t bit : d.detection) set += bit;
    total += d.detection.size();
  }
  return total == 0 ? 0.0 : static_cast<double>(set) / static_cast<double>(total);
}

void CaModel::classify() {
  for (CaDefectEntry& d : defects) {
    CAML_ASSERT(d.detection.size() == stimuli.size());
    bool static_detect = false, dynamic_detect = false;
    for (std::size_t s = 0; s < stimuli.size(); ++s) {
      if (!d.detection[s]) continue;
      if (stimuli[s].is_static()) static_detect = true;
      else dynamic_detect = true;
    }
    d.klass = static_detect ? DefectClass::kStatic
              : dynamic_detect ? DefectClass::kDynamic
                               : DefectClass::kUndetected;
  }

  // Equivalence classes: identical detection vectors collapse.
  equivalence_classes.clear();
  std::map<std::vector<std::uint8_t>, std::size_t> index;
  for (std::size_t i = 0; i < defects.size(); ++i) {
    auto [it, inserted] = index.try_emplace(defects[i].detection, equivalence_classes.size());
    if (inserted) equivalence_classes.emplace_back();
    defects[i].equivalence_class = it->second;
    equivalence_classes[it->second].push_back(i);
  }
}

}  // namespace caml
