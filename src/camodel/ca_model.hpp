#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "defect/defect.hpp"
#include "logic/stimulus.hpp"
#include "logic/wave.hpp"

namespace caml {

/// Detection class of a defect, as used by cell-aware test generation:
/// static defects are caught by at least one single-pattern stimulus,
/// dynamic defects (e.g. stuck-opens) only by two-pattern sequences.
enum class DefectClass : std::uint8_t { kStatic, kDynamic, kUndetected };

const char* defect_class_name(DefectClass c);

/// One defect's row block in the CA model: its full detection vector
/// over the model's stimulus list, its class, and the equivalence class
/// it belongs to (defects with identical detection vectors).
struct CaDefectEntry {
  Defect defect;
  /// detection[s] == 1 iff stimulus s definitely detects the defect
  /// (golden and faulty outputs both binary and different).
  std::vector<std::uint8_t> detection;
  DefectClass klass = DefectClass::kUndetected;
  /// Index into CaModel::equivalence_classes.
  std::size_t equivalence_class = 0;
};

/// A cell-aware model: the per-defect detection conditions of one cell
/// under an exhaustive stimulus set (the paper's Fig. 1 output and the
/// raw material of the Table I training dataset).
struct CaModel {
  std::string cell_name;
  std::size_t num_inputs = 0;
  StimulusPolicy policy = StimulusPolicy::kExhaustivePairs;
  std::vector<Stimulus> stimuli;
  /// Golden (defect-free) response per stimulus; always binary.
  std::vector<Sig> golden_responses;
  std::vector<CaDefectEntry> defects;
  /// equivalence_classes[k] = indices into `defects` sharing one
  /// detection vector. Class 0 is reserved for undetected defects when
  /// any exist.
  std::vector<std::vector<std::size_t>> equivalence_classes;

  std::size_t num_stimuli() const { return stimuli.size(); }

  /// Detection-vector statistics.
  std::size_t count_class(DefectClass c) const;

  /// Fraction of (stimulus, defect) detection bits set.
  double detection_density() const;

  /// Recomputes klass and equivalence classes from the detection
  /// vectors. Called by the generator; call again after editing vectors.
  void classify();
};

}  // namespace caml
