#include "camodel/diagnosis.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace caml {

std::size_t TesterResponse::num_failing() const {
  std::size_t n = 0;
  for (std::uint8_t f : failing) n += f;
  return n;
}

std::vector<DiagnosisCandidate> diagnose(const CaModel& model, const TesterResponse& observed,
                                         const DiagnosisOptions& options) {
  CAML_ASSERT(observed.failing.size() == model.stimuli.size());
  std::vector<DiagnosisCandidate> out;
  for (std::size_t c = 0; c < model.equivalence_classes.size(); ++c) {
    const auto& members = model.equivalence_classes[c];
    CAML_ASSERT(!members.empty());
    const auto& predicted = model.defects[members.front()].detection;

    DiagnosisCandidate cand;
    cand.defect_index = members.front();
    cand.equivalence_class = c;
    cand.members = members;
    for (std::size_t s = 0; s < predicted.size(); ++s) {
      const bool p = predicted[s] != 0;
      const bool o = observed.failing[s] != 0;
      if (p && o) ++cand.explained;
      if (!p && o) ++cand.unexplained;
      if (p && !o) ++cand.mispredicted;
    }
    const std::size_t uni = cand.explained + cand.unexplained + cand.mispredicted;
    cand.score = uni == 0 ? 0.0 : static_cast<double>(cand.explained) / static_cast<double>(uni);
    cand.exact = cand.unexplained == 0 && cand.mispredicted == 0 && cand.explained > 0;
    if (cand.score > 0.0) out.push_back(std::move(cand));
  }

  std::sort(out.begin(), out.end(), [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
    if (a.exact != b.exact) return a.exact;
    if (a.score != b.score) return a.score > b.score;
    return a.equivalence_class < b.equivalence_class;  // deterministic ties
  });
  if (options.top_k > 0 && out.size() > options.top_k) out.resize(options.top_k);
  return out;
}

TesterResponse simulate_tester_response(const Cell& cell, const CaModel& model,
                                        const Defect& defect, const InjectionConfig& injection,
                                        const SimConfig& sim_config) {
  const Cell faulty = inject_defect(cell, defect, injection);
  SwitchSim sim(faulty, sim_config);
  TesterResponse response;
  response.failing.reserve(model.stimuli.size());
  for (std::size_t s = 0; s < model.stimuli.size(); ++s) {
    const Sig out = sim.run(model.stimuli[s]);
    const bool fails = sig_is_binary(out) && out != model.golden_responses[s];
    response.failing.push_back(static_cast<std::uint8_t>(fails));
  }
  return response;
}

}  // namespace caml
