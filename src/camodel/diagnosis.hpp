#pragma once

#include <vector>

#include "camodel/ca_model.hpp"
#include "defect/injector.hpp"
#include "sim/switch_sim.hpp"

namespace caml {

/// Pass/fail observation per stimulus of the CA model, as a tester (or
/// a fault simulation of a customer return) would produce it.
struct TesterResponse {
  /// failing[s] == 1 iff the device failed stimulus s.
  std::vector<std::uint8_t> failing;

  std::size_t num_failing() const;
};

/// One ranked diagnosis candidate. Candidates are reported per defect
/// equivalence class (all members explain the observation equally).
struct DiagnosisCandidate {
  /// Representative defect (first member of the equivalence class).
  std::size_t defect_index = 0;
  std::size_t equivalence_class = 0;
  /// Members of the class (indices into CaModel::defects).
  std::vector<std::size_t> members;
  /// Observed fails this defect predicts / doesn't predict, and
  /// predicted fails that actually passed.
  std::size_t explained = 0;
  std::size_t unexplained = 0;
  std::size_t mispredicted = 0;
  /// Jaccard similarity between predicted and observed fail sets.
  double score = 0.0;
  /// True when the prediction matches the observation exactly.
  bool exact = false;
};

struct DiagnosisOptions {
  /// Keep only the best-scoring candidates (0 = all with score > 0).
  std::size_t top_k = 10;
};

/// Cell-aware cause-effect diagnosis: match the observed fail set
/// against every defect equivalence class of the CA dictionary and rank
/// by Jaccard similarity (exact matches first) — the diagnosis usage of
/// CA models the paper's introduction describes.
std::vector<DiagnosisCandidate> diagnose(const CaModel& model, const TesterResponse& observed,
                                         const DiagnosisOptions& options = {});

/// Produces the tester response a given defect would cause, by
/// simulating the defective cell against the model's stimuli (test
/// bench / example helper).
TesterResponse simulate_tester_response(const Cell& cell, const CaModel& model,
                                        const Defect& defect,
                                        const InjectionConfig& injection = {},
                                        const SimConfig& sim = {});

}  // namespace caml
