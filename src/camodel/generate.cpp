#include "camodel/generate.hpp"

#include "obs/trace.hpp"
#include "sim/evaluator.hpp"

namespace caml {

CaModel generate_ca_model(const Cell& cell, const GenerationOptions& options) {
  CAML_TRACE_SPAN("generate_ca_model");
  CaModel model;
  model.cell_name = cell.name();
  model.num_inputs = cell.num_inputs();
  model.policy = options.policy;
  model.stimuli = generate_stimuli(cell.num_inputs(), options.policy);

  const GoldenResult golden = simulate_golden(cell, model.stimuli, options.sim);
  model.golden_responses = golden.responses;

  const std::vector<Defect> universe = enumerate_defects(cell, options.universe);
  CAML_TRACE_SPAN_ITEMS("simulate", universe.size() * model.stimuli.size());
  model.defects.reserve(universe.size());
  for (const Defect& defect : universe) {
    const Cell faulty_cell = inject_defect(cell, defect, options.injection);
    SwitchSim sim(faulty_cell, options.sim);
    CaDefectEntry entry;
    entry.defect = defect;
    entry.detection.resize(model.stimuli.size());
    for (std::size_t s = 0; s < model.stimuli.size(); ++s) {
      const Sig faulty = sim.run(model.stimuli[s]);
      const Sig good = model.golden_responses[s];
      entry.detection[s] =
          static_cast<std::uint8_t>(sig_is_binary(faulty) && faulty != good ? 1 : 0);
    }
    model.defects.push_back(std::move(entry));
  }
  model.classify();
  return model;
}

std::size_t conventional_simulation_count(const Cell& cell, const GenerationOptions& options) {
  const std::size_t stimuli = stimulus_count(cell.num_inputs(), options.policy);
  const std::size_t defects = enumerate_defects(cell, options.universe).size();
  return 1 + stimuli * defects;
}

}  // namespace caml
