#include "camodel/generate.hpp"

#include "defect/overlay.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/evaluator.hpp"
#include "util/timing.hpp"

namespace caml {

CaModel generate_ca_model(const Cell& cell, const GenerationOptions& options) {
  CAML_TRACE_SPAN("generate_ca_model");
  static obs::Histogram& defect_us = obs::Registry::global().histogram(
      "caml_defect_sim_us", "Per-defect simulation latency (all stimuli) in microseconds");
  CaModel model;
  model.cell_name = cell.name();
  model.num_inputs = cell.num_inputs();
  model.policy = options.policy;
  model.stimuli = generate_stimuli(cell.num_inputs(), options.policy);

  const GoldenResult golden = simulate_golden(cell, model.stimuli, options.sim);
  model.golden_responses = golden.responses;

  const std::vector<Defect> universe = enumerate_defects(cell, options.universe);
  CAML_TRACE_SPAN_ITEMS("simulate", universe.size() * model.stimuli.size());

  // The defect loop is the hot path of the whole conventional flow. All
  // output storage is sized up front and one (overlay, simulator) pair is
  // reused across defects, so the steady-state loop below performs zero
  // heap allocations: apply() rewires the working cell in place, rebind()
  // re-derives the simulator's CSR structure into reused buffers, and
  // revert() restores the base cell.
  model.defects.resize(universe.size());
  for (std::size_t d = 0; d < universe.size(); ++d) {
    model.defects[d].defect = universe[d];
    model.defects[d].detection.resize(model.stimuli.size());
  }
  DefectOverlay overlay(cell, options.injection);
  SwitchSim sim(overlay.cell(), options.sim);
  sim.reserve(cell.num_nets() + DefectOverlay::kMaxExtraNets,
              cell.num_transistors() + DefectOverlay::kMaxExtraTransistors);
  std::vector<Sig> faulty(model.stimuli.size());
  for (std::size_t d = 0; d < universe.size(); ++d) {
    const Stopwatch watch;
    CaDefectEntry& entry = model.defects[d];
    overlay.apply(entry.defect);
    sim.rebind();
    sim.run_batch(model.stimuli, faulty.data());
    for (std::size_t s = 0; s < model.stimuli.size(); ++s) {
      const Sig good = model.golden_responses[s];
      entry.detection[s] =
          static_cast<std::uint8_t>(sig_is_binary(faulty[s]) && faulty[s] != good ? 1 : 0);
    }
    overlay.revert();
    defect_us.record(static_cast<std::uint64_t>(std::max<std::int64_t>(watch.elapsed_us(), 0)));
  }
  model.classify();
  return model;
}

std::size_t conventional_simulation_count(const Cell& cell, const GenerationOptions& options) {
  const std::size_t stimuli = stimulus_count(cell.num_inputs(), options.policy);
  const std::size_t defects = enumerate_defects(cell, options.universe).size();
  return 1 + stimuli * defects;
}

}  // namespace caml
