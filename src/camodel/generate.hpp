#pragma once

#include "camodel/ca_model.hpp"
#include "defect/injector.hpp"
#include "defect/universe.hpp"
#include "netlist/cell.hpp"
#include "sim/switch_sim.hpp"

namespace caml {

/// Knobs of the conventional (simulation-based) CA generation flow.
struct GenerationOptions {
  StimulusPolicy policy = StimulusPolicy::kExhaustivePairs;
  UniverseOptions universe;
  InjectionConfig injection;
  SimConfig sim;
};

/// The paper's Fig. 1 conventional flow: enumerate the defect universe,
/// run the defect-free simulation, then simulate every defect against
/// the full stimulus set and record definite detections (golden and
/// faulty outputs binary and different). Throws caml::Error if the
/// defect-free cell does not behave combinationally.
CaModel generate_ca_model(const Cell& cell, const GenerationOptions& options = {});

/// Number of electrical simulations the conventional flow performs for
/// this cell (1 golden + one per (defect, stimulus) pair) — the quantity
/// the paper's runtime estimates are built on.
std::size_t conventional_simulation_count(const Cell& cell, const GenerationOptions& options = {});

}  // namespace caml
