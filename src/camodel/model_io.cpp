#include "camodel/model_io.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"

namespace caml {

namespace {

const char* policy_name(StimulusPolicy p) {
  switch (p) {
    case StimulusPolicy::kStaticOnly: return "static";
    case StimulusPolicy::kSingleInputChange: return "single";
    case StimulusPolicy::kExhaustivePairs: return "exhaustive";
  }
  throw Error("invalid StimulusPolicy");
}

StimulusPolicy policy_from_name(const std::string& name, std::size_t line) {
  if (name == "static") return StimulusPolicy::kStaticOnly;
  if (name == "single") return StimulusPolicy::kSingleInputChange;
  if (name == "exhaustive") return StimulusPolicy::kExhaustivePairs;
  throw ParseError("unknown stimulus policy '" + name + "'", line);
}

std::string terminal_ref_string(const Cell& cell, const TerminalRef& r) {
  return cell.transistor(r.transistor).name + "." + terminal_name(r.terminal);
}

TerminalRef parse_terminal_ref(const Cell& cell, const std::string& text, std::size_t line) {
  const std::size_t dot = text.rfind('.');
  if (dot == std::string::npos || dot + 2 != text.size()) {
    throw ParseError("bad terminal reference '" + text + "'", line);
  }
  const std::string device = text.substr(0, dot);
  TransistorId id = -1;
  for (std::size_t i = 0; i < cell.num_transistors(); ++i) {
    if (cell.transistors()[i].name == device) {
      id = static_cast<TransistorId>(i);
      break;
    }
  }
  if (id < 0) throw Error("CA model references unknown device '" + device + "'");
  Terminal term;
  switch (text[dot + 1]) {
    case 'D': term = Terminal::kDrain; break;
    case 'G': term = Terminal::kGate; break;
    case 'S': term = Terminal::kSource; break;
    case 'B': term = Terminal::kBulk; break;
    default: throw ParseError("bad terminal letter in '" + text + "'", line);
  }
  return TerminalRef{id, term};
}

}  // namespace

void write_ca_model(std::ostream& os, const CaModel& model, const Cell& cell) {
  os << "CAMODEL " << model.cell_name << " INPUTS " << model.num_inputs << " POLICY "
     << policy_name(model.policy) << " DEFECTS " << model.defects.size() << '\n';
  os << "GOLDEN ";
  for (Sig s : model.golden_responses) os << sig_char(s);
  os << '\n';
  for (const CaDefectEntry& d : model.defects) {
    os << "DEFECT ";
    if (d.defect.strength == DefectStrength::kResistive) os << "resistive ";
    os << defect_kind_name(d.defect.kind) << ' '
       << terminal_ref_string(cell, d.defect.a);
    if (d.defect.kind == DefectKind::kShort) {
      os << ' ' << terminal_ref_string(cell, d.defect.b);
    }
    os << " CLASS " << defect_class_name(d.klass) << '\n';
    os << "DETECT ";
    for (std::uint8_t bit : d.detection) os << (bit ? '1' : '0');
    os << '\n';
  }
  os << "ENDMODEL\n";
}

CaModel read_ca_model(std::istream& in, const Cell& cell) {
  CaModel model;
  std::string line;
  std::size_t line_no = 0;

  const auto next_line = [&]() -> std::string {
    while (std::getline(in, line)) {
      ++line_no;
      const std::string_view t = trim(line);
      if (!t.empty()) return std::string(t);
    }
    throw ParseError("unexpected end of CA model", line_no);
  };

  // Header.
  {
    const std::vector<std::string> tok = split(next_line());
    if (tok.size() != 8 || tok[0] != "CAMODEL" || tok[2] != "INPUTS" || tok[4] != "POLICY" ||
        tok[6] != "DEFECTS") {
      throw ParseError("bad CAMODEL header", line_no);
    }
    model.cell_name = tok[1];
    model.num_inputs = parse_size(tok[3], "CAMODEL input count", line_no);
    model.policy = policy_from_name(tok[5], line_no);
    model.defects.reserve(
        std::min<std::size_t>(parse_size(tok[7], "CAMODEL defect count", line_no), 1 << 20));
    // Stimulus generation is exponential in the input count; reject
    // corrupt headers before they can exhaust memory.
    if (model.num_inputs > 24) {
      throw ParseError("implausible CAMODEL input count " + tok[3], line_no);
    }
  }
  model.stimuli = generate_stimuli(model.num_inputs, model.policy);

  // Golden responses.
  {
    const std::vector<std::string> tok = split(next_line());
    if (tok.size() != 2 || tok[0] != "GOLDEN") throw ParseError("expected GOLDEN line", line_no);
    if (tok[1].size() != model.stimuli.size()) {
      throw ParseError("GOLDEN length mismatch", line_no);
    }
    for (char c : tok[1]) {
      switch (c) {
        case '0': model.golden_responses.push_back(Sig::kZero); break;
        case '1': model.golden_responses.push_back(Sig::kOne); break;
        default: throw ParseError("golden responses must be binary", line_no);
      }
    }
  }

  // Defect blocks.
  for (;;) {
    const std::string header = next_line();
    if (header == "ENDMODEL") break;
    const std::vector<std::string> tok = split(header);
    if (tok.size() < 2 || tok[0] != "DEFECT") throw ParseError("expected DEFECT line", line_no);
    CaDefectEntry entry;
    std::size_t pos = 1;
    if (tok[pos] == "resistive") {
      entry.defect.strength = DefectStrength::kResistive;
      ++pos;
      if (pos >= tok.size()) throw ParseError("resistive needs a defect kind", line_no);
    }
    if (tok[pos] == "open") {
      if (tok.size() < pos + 2) throw ParseError("open defect needs a terminal", line_no);
      entry.defect.kind = DefectKind::kOpen;
      entry.defect.a = entry.defect.b = parse_terminal_ref(cell, tok[pos + 1], line_no);
      pos += 2;
    } else if (tok[pos] == "short") {
      if (tok.size() < pos + 3) throw ParseError("short defect needs two terminals", line_no);
      entry.defect.kind = DefectKind::kShort;
      entry.defect.a = parse_terminal_ref(cell, tok[pos + 1], line_no);
      entry.defect.b = parse_terminal_ref(cell, tok[pos + 2], line_no);
      pos += 3;
    } else {
      throw ParseError("unknown defect kind '" + tok[pos] + "'", line_no);
    }
    if (pos + 1 >= tok.size() || tok[pos] != "CLASS") {
      throw ParseError("expected CLASS in DEFECT line", line_no);
    }

    const std::vector<std::string> det = split(next_line());
    if (det.size() != 2 || det[0] != "DETECT") throw ParseError("expected DETECT line", line_no);
    if (det[1].size() != model.stimuli.size()) {
      throw ParseError("DETECT length mismatch", line_no);
    }
    entry.detection.reserve(det[1].size());
    for (char c : det[1]) {
      if (c != '0' && c != '1') throw ParseError("DETECT must be a bitstring", line_no);
      entry.detection.push_back(static_cast<std::uint8_t>(c == '1'));
    }
    model.defects.push_back(std::move(entry));
  }
  // Classes are recomputed rather than trusted from the file.
  model.classify();
  return model;
}

std::string ca_model_to_string(const CaModel& model, const Cell& cell) {
  std::ostringstream os;
  write_ca_model(os, model, cell);
  return os.str();
}

CaModel ca_model_from_string(const std::string& text, const Cell& cell) {
  std::istringstream in(text);
  return read_ca_model(in, cell);
}

void write_ca_model_file(const std::string& path, const CaModel& model, const Cell& cell) {
  io::write_checksummed_file(path, "camodel", ca_model_to_string(model, cell), "checkpoint");
}

CaModel read_ca_model_file(const std::string& path, const Cell& cell) {
  const std::string text = io::read_checksummed_or_raw(path, "camodel");
  try {
    return ca_model_from_string(text, cell);
  } catch (const ParseError& e) {
    throw ParseError::in_file(path, e);
  }
}

}  // namespace caml
