#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "camodel/ca_model.hpp"
#include "netlist/cell.hpp"

namespace caml {

/// Text serialization of CA models — the stand-in for the commercial CA
/// model files the paper's flow "rewrites" into its internal form
/// (Fig. 3, first step). Round-trips exactly.
///
///   CAMODEL NAND2X1 INPUTS 2 POLICY exhaustive DEFECTS 36
///   GOLDEN 1110...
///   DEFECT open MN0.G CLASS static
///   DETECT 00100...
///   ...
///   ENDMODEL
void write_ca_model(std::ostream& os, const CaModel& model, const Cell& cell);

/// Parses one CAMODEL block. The cell provides the device-name ->
/// transistor mapping; throws caml::ParseError on malformed input or
/// caml::Error when a referenced device does not exist in the cell.
CaModel read_ca_model(std::istream& in, const Cell& cell);

std::string ca_model_to_string(const CaModel& model, const Cell& cell);
CaModel ca_model_from_string(const std::string& text, const Cell& cell);

/// Durable .camodel file: the CAMODEL text wrapped in a checksummed
/// CAMLF1 container (kind "camodel") and published atomically — the
/// form the characterization checkpoints write, so a truncated or
/// bit-flipped artifact is rejected on load (ParseError naming the file
/// and offset) instead of training on garbage. read_ca_model_file also
/// accepts a legacy unframed .camodel file (the interchange form that
/// `caml predict`/`caml query` emit).
void write_ca_model_file(const std::string& path, const CaModel& model, const Cell& cell);
CaModel read_ca_model_file(const std::string& path, const Cell& cell);

}  // namespace caml
