#include "camodel/pattern_selection.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace caml {

PatternSelection select_patterns(const CaModel& model, const PatternSelectionOptions& options) {
  PatternSelection out;

  // Work on equivalence classes: covering one representative covers the
  // class (identical detection vectors).
  std::vector<std::size_t> representatives;
  for (const auto& eq_class : model.equivalence_classes) {
    CAML_ASSERT(!eq_class.empty());
    const std::size_t rep = eq_class.front();
    if (model.defects[rep].klass == DefectClass::kUndetected) {
      for (std::size_t d : eq_class) out.undetected.push_back(d);
    } else {
      representatives.push_back(rep);
    }
  }
  std::sort(out.undetected.begin(), out.undetected.end());

  std::vector<std::uint8_t> covered(representatives.size(), 0);
  std::size_t remaining = representatives.size();
  const std::size_t budget =
      options.max_patterns == 0 ? model.stimuli.size() : options.max_patterns;

  while (remaining > 0 && out.stimuli.size() < budget) {
    std::size_t best_stimulus = 0;
    std::size_t best_gain = 0;
    bool best_static = false;
    for (std::size_t s = 0; s < model.stimuli.size(); ++s) {
      std::size_t gain = 0;
      for (std::size_t r = 0; r < representatives.size(); ++r) {
        if (!covered[r] && model.defects[representatives[r]].detection[s]) ++gain;
      }
      const bool is_static = model.stimuli[s].is_static();
      const bool better =
          gain > best_gain ||
          (gain == best_gain && gain > 0 && options.prefer_static && is_static && !best_static);
      if (better) {
        best_stimulus = s;
        best_gain = gain;
        best_static = is_static;
      }
    }
    if (best_gain == 0) break;  // defensive: nothing else coverable
    out.stimuli.push_back(best_stimulus);
    for (std::size_t r = 0; r < representatives.size(); ++r) {
      if (!covered[r] && model.defects[representatives[r]].detection[best_stimulus]) {
        covered[r] = 1;
        --remaining;
      }
    }
  }

  out.coverage = representatives.empty()
                     ? 1.0
                     : static_cast<double>(representatives.size() - remaining) /
                           static_cast<double>(representatives.size());
  return out;
}

}  // namespace caml
