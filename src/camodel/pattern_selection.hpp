#pragma once

#include <vector>

#include "camodel/ca_model.hpp"

namespace caml {

/// Result of cell-aware test pattern selection.
struct PatternSelection {
  /// Indices into the CA model's stimulus list, in selection order
  /// (each pattern detects at least one previously-uncovered defect).
  std::vector<std::size_t> stimuli;
  /// Defects (indices into model.defects) no stimulus detects.
  std::vector<std::size_t> undetected;
  /// Detected-defect coverage of the selection in [0, 1] (equals 1 by
  /// construction; exposed for partial-budget selections).
  double coverage = 0.0;
};

/// Options for select_patterns.
struct PatternSelectionOptions {
  /// Stop after this many patterns (0 = cover everything detectable).
  std::size_t max_patterns = 0;
  /// Prefer static stimuli when their marginal coverage ties a dynamic
  /// stimulus (static patterns are cheaper to apply on a tester).
  bool prefer_static = true;
};

/// Greedy set-cover over the CA model's detection matrix: repeatedly
/// pick the stimulus detecting the most still-uncovered defect
/// equivalence classes. This is the downstream consumption of a CA
/// model — cell-aware test generation of the kind the paper's
/// introduction motivates.
PatternSelection select_patterns(const CaModel& model,
                                 const PatternSelectionOptions& options = {});

}  // namespace caml
