#include "defect/defect.hpp"

#include "util/error.hpp"

namespace caml {

const char* defect_kind_name(DefectKind k) {
  switch (k) {
    case DefectKind::kOpen: return "open";
    case DefectKind::kShort: return "short";
  }
  throw Error("invalid DefectKind");
}

const char* defect_strength_name(DefectStrength s) {
  switch (s) {
    case DefectStrength::kHard: return "hard";
    case DefectStrength::kResistive: return "resistive";
  }
  throw Error("invalid DefectStrength");
}

std::string Defect::describe(const Cell& cell) const {
  const auto term = [&](const TerminalRef& r) {
    return cell.transistor(r.transistor).name + "." + terminal_name(r.terminal);
  };
  const std::string prefix =
      strength == DefectStrength::kResistive ? "resistive-" : "";
  if (kind == DefectKind::kOpen) return prefix + "open(" + term(a) + ")";
  return prefix + "short(" + term(a) + ", " + term(b) + ")";
}

}  // namespace caml
