#pragma once

#include <string>

#include "netlist/graph.hpp"

namespace caml {

/// Physical defect class, following the paper's Section IV taxonomy.
enum class DefectKind : std::uint8_t {
  kOpen,   ///< open (disconnection) at one transistor terminal
  kShort,  ///< short between two transistor terminals
};

const char* defect_kind_name(DefectKind k);

/// Electrical severity of the defect. The paper notes that CA flows
/// model shorts/opens with fixed resistance values that are "often
/// identical for all technologies"; hard defects are the zero/infinite
/// resistance limit, resistive ones the finite-resistance variant (a
/// weak bridge for shorts, a weak residual path for opens).
enum class DefectStrength : std::uint8_t {
  kHard,       ///< 0-ohm short / fully broken open
  kResistive,  ///< finite-resistance short / leaky open
};

const char* defect_strength_name(DefectStrength s);

/// One cell-internal defect. Opens reference a single terminal
/// (`a`, with `b == a`); shorts reference two terminals, which belong to
/// the same transistor for intra-transistor shorts and to different
/// transistors for inter-transistor shorts (bridges).
struct Defect {
  DefectKind kind = DefectKind::kOpen;
  DefectStrength strength = DefectStrength::kHard;
  TerminalRef a{0, Terminal::kDrain};
  TerminalRef b{0, Terminal::kDrain};

  bool is_intra_transistor() const { return a.transistor == b.transistor; }

  /// Human-readable description using the cell's device names, e.g.
  /// "open(MN0.S)" or "short(MN0.D, MN1.S)".
  std::string describe(const Cell& cell) const;

  bool operator==(const Defect&) const = default;
};

}  // namespace caml
