#include "defect/injector.hpp"

#include "util/error.hpp"

namespace caml {

Cell inject_defect(const Cell& cell, const Defect& defect, const InjectionConfig& config) {
  const auto num = static_cast<TransistorId>(cell.num_transistors());
  if (defect.a.transistor < 0 || defect.a.transistor >= num || defect.b.transistor < 0 ||
      defect.b.transistor >= num) {
    throw Error("defect references a transistor outside cell " + cell.name());
  }

  Cell out = cell;
  const auto add_bridge = [&](NetId na, NetId nb, double width, const char* name) {
    Transistor bridge;
    bridge.name = name;
    bridge.type = MosType::kNmos;
    bridge.gate = out.vdd();  // always conducting
    bridge.drain = na;
    bridge.source = nb;
    bridge.bulk = out.vss();
    bridge.width_um = width;
    bridge.length_um = config.short_length_um;
    out.add_transistor(std::move(bridge));
  };
  switch (defect.kind) {
    case DefectKind::kOpen: {
      const NetId original = out.transistor(defect.a.transistor).terminal(defect.a.terminal);
      const NetId floating =
          out.add_net("__open_" + out.transistor(defect.a.transistor).name + "_" +
                          terminal_name(defect.a.terminal),
                      NetKind::kInternal);
      out.transistor(defect.a.transistor).set_terminal(defect.a.terminal, floating);
      if (defect.strength == DefectStrength::kResistive) {
        // A leaky break: the detached terminal keeps a weak path to its
        // original net.
        add_bridge(original, floating, config.resistive_open_width_um, "__open_residual");
      }
      break;
    }
    case DefectKind::kShort: {
      const NetId na = out.transistor(defect.a.transistor).terminal(defect.a.terminal);
      const NetId nb = out.transistor(defect.b.transistor).terminal(defect.b.terminal);
      if (na == nb) {
        throw Error("short defect between already-connected nets in cell " + cell.name());
      }
      add_bridge(na, nb,
                 defect.strength == DefectStrength::kResistive
                     ? config.resistive_short_width_um
                     : config.short_width_um,
                 "__short_bridge");
      break;
    }
  }
  return out;
}

}  // namespace caml
