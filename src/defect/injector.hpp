#pragma once

#include "defect/defect.hpp"
#include "netlist/cell.hpp"

namespace caml {

/// How defects are realized as netlist transformations.
struct InjectionConfig {
  /// Shorts are modeled as an always-conducting bridge device between
  /// the two shorted nets (an NMOS whose gate is tied to VDD). Its width
  /// sets the short's drive strength class — a hard, low-resistance
  /// short by default, consistent with the paper's observation that
  /// short resistances are identical across technologies.
  double short_width_um = 0.8;
  double short_length_um = 0.03;
  /// Width of the bridge realizing a *resistive* short (a weak driver
  /// that loses most strength fights).
  double resistive_short_width_um = 0.08;
  /// Width of the residual bridge a *resistive* open leaves between the
  /// detached terminal and its original net.
  double resistive_open_width_um = 0.06;
};

/// Returns a copy of the cell with the defect injected:
///  - hard terminal open: the terminal is re-attached to a fresh
///    floating net (a gate open therefore leaves the channel
///    permanently off; a source/drain open breaks that side of the
///    channel path),
///  - resistive open: as above, plus a weak residual bridge back to the
///    original net (a leaky break),
///  - short: a bridge device is added between the two terminal nets —
///    strong for hard shorts, weak for resistive ones.
///
/// Throws caml::Error if the defect references an invalid transistor or
/// if a short's two terminals already share a net (a no-op defect; the
/// enumerator never produces these).
Cell inject_defect(const Cell& cell, const Defect& defect, const InjectionConfig& config = {});

}  // namespace caml
