#include "defect/overlay.hpp"

#include "util/error.hpp"

namespace caml {

DefectOverlay::DefectOverlay(const Cell& base, InjectionConfig config)
    : cell_(base), config_(config) {
  cell_.reserve(base.num_nets() + kMaxExtraNets, base.num_transistors() + kMaxExtraTransistors);
}

void DefectOverlay::apply(const Defect& defect) {
  if (applied_) throw Error("DefectOverlay: apply() while a defect is already applied");
  const auto num = static_cast<TransistorId>(cell_.num_transistors());
  if (defect.a.transistor < 0 || defect.a.transistor >= num || defect.b.transistor < 0 ||
      defect.b.transistor >= num) {
    throw Error("defect references a transistor outside cell " + cell_.name());
  }

  // Same bridge geometry as inject_defect(); the fixed SSO-sized names
  // keep the hot path free of string allocations (bridge/net names are
  // never part of any simulation result).
  const auto add_bridge = [&](NetId na, NetId nb, double width, const char* name) {
    Transistor bridge;
    bridge.name = name;
    bridge.type = MosType::kNmos;
    bridge.gate = cell_.vdd();  // always conducting
    bridge.drain = na;
    bridge.source = nb;
    bridge.bulk = cell_.vss();
    bridge.width_um = width;
    bridge.length_um = config_.short_length_um;
    cell_.add_transistor(std::move(bridge));
    added_bridge_ = true;
  };

  switch (defect.kind) {
    case DefectKind::kOpen: {
      const NetId original = cell_.transistor(defect.a.transistor).terminal(defect.a.terminal);
      const NetId floating = cell_.add_net("__overlay_open", NetKind::kInternal);
      added_net_ = true;
      cell_.transistor(defect.a.transistor).set_terminal(defect.a.terminal, floating);
      moved_terminal_ = true;
      moved_ = defect.a;
      original_net_ = original;
      if (defect.strength == DefectStrength::kResistive) {
        // A leaky break: the detached terminal keeps a weak path to its
        // original net.
        add_bridge(original, floating, config_.resistive_open_width_um, "__open_residual");
      }
      break;
    }
    case DefectKind::kShort: {
      const NetId na = cell_.transistor(defect.a.transistor).terminal(defect.a.terminal);
      const NetId nb = cell_.transistor(defect.b.transistor).terminal(defect.b.terminal);
      if (na == nb) {
        throw Error("short defect between already-connected nets in cell " + cell_.name());
      }
      add_bridge(na, nb,
                 defect.strength == DefectStrength::kResistive ? config_.resistive_short_width_um
                                                               : config_.short_width_um,
                 "__short_bridge");
      break;
    }
  }
  applied_ = true;
}

void DefectOverlay::revert() {
  if (!applied_) return;
  // Strict LIFO: the bridge (if any) references the floating net (if
  // any), so it goes first.
  if (added_bridge_) {
    cell_.remove_last_transistor();
    added_bridge_ = false;
  }
  if (moved_terminal_) {
    cell_.transistor(moved_.transistor).set_terminal(moved_.terminal, original_net_);
    moved_terminal_ = false;
    original_net_ = kNoNet;
  }
  if (added_net_) {
    cell_.remove_last_net();
    added_net_ = false;
  }
  applied_ = false;
}

}  // namespace caml
