#pragma once

#include "defect/defect.hpp"
#include "defect/injector.hpp"
#include "netlist/cell.hpp"

namespace caml {

/// In-place, revertible defect injection on one reusable working copy of
/// a cell — the zero-allocation replacement for the per-defect
/// inject_defect() cell copy in the characterization hot loop.
///
/// The overlay owns a single copy of the base cell with net/transistor
/// storage pre-reserved for the at-most-one extra net and one extra
/// bridge device any defect adds, so apply()/revert() perform no heap
/// allocation. The realized netlist transformation is identical to
/// inject_defect() (same bridge geometry, same rewiring; only the names
/// of the transient net/bridge differ, which no simulation result
/// depends on):
///  - hard terminal open: the terminal is re-attached to a fresh
///    floating net,
///  - resistive open: as above, plus a weak residual bridge back to the
///    original net,
///  - short: a bridge device between the two terminal nets — strong for
///    hard shorts, weak for resistive ones.
///
/// Usage, one (cell, worker) pair per thread:
///   DefectOverlay overlay(cell, config);
///   SwitchSim sim(overlay.cell(), sim_config);
///   sim.reserve(cell.num_nets() + DefectOverlay::kMaxExtraNets,
///               cell.num_transistors() + DefectOverlay::kMaxExtraTransistors);
///   for (const Defect& d : universe) {
///     overlay.apply(d);
///     sim.rebind();
///     ... sim.run(...) per stimulus ...
///     overlay.revert();
///   }
///
/// apply() throws caml::Error exactly when inject_defect() would (invalid
/// transistor reference, short between already-connected nets) and
/// leaves the working cell unchanged in that case.
class DefectOverlay {
 public:
  /// Upper bound on how much a single applied defect grows the cell.
  static constexpr std::size_t kMaxExtraNets = 1;
  static constexpr std::size_t kMaxExtraTransistors = 1;

  explicit DefectOverlay(const Cell& base, InjectionConfig config = {});

  /// The working cell: the base cell, plus the applied defect while one
  /// is active. Mutated in place by apply()/revert().
  const Cell& cell() const { return cell_; }

  bool applied() const { return applied_; }

  /// Applies a defect in place. Throws caml::Error if a defect is
  /// already applied or if the defect is invalid for this cell (working
  /// cell left unchanged).
  void apply(const Defect& defect);

  /// Reverts the applied defect, restoring the working cell to the base
  /// cell exactly. No-op when nothing is applied.
  void revert();

 private:
  Cell cell_;
  InjectionConfig config_;
  bool applied_ = false;
  // Undo log of the one applied defect.
  bool moved_terminal_ = false;
  TerminalRef moved_{0, Terminal::kDrain};
  NetId original_net_ = kNoNet;
  bool added_net_ = false;
  bool added_bridge_ = false;
};

}  // namespace caml
