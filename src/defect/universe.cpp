#include "defect/universe.hpp"

namespace caml {

std::vector<Defect> enumerate_defects(const Cell& cell, const UniverseOptions& options) {
  std::vector<Defect> out;
  const auto num = static_cast<TransistorId>(cell.num_transistors());

  if (options.opens) {
    for (TransistorId ti = 0; ti < num; ++ti) {
      for (Terminal term : {Terminal::kGate, Terminal::kSource, Terminal::kDrain}) {
        Defect d;
        d.kind = DefectKind::kOpen;
        d.a = d.b = TerminalRef{ti, term};
        out.push_back(d);
      }
    }
  }

  if (options.intra_transistor_shorts) {
    static constexpr Terminal kPairs[][2] = {
        {Terminal::kGate, Terminal::kSource}, {Terminal::kGate, Terminal::kDrain},
        {Terminal::kSource, Terminal::kDrain}, {Terminal::kBulk, Terminal::kGate},
        {Terminal::kBulk, Terminal::kSource}, {Terminal::kBulk, Terminal::kDrain}};
    for (TransistorId ti = 0; ti < num; ++ti) {
      const Transistor& t = cell.transistor(ti);
      for (const auto& pair : kPairs) {
        if (t.terminal(pair[0]) == t.terminal(pair[1])) continue;  // already connected
        Defect d;
        d.kind = DefectKind::kShort;
        d.a = TerminalRef{ti, pair[0]};
        d.b = TerminalRef{ti, pair[1]};
        out.push_back(d);
      }
    }
  }

  if (options.inter_transistor_shorts) {
    const CellGraph graph(cell);
    for (const auto& component : graph.channel_connected_components()) {
      for (std::size_t i = 0; i < component.size(); ++i) {
        for (std::size_t j = i + 1; j < component.size(); ++j) {
          const Transistor& ta = cell.transistor(component[i]);
          const Transistor& tb = cell.transistor(component[j]);
          for (Terminal terma : {Terminal::kSource, Terminal::kDrain}) {
            for (Terminal termb : {Terminal::kSource, Terminal::kDrain}) {
              if (ta.terminal(terma) == tb.terminal(termb)) continue;
              Defect d;
              d.kind = DefectKind::kShort;
              d.a = TerminalRef{component[i], terma};
              d.b = TerminalRef{component[j], termb};
              out.push_back(d);
            }
          }
        }
      }
    }
  }

  if (options.resistive_variants) {
    const std::size_t hard_count = out.size();
    out.reserve(hard_count * 2);
    for (std::size_t i = 0; i < hard_count; ++i) {
      Defect r = out[i];
      r.strength = DefectStrength::kResistive;
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace caml
