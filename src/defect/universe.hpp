#pragma once

#include <vector>

#include "defect/defect.hpp"

namespace caml {

/// Which defects to enumerate for a cell.
struct UniverseOptions {
  /// Opens on gate, source and drain of every transistor (bulk opens
  /// have no effect in the switch-level model and are never enumerated).
  bool opens = true;
  /// Intra-transistor shorts between every terminal pair (G-S, G-D,
  /// S-D, B-G, B-S, B-D), skipping pairs whose nets are already
  /// connected in the defect-free cell (injecting them would be a
  /// no-op).
  bool intra_transistor_shorts = true;
  /// Inter-transistor shorts (bridges) between source/drain terminals of
  /// different transistors within the same channel-connected component.
  /// The paper mentions but does not evaluate these; off by default.
  bool inter_transistor_shorts = false;
  /// Emit a resistive (finite-resistance) variant of every enumerated
  /// defect in addition to the hard one. Off by default (the paper's
  /// universe); doubles the defect count when enabled.
  bool resistive_variants = false;
};

/// Enumerates the defect universe of a cell in a deterministic order
/// (transistor index, then terminal order, opens before shorts). Two
/// cells with identical transistor structure produce defect lists that
/// correspond index-by-index after canonical renaming — the property the
/// CA-matrix relies on.
std::vector<Defect> enumerate_defects(const Cell& cell, const UniverseOptions& options = {});

}  // namespace caml
