#include "flow/characterize.hpp"

#include <atomic>

#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace caml {

CharacterizedCell characterize_cell(const LibraryCell& cell, const Technology& tech,
                                    const CharacterizeOptions& options) {
  GenerationOptions gen;
  gen.policy = options.policy.policy_for(cell.cell.num_inputs());
  gen.universe = options.universe;
  gen.injection = options.injection;
  gen.sim = options.use_technology_sim ? tech.sim : options.sim_override;

  CharacterizedCell out;
  out.source = cell;
  out.model = generate_ca_model(cell.cell, gen);
  out.canonical = canonicalize(cell.cell, gen.sim);
  out.sim = gen.sim;
  return out;
}

std::vector<CharacterizedCell> characterize_library(const Library& library,
                                                    const CharacterizeOptions& options) {
  const std::size_t total = library.cells.size();
  // Each cell's characterization is a pure function of (cell, tech,
  // options), so the parallel map is bit-identical to the serial loop
  // for any thread count; parallel_map reassembles results in library
  // order. Progress counts completions (not positions) so the log stays
  // monotonic under concurrency, and the final N/N line always fires.
  std::atomic<std::size_t> done{0};
  return parallel_map(library.cells, options.jobs, [&](const LibraryCell& cell) {
    CharacterizedCell out = characterize_cell(cell, library.technology, options);
    const std::size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (finished % 100 == 0 || finished == total) {
      log_info() << library.name << ": characterized " << finished << "/" << total << " cells";
    }
    return out;
  });
}

}  // namespace caml
