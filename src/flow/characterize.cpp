#include "flow/characterize.hpp"

#include <atomic>
#include <filesystem>
#include <optional>

#include "camodel/model_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/timing.hpp"

namespace caml {

namespace {

/// The simulator config a cell would be characterized with — needed both
/// by the fresh path and to reconstruct checkpointed cells identically.
SimConfig effective_sim(const Technology& tech, const CharacterizeOptions& options) {
  return options.use_technology_sim ? tech.sim : options.sim_override;
}

std::string artifact_path(const std::string& dir, const std::string& cell_name) {
  return (std::filesystem::path(dir) / (cell_name + ".camodel")).string();
}

/// Rebuilds a CharacterizedCell from its checkpoint artifact. The model
/// text round-trips exactly; canonical form and sim config are pure
/// recomputations, so the result is bit-identical to characterize_cell.
std::optional<CharacterizedCell> load_checkpointed_cell(const LibraryCell& cell,
                                                        const Technology& tech,
                                                        const CharacterizeOptions& options) {
  const std::string path = artifact_path(options.checkpoint.dir, cell.cell.name());
  try {
    CharacterizedCell out;
    out.source = cell;
    out.model = read_ca_model_file(path, cell.cell);
    out.sim = effective_sim(tech, options);
    out.canonical = canonicalize(cell.cell, out.sim);
    return out;
  } catch (const Error& e) {
    log_warn() << "checkpoint artifact for " << cell.cell.name()
               << " is missing or corrupt (" << e.what() << "); re-characterizing";
    return std::nullopt;
  }
}

}  // namespace

CharacterizedCell characterize_cell(const LibraryCell& cell, const Technology& tech,
                                    const CharacterizeOptions& options) {
  obs::TraceSpan span("characterize_cell");
  span.attr("cell", cell.cell.name());
  GenerationOptions gen;
  gen.policy = options.policy.policy_for(cell.cell.num_inputs());
  gen.universe = options.universe;
  gen.injection = options.injection;
  gen.sim = effective_sim(tech, options);

  CharacterizedCell out;
  out.source = cell;
  out.model = generate_ca_model(cell.cell, gen);
  out.canonical = canonicalize(cell.cell, gen.sim);
  out.sim = gen.sim;
  return out;
}

std::vector<CharacterizedCell> characterize_library(const Library& library,
                                                    const CharacterizeOptions& options) {
  const std::size_t total = library.cells.size();
  std::optional<CheckpointJournal> journal;
  if (options.checkpoint.enabled()) {
    journal.emplace(options.checkpoint.dir, options.checkpoint.every);
    if (options.checkpoint.resume) journal->load();
  }
  // Each cell's characterization is a pure function of (cell, tech,
  // options), so the parallel map is bit-identical to the serial loop
  // for any thread count; parallel_map reassembles results in library
  // order. Progress counts completions (not positions) so the log stays
  // monotonic under concurrency, and the final N/N line always fires.
  //
  // With checkpointing, a cell's artifact is made durable before the
  // journal records it (journal-after-data): a crash between the two
  // only costs a re-simulation, never yields a journal entry without a
  // verifiable artifact.
  // Progress logging is time-gated (not every-N): under a high --jobs
  // count a per-cell (or per-100-cells) line would serialize workers on
  // the log mutex. The final N/N line is emitted unconditionally.
  CAML_TRACE_SPAN_ITEMS("characterize_library", total);
  static obs::Counter& cells_counter = obs::Registry::global().counter(
      "caml_cells_characterized_total", "Cells characterized by the conventional flow");
  static obs::Histogram& cell_us = obs::Registry::global().histogram(
      "caml_characterize_cell_us", "Per-cell characterization latency in microseconds");
  LogRateLimiter progress_gate(500'000);
  std::atomic<std::size_t> done{0};
  std::vector<CharacterizedCell> result =
      parallel_map(library.cells, options.jobs, [&](const LibraryCell& cell) {
        const Stopwatch watch;
        std::optional<CharacterizedCell> out;
        if (journal && journal->completed(cell.cell.name())) {
          out = load_checkpointed_cell(cell, library.technology, options);
        }
        if (!out) {
          out = characterize_cell(cell, library.technology, options);
          if (journal) {
            write_ca_model_file(artifact_path(options.checkpoint.dir, cell.cell.name()),
                                out->model, cell.cell);
            journal->record(cell.cell.name());
          }
        }
        cells_counter.add();
        cell_us.record(static_cast<std::uint64_t>(std::max<std::int64_t>(watch.elapsed_us(), 0)));
        const std::size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (finished == total || progress_gate.allow(monotonic_us())) {
          log_info() << library.name << ": characterized " << finished << "/" << total
                     << " cells";
        }
        return std::move(*out);
      });
  if (journal) journal->flush();
  return result;
}

}  // namespace caml
