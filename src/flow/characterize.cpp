#include "flow/characterize.hpp"

#include "util/log.hpp"

namespace caml {

CharacterizedCell characterize_cell(const LibraryCell& cell, const Technology& tech,
                                    const CharacterizeOptions& options) {
  GenerationOptions gen;
  gen.policy = options.policy.policy_for(cell.cell.num_inputs());
  gen.universe = options.universe;
  gen.injection = options.injection;
  gen.sim = options.use_technology_sim ? tech.sim : options.sim_override;

  CharacterizedCell out;
  out.source = cell;
  out.model = generate_ca_model(cell.cell, gen);
  out.canonical = canonicalize(cell.cell, gen.sim);
  out.sim = gen.sim;
  return out;
}

std::vector<CharacterizedCell> characterize_library(const Library& library,
                                                    const CharacterizeOptions& options) {
  std::vector<CharacterizedCell> out;
  out.reserve(library.cells.size());
  for (const LibraryCell& cell : library.cells) {
    out.push_back(characterize_cell(cell, library.technology, options));
    if (out.size() % 100 == 0) {
      log_info() << library.name << ": characterized " << out.size() << "/"
                 << library.cells.size() << " cells";
    }
  }
  return out;
}

}  // namespace caml
