#pragma once

#include <vector>

#include "camatrix/canonical.hpp"
#include "camodel/generate.hpp"
#include "flow/checkpoint.hpp"
#include "libgen/builder.hpp"

namespace caml {

/// Stimulus-policy schedule: cells with few inputs afford the exhaustive
/// two-pattern set; wide cells fall back to the single-input-change set
/// to keep single-core runtimes bounded. Training and evaluation always
/// agree because the policy depends only on the input count.
struct PolicyProfile {
  std::size_t exhaustive_max_inputs = 4;

  StimulusPolicy policy_for(std::size_t num_inputs) const {
    return num_inputs <= exhaustive_max_inputs ? StimulusPolicy::kExhaustivePairs
                                               : StimulusPolicy::kSingleInputChange;
  }
};

/// A library cell with everything the downstream flows need: its
/// simulated (ground-truth) CA model and its canonical form.
struct CharacterizedCell {
  LibraryCell source;
  CaModel model;
  CanonicalCell canonical;
  /// Simulator (test-condition) parameters the model was generated
  /// with; reused for the golden sweeps of CA-matrix construction.
  SimConfig sim;

  std::size_t num_inputs() const { return source.cell.num_inputs(); }
  std::size_t num_transistors() const { return source.cell.num_transistors(); }
};

struct CharacterizeOptions {
  PolicyProfile policy;
  UniverseOptions universe;
  InjectionConfig injection;
  /// The simulator (test-condition) parameters default to the library's
  /// technology profile; override only for experiments.
  bool use_technology_sim = true;
  SimConfig sim_override;
  /// Worker threads for characterize_library (0 = one per hardware
  /// thread, 1 = serial). Results are identical for any value: cells are
  /// characterized independently and reassembled in library order.
  std::size_t jobs = 0;
  /// Crash-safe progress: when enabled, each characterized cell is
  /// persisted as a checksummed .camodel artifact in checkpoint.dir the
  /// moment it completes, and a journal of completed cells is rewritten
  /// atomically every checkpoint.every units. With checkpoint.resume,
  /// cells whose artifact verifies are loaded back instead of
  /// re-simulated — the returned vector is bit-identical to an
  /// uninterrupted run (CA models round-trip exactly; the canonical form
  /// and sim config are recomputed deterministically).
  CheckpointOptions checkpoint;
};

/// Runs the conventional (simulation-based) generation flow over a whole
/// library — the source of both training data and ground truth.
std::vector<CharacterizedCell> characterize_library(const Library& library,
                                                    const CharacterizeOptions& options = {});

/// Characterizes a single cell under a technology.
CharacterizedCell characterize_cell(const LibraryCell& cell, const Technology& tech,
                                    const CharacterizeOptions& options = {});

}  // namespace caml
