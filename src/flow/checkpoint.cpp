#include "flow/checkpoint.hpp"

#include <filesystem>
#include <sstream>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace caml {

CheckpointJournal::CheckpointJournal(std::string dir, std::size_t flush_every)
    : dir_(std::move(dir)), every_(flush_every == 0 ? 1 : flush_every) {
  std::filesystem::create_directories(dir_);
}

std::string CheckpointJournal::path() const {
  return (std::filesystem::path(dir_) / kFileName).string();
}

void CheckpointJournal::load() {
  std::lock_guard<std::mutex> lock(mutex_);
  done_.clear();
  unflushed_ = 0;
  // Sweep staging litter first: a crash between an atomic writer's write
  // and its rename leaves `<name>.tmp.<pid>` behind. Those bytes were
  // never published, so resume removes them — the resumed directory ends
  // up byte-identical to an uninterrupted run's.
  std::error_code ignored;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ignored)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      std::filesystem::remove(entry.path(), ignored);
    }
  }
  const std::string file = path();
  if (!std::filesystem::exists(file)) return;
  std::string payload;
  try {
    payload = io::read_checksummed_file(file, "journal");
  } catch (const Error& e) {
    log_warn() << "discarding unreadable checkpoint journal " << file << ": " << e.what();
    return;
  }
  // Parse strictly; any malformed line discards the whole journal — the
  // CRC passed, so damage here is a writer bug and the only safe answer
  // is to redo the work the journal claimed.
  std::map<std::string, std::string> parsed;
  std::istringstream in(payload);
  std::string line;
  const std::string header_prefix = "CAMLJOURNAL v1 units=";
  if (!std::getline(in, line) || line.rfind(header_prefix, 0) != 0) {
    log_warn() << "discarding checkpoint journal " << file << ": bad header";
    return;
  }
  const auto count = try_parse_uint64(line.substr(header_prefix.size()));
  if (!count) {
    log_warn() << "discarding checkpoint journal " << file << ": bad unit count";
    return;
  }
  bool terminated = false;
  while (std::getline(in, line)) {
    if (line == "END") {
      terminated = true;
      break;
    }
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos || tab == 0) {
      log_warn() << "discarding checkpoint journal " << file << ": malformed unit line";
      return;
    }
    parsed[line.substr(0, tab)] = line.substr(tab + 1);
  }
  if (!terminated || parsed.size() != *count) {
    log_warn() << "discarding checkpoint journal " << file
               << ": unit count does not match header";
    return;
  }
  done_ = std::move(parsed);
  log_info() << "resuming from checkpoint journal " << file << " (" << done_.size()
             << " completed units)";
}

bool CheckpointJournal::completed(const std::string& unit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_.count(unit) > 0;
}

std::string CheckpointJournal::payload(const std::string& unit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = done_.find(unit);
  return it == done_.end() ? std::string() : it->second;
}

void CheckpointJournal::record(const std::string& unit, std::string payload) {
  CAML_ASSERT(unit.find_first_of("\t\n") == std::string::npos);
  CAML_ASSERT(payload.find('\n') == std::string::npos);
  std::lock_guard<std::mutex> lock(mutex_);
  done_[unit] = std::move(payload);
  if (++unflushed_ >= every_) flush_locked();
}

void CheckpointJournal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
}

void CheckpointJournal::flush_locked() {
  CAML_TRACE_SPAN_ITEMS("checkpoint_flush", done_.size());
  std::ostringstream out;
  out << "CAMLJOURNAL v1 units=" << done_.size() << '\n';
  for (const auto& [unit, payload] : done_) out << unit << '\t' << payload << '\n';
  out << "END\n";
  io::write_checksummed_file(path(), "journal", out.str(), "checkpoint");
  unflushed_ = 0;
}

std::size_t CheckpointJournal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_.size();
}

}  // namespace caml
