#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace caml {

/// Crash-safe progress options shared by the long-running flows
/// (characterize_library, run_hybrid_flow, `caml characterize`).
struct CheckpointOptions {
  /// Directory holding the journal and the per-unit artifacts; empty
  /// disables checkpointing entirely.
  std::string dir;
  /// Journal flush cadence: an atomic rewrite every `every` completed
  /// work units (a crash loses at most the last `every - 1` units of
  /// bookkeeping — the artifacts themselves are durable the moment they
  /// are written).
  std::size_t every = 16;
  /// Load an existing journal and skip the units it records.
  bool resume = false;

  bool enabled() const { return !dir.empty(); }
};

/// Journal of completed (cell, group) work units for a long batch run.
/// One line per unit, optionally carrying a payload replayed on resume,
/// wrapped in a checksummed CAMLF1 container (kind "journal") and
/// rewritten atomically — the journal on disk is always a complete,
/// verifiable snapshot of some prefix of the run's progress:
///
///   CAMLJOURNAL v1 units=<n>
///   <unit-id>\t<payload>
///   ...
///   END
///
/// Units are flushed sorted by id, so two runs that completed the same
/// unit set produce byte-identical journals regardless of completion
/// order — the property the kill-and-resume byte-compare leans on.
///
/// record() is thread-safe (characterization completes units on pool
/// workers). Unit ids must be newline/tab-free; payloads newline-free.
class CheckpointJournal {
 public:
  static constexpr const char* kFileName = "checkpoint.journal";

  /// `flush_every` = 0 flushes on every record.
  CheckpointJournal(std::string dir, std::size_t flush_every);

  /// Loads an existing journal. A missing file yields an empty journal;
  /// a corrupt or truncated one is discarded with a warning (its units
  /// are simply re-run — resume must never trust bad bookkeeping). Also
  /// removes stale `*.tmp.<pid>` staging files a crash left in the
  /// checkpoint directory (unpublished bytes, safe to drop).
  void load();

  bool completed(const std::string& unit) const;
  /// The payload recorded with a completed unit ("" when none).
  std::string payload(const std::string& unit) const;

  /// Records a finished unit; flushes the journal atomically every
  /// `flush_every` records. The unit's artifact must already be durable
  /// when this is called (journal-after-data ordering).
  void record(const std::string& unit, std::string payload = std::string());

  /// Atomic rewrite of the journal file (idempotent; also called by the
  /// flows once the run completes so the journal never lags the end).
  void flush();

  std::size_t size() const;
  std::string path() const;

 private:
  void flush_locked();

  std::string dir_;
  std::size_t every_;
  mutable std::mutex mutex_;
  std::map<std::string, std::string> done_;
  std::size_t unflushed_ = 0;
};

}  // namespace caml
