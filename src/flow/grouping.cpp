#include "flow/grouping.hpp"

namespace caml {

GroupMap group_cells(const std::vector<CharacterizedCell>& cells) {
  GroupMap groups;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    groups[GroupKey{cells[i].num_inputs(), cells[i].num_transistors()}].push_back(i);
  }
  return groups;
}

}  // namespace caml
