#pragma once

#include <map>
#include <vector>

#include "flow/characterize.hpp"

namespace caml {

/// Cells are grouped by (number of inputs, number of transistors) —
/// paper Section II.B — so every cell in a group shares the CA-matrix
/// column layout and one classifier serves the whole group.
struct GroupKey {
  std::size_t num_inputs = 0;
  std::size_t num_transistors = 0;

  auto operator<=>(const GroupKey&) const = default;
};

/// Indices into the characterized-cell vector, grouped by key.
using GroupMap = std::map<GroupKey, std::vector<std::size_t>>;

GroupMap group_cells(const std::vector<CharacterizedCell>& cells);

}  // namespace caml
