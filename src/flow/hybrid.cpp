#include "flow/hybrid.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace caml {

namespace {

/// Hybrid-flow routing counters: how many targets took the ML shortcut,
/// how many were simulated conventionally, and how many degraded (ML
/// route attempted but failed over to simulation).
struct HybridMetrics {
  obs::Counter& routed_ml;
  obs::Counter& routed_conventional;
  obs::Counter& degraded;
  obs::Counter& replayed;

  static HybridMetrics& get() {
    static HybridMetrics m{
        obs::Registry::global().counter("caml_hybrid_routed_ml_total",
                                        "Targets served by the ML prediction route"),
        obs::Registry::global().counter("caml_hybrid_routed_conventional_total",
                                        "Targets sent to conventional generation"),
        obs::Registry::global().counter("caml_hybrid_degraded_total",
                                        "Targets that fell back after an ML-route failure"),
        obs::Registry::global().counter("caml_hybrid_replayed_total",
                                        "Targets replayed from a checkpoint journal"),
    };
    return m;
  }
};

}  // namespace

namespace {

/// Journal payload of one outcome. Doubles are hexfloat so replayed
/// outcomes reproduce the recorded values bit-exactly.
std::string encode_outcome(const HybridCellOutcome& o) {
  std::ostringstream os;
  os << static_cast<unsigned>(o.match) << ' ' << o.routed_to_ml << ' ' << o.degraded << ' '
     << std::hexfloat << o.accuracy << ' ' << o.conventional_seconds << ' ' << o.ml_seconds;
  return os.str();
}

std::optional<HybridCellOutcome> decode_outcome(const std::string& text) {
  const std::vector<std::string> tok = split(text);
  if (tok.size() != 6) return std::nullopt;
  const auto flag = [](const std::string& t) -> std::optional<bool> {
    if (t == "0") return false;
    if (t == "1") return true;
    return std::nullopt;
  };
  const auto real = [](const std::string& t) -> std::optional<double> {
    char* end = nullptr;
    const double value = std::strtod(t.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == t.c_str()) return std::nullopt;
    return value;
  };
  const auto match = try_parse_uint64(tok[0]);
  const auto routed = flag(tok[1]);
  const auto degraded = flag(tok[2]);
  const auto accuracy = real(tok[3]);
  const auto conventional = real(tok[4]);
  const auto ml = real(tok[5]);
  if (!match || *match > static_cast<unsigned>(StructureMatch::kNew) || !routed ||
      !degraded || !accuracy || !conventional || !ml) {
    return std::nullopt;
  }
  HybridCellOutcome o;
  o.match = static_cast<StructureMatch>(*match);
  o.routed_to_ml = *routed;
  o.degraded = *degraded;
  o.accuracy = *accuracy;
  o.conventional_seconds = *conventional;
  o.ml_seconds = *ml;
  return o;
}

}  // namespace

const char* routing_policy_name(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kStructural: return "structural";
    case RoutingPolicy::kActive: return "active";
    case RoutingPolicy::kHybrid: return "hybrid";
  }
  return "?";
}

std::optional<RoutingPolicy> parse_routing_policy(std::string_view name) {
  if (name == "structural") return RoutingPolicy::kStructural;
  if (name == "active") return RoutingPolicy::kActive;
  if (name == "hybrid") return RoutingPolicy::kHybrid;
  return std::nullopt;
}

double CostModel::seconds_per_simulation(std::size_t num_transistors) const {
  const double ratio = static_cast<double>(num_transistors) / reference_transistors;
  return base_seconds * std::pow(std::max(ratio, 1e-3), size_exponent);
}

double CostModel::conventional_seconds(const CharacterizedCell& cell) const {
  const std::size_t sims = (1 + cell.model.defects.size()) * cell.model.num_stimuli();
  return static_cast<double>(sims) * seconds_per_simulation(cell.num_transistors());
}

std::size_t HybridReport::count_match(StructureMatch m) const {
  std::size_t n = 0;
  for (const HybridCellOutcome& o : outcomes) n += o.match == m;
  return n;
}

std::size_t HybridReport::count_routed_to_ml() const {
  std::size_t n = 0;
  for (const HybridCellOutcome& o : outcomes) n += o.routed_to_ml;
  return n;
}

std::size_t HybridReport::count_degraded() const {
  std::size_t n = 0;
  for (const HybridCellOutcome& o : outcomes) n += o.degraded;
  return n;
}

double HybridReport::conventional_only_seconds() const {
  double s = 0.0;
  for (const HybridCellOutcome& o : outcomes) s += o.conventional_seconds;
  return s;
}

double HybridReport::hybrid_seconds() const {
  double s = 0.0;
  for (const HybridCellOutcome& o : outcomes) {
    s += o.routed_to_ml ? o.ml_seconds : o.conventional_seconds;
  }
  return s;
}

double HybridReport::ml_portion_reduction() const {
  double conv = 0.0, ml = 0.0;
  for (const HybridCellOutcome& o : outcomes) {
    if (o.routed_to_ml) {
      conv += o.conventional_seconds;
      ml += o.ml_seconds;
    }
  }
  return conv == 0.0 ? 0.0 : 1.0 - ml / conv;
}

double HybridReport::overall_reduction() const {
  const double conv = conventional_only_seconds();
  return conv == 0.0 ? 0.0 : 1.0 - hybrid_seconds() / conv;
}

double HybridReport::ml_accuracy_above(double threshold) const {
  std::size_t routed = 0, above = 0;
  for (const HybridCellOutcome& o : outcomes) {
    if (!o.routed_to_ml) continue;
    ++routed;
    above += o.accuracy > threshold;
  }
  return routed == 0 ? 0.0 : static_cast<double>(above) / static_cast<double>(routed);
}

HybridReport run_hybrid_flow(const std::vector<CharacterizedCell>& training,
                             const std::vector<CharacterizedCell>& targets,
                             const HybridOptions& options) {
  using Clock = std::chrono::steady_clock;

  CAML_TRACE_SPAN_ITEMS("hybrid_flow", targets.size());
  if (options.routing != RoutingPolicy::kStructural) {
    throw Error(std::string("run_hybrid_flow implements the structural policy only; route '") +
                routing_policy_name(options.routing) +
                "' through active::run_active_flow (src/active)");
  }
  HybridMetrics& metrics = HybridMetrics::get();
  StructureIndex index(training);
  // Training pool per group, extended by feedback.
  GroupMap train_groups = group_cells(training);
  std::map<GroupKey, std::vector<const CharacterizedCell*>> pool;
  for (const auto& [key, members] : train_groups) {
    for (std::size_t m : members) pool[key].push_back(&training[m]);
  }
  // Lazily trained classifiers, invalidated when feedback extends the
  // pool.
  std::map<GroupKey, std::unique_ptr<Classifier>> classifiers;
  std::map<GroupKey, double> training_seconds;
  std::map<GroupKey, std::size_t> cells_served;

  std::optional<CheckpointJournal> journal;
  if (options.checkpoint.enabled()) {
    journal.emplace(options.checkpoint.dir, options.checkpoint.every);
    if (options.checkpoint.resume) journal->load();
  }

  HybridReport report;
  // Which outcomes this process actually predicted (vs replayed from the
  // journal) — only those take a share of this process's training time.
  std::vector<char> predicted_live(targets.size(), 0);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const CharacterizedCell& cell = targets[i];
    const GroupKey key{cell.num_inputs(), cell.num_transistors()};
    const std::string unit = "target:" + std::to_string(i);

    if (journal && journal->completed(unit)) {
      if (std::optional<HybridCellOutcome> replayed = decode_outcome(journal->payload(unit))) {
        // Replay: reproduce the recorded outcome and rebuild the feedback
        // state the original run accumulated, so the remaining targets
        // see the same structure index and training pools.
        replayed->cell_index = i;
        if (!replayed->routed_to_ml && options.feedback) {
          index.add(cell.canonical);
          pool[key].push_back(&cell);
          classifiers.erase(key);
        }
        metrics.replayed.add();
        report.outcomes.push_back(*replayed);
        continue;
      }
      log_warn() << "hybrid: discarding unreadable journal record for " << unit
                 << "; re-running the target";
    }

    HybridCellOutcome outcome;
    outcome.cell_index = i;
    outcome.match = index.classify(cell.canonical);
    outcome.conventional_seconds = options.cost.conventional_seconds(cell);

    // A plain find: operator[] on the miss path would default-insert an
    // empty pool entry for every unseen group.
    const auto pool_it = pool.find(key);
    const bool have_training = pool_it != pool.end() && !pool_it->second.empty();
    outcome.routed_to_ml = outcome.match != StructureMatch::kNew && have_training;

    if (outcome.routed_to_ml) {
      try {
        auto& classifier = classifiers[key];
        if (!classifier) {
          const auto t0 = Clock::now();
          classifier = train_group_classifier(pool_it->second, options.ml);
          training_seconds[key] += std::chrono::duration<double>(Clock::now() - t0).count();
        }
        const auto t0 = Clock::now();
        const CaModel predicted = predict_ca_model(*classifier, cell, options.ml);
        outcome.ml_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
        outcome.accuracy = ca_model_agreement(cell.model, predicted);
        ++cells_served[key];
        predicted_live[i] = 1;
      } catch (const Error& e) {
        // Graceful degradation: a missing/corrupt/failed group model must
        // cost a simulation, not the run. The cell takes the conventional
        // route below; the broken classifier is dropped so the next cell
        // of the group retrains from the (possibly extended) pool.
        log_warn() << "hybrid: ML route failed for target " << i << " ("
                   << cell.source.cell.name() << "): " << e.what()
                   << "; falling back to conventional generation";
        classifiers.erase(key);
        outcome.routed_to_ml = false;
        outcome.degraded = true;
        outcome.ml_seconds = 0.0;
        outcome.accuracy = 1.0;
      }
    }
    if (!outcome.routed_to_ml) {
      // Conventional generation: the ground truth already embodies it;
      // only cost is accounted. With feedback the simulated cell
      // enriches both the structure index and the training pool.
      if (options.feedback) {
        index.add(cell.canonical);
        pool[key].push_back(&cell);
        classifiers.erase(key);  // stale: retrain on next use
      }
    }
    (outcome.routed_to_ml ? metrics.routed_ml : metrics.routed_conventional).add();
    if (outcome.degraded) metrics.degraded.add();
    report.outcomes.push_back(outcome);
    if (journal) journal->record(unit, encode_outcome(outcome));
  }
  if (journal) journal->flush();

  // Amortize each group's training time over the cells it served in
  // this process. Replayed (journal-restored) outcomes keep their
  // recorded ml_seconds: cells_served only counts live predictions, so a
  // group served solely by replay never divides by zero here.
  for (HybridCellOutcome& o : report.outcomes) {
    if (!o.routed_to_ml || !predicted_live[o.cell_index]) continue;
    const GroupKey key{targets[o.cell_index].num_inputs(),
                       targets[o.cell_index].num_transistors()};
    o.ml_seconds += training_seconds[key] / static_cast<double>(cells_served[key]);
  }
  return report;
}

}  // namespace caml
