#include "flow/hybrid.hpp"

#include <chrono>
#include <cmath>
#include <map>

#include "util/log.hpp"

namespace caml {

double CostModel::seconds_per_simulation(std::size_t num_transistors) const {
  const double ratio = static_cast<double>(num_transistors) / reference_transistors;
  return base_seconds * std::pow(std::max(ratio, 1e-3), size_exponent);
}

double CostModel::conventional_seconds(const CharacterizedCell& cell) const {
  const std::size_t sims = (1 + cell.model.defects.size()) * cell.model.num_stimuli();
  return static_cast<double>(sims) * seconds_per_simulation(cell.num_transistors());
}

std::size_t HybridReport::count_match(StructureMatch m) const {
  std::size_t n = 0;
  for (const HybridCellOutcome& o : outcomes) n += o.match == m;
  return n;
}

std::size_t HybridReport::count_routed_to_ml() const {
  std::size_t n = 0;
  for (const HybridCellOutcome& o : outcomes) n += o.routed_to_ml;
  return n;
}

double HybridReport::conventional_only_seconds() const {
  double s = 0.0;
  for (const HybridCellOutcome& o : outcomes) s += o.conventional_seconds;
  return s;
}

double HybridReport::hybrid_seconds() const {
  double s = 0.0;
  for (const HybridCellOutcome& o : outcomes) {
    s += o.routed_to_ml ? o.ml_seconds : o.conventional_seconds;
  }
  return s;
}

double HybridReport::ml_portion_reduction() const {
  double conv = 0.0, ml = 0.0;
  for (const HybridCellOutcome& o : outcomes) {
    if (o.routed_to_ml) {
      conv += o.conventional_seconds;
      ml += o.ml_seconds;
    }
  }
  return conv == 0.0 ? 0.0 : 1.0 - ml / conv;
}

double HybridReport::overall_reduction() const {
  const double conv = conventional_only_seconds();
  return conv == 0.0 ? 0.0 : 1.0 - hybrid_seconds() / conv;
}

double HybridReport::ml_accuracy_above(double threshold) const {
  std::size_t routed = 0, above = 0;
  for (const HybridCellOutcome& o : outcomes) {
    if (!o.routed_to_ml) continue;
    ++routed;
    above += o.accuracy > threshold;
  }
  return routed == 0 ? 0.0 : static_cast<double>(above) / static_cast<double>(routed);
}

HybridReport run_hybrid_flow(const std::vector<CharacterizedCell>& training,
                             const std::vector<CharacterizedCell>& targets,
                             const HybridOptions& options) {
  using Clock = std::chrono::steady_clock;

  StructureIndex index(training);
  // Training pool per group, extended by feedback.
  GroupMap train_groups = group_cells(training);
  std::map<GroupKey, std::vector<const CharacterizedCell*>> pool;
  for (const auto& [key, members] : train_groups) {
    for (std::size_t m : members) pool[key].push_back(&training[m]);
  }
  // Lazily trained classifiers, invalidated when feedback extends the
  // pool.
  std::map<GroupKey, std::unique_ptr<Classifier>> classifiers;
  std::map<GroupKey, double> training_seconds;
  std::map<GroupKey, std::size_t> cells_served;

  HybridReport report;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const CharacterizedCell& cell = targets[i];
    HybridCellOutcome outcome;
    outcome.cell_index = i;
    outcome.match = index.classify(cell.canonical);
    outcome.conventional_seconds = options.cost.conventional_seconds(cell);

    const GroupKey key{cell.num_inputs(), cell.num_transistors()};
    // A plain find: operator[] on the miss path would default-insert an
    // empty pool entry for every unseen group.
    const auto pool_it = pool.find(key);
    const bool have_training = pool_it != pool.end() && !pool_it->second.empty();
    outcome.routed_to_ml = outcome.match != StructureMatch::kNew && have_training;

    if (outcome.routed_to_ml) {
      auto& classifier = classifiers[key];
      if (!classifier) {
        const auto t0 = Clock::now();
        classifier = train_group_classifier(pool_it->second, options.ml);
        training_seconds[key] += std::chrono::duration<double>(Clock::now() - t0).count();
      }
      const auto t0 = Clock::now();
      const CaModel predicted = predict_ca_model(*classifier, cell, options.ml);
      outcome.ml_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
      outcome.accuracy = ca_model_agreement(cell.model, predicted);
      ++cells_served[key];
    } else {
      // Conventional generation: the ground truth already embodies it;
      // only cost is accounted. With feedback the simulated cell
      // enriches both the structure index and the training pool.
      if (options.feedback) {
        index.add(cell.canonical);
        pool[key].push_back(&cell);
        classifiers.erase(key);  // stale: retrain on next use
      }
    }
    report.outcomes.push_back(outcome);
  }

  // Amortize each group's training time over the cells it served.
  for (HybridCellOutcome& o : report.outcomes) {
    if (!o.routed_to_ml) continue;
    const GroupKey key{targets[o.cell_index].num_inputs(),
                       targets[o.cell_index].num_transistors()};
    o.ml_seconds += training_seconds[key] / static_cast<double>(cells_served[key]);
  }
  return report;
}

}  // namespace caml
