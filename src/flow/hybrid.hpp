#pragma once

#include <optional>
#include <string_view>

#include "flow/checkpoint.hpp"
#include "flow/ml_flow.hpp"
#include "flow/structural.hpp"

namespace caml {

/// How the generation flow decides which cells get real simulation.
///   kStructural — the paper's Fig. 7 heuristic: simulate structurally
///                 new cells, predict the rest (run_hybrid_flow).
///   kActive     — budgeted uncertainty sampling: simulate the cells the
///                 forest is least certain about, retrain, repeat
///                 (active::run_active_flow in src/active).
///   kHybrid     — kActive with a structural-similarity prior blended
///                 into the acquisition score.
enum class RoutingPolicy { kStructural, kActive, kHybrid };

const char* routing_policy_name(RoutingPolicy policy);
std::optional<RoutingPolicy> parse_routing_policy(std::string_view name);

/// Analytic model of conventional (SPICE-based) CA generation cost —
/// the stand-in for the paper's measured license-hours. Each electrical
/// simulation of a cell costs base_seconds scaled by transistor count;
/// a cell's conventional cost is that times its simulation count.
struct CostModel {
  double base_seconds = 0.8;          ///< one transient sim, 20-T cell
  double reference_transistors = 20;  ///< size normalization point
  double size_exponent = 0.5;         ///< sublinear growth with cell size

  double seconds_per_simulation(std::size_t num_transistors) const;

  /// Full conventional-flow cost for a characterized cell (its own
  /// defect universe and stimulus policy).
  double conventional_seconds(const CharacterizedCell& cell) const;
};

/// Per-cell outcome of the hybrid flow (paper Fig. 7).
struct HybridCellOutcome {
  std::size_t cell_index = 0;
  StructureMatch match = StructureMatch::kNew;
  bool routed_to_ml = false;
  /// The ML route was selected but failed (classifier training or
  /// inference threw), so the cell fell back to conventional generation.
  /// Degradation is counted and logged, never fatal.
  bool degraded = false;
  /// Prediction accuracy vs ground truth (1.0 for simulated cells,
  /// whose model is exact by construction).
  double accuracy = 1.0;
  /// Modeled SPICE cost of this cell's conventional generation.
  double conventional_seconds = 0.0;
  /// Measured wall-clock of the ML path (matrix build + inference, plus
  /// this cell's share of its group's training time).
  double ml_seconds = 0.0;
};

struct HybridReport {
  std::vector<HybridCellOutcome> outcomes;

  std::size_t count_match(StructureMatch m) const;
  std::size_t count_routed_to_ml() const;
  /// Cells that fell back from ML to conventional generation.
  std::size_t count_degraded() const;

  /// Total cost when every cell is simulated conventionally.
  double conventional_only_seconds() const;
  /// Total cost of the hybrid flow: ML wall time for routed cells +
  /// conventional cost for the rest.
  double hybrid_seconds() const;
  /// Reduction on the ML-covered cells only (the paper's 99.7%).
  double ml_portion_reduction() const;
  /// Overall reduction (the paper's ~38%).
  double overall_reduction() const;
  /// Fraction of ML-routed cells with accuracy above a threshold.
  double ml_accuracy_above(double threshold) const;
};

struct HybridOptions {
  MlOptions ml;
  CostModel cost;
  /// Routing policy. run_hybrid_flow implements kStructural only and
  /// throws on the others — callers (CLI, bench) dispatch kActive /
  /// kHybrid to active::run_active_flow, which layers above this
  /// library.
  RoutingPolicy routing = RoutingPolicy::kStructural;
  /// Fig. 7's feedback loop: cells routed to simulation join the
  /// training pool and the structure index for subsequent cells.
  bool feedback = true;
  /// Crash-safe progress: each target's outcome is journaled as it
  /// completes; with checkpoint.resume, recorded outcomes are replayed
  /// (routing decisions and accuracies reproduced exactly, feedback
  /// state reconstructed) and only the remaining targets run. Timing
  /// fields of replayed outcomes keep their recorded values, which
  /// exclude the final training-amortization share — wall-clock metrics
  /// are inherently non-reproducible across processes anyway.
  CheckpointOptions checkpoint;
};

/// Runs the hybrid generation flow for `targets` given an existing
/// training set: structural analysis routes each cell to ML inference
/// or to conventional generation (already available in the
/// CharacterizedCell ground truth — only its *cost* is accounted).
HybridReport run_hybrid_flow(const std::vector<CharacterizedCell>& training,
                             const std::vector<CharacterizedCell>& targets,
                             const HybridOptions& options = {});

}  // namespace caml
