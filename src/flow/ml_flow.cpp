#include "flow/ml_flow.hpp"

#include "defect/universe.hpp"
#include "obs/trace.hpp"
#include "sim/evaluator.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace caml {

std::unique_ptr<Classifier> MlOptions::new_classifier() const {
  if (make_classifier) return make_classifier();
  return std::make_unique<RandomForest>(forest);
}

Dataset build_training_set(const std::vector<const CharacterizedCell*>& train_cells,
                           const MlOptions& options) {
  CAML_TRACE_SPAN_ITEMS("matrix_build", train_cells.size());
  CAML_ASSERT(!train_cells.empty());
  const CharacterizedCell& first = *train_cells.front();
  const std::size_t features =
      matrix_feature_count(first.num_inputs(), first.num_transistors(), options.matrix);
  Dataset data(features);
  Rng rng(options.seed);
  for (const CharacterizedCell* cell : train_cells) {
    CAML_ASSERT(cell->num_inputs() == first.num_inputs());
    CAML_ASSERT(cell->num_transistors() == first.num_transistors());
    const CaMatrix matrix = build_ca_matrix(cell->source.cell, cell->model, cell->canonical,
                                            cell->sim, options.matrix);
    Dataset cell_data(features);
    cell_data.reserve(matrix.num_rows());
    for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
      cell_data.add_row(matrix.row(r), matrix.labels()[r]);
    }
    if (options.max_train_rows_per_cell == 0) {
      // Exact full-data training: identical rows (from structurally
      // identical sibling cells) merge into one weighted row.
      data.add_deduplicated(cell_data);
    } else {
      Dataset sampled(features);
      sampled.add_sampled(cell_data, options.max_train_rows_per_cell, rng);
      data.add_deduplicated(sampled);
    }
  }
  return data;
}

std::unique_ptr<Classifier> train_group_classifier(
    const std::vector<const CharacterizedCell*>& train_cells, const MlOptions& options) {
  CAML_TRACE_SPAN_ITEMS("train_group", train_cells.size());
  const Dataset data = build_training_set(train_cells, options);
  std::unique_ptr<Classifier> classifier = options.new_classifier();
  classifier->fit(data);
  return classifier;
}

PreparedPrediction prepare_prediction(const Cell& cell, const CanonicalCell& canonical,
                                      StimulusPolicy policy, const SimConfig& sim,
                                      const MatrixOptions& matrix_options,
                                      std::vector<Defect> defects) {
  PreparedPrediction prepared;
  prepared.matrix = [&] {
    CAML_TRACE_SPAN_ITEMS("matrix_build", defects.size());
    return build_unlabeled_matrix(cell, defects, policy, canonical, sim, matrix_options);
  }();
  CaModel& predicted = prepared.model;
  predicted.cell_name = cell.name();
  predicted.num_inputs = cell.num_inputs();
  predicted.policy = policy;
  predicted.stimuli = generate_stimuli(cell.num_inputs(), policy);
  const GoldenResult golden = simulate_golden(cell, predicted.stimuli, sim);
  predicted.golden_responses = golden.responses;
  predicted.defects.resize(defects.size());
  for (std::size_t d = 0; d < defects.size(); ++d) {
    predicted.defects[d].defect = defects[d];
    predicted.defects[d].detection.assign(predicted.stimuli.size(), 0);
  }
  return prepared;
}

CaModel finish_prediction(PreparedPrediction prepared, const std::uint8_t* labels) {
  const CaMatrix& matrix = prepared.matrix;
  CaModel predicted = std::move(prepared.model);
  for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
    const std::int32_t d = matrix.row_defect()[r];
    CAML_ASSERT(d >= 0);
    predicted.defects[static_cast<std::size_t>(d)].detection[matrix.row_stimulus()[r]] =
        labels[r];
  }
  predicted.classify();
  return predicted;
}

namespace {

/// Shared inference core: classify every (stimulus, defect) row of the
/// unlabeled CA-matrix and assemble the predicted CaModel. The same
/// prepare → predict_batch → finish sequence the serve plane runs with
/// coalesced batches, so both paths stay byte-identical by construction.
CaModel predict_from_defects(const Classifier& classifier, const Cell& cell,
                             const CanonicalCell& canonical, StimulusPolicy policy,
                             const SimConfig& sim, const MatrixOptions& matrix_options,
                             std::vector<Defect> defects) {
  obs::TraceSpan span("predict_ca_model");
  span.attr("cell", cell.name());
  PreparedPrediction prepared =
      prepare_prediction(cell, canonical, policy, sim, matrix_options, std::move(defects));
  // One batched classification for the whole request: the matrix's
  // feature block is contiguous row-major, so the classifier sweeps it
  // in a single call (tree-major for RandomForest) instead of one
  // virtual dispatch per (stimulus, defect) row.
  const CaMatrix& matrix = prepared.matrix;
  const std::vector<std::uint8_t> labels =
      matrix.num_rows() == 0
          ? std::vector<std::uint8_t>{}
          : classifier.predict_batch(matrix.features().data(), matrix.num_rows(),
                                     matrix.num_features());
  return finish_prediction(std::move(prepared), labels.data());
}

}  // namespace

CaModel predict_ca_model(const Classifier& classifier, const CharacterizedCell& cell,
                         const MlOptions& options) {
  // The defect list and stimulus policy come from the cell's own
  // (ground-truth) model so the prediction is row-for-row comparable.
  std::vector<Defect> defects;
  defects.reserve(cell.model.defects.size());
  for (const CaDefectEntry& e : cell.model.defects) defects.push_back(e.defect);
  return predict_from_defects(classifier, cell.source.cell, cell.canonical, cell.model.policy,
                              cell.sim, options.matrix, std::move(defects));
}

CaModel predict_ca_model_for_cell(const Classifier& classifier, const Cell& cell,
                                  const CanonicalCell& canonical, StimulusPolicy policy,
                                  const SimConfig& sim, const MlOptions& options,
                                  const UniverseOptions& universe) {
  return predict_from_defects(classifier, cell, canonical, policy, sim, options.matrix,
                              enumerate_defects(cell, universe));
}

double ca_model_agreement(const CaModel& truth, const CaModel& predicted) {
  CAML_ASSERT(truth.defects.size() == predicted.defects.size());
  std::size_t agree = 0, total = 0;
  for (std::size_t d = 0; d < truth.defects.size(); ++d) {
    const auto& a = truth.defects[d].detection;
    const auto& b = predicted.defects[d].detection;
    CAML_ASSERT(a.size() == b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
      agree += a[s] == b[s];
    }
    total += a.size();
  }
  return total == 0 ? 1.0 : static_cast<double>(agree) / static_cast<double>(total);
}

std::vector<CellEvaluation> evaluate_leave_one_out(const std::vector<CharacterizedCell>& cells,
                                                   const MlOptions& options) {
  std::vector<CellEvaluation> out;
  const GroupMap groups = group_cells(cells);
  for (const auto& [key, members] : groups) {
    if (members.size() < 2) continue;  // paper: empty boxes

    // Fast path: build each cell's (sampled, per-cell) row set once,
    // merge into a master deduplicated set, then train each held-out
    // iteration on master-minus-that-cell — identical training data to
    // rebuilding per iteration at a fraction of the cost.
    const std::size_t features =
        matrix_feature_count(key.num_inputs, key.num_transistors, options.matrix);
    std::vector<Dataset> cell_sets;
    cell_sets.reserve(members.size());
    Dataset master(features);
    Rng rng(options.seed);
    for (std::size_t m : members) {
      const CharacterizedCell& cell = cells[m];
      const CaMatrix matrix = build_ca_matrix(cell.source.cell, cell.model, cell.canonical,
                                              cell.sim, options.matrix);
      Dataset rows(features);
      rows.reserve(matrix.num_rows());
      for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
        rows.add_row(matrix.row(r), matrix.labels()[r]);
      }
      if (options.max_train_rows_per_cell != 0) {
        Dataset sampled(features);
        sampled.add_sampled(rows, options.max_train_rows_per_cell, rng);
        rows = std::move(sampled);
      }
      master.add_deduplicated(rows);
      cell_sets.push_back(std::move(rows));
    }

    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::size_t held_out = members[i];
      const Dataset training = master.subtract_deduplicated(cell_sets[i]);
      std::unique_ptr<Classifier> classifier = options.new_classifier();
      classifier->fit(training);
      const CaModel predicted = predict_ca_model(*classifier, cells[held_out], options);
      out.push_back(CellEvaluation{held_out, key,
                                   ca_model_agreement(cells[held_out].model, predicted)});
    }
    log_info() << "LOO group (" << key.num_inputs << " in, " << key.num_transistors
               << " T): " << members.size() << " cells done";
  }
  return out;
}

std::vector<CellEvaluation> evaluate_cross_library(
    const std::vector<CharacterizedCell>& train_cells,
    const std::vector<CharacterizedCell>& eval_cells, const MlOptions& options) {
  std::vector<CellEvaluation> out;
  const GroupMap train_groups = group_cells(train_cells);
  const GroupMap eval_groups = group_cells(eval_cells);
  for (const auto& [key, members] : eval_groups) {
    const auto it = train_groups.find(key);
    if (it == train_groups.end()) continue;  // no counterpart group
    std::vector<const CharacterizedCell*> train;
    for (std::size_t m : it->second) train.push_back(&train_cells[m]);
    const std::unique_ptr<Classifier> classifier = train_group_classifier(train, options);
    for (std::size_t e : members) {
      const CaModel predicted = predict_ca_model(*classifier, eval_cells[e], options);
      out.push_back(
          CellEvaluation{e, key, ca_model_agreement(eval_cells[e].model, predicted)});
    }
    log_info() << "cross group (" << key.num_inputs << " in, " << key.num_transistors
               << " T): " << members.size() << " cells done";
  }
  return out;
}

}  // namespace caml
