#pragma once

#include <functional>
#include <memory>

#include "camatrix/matrix.hpp"
#include "flow/grouping.hpp"
#include "ml/classifier.hpp"
#include "ml/forest.hpp"

namespace caml {

/// ML-side knobs of the learning-based generation flow.
struct MlOptions {
  ForestParams forest;
  MatrixOptions matrix;
  /// Training rows sampled per training cell before deduplication
  /// (0 = use every row; identical rows across cells merge into one
  /// weighted row, so full data is the affordable default).
  std::size_t max_train_rows_per_cell = 0;
  std::uint64_t seed = 0xCA11u;
  /// Classifier factory; defaults to the paper's Random Forest. Used by
  /// the algorithm-comparison bench to swap in the baselines.
  std::function<std::unique_ptr<Classifier>()> make_classifier;

  std::unique_ptr<Classifier> new_classifier() const;
};

/// Assembles the training dataset of a group from the labeled CA-matrix
/// of each training cell (sampled per MlOptions). All cells must share
/// the group's (inputs, transistors) shape.
Dataset build_training_set(const std::vector<const CharacterizedCell*>& train_cells,
                           const MlOptions& options);

/// Trains the group classifier.
std::unique_ptr<Classifier> train_group_classifier(
    const std::vector<const CharacterizedCell*>& train_cells, const MlOptions& options);

/// Predicts the CA model of a new cell with a trained group classifier:
/// builds the unlabeled CA-matrix, classifies every (stimulus, defect)
/// row and assembles the predicted detection vectors into a CaModel
/// (the paper's inference step: "does this stimulus detect this defect
/// affecting this cell?").
CaModel predict_ca_model(const Classifier& classifier, const CharacterizedCell& cell,
                         const MlOptions& options);

/// The classifier-independent half of a prediction: the unlabeled
/// CA-matrix plus the CaModel skeleton (stimuli, golden responses,
/// defect list, zeroed detection bits). Splitting prediction into
/// prepare → classify → finish lets callers hand the feature rows of
/// *several* prepared cells of one group to a single
/// Classifier::predict_batch call (the serve plane's cross-connection
/// batch coalescing) — per-row classification is independent, so any
/// grouping of rows into batches yields identical labels.
struct PreparedPrediction {
  CaMatrix matrix;  ///< unlabeled features + (stimulus, defect) row map
  CaModel model;    ///< everything except the detection bits
};

/// Builds the unlabeled matrix and model skeleton of one cell. The
/// feature rows to classify are prepared.matrix.features() (row-major,
/// stride = matrix.num_features()).
PreparedPrediction prepare_prediction(const Cell& cell, const CanonicalCell& canonical,
                                      StimulusPolicy policy, const SimConfig& sim,
                                      const MatrixOptions& matrix_options,
                                      std::vector<Defect> defects);

/// Scatters one label per matrix row (in row order) into the prepared
/// model's detection bits and finalizes it. `labels` must hold
/// prepared.matrix.num_rows() entries.
CaModel finish_prediction(PreparedPrediction prepared, const std::uint8_t* labels);

/// Prediction for a genuinely new cell — no ground-truth model exists.
/// Enumerates the defect universe from the netlist, runs only the
/// defect-free golden sweeps (canonicalization + matrix prefix), and
/// predicts every detection bit.
CaModel predict_ca_model_for_cell(const Classifier& classifier, const Cell& cell,
                                  const CanonicalCell& canonical, StimulusPolicy policy,
                                  const SimConfig& sim, const MlOptions& options,
                                  const UniverseOptions& universe = {});

/// Fraction of (stimulus, defect) detection bits on which two CA models
/// of the same cell agree — the paper's per-cell prediction accuracy.
double ca_model_agreement(const CaModel& truth, const CaModel& predicted);

/// Per-cell evaluation record.
struct CellEvaluation {
  std::size_t cell_index = 0;  ///< index into the evaluated vector
  GroupKey group;
  double accuracy = 0.0;
};

/// Leave-one-out evaluation inside every group of one technology
/// (paper Table IV.a protocol). Groups with fewer than two cells are
/// skipped, matching the paper's empty boxes.
std::vector<CellEvaluation> evaluate_leave_one_out(const std::vector<CharacterizedCell>& cells,
                                                   const MlOptions& options);

/// Cross-technology evaluation (paper Tables IV.b/c protocol): for each
/// group, train on every training-library cell of that group and
/// evaluate each target-library cell. Target groups with no training
/// counterpart are skipped.
std::vector<CellEvaluation> evaluate_cross_library(
    const std::vector<CharacterizedCell>& train_cells,
    const std::vector<CharacterizedCell>& eval_cells, const MlOptions& options);

}  // namespace caml
