#pragma once

#include <functional>
#include <memory>

#include "camatrix/matrix.hpp"
#include "flow/grouping.hpp"
#include "ml/classifier.hpp"
#include "ml/forest.hpp"

namespace caml {

/// ML-side knobs of the learning-based generation flow.
struct MlOptions {
  ForestParams forest;
  MatrixOptions matrix;
  /// Training rows sampled per training cell before deduplication
  /// (0 = use every row; identical rows across cells merge into one
  /// weighted row, so full data is the affordable default).
  std::size_t max_train_rows_per_cell = 0;
  std::uint64_t seed = 0xCA11u;
  /// Classifier factory; defaults to the paper's Random Forest. Used by
  /// the algorithm-comparison bench to swap in the baselines.
  std::function<std::unique_ptr<Classifier>()> make_classifier;

  std::unique_ptr<Classifier> new_classifier() const;
};

/// Assembles the training dataset of a group from the labeled CA-matrix
/// of each training cell (sampled per MlOptions). All cells must share
/// the group's (inputs, transistors) shape.
Dataset build_training_set(const std::vector<const CharacterizedCell*>& train_cells,
                           const MlOptions& options);

/// Trains the group classifier.
std::unique_ptr<Classifier> train_group_classifier(
    const std::vector<const CharacterizedCell*>& train_cells, const MlOptions& options);

/// Predicts the CA model of a new cell with a trained group classifier:
/// builds the unlabeled CA-matrix, classifies every (stimulus, defect)
/// row and assembles the predicted detection vectors into a CaModel
/// (the paper's inference step: "does this stimulus detect this defect
/// affecting this cell?").
CaModel predict_ca_model(const Classifier& classifier, const CharacterizedCell& cell,
                         const MlOptions& options);

/// Prediction for a genuinely new cell — no ground-truth model exists.
/// Enumerates the defect universe from the netlist, runs only the
/// defect-free golden sweeps (canonicalization + matrix prefix), and
/// predicts every detection bit.
CaModel predict_ca_model_for_cell(const Classifier& classifier, const Cell& cell,
                                  const CanonicalCell& canonical, StimulusPolicy policy,
                                  const SimConfig& sim, const MlOptions& options,
                                  const UniverseOptions& universe = {});

/// Fraction of (stimulus, defect) detection bits on which two CA models
/// of the same cell agree — the paper's per-cell prediction accuracy.
double ca_model_agreement(const CaModel& truth, const CaModel& predicted);

/// Per-cell evaluation record.
struct CellEvaluation {
  std::size_t cell_index = 0;  ///< index into the evaluated vector
  GroupKey group;
  double accuracy = 0.0;
};

/// Leave-one-out evaluation inside every group of one technology
/// (paper Table IV.a protocol). Groups with fewer than two cells are
/// skipped, matching the paper's empty boxes.
std::vector<CellEvaluation> evaluate_leave_one_out(const std::vector<CharacterizedCell>& cells,
                                                   const MlOptions& options);

/// Cross-technology evaluation (paper Tables IV.b/c protocol): for each
/// group, train on every training-library cell of that group and
/// evaluate each target-library cell. Target groups with no training
/// counterpart are skipped.
std::vector<CellEvaluation> evaluate_cross_library(
    const std::vector<CharacterizedCell>& train_cells,
    const std::vector<CharacterizedCell>& eval_cells, const MlOptions& options);

}  // namespace caml
