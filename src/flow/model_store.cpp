#include "flow/model_store.hpp"

#include <type_traits>

#include <sstream>

#include "ml/forest_io.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace caml {

// Concurrent serving depends on predict() being callable through a
// const reference (shared read-only store, one instance for all
// workers). If this assert fires, a signature change dropped the const
// qualifier — restore it or give the serve layer its own
// synchronization before shipping.
static_assert(std::is_invocable_r_v<CaModel, decltype(&ModelStore::predict),
                                    const ModelStore&, const Cell&,
                                    const CanonicalCell&, StimulusPolicy, const SimConfig&,
                                    const UniverseOptions&>,
              "ModelStore::predict must stay const for lock-free shared serving");

CaModel ModelStore::predict(const Cell& cell, const CanonicalCell& canonical,
                            StimulusPolicy policy, const SimConfig& sim,
                            const UniverseOptions& universe) const {
  const GroupKey key{cell.num_inputs(), cell.num_transistors()};
  const Classifier* classifier = classifier_for(key);
  if (classifier == nullptr) {
    throw Error("no trained model for group (" + std::to_string(key.num_inputs) + " inputs, " +
                std::to_string(key.num_transistors) + " transistors); cell " + cell.name() +
                " needs conventional generation");
  }
  MlOptions options;
  options.matrix = matrix_options();
  return predict_ca_model_for_cell(*classifier, cell, canonical, policy, sim, options,
                                   universe);
}

GroupModelStore GroupModelStore::train(const std::vector<CharacterizedCell>& training,
                                       const MlOptions& options) {
  GroupModelStore store;
  store.matrix_ = options.matrix;
  const GroupMap groups = group_cells(training);
  for (const auto& [key, members] : groups) {
    CAML_TRACE_SPAN_ITEMS("train_group", members.size());
    std::vector<const CharacterizedCell*> cells;
    for (std::size_t m : members) cells.push_back(&training[m]);
    const Dataset data = build_training_set(cells, options);
    RandomForest forest(options.forest);
    forest.fit(data);
    store.models_.emplace(key, std::move(forest));
    log_info() << "trained group (" << key.num_inputs << " in, " << key.num_transistors
               << " T) on " << cells.size() << " cells / " << data.num_rows()
               << " distinct rows";
  }
  return store;
}

GroupModelStore GroupModelStore::assemble(std::map<GroupKey, RandomForest> models,
                                          const MatrixOptions& matrix) {
  GroupModelStore store;
  store.models_ = std::move(models);
  store.matrix_ = matrix;
  return store;
}

const Classifier* GroupModelStore::classifier_for(const GroupKey& key) const {
  const auto it = models_.find(key);
  return it == models_.end() ? nullptr : &it->second;
}

const RandomForest* GroupModelStore::forest_for(const GroupKey& key) const {
  const auto it = models_.find(key);
  return it == models_.end() ? nullptr : &it->second;
}

std::vector<GroupKey> GroupModelStore::group_keys() const {
  std::vector<GroupKey> keys;
  keys.reserve(models_.size());
  for (const auto& [key, forest] : models_) keys.push_back(key);
  return keys;
}

void GroupModelStore::save(std::ostream& os) const {
  os << "CAMLMODELS groups=" << models_.size() << " activity=" << matrix_.include_activity
     << " response=" << matrix_.include_response
     << " truthtable=" << matrix_.include_truth_table
     << " kind=" << matrix_.include_defect_kind << '\n';
  for (const auto& [key, forest] : models_) {
    os << "GROUP " << key.num_inputs << ' ' << key.num_transistors << '\n';
    write_forest(os, forest, forest.num_features());
  }
  os << "ENDMODELS\n";
}

GroupModelStore GroupModelStore::load(std::istream& in) {
  GroupModelStore store;
  std::string line;
  if (!std::getline(in, line)) throw ParseError("expected CAMLMODELS header", 1);
  const std::vector<std::string> head = split(line);
  if (head.size() != 6 || head[0] != "CAMLMODELS") {
    throw ParseError("bad CAMLMODELS header", 1);
  }
  const auto flag = [&](std::size_t i, const char* name) {
    const std::string prefix = std::string(name) + "=";
    if (head[i].rfind(prefix, 0) != 0) throw ParseError("bad header field " + head[i], 1);
    return head[i].substr(prefix.size()) == "1";
  };
  if (head[1].rfind("groups=", 0) != 0) throw ParseError("bad header field " + head[1], 1);
  const std::size_t groups = parse_size(head[1].substr(7), "CAMLMODELS group count", 1);
  store.matrix_.include_activity = flag(2, "activity");
  store.matrix_.include_response = flag(3, "response");
  store.matrix_.include_truth_table = flag(4, "truthtable");
  store.matrix_.include_defect_kind = flag(5, "kind");

  for (std::size_t g = 0; g < groups; ++g) {
    if (!std::getline(in, line)) throw ParseError("truncated model store", 0);
    const std::vector<std::string> tok = split(line);
    if (tok.size() != 3 || tok[0] != "GROUP") throw ParseError("expected GROUP line", 0);
    const GroupKey key{parse_size(tok[1], "GROUP input count", 0),
                       parse_size(tok[2], "GROUP transistor count", 0)};
    store.models_.emplace(key, read_forest(in).forest);
  }
  if (!std::getline(in, line) || trim(line) != "ENDMODELS") {
    throw ParseError("missing ENDMODELS", 0);
  }
  return store;
}

void GroupModelStore::save_file(const std::string& path) const {
  // Stream the serialization straight through the checksumming writer:
  // the CRC accumulates per chunk, so saving never doubles peak RSS by
  // buffering the whole text first.
  io::ChecksummedFileWriter writer(path, "models", "store");
  save(writer.stream());
  writer.commit();
}

GroupModelStore GroupModelStore::load_file(const std::string& path) {
  std::istringstream payload(io::read_checksummed_or_raw(path, "models"));
  try {
    return load(payload);
  } catch (const ParseError& e) {
    // The container CRC already vouched for the bytes, so a parse
    // failure here means a writer bug or a legacy unframed file — either
    // way, name the file.
    throw ParseError::in_file(path, e);
  }
}

}  // namespace caml
