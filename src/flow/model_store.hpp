#pragma once

#include <istream>
#include <map>
#include <ostream>

#include "flow/ml_flow.hpp"

namespace caml {

/// A trained Random Forest per (inputs, transistors) group, plus the
/// CA-matrix options the forests were trained with — everything the
/// predict side needs. Serializable, so the expensive training pass
/// runs once (e.g. via the `caml train` CLI) and predictions for new
/// cells run anywhere.
class GroupModelStore {
 public:
  /// Trains one forest per group of the training corpus. Groups with a
  /// single cell still train (one cell of training data is exactly the
  /// paper's "identical structure available" sweet spot).
  static GroupModelStore train(const std::vector<CharacterizedCell>& training,
                               const MlOptions& options);

  bool has_group(const GroupKey& key) const { return models_.count(key) > 0; }
  std::size_t num_groups() const { return models_.size(); }
  const MatrixOptions& matrix_options() const { return matrix_; }

  /// Predicts the CA model of a new cell (its shape selects the group
  /// model). Throws caml::Error if no model exists for the cell's
  /// group — callers route such cells to conventional generation.
  ///
  /// Thread safety: const all the way down and safe to call concurrently
  /// on a shared store. The lookup is a plain map find (no lazy caching,
  /// no mutable members), forest traversal only reads fitted trees, and
  /// matrix construction / golden simulation build their state on the
  /// caller's stack. The serve daemon relies on this to share one store
  /// across all workers without copies or locks; a static_assert in
  /// model_store.cpp pins the const signature.
  CaModel predict(const Cell& cell, const CanonicalCell& canonical, StimulusPolicy policy,
                  const SimConfig& sim, const UniverseOptions& universe = {}) const;

  /// The trained classifier of a group, or nullptr when the group is
  /// untrained (callers route such cells to conventional generation).
  /// Lets the serve plane concatenate the feature rows of several cells
  /// of one group into a single Classifier::predict_batch call; the
  /// same thread-safety contract as predict() applies.
  const Classifier* classifier_for(const GroupKey& key) const;

  /// Text serialization.
  void save(std::ostream& os) const;
  static GroupModelStore load(std::istream& in);

  /// Durable file persistence: the store text wrapped in a checksummed
  /// CAMLF1 container (kind "models") and published atomically — a
  /// crash mid-save leaves the previous file intact, and a truncated or
  /// bit-flipped file fails load_file with a ParseError naming the file
  /// and offset instead of loading garbage. load_file also accepts a
  /// legacy unframed store for backward compatibility.
  void save_file(const std::string& path) const;
  static GroupModelStore load_file(const std::string& path);

 private:
  std::map<GroupKey, RandomForest> models_;
  MatrixOptions matrix_;
};

}  // namespace caml
