#pragma once

#include <istream>
#include <map>
#include <ostream>

#include "flow/ml_flow.hpp"

namespace caml {

/// Read-side contract every trained-model store satisfies: a classifier
/// per (inputs, transistors) group plus the CA-matrix options the
/// classifiers were trained with — everything the predict side needs.
/// Two implementations exist: the in-memory GroupModelStore below
/// (training + text interchange) and store::MappedModelStore (zero-copy
/// mmap over the binary CAMLF1 section). The serve plane and the CLI
/// program against this interface so either backs a daemon.
///
/// Thread safety contract (all implementations): every method is const
/// and safe to call concurrently on a shared store — no lazy caching,
/// no mutable state. The serve daemon shares one store across all
/// workers without copies or locks.
class ModelStore {
 public:
  virtual ~ModelStore() = default;

  virtual std::size_t num_groups() const = 0;
  virtual const MatrixOptions& matrix_options() const = 0;

  /// The trained classifier of a group, or nullptr when the group is
  /// untrained (callers route such cells to conventional generation).
  /// Lets the serve plane concatenate the feature rows of several cells
  /// of one group into a single Classifier::predict_batch call.
  virtual const Classifier* classifier_for(const GroupKey& key) const = 0;

  bool has_group(const GroupKey& key) const { return classifier_for(key) != nullptr; }

  /// Revalidation hook the serve plane calls before computing a batch:
  /// false means the store's backing storage changed under it (e.g. a
  /// mapped file truncated in place) and answers can no longer be
  /// trusted — the caller must fail the batch and swap to a good
  /// snapshot. In-memory stores are always healthy.
  virtual bool healthy() const { return true; }

  /// Predicts the CA model of a new cell (its shape selects the group
  /// model). Throws caml::Error if no model exists for the cell's
  /// group — callers route such cells to conventional generation.
  CaModel predict(const Cell& cell, const CanonicalCell& canonical, StimulusPolicy policy,
                  const SimConfig& sim, const UniverseOptions& universe = {}) const;
};

/// A trained Random Forest per (inputs, transistors) group, plus the
/// CA-matrix options the forests were trained with. Serializable, so the
/// expensive training pass runs once (e.g. via the `caml train` CLI) and
/// predictions for new cells run anywhere. Text is the interchange
/// format; `caml store --to-binary` converts to the mmap-able binary
/// section (src/store) for parse-free serving.
class GroupModelStore final : public ModelStore {
 public:
  /// Trains one forest per group of the training corpus. Groups with a
  /// single cell still train (one cell of training data is exactly the
  /// paper's "identical structure available" sweet spot).
  static GroupModelStore train(const std::vector<CharacterizedCell>& training,
                               const MlOptions& options);

  /// Rebuilds a store from already-loaded forests — the import path the
  /// binary reader (store::MappedModelStore::materialize) shares with
  /// any future loader.
  static GroupModelStore assemble(std::map<GroupKey, RandomForest> models,
                                  const MatrixOptions& matrix);

  std::size_t num_groups() const override { return models_.size(); }
  const MatrixOptions& matrix_options() const override { return matrix_; }

  /// Thread safety: the lookup is a plain map find (no lazy caching, no
  /// mutable members), forest traversal only reads fitted trees, and
  /// matrix construction / golden simulation build their state on the
  /// caller's stack; a static_assert in model_store.cpp pins the const
  /// predict signature.
  const Classifier* classifier_for(const GroupKey& key) const override;

  /// Concrete per-group forest (the export side of the binary writer,
  /// which needs tree node records, not just a Classifier). nullptr for
  /// untrained groups.
  const RandomForest* forest_for(const GroupKey& key) const;
  /// Every trained group key in sorted order.
  std::vector<GroupKey> group_keys() const;

  /// Text serialization.
  void save(std::ostream& os) const;
  static GroupModelStore load(std::istream& in);

  /// Durable file persistence: the store text wrapped in a checksummed
  /// CAMLF1 container (kind "models") and published atomically — a
  /// crash mid-save leaves the previous file intact, and a truncated or
  /// bit-flipped file fails load_file with a ParseError naming the file
  /// and offset instead of loading garbage. load_file also accepts a
  /// legacy unframed store for backward compatibility. The save streams
  /// through io::ChecksummedFileWriter, so peak memory stays O(chunk)
  /// instead of 2-3x the serialized size.
  void save_file(const std::string& path) const;
  static GroupModelStore load_file(const std::string& path);

 private:
  std::map<GroupKey, RandomForest> models_;
  MatrixOptions matrix_;
};

}  // namespace caml
