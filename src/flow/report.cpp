#include "flow/report.hpp"

#include <algorithm>
#include <set>

#include "util/strings.hpp"

namespace caml {

AccuracyGrid aggregate_grid(const std::vector<CellEvaluation>& evaluations) {
  AccuracyGrid grid;
  for (const CellEvaluation& e : evaluations) {
    GroupStats& g = grid[e.group];
    ++g.count;
    g.sum += e.accuracy;
    g.max = std::max(g.max, e.accuracy);
    g.min = std::min(g.min, e.accuracy);
    if (e.accuracy >= 1.0 - 1e-12) ++g.perfect;
  }
  return grid;
}

void print_accuracy_grid(std::ostream& os, const AccuracyGrid& grid, const std::string& title) {
  std::set<std::size_t> inputs, transistors;
  for (const auto& [key, stats] : grid) {
    inputs.insert(key.num_inputs);
    transistors.insert(key.num_transistors);
  }
  os << title << '\n';
  if (grid.empty()) {
    os << "  (no evaluable groups)\n";
    return;
  }
  TextTable table;
  table.new_row();
  table.cell("#T \\ #inputs");
  for (std::size_t in : inputs) table.cell(static_cast<long long>(in));
  for (std::size_t t : transistors) {
    table.new_row();
    table.cell(static_cast<long long>(t));
    for (std::size_t in : inputs) {
      const auto it = grid.find(GroupKey{in, t});
      if (it == grid.end()) {
        table.cell("");
      } else {
        std::string entry = format_fixed(100.0 * it->second.average(), 2);
        if (it->second.any_perfect()) entry += "*";
        table.cell(std::move(entry));
      }
    }
  }
  table.print(os);
  os << "entries: average prediction accuracy (%) per (inputs, transistors) group; "
        "'*' = group contains a 100%-predicted cell; blank = <2 cells or no "
        "training counterpart\n";
}

AccuracyDistribution summarize_distribution(const std::vector<CellEvaluation>& evaluations) {
  AccuracyDistribution d;
  d.histogram.assign(11, 0);
  if (evaluations.empty()) return d;
  std::size_t above = 0;
  for (const CellEvaluation& e : evaluations) {
    ++d.cells;
    d.mean += e.accuracy;
    d.min = std::min(d.min, e.accuracy);
    if (e.accuracy > 0.97) ++above;
    if (e.accuracy < 0.9) {
      ++d.histogram[0];
    } else {
      const auto bucket = static_cast<std::size_t>((e.accuracy - 0.9) / 0.01);
      ++d.histogram[1 + std::min<std::size_t>(bucket, 9)];
    }
  }
  d.mean /= static_cast<double>(d.cells);
  d.fraction_above_97 = static_cast<double>(above) / static_cast<double>(d.cells);
  return d;
}

void print_distribution(std::ostream& os, const AccuracyDistribution& dist,
                        const std::string& title) {
  os << title << '\n';
  os << "  cells evaluated : " << dist.cells << '\n';
  os << "  mean accuracy   : " << format_fixed(100.0 * dist.mean, 2) << "%\n";
  os << "  min accuracy    : " << format_fixed(100.0 * dist.min, 2) << "%\n";
  os << "  cells > 97%     : " << format_fixed(100.0 * dist.fraction_above_97, 1) << "%\n";
  static const char* kBucketNames[] = {"  <90%", "90-91%", "91-92%", "92-93%", "93-94%",
                                       "94-95%", "95-96%", "96-97%", "97-98%", "98-99%",
                                       "99-100%"};
  for (std::size_t b = 0; b < dist.histogram.size(); ++b) {
    os << "  " << kBucketNames[b] << " : " << dist.histogram[b] << '\n';
  }
}

}  // namespace caml
