#pragma once

#include <map>
#include <ostream>

#include "flow/ml_flow.hpp"
#include "util/table.hpp"

namespace caml {

/// Per-group aggregation of cell evaluations, mirroring one box of the
/// paper's Table IV.
struct GroupStats {
  std::size_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double min = 1.0;
  std::size_t perfect = 0;  ///< cells predicted with 100% accuracy

  double average() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  bool any_perfect() const { return perfect > 0; }  ///< green box in the paper
};

using AccuracyGrid = std::map<GroupKey, GroupStats>;

AccuracyGrid aggregate_grid(const std::vector<CellEvaluation>& evaluations);

/// Prints the paper's Table IV layout: rows are transistor counts,
/// columns are input counts, entries are average accuracy in percent; a
/// '*' suffix marks groups containing at least one perfectly predicted
/// cell (the paper's green background).
void print_accuracy_grid(std::ostream& os, const AccuracyGrid& grid, const std::string& title);

/// Distribution summary used for the paper's Section V.B statistics.
struct AccuracyDistribution {
  std::size_t cells = 0;
  double mean = 0.0;
  double min = 1.0;
  /// Fraction of cells with accuracy strictly above 0.97 (the paper's
  /// "accurately predicted" criterion).
  double fraction_above_97 = 0.0;
  /// 10-bucket histogram over [0.9, 1.0] plus an underflow bucket.
  std::vector<std::size_t> histogram;
};

AccuracyDistribution summarize_distribution(const std::vector<CellEvaluation>& evaluations);

void print_distribution(std::ostream& os, const AccuracyDistribution& dist,
                        const std::string& title);

}  // namespace caml
