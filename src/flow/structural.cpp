#include "flow/structural.hpp"

#include "util/error.hpp"

namespace caml {

const char* structure_match_name(StructureMatch m) {
  switch (m) {
    case StructureMatch::kIdentical: return "identical";
    case StructureMatch::kEquivalent: return "equivalent";
    case StructureMatch::kNew: return "new";
  }
  throw Error("invalid StructureMatch");
}

StructureIndex::StructureIndex(const std::vector<CharacterizedCell>& training_cells) {
  for (const CharacterizedCell& cell : training_cells) add(cell.canonical);
}

void StructureIndex::add(const CanonicalCell& canonical) {
  full_.insert(canonical.structure_signature);
  reduced_.insert(canonical.reduced_signature);
}

StructureMatch StructureIndex::classify(const CanonicalCell& canonical) const {
  if (full_.count(canonical.structure_signature)) return StructureMatch::kIdentical;
  if (reduced_.count(canonical.reduced_signature)) return StructureMatch::kEquivalent;
  return StructureMatch::kNew;
}

}  // namespace caml
