#pragma once

#include <set>
#include <string>

#include "flow/characterize.hpp"

namespace caml {

/// Outcome of the hybrid flow's structural analysis (paper Section V.C):
/// how a new cell relates to the training dataset.
enum class StructureMatch : std::uint8_t {
  kIdentical,   ///< a training cell has the same transistor structure
  kEquivalent,  ///< same structure after the Fig. 6 merged/split
                ///< parallel-stack normalization
  kNew,         ///< no structural counterpart; simulation required
};

const char* structure_match_name(StructureMatch m);

/// Index over the structure signatures of a training set. Lookup is by
/// the technology-independent canonical signatures, so cells from any
/// library/technology can be matched.
class StructureIndex {
 public:
  StructureIndex() = default;
  explicit StructureIndex(const std::vector<CharacterizedCell>& training_cells);

  /// Adds one training cell's signatures (the hybrid flow's feedback
  /// loop: freshly simulated cells enrich the index).
  void add(const CanonicalCell& canonical);

  /// Classifies a new cell against the index.
  StructureMatch classify(const CanonicalCell& canonical) const;

  std::size_t num_full_signatures() const { return full_.size(); }
  std::size_t num_reduced_signatures() const { return reduced_.size(); }

 private:
  std::set<std::string> full_;
  std::set<std::string> reduced_;
};

}  // namespace caml
