#include "libgen/builder.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace caml {

const char* variant_suffix(StructureVariant v) {
  switch (v) {
    case StructureVariant::kWide: return "";
    case StructureVariant::kMerged: return "M";
    case StructureVariant::kSplit: return "S";
  }
  throw Error("invalid StructureVariant");
}

namespace {

std::string input_pin_name(PinNaming naming, int index) {
  switch (naming) {
    case PinNaming::kAlpha: {
      std::string n(1, static_cast<char>('A' + index));
      return n;
    }
    case PinNaming::kAIndex: return "A" + std::to_string(index);
    case PinNaming::kInIndex: return "IN" + std::to_string(index + 1);
  }
  throw Error("invalid PinNaming");
}

std::string output_pin_name(PinNaming naming) {
  switch (naming) {
    case PinNaming::kAlpha: return "Z";
    case PinNaming::kAIndex: return "Y";
    case PinNaming::kInIndex: return "Q";
  }
  throw Error("invalid PinNaming");
}

/// Recursive series/parallel network construction between nets `from`
/// and `to`. `copies` > 1 duplicates each leaf in place (kMerged).
struct NetworkBuilder {
  Cell& cell;
  const std::vector<NetId>& signal_nets;
  MosType type;
  double width;
  double length;
  NetId bulk;
  int copies;
  int* net_counter;
  int* dev_counter;

  void build(const Expr& e, NetId from, NetId to) {
    switch (e.op()) {
      case Expr::Op::kLeaf: {
        for (int c = 0; c < copies; ++c) {
          Transistor t;
          t.name = "DEV" + std::to_string((*dev_counter)++);
          t.type = type;
          t.drain = from;
          t.gate = signal_nets.at(static_cast<std::size_t>(e.signal()));
          t.source = to;
          t.bulk = bulk;
          t.width_um = width;
          t.length_um = length;
          cell.add_transistor(std::move(t));
        }
        return;
      }
      case Expr::Op::kSeries: {
        NetId prev = from;
        for (std::size_t i = 0; i < e.children().size(); ++i) {
          const bool last = i + 1 == e.children().size();
          NetId next = last ? to
                            : cell.add_net("mid" + std::to_string((*net_counter)++),
                                           NetKind::kInternal);
          build(e.children()[i], prev, next);
          prev = next;
        }
        return;
      }
      case Expr::Op::kParallel: {
        for (const Expr& c : e.children()) build(c, from, to);
        return;
      }
    }
    throw Error("invalid Expr op");
  }
};

std::string device_name(DeviceNaming naming, MosType type, int seq, int& nseq, int& pseq) {
  switch (naming) {
    case DeviceNaming::kMnMp:
      return type == MosType::kNmos ? "MN" + std::to_string(nseq++)
                                    : "MP" + std::to_string(pseq++);
    case DeviceNaming::kMSequential: return "M" + std::to_string(seq);
    case DeviceNaming::kMmSequential: return "MM" + std::to_string(seq + 1);
    case DeviceNaming::kTxTy:
      return type == MosType::kNmos ? "TN_" + std::to_string(nseq++)
                                    : "TP_" + std::to_string(pseq++);
  }
  throw Error("invalid DeviceNaming");
}

}  // namespace

Cell scramble_cell(const Cell& cell, const Technology& tech, Rng& rng) {
  // Permute transistor order.
  std::vector<TransistorId> order(cell.num_transistors());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<TransistorId>(i);
  rng.shuffle(order);

  // Renumber internal nets in a shuffled order.
  std::vector<NetId> internals;
  for (std::size_t n = 0; n < cell.num_nets(); ++n) {
    if (cell.nets()[n].kind == NetKind::kInternal) internals.push_back(static_cast<NetId>(n));
  }
  std::vector<int> net_numbers(internals.size());
  for (std::size_t i = 0; i < internals.size(); ++i) net_numbers[i] = static_cast<int>(i);
  rng.shuffle(net_numbers);

  Cell out(cell.name());
  std::vector<NetId> net_map(cell.num_nets(), kNoNet);
  std::size_t internal_idx = 0;
  for (std::size_t n = 0; n < cell.num_nets(); ++n) {
    const Net& net = cell.nets()[n];
    std::string name = net.name;
    if (net.kind == NetKind::kInternal) {
      name = tech.internal_net_prefix + std::to_string(net_numbers[internal_idx++]);
    }
    net_map[n] = out.add_net(name, net.kind);
  }

  int seq = 0, nseq = 0, pseq = 0;
  for (TransistorId old_id : order) {
    Transistor t = cell.transistor(old_id);
    t.name = device_name(tech.device_naming, t.type, seq, nseq, pseq);
    ++seq;
    t.drain = net_map[static_cast<std::size_t>(t.drain)];
    t.gate = net_map[static_cast<std::size_t>(t.gate)];
    t.source = net_map[static_cast<std::size_t>(t.source)];
    t.bulk = net_map[static_cast<std::size_t>(t.bulk)];
    out.add_transistor(std::move(t));
  }
  out.validate();
  return out;
}

Cell build_cell(const CellFunction& function, const Technology& tech, const DriveSpec& drive,
                const FlavorSpec& flavor, const std::string& cell_name, Rng& rng) {
  CAML_ASSERT(drive.drive >= 1);
  Cell cell(cell_name);

  // Pins first (SPICE pin order), then rails.
  std::vector<NetId> signal_nets;
  for (int i = 0; i < function.num_inputs; ++i) {
    signal_nets.push_back(cell.add_net(input_pin_name(tech.pin_naming, i), NetKind::kInput));
  }
  const NetId out_net = cell.add_net(output_pin_name(tech.pin_naming), NetKind::kOutput);
  const NetId vdd = cell.add_net(tech.power_net, NetKind::kPower);
  const NetId vss = cell.add_net(tech.ground_net, NetKind::kGround);

  // Stage output nets: the last stage drives the cell output.
  for (std::size_t k = 0; k < function.stages.size(); ++k) {
    const bool last = k + 1 == function.stages.size();
    signal_nets.push_back(last ? out_net
                               : cell.add_net("st" + std::to_string(k), NetKind::kInternal));
  }

  int net_counter = 0;
  int dev_counter = 0;
  for (std::size_t k = 0; k < function.stages.size(); ++k) {
    const bool last = k + 1 == function.stages.size();
    const Expr& pd = function.stages[k].pulldown;
    const Expr pu = pd.dual();
    const NetId stage_out = signal_nets[static_cast<std::size_t>(function.num_inputs) + k];

    // Drive realization applies to the output stage; earlier stages stay
    // at X1 (standard practice: only the output stage is strengthened).
    const double stage_drive =
        last && drive.variant == StructureVariant::kWide ? drive.drive : 1;
    const int copies = last && drive.variant == StructureVariant::kMerged ? drive.drive : 1;
    const int paths = last && drive.variant == StructureVariant::kSplit ? drive.drive : 1;

    const double wn = tech.nmos_width(stage_drive, pd.max_stack_depth()) * flavor.width_scale;
    const double wp = tech.pmos_width(stage_drive, pu.max_stack_depth()) * flavor.width_scale;

    for (int path = 0; path < paths; ++path) {
      NetworkBuilder nmos{cell, signal_nets, MosType::kNmos, wn, tech.gate_length_um,
                          vss,  copies,      &net_counter,    &dev_counter};
      nmos.build(pd, stage_out, vss);
      NetworkBuilder pmos{cell, signal_nets, MosType::kPmos, wp, tech.gate_length_um,
                          vdd,  copies,      &net_counter,    &dev_counter};
      pmos.build(pu, stage_out, vdd);
    }
  }

  cell.validate();
  return scramble_cell(cell, tech, rng);
}

Library build_library(const Technology& tech, const LibraryComposition& composition) {
  Library lib;
  lib.name = tech.name;
  lib.technology = tech;
  Rng rng(tech.seed);
  for (const std::string& fname : composition.functions) {
    const CellFunction& function = find_function(fname);
    for (const DriveSpec& drive : composition.drives) {
      // Drive 1 has no merged/split distinction; emit only the wide form.
      if (drive.drive == 1 && drive.variant != StructureVariant::kWide) continue;
      std::vector<FlavorSpec> flavors = composition.flavors;
      if (flavors.empty()) flavors.push_back(FlavorSpec{"", 1.0});
      if (drive.drive >= composition.reduced_flavors_at_drive &&
          flavors.size() > composition.high_drive_flavor_count) {
        flavors.resize(composition.high_drive_flavor_count);
      }
      for (const FlavorSpec& flavor : flavors) {
        std::string name = fname + "X" + std::to_string(drive.drive) +
                           variant_suffix(drive.variant);
        if (!flavor.suffix.empty()) name += "_" + flavor.suffix;
        Rng cell_rng = rng.fork();
        LibraryCell lc;
        lc.cell = build_cell(function, tech, drive, flavor, name, cell_rng);
        lc.function = fname;
        lc.technology = tech.name;
        lc.drive = drive.drive;
        lc.variant = drive.variant;
        lc.flavor = flavor.suffix;
        lib.cells.push_back(std::move(lc));
      }
    }
  }
  return lib;
}

BenchmarkSuite build_benchmark_suite() {
  // Functions shared by every technology (the common logic families).
  const std::vector<std::string> shared = {
      "INV",   "BUF",   "NAND2", "NAND3", "NAND4",  "NOR2",   "NOR3",  "NOR4",
      "AND2",  "OR2",   "AOI21", "AOI22", "OAI21",  "OAI22",  "XOR2",  "XNOR2",
      "MUX2I", "MIN3",  "AOI211", "OAI211"};
  // Present in 28SOI (training) only.
  const std::vector<std::string> soi_extra = {"AND3",  "OR3",    "AOI221", "OAI221",
                                              "MAJ3",  "MUX2",   "AOI311", "OAI311"};
  // Unique to C40: same logic families as shared, larger gates.
  const std::vector<std::string> c40_extra = {"AND4", "OR4", "AOI32", "OAI32", "AOI31", "OAI31"};
  // Unique to C28: genuinely new functions/topologies (drives the paper's
  // low-accuracy tail in Table IV.b).
  const std::vector<std::string> c28_extra = {"AOI222", "OAI222", "XOR3",   "AOI33",
                                              "OAI33",  "AOI2BB1", "OAI2BB1"};

  const auto concat = [](std::vector<std::string> a, const std::vector<std::string>& b) {
    a.insert(a.end(), b.begin(), b.end());
    return a;
  };

  BenchmarkSuite suite;

  LibraryComposition soi;
  soi.functions = concat(shared, soi_extra);
  soi.drives = {{1, StructureVariant::kWide},
                {2, StructureVariant::kMerged},
                {2, StructureVariant::kSplit},
                {4, StructureVariant::kMerged},
                {4, StructureVariant::kSplit}};
  soi.flavors = {{"", 1.0}, {"LP", 0.85}, {"HP", 1.1}};
  suite.soi28 = build_library(technology_28soi(), soi);

  LibraryComposition c40;
  c40.functions = concat(shared, c40_extra);
  // Every structural drive form also exists in 28SOI -> Table IV.c's
  // "same structures, different sizes" scenario.
  c40.drives = {{1, StructureVariant::kWide},
                {2, StructureVariant::kMerged},
                {2, StructureVariant::kSplit},
                {4, StructureVariant::kMerged}};
  c40.flavors = {{"", 1.0}, {"LP", 0.85}};
  suite.c40 = build_library(technology_c40(), c40);

  LibraryComposition c28;
  c28.functions = concat(shared, c28_extra);
  // X3 merged is a parallel multiplicity never seen in 28SOI.
  c28.drives = {{1, StructureVariant::kWide},
                {2, StructureVariant::kMerged},
                {2, StructureVariant::kSplit},
                {3, StructureVariant::kMerged}};
  c28.flavors = {{"", 1.0}, {"HP", 1.1}};
  suite.c28 = build_library(technology_c28(), c28);

  return suite;
}

}  // namespace caml
