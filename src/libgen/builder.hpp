#pragma once

#include <string>
#include <vector>

#include "libgen/catalog.hpp"
#include "libgen/technology.hpp"
#include "netlist/cell.hpp"
#include "util/rng.hpp"

namespace caml {

/// How a drive multiple is realized structurally. kMerged and kSplit are
/// the paper's Fig. 6 pair: same logic function, parallel stacks with /
/// without the shared internal ("red") net.
enum class StructureVariant : std::uint8_t {
  kWide,    ///< wider devices, same transistor count
  kMerged,  ///< each output-stage transistor duplicated in place
            ///< (parallel copies share internal nets)
  kSplit,   ///< the whole output-stage network duplicated as independent
            ///< parallel paths (fresh internal nets)
};

const char* variant_suffix(StructureVariant v);

struct DriveSpec {
  int drive = 1;
  StructureVariant variant = StructureVariant::kWide;
};

/// Sizing flavor (VT/power variant): same structure, scaled widths.
struct FlavorSpec {
  std::string suffix;        ///< "" (std), "LP", "HP", ...
  double width_scale = 1.0;
};

/// A generated cell plus its provenance metadata (used by benches to
/// aggregate results by function/drive; never exposed to the ML layer).
struct LibraryCell {
  Cell cell;
  std::string function;
  std::string technology;
  int drive = 1;
  StructureVariant variant = StructureVariant::kWide;
  std::string flavor;
};

struct Library {
  std::string name;        ///< technology name
  Technology technology;
  std::vector<LibraryCell> cells;
};

/// Builds one cell: stage-by-stage complementary CMOS construction,
/// drive-variant application on the output stage, technology sizing,
/// then scrambling (random transistor order, vendor device names,
/// renamed internal nets) driven by rng. The result carries no trace of
/// the construction order — parsing vendor SPICE would look the same.
Cell build_cell(const CellFunction& function, const Technology& tech, const DriveSpec& drive,
                const FlavorSpec& flavor, const std::string& cell_name, Rng& rng);

/// Randomizes transistor order and renames devices/internal nets
/// according to the technology conventions. Pure function of (cell,
/// tech, rng); logic behaviour is untouched. Exposed for property tests.
Cell scramble_cell(const Cell& cell, const Technology& tech, Rng& rng);

/// Which functions / drives / flavors a library contains.
struct LibraryComposition {
  std::vector<std::string> functions;
  std::vector<DriveSpec> drives;
  std::vector<FlavorSpec> flavors;
  /// Drives at or above this multiple are emitted with a reduced
  /// flavor set (default: X4 and up get the first two flavors) — real
  /// libraries rarely spin the full VT/power matrix for high drives,
  /// and this bounds the heaviest characterization groups while keeping
  /// an identical-structure sibling in every group.
  int reduced_flavors_at_drive = 4;
  std::size_t high_drive_flavor_count = 2;
};

Library build_library(const Technology& tech, const LibraryComposition& composition);

/// The three-library benchmark suite mirroring the paper's setup:
/// "28SOI" is the large training library; "C40" shares all its logic
/// families (different sizing — the paper's Table IV.c scenario); "C28"
/// contains functions and structural variants absent from 28SOI (the
/// Table IV.b scenario with its low-accuracy tail).
struct BenchmarkSuite {
  Library soi28;
  Library c40;
  Library c28;
};

BenchmarkSuite build_benchmark_suite();

}  // namespace caml
