#include "libgen/catalog.hpp"

#include <map>

#include "util/error.hpp"

namespace caml {

std::uint64_t CellFunction::truth_table() const {
  CAML_ASSERT(num_inputs >= 1 && num_inputs <= 6);
  std::uint64_t tt = 0;
  const std::size_t patterns = std::size_t{1} << num_inputs;
  for (std::size_t pat = 0; pat < patterns; ++pat) {
    std::vector<bool> signals(static_cast<std::size_t>(num_inputs) + stages.size());
    for (int i = 0; i < num_inputs; ++i) signals[static_cast<std::size_t>(i)] = (pat >> i) & 1u;
    for (std::size_t k = 0; k < stages.size(); ++k) {
      signals[static_cast<std::size_t>(num_inputs) + k] = !stages[k].pulldown.eval(signals);
    }
    if (signals.back()) tt |= std::uint64_t{1} << pat;
  }
  return tt;
}

std::size_t CellFunction::base_transistors() const {
  std::size_t n = 0;
  for (const StageSpec& st : stages) n += 2 * st.pulldown.num_leaves();
  return n;
}

namespace {

/// Signal index of stage k's output for an n-input function.
int stage_out(int n, int k) { return n + k; }

std::vector<CellFunction> build_catalog() {
  std::vector<CellFunction> cat;
  const auto add = [&](std::string name, int n, std::vector<StageSpec> stages) {
    cat.push_back(CellFunction{std::move(name), n, std::move(stages)});
  };

  // --- Inverters / buffers -------------------------------------------
  add("INV", 1, {{x(0)}});
  add("BUF", 1, {{x(0)}, {x(1)}});  // INV then INV

  // --- NAND / NOR ----------------------------------------------------
  add("NAND2", 2, {{s({x(0), x(1)})}});
  add("NAND3", 3, {{s({x(0), x(1), x(2)})}});
  add("NAND4", 4, {{s({x(0), x(1), x(2), x(3)})}});
  add("NOR2", 2, {{p({x(0), x(1)})}});
  add("NOR3", 3, {{p({x(0), x(1), x(2)})}});
  add("NOR4", 4, {{p({x(0), x(1), x(2), x(3)})}});

  // --- AND / OR (NAND/NOR + output inverter) -------------------------
  add("AND2", 2, {{s({x(0), x(1)})}, {x(stage_out(2, 0))}});
  add("AND3", 3, {{s({x(0), x(1), x(2)})}, {x(stage_out(3, 0))}});
  add("AND4", 4, {{s({x(0), x(1), x(2), x(3)})}, {x(stage_out(4, 0))}});
  add("OR2", 2, {{p({x(0), x(1)})}, {x(stage_out(2, 0))}});
  add("OR3", 3, {{p({x(0), x(1), x(2)})}, {x(stage_out(3, 0))}});
  add("OR4", 4, {{p({x(0), x(1), x(2), x(3)})}, {x(stage_out(4, 0))}});

  // --- AOI family: Z = NOT(AND-OR) ------------------------------------
  add("AOI21", 3, {{p({s({x(0), x(1)}), x(2)})}});
  add("AOI22", 4, {{p({s({x(0), x(1)}), s({x(2), x(3)})})}});
  add("AOI31", 4, {{p({s({x(0), x(1), x(2)}), x(3)})}});
  add("AOI32", 5, {{p({s({x(0), x(1), x(2)}), s({x(3), x(4)})})}});
  add("AOI33", 6, {{p({s({x(0), x(1), x(2)}), s({x(3), x(4), x(5)})})}});
  add("AOI211", 4, {{p({s({x(0), x(1)}), x(2), x(3)})}});
  add("AOI221", 5, {{p({s({x(0), x(1)}), s({x(2), x(3)}), x(4)})}});
  add("AOI222", 6, {{p({s({x(0), x(1)}), s({x(2), x(3)}), s({x(4), x(5)})})}});
  add("AOI311", 5, {{p({s({x(0), x(1), x(2)}), x(3), x(4)})}});

  // --- OAI family: Z = NOT(OR-AND) ------------------------------------
  add("OAI21", 3, {{s({p({x(0), x(1)}), x(2)})}});
  add("OAI22", 4, {{s({p({x(0), x(1)}), p({x(2), x(3)})})}});
  add("OAI31", 4, {{s({p({x(0), x(1), x(2)}), x(3)})}});
  add("OAI32", 5, {{s({p({x(0), x(1), x(2)}), p({x(3), x(4)})})}});
  add("OAI33", 6, {{s({p({x(0), x(1), x(2)}), p({x(3), x(4), x(5)})})}});
  add("OAI211", 4, {{s({p({x(0), x(1)}), x(2), x(3)})}});
  add("OAI221", 5, {{s({p({x(0), x(1)}), p({x(2), x(3)}), x(4)})}});
  add("OAI222", 6, {{s({p({x(0), x(1)}), p({x(2), x(3)}), p({x(4), x(5)})})}});
  add("OAI311", 5, {{s({p({x(0), x(1), x(2)}), x(3), x(4)})}});

  // --- AO / OA (non-inverting complex gates) ---------------------------
  add("AO21", 3, {{p({s({x(0), x(1)}), x(2)})}, {x(stage_out(3, 0))}});
  add("AO22", 4, {{p({s({x(0), x(1)}), s({x(2), x(3)})})}, {x(stage_out(4, 0))}});
  add("OA21", 3, {{s({p({x(0), x(1)}), x(2)})}, {x(stage_out(3, 0))}});
  add("OA22", 4, {{s({p({x(0), x(1)}), p({x(2), x(3)})})}, {x(stage_out(4, 0))}});

  // --- XOR / XNOR (input inverters + complex stage) --------------------
  // Signals: 0=A, 1=B, stage0 = !A, stage1 = !B.
  // XNOR2: Z = NOT(A&B | !A&!B)... note A&B | !A&!B = XNOR, so the complex
  // stage alone gives XOR; adding it after swapping gives XNOR.
  add("XOR2", 2,
      {{x(0)},  // !A
       {x(1)},  // !B
       {p({s({x(0), x(1)}), s({x(stage_out(2, 0)), x(stage_out(2, 1))})})}});
  add("XNOR2", 2,
      {{x(0)},
       {x(1)},
       {p({s({x(0), x(stage_out(2, 1))}), s({x(stage_out(2, 0)), x(1)})})}});
  // XOR3 as a cascade: T = XOR2(A,B), Z = XOR2(T,C).
  add("XOR3", 3,
      {{x(0)},                                                              // s0 = !A
       {x(1)},                                                              // s1 = !B
       {p({s({x(0), x(1)}), s({x(stage_out(3, 0)), x(stage_out(3, 1))})})},  // s2 = A^B
       {x(stage_out(3, 2))},                                                // s3 = !(A^B)
       {x(2)},                                                              // s4 = !C
       {p({s({x(stage_out(3, 2)), x(2)}),
           s({x(stage_out(3, 3)), x(stage_out(3, 4))})})}});                // Z = (A^B)^C

  // --- MUX -------------------------------------------------------------
  // MUX2I: Z = NOT(S ? B : A). Signals: 0=A, 1=B, 2=S, stage0 = !S.
  add("MUX2I", 3, {{x(2)}, {p({s({x(0), x(stage_out(3, 0))}), s({x(1), x(2)})})}});
  add("MUX2", 3,
      {{x(2)},
       {p({s({x(0), x(stage_out(3, 0))}), s({x(1), x(2)})})},
       {x(stage_out(3, 1))}});

  // --- Majority / minority (full-adder carry logic) --------------------
  add("MIN3", 3, {{p({s({x(0), x(1)}), s({x(1), x(2)}), s({x(0), x(2)})})}});
  add("MAJ3", 3,
      {{p({s({x(0), x(1)}), s({x(1), x(2)}), s({x(0), x(2)})})}, {x(stage_out(3, 0))}});

  // --- Wide NAND/NOR via cascades (larger multi-stage cells) -----------
  // NAND2 of two AND2 halves: Z = NOT(A&B&C&D) built as two stages +
  // final NOR-like recombination — a structurally different NAND4.
  add("NAND4ALT", 4,
      {{s({x(0), x(1)})},                                      // !(AB)
       {s({x(2), x(3)})},                                      // !(CD)
       {p({x(stage_out(4, 0)), x(stage_out(4, 1))})},          // AB&CD (NOR of the two)
       {x(stage_out(4, 2))}});                                 // invert -> NAND4
  add("NOR4ALT", 4,
      {{p({x(0), x(1)})},
       {p({x(2), x(3)})},
       {s({x(stage_out(4, 0)), x(stage_out(4, 1))})},
       {x(stage_out(4, 2))}});

  // --- 2-bit decoder-ish complex gates ---------------------------------
  add("AOI2BB1", 3,  // Z = NOT((!A & !B) | C): input bubbles on the AND
      {{x(0)}, {x(1)}, {p({s({x(stage_out(3, 0)), x(stage_out(3, 1))}), x(2)})}});
  add("OAI2BB1", 3,  // Z = NOT((!A | !B) & C)
      {{x(0)}, {x(1)}, {s({p({x(stage_out(3, 0)), x(stage_out(3, 1))}), x(2)})}});

  // --- Wider single-stage gates --------------------------------------
  add("NAND5", 5, {{s({x(0), x(1), x(2), x(3), x(4)})}});
  add("NOR5", 5, {{p({x(0), x(1), x(2), x(3), x(4)})}});
  add("AND5", 5, {{s({x(0), x(1), x(2), x(3), x(4)})}, {x(stage_out(5, 0))}});
  add("OR5", 5, {{p({x(0), x(1), x(2), x(3), x(4)})}, {x(stage_out(5, 0))}});
  add("AOI41", 5, {{p({s({x(0), x(1), x(2), x(3)}), x(4)})}});
  add("OAI41", 5, {{s({p({x(0), x(1), x(2), x(3)}), x(4)})}});
  add("AOI321", 6, {{p({s({x(0), x(1), x(2)}), s({x(3), x(4)}), x(5)})}});
  add("OAI321", 6, {{s({p({x(0), x(1), x(2)}), p({x(3), x(4)}), x(5)})}});

  // --- AO / OA with three terms ----------------------------------------
  add("AO211", 4, {{p({s({x(0), x(1)}), x(2), x(3)})}, {x(stage_out(4, 0))}});
  add("OA211", 4, {{s({p({x(0), x(1)}), x(2), x(3)})}, {x(stage_out(4, 0))}});

  // --- XNOR3 (cascade, complement of XOR3's final stage) ----------------
  add("XNOR3", 3,
      {{x(0)},                                                               // s0 = !A
       {x(1)},                                                               // s1 = !B
       {p({s({x(0), x(1)}), s({x(stage_out(3, 0)), x(stage_out(3, 1))})})},  // s2 = A^B
       {x(stage_out(3, 2))},                                                 // s3 = !(A^B)
       {x(2)},                                                               // s4 = !C
       {p({s({x(stage_out(3, 2)), x(stage_out(3, 4))}),
           s({x(stage_out(3, 3)), x(2)})})}});                               // Z = !(A^B^C)

  // --- 4:1 multiplexer (inverting), two select lines ---------------------
  // Inputs: D0..D3 = signals 0..3, S0 = 4, S1 = 5.
  add("MUX4I", 6,
      {{x(4)},  // !S0
       {x(5)},  // !S1
       {p({s({x(0), x(stage_out(6, 0)), x(stage_out(6, 1))}),
           s({x(1), x(4), x(stage_out(6, 1))}),
           s({x(2), x(stage_out(6, 0)), x(5)}),
           s({x(3), x(4), x(5)})})}});

  return cat;
}

}  // namespace

const std::vector<CellFunction>& function_catalog() {
  static const std::vector<CellFunction> cat = build_catalog();
  return cat;
}

const CellFunction& find_function(const std::string& name) {
  for (const CellFunction& f : function_catalog()) {
    if (f.name == name) return f;
  }
  throw Error("unknown catalog function: " + name);
}

std::vector<std::string> catalog_names() {
  std::vector<std::string> names;
  for (const CellFunction& f : function_catalog()) names.push_back(f.name);
  return names;
}

}  // namespace caml
