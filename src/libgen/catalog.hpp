#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "libgen/expr.hpp"

namespace caml {

/// One static CMOS stage: a pull-down expression; the pull-up network is
/// its dual, so the stage output is NOT(pulldown).
struct StageSpec {
  Expr pulldown;
};

/// A logic function from the generator catalog, described as a cascade
/// of complementary CMOS stages. Stage k's output is signal
/// num_inputs + k; the last stage drives the cell output.
struct CellFunction {
  std::string name;
  int num_inputs = 0;
  std::vector<StageSpec> stages;

  /// Truth table (bit p = output under input pattern p), computed by
  /// evaluating the stage cascade. num_inputs must be <= 6.
  std::uint64_t truth_table() const;

  /// Transistors of the X1 realization: 2 per expression leaf.
  std::size_t base_transistors() const;
};

/// The full catalog of ~45 functions (INV/BUF, NAND/NOR/AND/OR 2-4,
/// AOI/OAI families, XOR/XNOR, MUX, MAJ/MIN, cascaded XOR3, ...).
/// Deterministic order; names unique.
const std::vector<CellFunction>& function_catalog();

/// Lookup by name; throws caml::Error if unknown.
const CellFunction& find_function(const std::string& name);

/// Names of every catalog function, in catalog order.
std::vector<std::string> catalog_names();

}  // namespace caml
