#include "libgen/expr.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace caml {

Expr Expr::leaf(int signal) {
  CAML_ASSERT(signal >= 0);
  Expr e;
  e.op_ = Op::kLeaf;
  e.signal_ = signal;
  return e;
}

Expr Expr::series(std::vector<Expr> children) {
  CAML_ASSERT(!children.empty());
  if (children.size() == 1) return children.front();
  Expr e;
  e.op_ = Op::kSeries;
  e.children_ = std::move(children);
  return e;
}

Expr Expr::parallel(std::vector<Expr> children) {
  CAML_ASSERT(!children.empty());
  if (children.size() == 1) return children.front();
  Expr e;
  e.op_ = Op::kParallel;
  e.children_ = std::move(children);
  return e;
}

std::size_t Expr::num_leaves() const {
  if (is_leaf()) return 1;
  std::size_t n = 0;
  for (const Expr& c : children_) n += c.num_leaves();
  return n;
}

std::size_t Expr::max_stack_depth() const {
  if (is_leaf()) return 1;
  if (op_ == Op::kSeries) {
    std::size_t total = 0;
    for (const Expr& c : children_) total += c.max_stack_depth();
    return total;
  }
  std::size_t best = 0;
  for (const Expr& c : children_) best = std::max(best, c.max_stack_depth());
  return best;
}

int Expr::max_signal() const {
  if (is_leaf()) return signal_;
  int best = -1;
  for (const Expr& c : children_) best = std::max(best, c.max_signal());
  return best;
}

bool Expr::eval(const std::vector<bool>& signals) const {
  switch (op_) {
    case Op::kLeaf:
      CAML_ASSERT(static_cast<std::size_t>(signal_) < signals.size());
      return signals[static_cast<std::size_t>(signal_)];
    case Op::kSeries:
      for (const Expr& c : children_) {
        if (!c.eval(signals)) return false;
      }
      return true;
    case Op::kParallel:
      for (const Expr& c : children_) {
        if (c.eval(signals)) return true;
      }
      return false;
  }
  throw Error("invalid Expr op");
}

Expr Expr::dual() const {
  if (is_leaf()) return *this;
  std::vector<Expr> duals;
  duals.reserve(children_.size());
  for (const Expr& c : children_) duals.push_back(c.dual());
  return op_ == Op::kSeries ? parallel(std::move(duals)) : series(std::move(duals));
}

std::string Expr::to_string() const {
  if (is_leaf()) return std::to_string(signal_);
  std::string sep = op_ == Op::kSeries ? "&" : "|";
  std::string out = "(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i) out += sep;
    out += children_[i].to_string();
  }
  out += ")";
  return out;
}

Expr s(std::initializer_list<Expr> children) { return Expr::series(std::vector<Expr>(children)); }

Expr p(std::initializer_list<Expr> children) {
  return Expr::parallel(std::vector<Expr>(children));
}

}  // namespace caml
