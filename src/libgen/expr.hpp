#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace caml {

/// Series/parallel network expression used to describe the pull-down
/// network of a static CMOS stage. Leaves reference *signals*: values
/// 0..n-1 are cell inputs, n+k is the output of stage k (for multi-stage
/// cells). The pull-up network is always the structural dual (series and
/// parallel swapped), so a stage computes NOT(expr).
class Expr {
 public:
  enum class Op : std::uint8_t { kLeaf, kSeries, kParallel };

  /// Leaf over a signal index.
  static Expr leaf(int signal);
  /// Series composition (transistor stack). Requires >= 1 child;
  /// single-child compositions collapse to the child.
  static Expr series(std::vector<Expr> children);
  /// Parallel composition. Requires >= 1 child; single child collapses.
  static Expr parallel(std::vector<Expr> children);

  Op op() const { return op_; }
  int signal() const { return signal_; }
  const std::vector<Expr>& children() const { return children_; }

  bool is_leaf() const { return op_ == Op::kLeaf; }

  /// Number of leaves (transistors the stage network will contain).
  std::size_t num_leaves() const;

  /// Largest series depth (stack height) of the network.
  std::size_t max_stack_depth() const;

  /// Highest signal index referenced, or -1 for none.
  int max_signal() const;

  /// Boolean value of the network given signal values (true = conducting
  /// path exists): series is AND, parallel is OR.
  bool eval(const std::vector<bool>& signals) const;

  /// Structural dual: series <-> parallel, leaves unchanged. Applying it
  /// to a pull-down expression yields the complementary pull-up network.
  Expr dual() const;

  /// "(0&(1|2))"-style rendering for debugging.
  std::string to_string() const;

 private:
  Op op_ = Op::kLeaf;
  int signal_ = -1;
  std::vector<Expr> children_;
};

/// Convenience constructors for catalog definitions.
inline Expr x(int signal) { return Expr::leaf(signal); }
Expr s(std::initializer_list<Expr> children);
Expr p(std::initializer_list<Expr> children);

}  // namespace caml
