#include "libgen/technology.hpp"

#include <algorithm>
#include <cmath>

namespace caml {

namespace {

double quantize(double w, double quantum) {
  return std::max(quantum, std::round(w / quantum) * quantum);
}

}  // namespace

double Technology::nmos_width(double drive, std::size_t stack_depth) const {
  const double w =
      nmos_unit_width_um * drive * (1.0 + stack_upsize * static_cast<double>(stack_depth - 1));
  return quantize(w, width_quantum_um);
}

double Technology::pmos_width(double drive, std::size_t stack_depth) const {
  const double w = nmos_unit_width_um * pmos_width_ratio * drive *
                   (1.0 + stack_upsize * static_cast<double>(stack_depth - 1));
  return quantize(w, width_quantum_um);
}

Technology technology_28soi() {
  Technology t;
  t.name = "28SOI";
  t.seed = 0x5011u;
  t.nmos_unit_width_um = 0.20;
  t.pmos_width_ratio = 1.6;
  t.gate_length_um = 0.030;
  t.width_quantum_um = 0.01;
  t.stack_upsize = 0.25;
  t.nmos_model = "nsvt";
  t.pmos_model = "psvt";
  t.device_naming = DeviceNaming::kMnMp;
  t.pin_naming = PinNaming::kAlpha;
  t.internal_net_prefix = "net";
  t.sim.unit_width_um = 0.20;
  t.sim.pmos_mobility = 0.55;
  return t;
}

Technology technology_c28() {
  Technology t;
  t.name = "C28";
  t.seed = 0xC2801u;
  t.nmos_unit_width_um = 0.24;
  t.pmos_width_ratio = 1.9;
  t.gate_length_um = 0.030;
  t.width_quantum_um = 0.02;
  t.stack_upsize = 0.35;
  t.nmos_model = "nch";
  t.pmos_model = "pch";
  t.device_naming = DeviceNaming::kMSequential;
  t.pin_naming = PinNaming::kAIndex;
  t.internal_net_prefix = "n";
  t.sim.unit_width_um = 0.24;
  t.sim.pmos_mobility = 0.45;
  return t;
}

Technology technology_c40() {
  Technology t;
  t.name = "C40";
  t.seed = 0xC4001u;
  t.nmos_unit_width_um = 0.42;  // markedly larger devices (40nm node)
  t.pmos_width_ratio = 2.0;
  t.gate_length_um = 0.040;
  t.width_quantum_um = 0.02;
  t.stack_upsize = 0.30;
  t.nmos_model = "nfet";
  t.pmos_model = "pfet";
  t.device_naming = DeviceNaming::kMmSequential;
  t.pin_naming = PinNaming::kInIndex;
  t.internal_net_prefix = "int_";
  t.sim.unit_width_um = 0.42;
  t.sim.pmos_mobility = 0.50;
  return t;
}

std::vector<Technology> default_technologies() {
  return {technology_28soi(), technology_c28(), technology_c40()};
}

}  // namespace caml
