#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/switch_sim.hpp"

namespace caml {

/// Device naming convention of a library vendor. The generator scrambles
/// device order and names per technology precisely because the paper's
/// method must not rely on them (Section III.B).
enum class DeviceNaming : std::uint8_t {
  kMnMp,         ///< MN0, MN1, ... / MP0, MP1, ...
  kMSequential,  ///< M0, M1, M2, ... regardless of type
  kMmSequential, ///< MM1, MM2, ...
  kTxTy,         ///< TN_0 / TP_0 style
};

/// Pin naming convention for inputs/output.
enum class PinNaming : std::uint8_t {
  kAlpha,   ///< A, B, C, ... output Z
  kAIndex,  ///< A0, A1, A2, ... output Y
  kInIndex, ///< IN1, IN2, ... output Q
};

/// A synthetic process technology: sizing rules, naming conventions and
/// simulator (test-condition) parameters. Stand-in for the paper's C40 /
/// 28SOI / C28 STMicroelectronics technologies.
struct Technology {
  std::string name;
  std::uint64_t seed = 1;

  // Sizing rules.
  double nmos_unit_width_um = 0.2;  ///< X1 NMOS width
  double pmos_width_ratio = 1.8;    ///< PMOS width = NMOS width * ratio
  double gate_length_um = 0.03;
  double width_quantum_um = 0.01;   ///< widths round to this grid
  double stack_upsize = 0.25;       ///< extra width per unit of stack depth

  // Netlist conventions.
  std::string nmos_model = "nch";
  std::string pmos_model = "pch";
  DeviceNaming device_naming = DeviceNaming::kMnMp;
  PinNaming pin_naming = PinNaming::kAlpha;
  std::string internal_net_prefix = "net";
  std::string power_net = "VDD";
  std::string ground_net = "VSS";

  /// Test-condition / PVT stand-in: the switch-level parameters used
  /// when generating this technology's ground-truth CA models. Small
  /// differences here make a few defects flip class across technologies,
  /// as the paper observes.
  SimConfig sim;

  /// Quantized NMOS/PMOS width for a drive multiple and stack depth.
  double nmos_width(double drive, std::size_t stack_depth) const;
  double pmos_width(double drive, std::size_t stack_depth) const;
};

/// The three benchmark technologies. "28SOI" is the training technology
/// (28nm SOI), "C28" a bulk 28nm process (different sizing and vendor
/// conventions), "C40" a 40nm process (notably different sizes, same
/// logic families).
Technology technology_28soi();
Technology technology_c28();
Technology technology_c40();

std::vector<Technology> default_technologies();

}  // namespace caml
