#include "logic/stimulus.hpp"

#include "util/error.hpp"

namespace caml {

Stimulus Stimulus::from_pattern(InputPattern pattern, std::size_t num_inputs) {
  return from_pair(pattern, pattern, num_inputs);
}

Stimulus Stimulus::from_pair(InputPattern initial, InputPattern final, std::size_t num_inputs) {
  CAML_ASSERT(num_inputs <= 31);
  std::vector<Wave> waves(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    waves[i] = wave_from_pair((initial >> i) & 1u, (final >> i) & 1u);
  }
  return Stimulus(std::move(waves));
}

Stimulus Stimulus::parse(const std::string& text) {
  std::vector<Wave> waves;
  waves.reserve(text.size());
  for (char c : text) waves.push_back(wave_from_char(c));
  return Stimulus(std::move(waves));
}

bool Stimulus::is_static() const {
  for (Wave w : waves_) {
    if (!wave_is_static(w)) return false;
  }
  return true;
}

InputPattern Stimulus::initial_pattern() const {
  InputPattern p = 0;
  for (std::size_t i = 0; i < waves_.size(); ++i) {
    if (wave_initial(waves_[i])) p |= InputPattern{1} << i;
  }
  return p;
}

InputPattern Stimulus::final_pattern() const {
  InputPattern p = 0;
  for (std::size_t i = 0; i < waves_.size(); ++i) {
    if (wave_final(waves_[i])) p |= InputPattern{1} << i;
  }
  return p;
}

std::string Stimulus::to_string() const {
  std::string s;
  s.reserve(waves_.size());
  for (Wave w : waves_) s += wave_char(w);
  return s;
}

std::vector<Stimulus> generate_stimuli(std::size_t num_inputs, StimulusPolicy policy) {
  CAML_ASSERT(num_inputs >= 1 && num_inputs <= 16);
  const InputPattern count = InputPattern{1} << num_inputs;
  std::vector<Stimulus> out;
  out.reserve(stimulus_count(num_inputs, policy));
  for (InputPattern p = 0; p < count; ++p) out.push_back(Stimulus::from_pattern(p, num_inputs));
  switch (policy) {
    case StimulusPolicy::kStaticOnly:
      break;
    case StimulusPolicy::kSingleInputChange:
      for (InputPattern p = 0; p < count; ++p) {
        for (std::size_t i = 0; i < num_inputs; ++i) {
          const InputPattern q = p ^ (InputPattern{1} << i);
          out.push_back(Stimulus::from_pair(p, q, num_inputs));
        }
      }
      break;
    case StimulusPolicy::kExhaustivePairs:
      for (InputPattern p = 0; p < count; ++p) {
        for (InputPattern q = 0; q < count; ++q) {
          if (p != q) out.push_back(Stimulus::from_pair(p, q, num_inputs));
        }
      }
      break;
  }
  return out;
}

std::size_t stimulus_count(std::size_t num_inputs, StimulusPolicy policy) {
  const std::size_t s = std::size_t{1} << num_inputs;
  switch (policy) {
    case StimulusPolicy::kStaticOnly: return s;
    case StimulusPolicy::kSingleInputChange: return s + s * num_inputs;
    case StimulusPolicy::kExhaustivePairs: return s + s * (s - 1);
  }
  throw Error("invalid StimulusPolicy");
}

}  // namespace caml
