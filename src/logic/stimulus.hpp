#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/wave.hpp"

namespace caml {

/// Bit pattern applied to the inputs of a cell; bit i is input i.
using InputPattern = std::uint32_t;

/// One row of the "Cell inputs" part of the CA-matrix: a 4-valued value
/// per cell input. A stimulus is *static* when no input carries a
/// transition, *dynamic* otherwise (a two-pattern test).
class Stimulus {
 public:
  Stimulus() = default;
  explicit Stimulus(std::vector<Wave> waves) : waves_(std::move(waves)) {}

  /// Static stimulus from a bit pattern over n inputs.
  static Stimulus from_pattern(InputPattern pattern, std::size_t num_inputs);

  /// Dynamic (or static, if equal) stimulus from an (initial, final) pair.
  static Stimulus from_pair(InputPattern initial, InputPattern final, std::size_t num_inputs);

  /// Parse from a string like "0F1" (input 0 first). Throws on bad chars.
  static Stimulus parse(const std::string& text);

  std::size_t num_inputs() const { return waves_.size(); }
  Wave wave(std::size_t input) const { return waves_[input]; }
  const std::vector<Wave>& waves() const { return waves_; }

  bool is_static() const;

  /// Input patterns before / after the transition (equal when static).
  InputPattern initial_pattern() const;
  InputPattern final_pattern() const;

  /// "0F1"-style rendering, input 0 first.
  std::string to_string() const;

  bool operator==(const Stimulus& other) const = default;

 private:
  std::vector<Wave> waves_;
};

/// Which stimuli make up a CA-matrix.
enum class StimulusPolicy {
  /// 2^n static rows only (no sequence-dependent defect coverage).
  kStaticOnly,
  /// 2^n static + n * 2^(n-1) * 2 single-input-transition rows. A compact
  /// set still able to detect stuck-open defects; used by fast profiles.
  kSingleInputChange,
  /// 2^n static + 2^n * (2^n - 1) ordered two-pattern rows (every ordered
  /// pair of distinct patterns). Superset of the paper's stated
  /// 2^n + 2^n * 2^(n-1) count; see DESIGN.md section 2.
  kExhaustivePairs,
};

/// Generate the ordered stimulus list for n inputs under a policy.
/// Static stimuli come first in ascending pattern order, then dynamic
/// stimuli ordered by (initial, final) pattern. n must be in [1, 16].
std::vector<Stimulus> generate_stimuli(std::size_t num_inputs, StimulusPolicy policy);

/// Number of stimuli generate_stimuli would return.
std::size_t stimulus_count(std::size_t num_inputs, StimulusPolicy policy);

}  // namespace caml
