#include "logic/wave.hpp"

#include <ostream>

#include "util/error.hpp"

namespace caml {

bool wave_initial(Wave w) { return w == Wave::kOne || w == Wave::kFall; }

bool wave_final(Wave w) { return w == Wave::kOne || w == Wave::kRise; }

bool wave_is_static(Wave w) { return w == Wave::kZero || w == Wave::kOne; }

Wave wave_from_pair(bool initial, bool final) {
  if (initial == final) return final ? Wave::kOne : Wave::kZero;
  return final ? Wave::kRise : Wave::kFall;
}

Wave wave_invert(Wave w) {
  switch (w) {
    case Wave::kZero: return Wave::kOne;
    case Wave::kOne: return Wave::kZero;
    case Wave::kRise: return Wave::kFall;
    case Wave::kFall: return Wave::kRise;
  }
  throw Error("invalid Wave");
}

char wave_char(Wave w) {
  switch (w) {
    case Wave::kZero: return '0';
    case Wave::kOne: return '1';
    case Wave::kRise: return 'R';
    case Wave::kFall: return 'F';
  }
  throw Error("invalid Wave");
}

Wave wave_from_char(char c) {
  switch (c) {
    case '0': return Wave::kZero;
    case '1': return Wave::kOne;
    case 'R': case 'r': return Wave::kRise;
    case 'F': case 'f': return Wave::kFall;
    default: throw Error(std::string("invalid wave character '") + c + "'");
  }
}

std::ostream& operator<<(std::ostream& os, Wave w) { return os << wave_char(w); }

bool sig_is_binary(Sig s) { return s == Sig::kZero || s == Sig::kOne; }

char sig_char(Sig s) {
  switch (s) {
    case Sig::kZero: return '0';
    case Sig::kOne: return '1';
    case Sig::kX: return 'X';
    case Sig::kZ: return 'Z';
  }
  throw Error("invalid Sig");
}

Sig sig_from_bool(bool b) { return b ? Sig::kOne : Sig::kZero; }

std::ostream& operator<<(std::ostream& os, Sig s) { return os << sig_char(s); }

}  // namespace caml
