#pragma once

#include <cstdint>
#include <iosfwd>

namespace caml {

/// Four-valued stimulus/activity algebra from the paper's Table I:
/// a static 0, a static 1, a Rising transition (0 -> 1) and a Falling
/// transition (1 -> 0). Used both for cell input stimuli and for the
/// per-transistor switching-activity columns of the CA-matrix.
enum class Wave : std::uint8_t { kZero = 0, kOne = 1, kRise = 2, kFall = 3 };

/// Value during the first (initialization) pattern of a two-pattern test.
bool wave_initial(Wave w);

/// Value during the second (final) pattern; equals wave_initial for
/// static values.
bool wave_final(Wave w);

/// True for kZero / kOne.
bool wave_is_static(Wave w);

/// Build a Wave from an (initial, final) value pair.
Wave wave_from_pair(bool initial, bool final);

/// The opposite transition / complement value.
Wave wave_invert(Wave w);

/// '0', '1', 'R' or 'F'.
char wave_char(Wave w);

/// Parse '0'/'1'/'R'/'F' (case-insensitive). Throws caml::Error otherwise.
Wave wave_from_char(char c);

std::ostream& operator<<(std::ostream& os, Wave w);

/// Signal value used by the switch-level simulator: strong logic values,
/// unknown (X) and floating / high-impedance (Z).
enum class Sig : std::uint8_t { kZero = 0, kOne = 1, kX = 2, kZ = 3 };

bool sig_is_binary(Sig s);
char sig_char(Sig s);
Sig sig_from_bool(bool b);
std::ostream& operator<<(std::ostream& os, Sig s);

}  // namespace caml
