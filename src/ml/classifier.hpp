#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace caml {

/// Common interface of all binary classifiers in this library. fit()
/// must be called before predict(); rows passed to predict() must have
/// the same feature count as the training data.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void fit(const Dataset& data) = 0;
  virtual std::uint8_t predict(const std::int8_t* row) const = 0;
  virtual std::string name() const = 0;

  /// Predicted labels for `n` rows laid out contiguously with `stride`
  /// features between row starts (a CaMatrix feature block qualifies).
  /// The default loops predict(); classifiers with batch-friendly
  /// internals (RandomForest) override it with a single pass, which is
  /// what the inference paths call — one batched classification per
  /// (cell, group) instead of one virtual dispatch per matrix row.
  virtual std::vector<std::uint8_t> predict_batch(const std::int8_t* rows, std::size_t n,
                                                  std::size_t stride) const;

  /// Predicted label for every row of a dataset.
  std::vector<std::uint8_t> predict_all(const Dataset& data) const;

  /// Per-row confidence margin in [0, 1]: how decisively the classifier
  /// commits to its label. Ensembles override this with the hard-vote
  /// disagreement margin |2 * vote1 / trees - 1| (0 = evenly split,
  /// 1 = unanimous); the default says 1.0 for every row — a
  /// non-ensemble classifier exposes no internal disagreement, so
  /// uncertainty-driven acquisition treats it as fully confident.
  virtual std::vector<double> predict_margin_batch(const std::int8_t* rows, std::size_t n,
                                                   std::size_t stride) const;
};

}  // namespace caml
