#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace caml {

/// Common interface of all binary classifiers in this library. fit()
/// must be called before predict(); rows passed to predict() must have
/// the same feature count as the training data.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void fit(const Dataset& data) = 0;
  virtual std::uint8_t predict(const std::int8_t* row) const = 0;
  virtual std::string name() const = 0;

  /// Predicted label for every row of a dataset.
  std::vector<std::uint8_t> predict_all(const Dataset& data) const;
};

}  // namespace caml
