#include "ml/dataset.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace caml {

void Dataset::add_row(const std::int8_t* row, std::uint8_t label, std::uint32_t weight) {
  features_.insert(features_.end(), row, row + num_features_);
  labels_.push_back(label);
  weights_.push_back(weight);
}

void Dataset::add_sampled(const Dataset& other, std::size_t max_rows, Rng& rng) {
  CAML_ASSERT(other.num_features() == num_features_);
  if (max_rows == 0 || other.num_rows() <= max_rows) {
    for (std::size_t r = 0; r < other.num_rows(); ++r) {
      add_row(other.row(r), other.label(r), other.weight(r));
    }
    return;
  }
  // Stratified: sample each class proportionally, at least one row of a
  // class that exists (rare detections must not vanish).
  std::vector<std::size_t> pos, neg;
  for (std::size_t r = 0; r < other.num_rows(); ++r) {
    (other.label(r) ? pos : neg).push_back(r);
  }
  const double ratio = static_cast<double>(max_rows) / static_cast<double>(other.num_rows());
  const auto take = [&](std::vector<std::size_t>& idx) {
    if (idx.empty()) return;
    std::size_t k = static_cast<std::size_t>(static_cast<double>(idx.size()) * ratio);
    k = std::clamp<std::size_t>(k, 1, idx.size());
    for (std::size_t i : rng.sample_indices(idx.size(), k)) {
      add_row(other.row(idx[i]), other.label(idx[i]), other.weight(idx[i]));
    }
  };
  take(pos);
  take(neg);
}

void Dataset::add_deduplicated(const Dataset& other) {
  CAML_ASSERT(other.num_features() == num_features_);
  std::string key;
  key.reserve(num_features_ + 1);
  for (std::size_t r = 0; r < other.num_rows(); ++r) {
    key.assign(reinterpret_cast<const char*>(other.row(r)), num_features_);
    key.push_back(static_cast<char>(other.label(r)));
    const auto [it, inserted] = dedup_index_.try_emplace(key, num_rows());
    if (inserted) {
      add_row(other.row(r), other.label(r), other.weight(r));
    } else {
      weights_[it->second] += other.weight(r);
    }
  }
}

Dataset Dataset::subtract_deduplicated(const Dataset& other) const {
  CAML_ASSERT(other.num_features() == num_features_);
  std::vector<std::uint32_t> remaining = weights_;
  std::string key;
  key.reserve(num_features_ + 1);
  for (std::size_t r = 0; r < other.num_rows(); ++r) {
    key.assign(reinterpret_cast<const char*>(other.row(r)), num_features_);
    key.push_back(static_cast<char>(other.label(r)));
    const auto it = dedup_index_.find(key);
    if (it == dedup_index_.end() || remaining[it->second] < other.weight(r)) {
      throw Error("subtract_deduplicated: row not present with sufficient weight");
    }
    remaining[it->second] -= other.weight(r);
  }
  Dataset out(num_features_);
  out.reserve(num_rows());
  for (std::size_t r = 0; r < num_rows(); ++r) {
    if (remaining[r] > 0) out.add_row(row(r), labels_[r], remaining[r]);
  }
  return out;
}

ColumnView::ColumnView(const Dataset& data)
    : num_rows_(data.num_rows()), num_features_(data.num_features()) {
  data_.resize(num_rows_ * num_features_);
  // Row-major pass over the source (sequential reads), scattering into
  // the per-feature columns.
  for (std::size_t r = 0; r < num_rows_; ++r) {
    const std::int8_t* row = data.row(r);
    for (std::size_t f = 0; f < num_features_; ++f) {
      data_[f * num_rows_ + r] = row[f];
    }
  }
}

std::uint64_t Dataset::total_weight() const {
  std::uint64_t w = 0;
  for (std::uint32_t x : weights_) w += x;
  return w;
}

std::size_t Dataset::num_positive() const {
  std::size_t n = 0;
  for (std::uint8_t l : labels_) n += l;
  return n;
}

std::pair<std::int8_t, std::int8_t> Dataset::feature_range() const {
  if (features_.empty()) return {0, 0};
  const auto [lo, hi] = std::minmax_element(features_.begin(), features_.end());
  return {*lo, *hi};
}

}  // namespace caml
