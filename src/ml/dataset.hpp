#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace caml {

/// Dense binary-classification dataset with small-integer features —
/// the shape of CA-matrix data. Row-major, int8 features, {0,1} labels.
///
/// Rows carry an integer weight (default 1). CA-matrix training sets
/// contain many exactly repeated rows (structurally identical sibling
/// cells produce identical matrices), so the flow deduplicates them
/// into weighted rows — the tree learner then trains on the *full*
/// information at a fraction of the cost. Weight-blind consumers (k-NN,
/// the linear baselines) treat each distinct row once.
class Dataset {
 public:
  explicit Dataset(std::size_t num_features) : num_features_(num_features) {}

  std::size_t num_features() const { return num_features_; }
  std::size_t num_rows() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  void reserve(std::size_t rows) {
    features_.reserve(rows * num_features_);
    labels_.reserve(rows);
    weights_.reserve(rows);
  }

  /// Appends one row; `row` must hold num_features() values.
  void add_row(const std::int8_t* row, std::uint8_t label, std::uint32_t weight = 1);

  /// Appends up to max_rows rows of `other` chosen by a stratified
  /// sample that preserves the positive/negative label ratio
  /// (max_rows == 0 appends everything). Weights are carried over;
  /// the sample is uniform over rows, not over weight.
  void add_sampled(const Dataset& other, std::size_t max_rows, Rng& rng);

  /// Appends every row of `other`, merging rows whose (features, label)
  /// already exist in this dataset by adding their weights. `this` must
  /// have been built exclusively through add_deduplicated (it maintains
  /// the lookup index).
  void add_deduplicated(const Dataset& other);

  /// Returns a copy of this dataset with `other`'s row weights
  /// subtracted (matched by (features, label)); rows whose weight drops
  /// to zero are omitted. `this` must have been built through
  /// add_deduplicated, and every row of `other` must be present with at
  /// least its weight (throws caml::Error otherwise). This is the
  /// leave-one-out fast path: master-minus-one instead of rebuilding
  /// the training set per held-out cell.
  Dataset subtract_deduplicated(const Dataset& other) const;

  const std::int8_t* row(std::size_t r) const { return features_.data() + r * num_features_; }
  std::span<const std::int8_t> row_span(std::size_t r) const {
    return {row(r), num_features_};
  }
  std::uint8_t label(std::size_t r) const { return labels_[r]; }
  const std::vector<std::uint8_t>& labels() const { return labels_; }
  std::uint32_t weight(std::size_t r) const { return weights_[r]; }

  /// Sum of all row weights (the "virtual" row count before dedup).
  std::uint64_t total_weight() const;

  /// Count of rows with label 1.
  std::size_t num_positive() const;

  /// Smallest / largest feature value present (used to size histogram
  /// buckets in the tree learner). Returns {0, 0} when empty.
  std::pair<std::int8_t, std::int8_t> feature_range() const;

 private:
  std::size_t num_features_;
  std::vector<std::int8_t> features_;
  std::vector<std::uint8_t> labels_;
  std::vector<std::uint32_t> weights_;
  /// Lazily maintained by add_deduplicated: (row bytes + label) -> index.
  std::unordered_map<std::string, std::size_t> dedup_index_;
};

/// Column-major (feature-major) transpose of a Dataset's feature block.
///
/// The tree learner's histogram fill reads one feature across many rows;
/// on the row-major Dataset those reads are strided by num_features(),
/// so every access touches a new cache line. A ColumnView stores each
/// feature's values contiguously — column(f)[r] is the value of feature
/// f in row r — turning the fill into a sequential-ish walk of one
/// num_rows()-byte array. Built once per training run (RandomForest::fit
/// shares one view across all trees) and read-only afterwards, so
/// concurrent tree fits can share it freely.
class ColumnView {
 public:
  explicit ColumnView(const Dataset& data);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_features() const { return num_features_; }

  /// Contiguous values of one feature, indexed by row.
  const std::int8_t* column(std::size_t f) const { return data_.data() + f * num_rows_; }

 private:
  std::size_t num_rows_;
  std::size_t num_features_;
  std::vector<std::int8_t> data_;
};

}  // namespace caml
