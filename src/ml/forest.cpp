#include "ml/forest.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timing.hpp"

namespace caml {

namespace {

/// Forest observability: per-tree fit latency feeds the profile of
/// training runs; batch-size and row counters characterize inference
/// traffic (serve daemon and offline predict alike).
struct ForestMetrics {
  obs::Histogram& tree_fit_us;
  obs::Histogram& batch_rows;
  obs::Counter& rows_predicted;

  static ForestMetrics& get() {
    static ForestMetrics m{
        obs::Registry::global().histogram("caml_forest_tree_fit_us",
                                          "Per-tree fit latency in microseconds"),
        obs::Registry::global().histogram("caml_forest_batch_rows",
                                          "Rows per predict_proba_batch call"),
        obs::Registry::global().counter("caml_forest_rows_predicted_total",
                                        "Rows classified across all batch predictions"),
    };
    return m;
  }
};

}  // namespace

void RandomForest::grow(const Dataset& data, std::size_t count, std::uint64_t seed) {
  CAML_TRACE_SPAN_ITEMS("forest_fit", count);
  CAML_ASSERT(data.num_rows() > 0);
  num_features_ = data.num_features();
  Rng rng(seed);

  TreeParams tp = params_.tree;
  if (tp.max_features == 0) {
    tp.max_features = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(data.num_features()))));
    tp.max_features = std::max<std::size_t>(tp.max_features, 1);
  }
  std::size_t sample = data.num_rows();
  if (params_.max_samples_per_tree > 0) {
    sample = std::min(sample, params_.max_samples_per_tree);
  }

  // All per-tree randomness (bootstrap / subset indices, then the tree's
  // split-sampling seed) is drawn serially from the single Rng stream in
  // the exact order the serial loop used, so the fitted forest is
  // bit-identical for any thread count.
  const std::size_t first = trees_.size();
  std::vector<std::vector<std::uint32_t>> draws(count);
  trees_.reserve(first + count);
  for (std::size_t t = 0; t < count; ++t) {
    std::vector<std::uint32_t>& indices = draws[t];
    if (params_.bootstrap) {
      indices.resize(sample);
      for (std::uint32_t& i : indices) {
        i = static_cast<std::uint32_t>(rng.below(data.num_rows()));
      }
    } else if (sample < data.num_rows()) {
      // Capped: random subset without replacement, fresh per tree.
      for (std::size_t i : rng.sample_indices(data.num_rows(), sample)) {
        indices.push_back(static_cast<std::uint32_t>(i));
      }
    } else {
      indices.resize(data.num_rows());
      for (std::size_t i = 0; i < indices.size(); ++i) {
        indices[i] = static_cast<std::uint32_t>(i);
      }
    }
    trees_.emplace_back(tp, rng.next());
  }
  // One column-major transpose shared by every tree: the histogram fill
  // of the split search walks contiguous feature columns instead of
  // strided rows, and re-transposing per tree would waste the win.
  const ColumnView columns(data);
  // Trees only read the shared dataset/columns and mutate their own
  // state, so the fits are independent.
  parallel_for(count, params_.jobs, [&](std::size_t t) {
    const Stopwatch watch;
    trees_[first + t].fit_indices(data, columns, std::move(draws[t]));
    ForestMetrics::get().tree_fit_us.record(
        static_cast<std::uint64_t>(std::max<std::int64_t>(watch.elapsed_us(), 0)));
  });
}

void RandomForest::fit(const Dataset& data) {
  trees_.clear();
  grow(data, params_.num_trees, params_.seed);
}

void RandomForest::fit_more(const Dataset& data, std::size_t extra_trees) {
  if (extra_trees == 0) return;
  CAML_ASSERT(trees_.empty() || data.num_features() == num_features_);
  // The increment seed folds the current ensemble size into the base
  // seed (splitmix64-style odd multiplier), so each growth step draws a
  // fresh stream yet any two runs growing through the same sizes draw
  // identical trees.
  const std::uint64_t seed =
      params_.seed ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(trees_.size() + 1));
  grow(data, extra_trees, seed);
}

RandomForest RandomForest::assemble(std::vector<DecisionTree> trees,
                                    std::size_t num_features) {
  CAML_ASSERT(!trees.empty());
  RandomForest forest;
  forest.trees_ = std::move(trees);
  forest.num_features_ = num_features;
  return forest;
}

double RandomForest::predict_proba(const std::int8_t* row) const {
  CAML_ASSERT(!trees_.empty());
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) {
    const auto [c0, c1] = tree.leaf_votes(row);
    // A leaf with no recorded votes (possible in loaded forests) casts a
    // neutral 0.5 instead of poisoning the average with 0/0 = NaN.
    const std::uint64_t votes = c0 + c1;
    sum += votes == 0 ? 0.5 : static_cast<double>(c1) / static_cast<double>(votes);
  }
  return sum / static_cast<double>(trees_.size());
}

std::uint8_t RandomForest::predict(const std::int8_t* row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

std::vector<double> RandomForest::predict_proba_batch(const std::int8_t* rows, std::size_t n,
                                                      std::size_t stride) const {
  CAML_ASSERT(!trees_.empty());
  CAML_TRACE_SPAN_ITEMS("predict", n);
  ForestMetrics& metrics = ForestMetrics::get();
  metrics.batch_rows.record(n);
  metrics.rows_predicted.add(n);
  // Tree-major: the outer loop visits each tree once and classifies all
  // rows through it, so a tree's node array stays cache-resident across
  // the whole batch. Per row the votes still accumulate in tree order,
  // which keeps the floating-point sum identical to predict_proba().
  std::vector<double> sum(n, 0.0);
  for (const DecisionTree& tree : trees_) {
    for (std::size_t r = 0; r < n; ++r) {
      const auto [c0, c1] = tree.leaf_votes(rows + r * stride);
      const std::uint64_t votes = c0 + c1;
      sum[r] += votes == 0 ? 0.5 : static_cast<double>(c1) / static_cast<double>(votes);
    }
  }
  for (double& s : sum) s /= static_cast<double>(trees_.size());
  return sum;
}

std::vector<std::uint8_t> RandomForest::predict_batch(const std::int8_t* rows, std::size_t n,
                                                      std::size_t stride) const {
  const std::vector<double> proba = predict_proba_batch(rows, n, stride);
  std::vector<std::uint8_t> out(n);
  for (std::size_t r = 0; r < n; ++r) out[r] = proba[r] >= 0.5 ? 1 : 0;
  return out;
}

std::vector<double> RandomForest::predict_margin_batch(const std::int8_t* rows, std::size_t n,
                                                       std::size_t stride) const {
  CAML_ASSERT(!trees_.empty());
  // Tree-major like predict_proba_batch, but each tree casts a hard vote
  // for its majority leaf class (tie or empty leaf: half a vote each
  // way). Accumulation stays in tree order per row so the margin is the
  // same double no matter how rows are batched.
  std::vector<double> vote1(n, 0.0);
  for (const DecisionTree& tree : trees_) {
    for (std::size_t r = 0; r < n; ++r) {
      const auto [c0, c1] = tree.leaf_votes(rows + r * stride);
      vote1[r] += c1 > c0 ? 1.0 : (c1 == c0 ? 0.5 : 0.0);
    }
  }
  std::vector<double> margin(n);
  const double trees = static_cast<double>(trees_.size());
  for (std::size_t r = 0; r < n; ++r) {
    margin[r] = std::abs(2.0 * vote1[r] / trees - 1.0);
  }
  return margin;
}

std::vector<double> RandomForest::feature_importance() const {
  std::vector<double> out(num_features_, 0.0);
  std::size_t contributing = 0;
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& imp = tree.feature_importance();
    if (imp.size() != out.size()) continue;  // e.g. loaded trees
    ++contributing;
    for (std::size_t f = 0; f < out.size(); ++f) out[f] += imp[f];
  }
  if (contributing > 0) {
    for (double& v : out) v /= static_cast<double>(contributing);
  }
  return out;
}

}  // namespace caml
