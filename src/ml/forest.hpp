#pragma once

#include <iosfwd>

#include "ml/tree.hpp"

namespace caml {

struct LoadedForest;

struct ForestParams {
  std::size_t num_trees = 20;
  TreeParams tree;
  /// Per-tree sample cap over distinct (deduplicated) rows; 0 = no cap.
  /// With weighted dedup the full data is usually affordable, so the
  /// default is uncapped.
  std::size_t max_samples_per_tree = 0;
  /// true: classic bagging (sampling with replacement). false (default):
  /// every tree sees the whole (capped) training set and diversity comes
  /// from per-split feature subsampling only — on the small per-group
  /// corpora of this reproduction, bootstrap dropout of singleton rows
  /// measurably hurts accuracy.
  bool bootstrap = false;
  /// max_features of 0 means sqrt(num_features), resolved at fit time.
  std::uint64_t seed = 0xF0535Dull;
  /// Worker threads for fit (0 = one per hardware thread, 1 = serial).
  /// The fitted forest is bit-identical for any value: all per-tree
  /// randomness is drawn serially from the single seed stream before the
  /// trees are fitted concurrently.
  std::size_t jobs = 0;
};

/// Random Forest: bagged CART trees with per-split feature subsampling
/// and soft-vote aggregation (summed leaf class frequencies) — the
/// paper's classifier of choice.
class RandomForest : public Classifier {
 public:
  explicit RandomForest(ForestParams params = {}) : params_(params) {}

  void fit(const Dataset& data) override;

  /// Warm-start growth: fits `extra_trees` additional trees on `data`
  /// (typically the training pool enlarged since the last fit) and
  /// appends them to the ensemble — the incremental-retrain primitive of
  /// the active-learning loop. The increment's randomness comes from a
  /// fresh stream derived deterministically from (params.seed, current
  /// tree count), so repeated fit() + fit_more() sequences are
  /// bit-identical for any jobs value, and two runs that grow the forest
  /// through the same sizes draw the same trees.
  void fit_more(const Dataset& data, std::size_t extra_trees);

  std::uint8_t predict(const std::int8_t* row) const override;
  std::string name() const override { return "RandomForest"; }

  /// Probability of class 1 (fraction of soft votes).
  double predict_proba(const std::int8_t* row) const;

  /// Batched inference over `n` contiguous rows (`stride` features
  /// apart): one tree-major sweep instead of n per-row virtual calls.
  /// Bit-identical to calling predict() per row — each row still
  /// accumulates its tree votes in tree order — but walks every tree's
  /// nodes while they are hot in cache. This is the call the serving
  /// path batches a whole request's CA-matrix into.
  std::vector<std::uint8_t> predict_batch(const std::int8_t* rows, std::size_t n,
                                          std::size_t stride) const override;

  /// Batched predict_proba (same traversal as predict_batch).
  std::vector<double> predict_proba_batch(const std::int8_t* rows, std::size_t n,
                                          std::size_t stride) const;

  /// Hard-vote disagreement margin per row: each tree casts one vote for
  /// its majority leaf class (ties split 0.5/0.5), and the margin is
  /// |2 * vote1 / trees - 1| — 0 when the ensemble is evenly split,
  /// 1 when unanimous. Votes accumulate in tree order so the margins are
  /// bit-identical across batch sizes, job counts and store backends
  /// (MappedForest mirrors the arithmetic exactly).
  std::vector<double> predict_margin_batch(const std::int8_t* rows, std::size_t n,
                                           std::size_t stride) const override;

  const std::vector<DecisionTree>& trees() const { return trees_; }

  /// Rebuilds a forest from already-constructed trees — the import path
  /// shared by every non-text loader (e.g. the binary model store).
  /// Equivalent to what read_forest produces for the same trees.
  static RandomForest assemble(std::vector<DecisionTree> trees, std::size_t num_features);

  /// Feature count seen at fit time (0 before fit / after load without
  /// metadata).
  std::size_t num_features() const { return num_features_; }

  /// Mean Gini importance per feature across the trees (normalized to
  /// sum 1; empty before fit or after load).
  std::vector<double> feature_importance() const;

 private:
  friend LoadedForest read_forest(std::istream& in);
  void grow(const Dataset& data, std::size_t count, std::uint64_t seed);
  ForestParams params_;
  std::vector<DecisionTree> trees_;
  std::size_t num_features_ = 0;
};

}  // namespace caml
