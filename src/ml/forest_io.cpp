#include "ml/forest_io.hpp"

#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caml {

void DecisionTree::save(std::ostream& os) const {
  os << "TREE nodes=" << nodes_.size() << '\n';
  for (const Node& n : nodes_) {
    os << n.left << ' ' << n.right << ' ' << n.feature << ' ' << static_cast<int>(n.threshold)
       << ' ' << n.count0 << ' ' << n.count1 << '\n';
  }
}

DecisionTree DecisionTree::load(std::istream& in, std::size_t& line_no) {
  std::string line;
  if (!std::getline(in, line)) throw ParseError("expected TREE header", line_no);
  ++line_no;
  const std::vector<std::string> head = split(line);
  if (head.size() != 2 || head[0] != "TREE" || head[1].rfind("nodes=", 0) != 0) {
    throw ParseError("bad TREE header '" + line + "'", line_no);
  }
  const std::size_t count = std::stoul(head[1].substr(6));
  DecisionTree tree;
  tree.nodes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) throw ParseError("truncated tree", line_no);
    ++line_no;
    const std::vector<std::string> tok = split(line);
    if (tok.size() != 6) throw ParseError("bad tree node line '" + line + "'", line_no);
    Node n;
    n.left = std::stoi(tok[0]);
    n.right = std::stoi(tok[1]);
    n.feature = static_cast<std::uint16_t>(std::stoul(tok[2]));
    n.threshold = static_cast<std::int8_t>(std::stoi(tok[3]));
    n.count0 = std::stoull(tok[4]);
    n.count1 = std::stoull(tok[5]);
    const auto max = static_cast<std::int32_t>(count);
    if (n.left >= max || n.right >= max) {
      throw ParseError("tree node child out of range", line_no);
    }
    tree.nodes_.push_back(n);
  }
  if (tree.nodes_.empty()) throw ParseError("empty tree", line_no);
  return tree;
}

void write_forest(std::ostream& os, const RandomForest& forest, std::size_t num_features) {
  os << "FOREST trees=" << forest.trees().size() << " features=" << num_features << '\n';
  for (const DecisionTree& tree : forest.trees()) tree.save(os);
  os << "ENDFOREST\n";
}

LoadedForest read_forest(std::istream& in) {
  std::size_t line_no = 0;
  std::string line;
  if (!std::getline(in, line)) throw ParseError("expected FOREST header", line_no);
  ++line_no;
  const std::vector<std::string> head = split(line);
  if (head.size() != 3 || head[0] != "FOREST" || head[1].rfind("trees=", 0) != 0 ||
      head[2].rfind("features=", 0) != 0) {
    throw ParseError("bad FOREST header '" + line + "'", line_no);
  }
  LoadedForest out;
  const std::size_t trees = std::stoul(head[1].substr(6));
  out.num_features = std::stoul(head[2].substr(9));
  out.forest.num_features_ = out.num_features;
  for (std::size_t t = 0; t < trees; ++t) {
    out.forest.trees_.push_back(DecisionTree::load(in, line_no));
  }
  if (!std::getline(in, line) || trim(line) != "ENDFOREST") {
    throw ParseError("missing ENDFOREST", line_no);
  }
  return out;
}

}  // namespace caml
