#include "ml/forest_io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"

namespace caml {

void DecisionTree::save(std::ostream& os) const {
  os << "TREE nodes=" << nodes_.size() << '\n';
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    os << n.left << ' ' << n.right << ' ' << n.feature << ' ' << static_cast<int>(n.threshold)
       << ' ' << count0_[i] << ' ' << count1_[i] << '\n';
  }
}

DecisionTree DecisionTree::load(std::istream& in, std::size_t& line_no) {
  std::string line;
  if (!std::getline(in, line)) throw ParseError("expected TREE header", line_no);
  ++line_no;
  const std::vector<std::string> head = split(line);
  if (head.size() != 2 || head[0] != "TREE" || head[1].rfind("nodes=", 0) != 0) {
    throw ParseError("bad TREE header '" + line + "'", line_no);
  }
  const std::size_t count = parse_size(head[1].substr(6), "TREE node count", line_no);
  DecisionTree tree;
  const std::size_t reserve = std::min<std::size_t>(count, 1 << 20);
  tree.nodes_.reserve(reserve);
  tree.count0_.reserve(reserve);
  tree.count1_.reserve(reserve);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) throw ParseError("truncated tree", line_no);
    ++line_no;
    const std::vector<std::string> tok = split(line);
    if (tok.size() != 6) throw ParseError("bad tree node line '" + line + "'", line_no);
    Node n;
    n.left = static_cast<std::int32_t>(parse_int64(tok[0], "tree node left child", line_no));
    n.right = static_cast<std::int32_t>(parse_int64(tok[1], "tree node right child", line_no));
    n.feature = static_cast<std::uint16_t>(parse_uint64(tok[2], "tree node feature", line_no));
    n.threshold = static_cast<std::int8_t>(parse_int64(tok[3], "tree node threshold", line_no));
    const auto max = static_cast<std::int32_t>(count);
    if (n.left >= max || n.right >= max) {
      throw ParseError("tree node child out of range", line_no);
    }
    tree.nodes_.push_back(n);
    tree.count0_.push_back(parse_uint64(tok[4], "tree node count0", line_no));
    tree.count1_.push_back(parse_uint64(tok[5], "tree node count1", line_no));
  }
  if (tree.nodes_.empty()) throw ParseError("empty tree", line_no);
  return tree;
}

DecisionTree::NodeRecord DecisionTree::node_record(std::size_t i) const {
  CAML_ASSERT(i < nodes_.size());
  const Node& n = nodes_[i];
  return NodeRecord{n.left, n.right, n.feature, n.threshold, count0_[i], count1_[i]};
}

DecisionTree DecisionTree::from_records(const std::vector<NodeRecord>& records) {
  if (records.empty()) throw ParseError("empty tree", 0);
  DecisionTree tree;
  tree.nodes_.reserve(records.size());
  tree.count0_.reserve(records.size());
  tree.count1_.reserve(records.size());
  const auto max = static_cast<std::int32_t>(records.size());
  for (const NodeRecord& r : records) {
    if (r.left >= max || r.right >= max) {
      throw ParseError("tree node child out of range", 0);
    }
    Node n;
    n.left = r.left;
    n.right = r.right;
    n.feature = r.feature;
    n.threshold = r.threshold;
    tree.nodes_.push_back(n);
    tree.count0_.push_back(r.count0);
    tree.count1_.push_back(r.count1);
  }
  return tree;
}

void write_forest(std::ostream& os, const RandomForest& forest, std::size_t num_features) {
  os << "FOREST trees=" << forest.trees().size() << " features=" << num_features << '\n';
  for (const DecisionTree& tree : forest.trees()) tree.save(os);
  os << "ENDFOREST\n";
}

LoadedForest read_forest(std::istream& in) {
  std::size_t line_no = 0;
  std::string line;
  if (!std::getline(in, line)) throw ParseError("expected FOREST header", line_no);
  ++line_no;
  const std::vector<std::string> head = split(line);
  if (head.size() != 3 || head[0] != "FOREST" || head[1].rfind("trees=", 0) != 0 ||
      head[2].rfind("features=", 0) != 0) {
    throw ParseError("bad FOREST header '" + line + "'", line_no);
  }
  LoadedForest out;
  const std::size_t trees = parse_size(head[1].substr(6), "FOREST tree count", line_no);
  out.num_features = parse_size(head[2].substr(9), "FOREST feature count", line_no);
  out.forest.num_features_ = out.num_features;
  for (std::size_t t = 0; t < trees; ++t) {
    out.forest.trees_.push_back(DecisionTree::load(in, line_no));
  }
  if (!std::getline(in, line) || trim(line) != "ENDFOREST") {
    throw ParseError("missing ENDFOREST", line_no);
  }
  return out;
}

void write_forest_file(const std::string& path, const RandomForest& forest,
                       std::size_t num_features) {
  std::ostringstream payload;
  write_forest(payload, forest, num_features);
  io::write_checksummed_file(path, "forest", payload.str(), "forest");
}

LoadedForest read_forest_file(const std::string& path) {
  std::istringstream payload(io::read_checksummed_or_raw(path, "forest"));
  try {
    return read_forest(payload);
  } catch (const ParseError& e) {
    throw ParseError::in_file(path, e);
  }
}

}  // namespace caml
