#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "ml/forest.hpp"

namespace caml {

/// Text serialization of a trained Random Forest, so a group model can
/// be trained once and reused across runs (the CLI's train/predict
/// split). Format:
///
///   FOREST trees=<n> features=<f>
///   TREE nodes=<k>
///   <left> <right> <feature> <threshold> <count0> <count1>
///   ...
///   ENDFOREST
void write_forest(std::ostream& os, const RandomForest& forest, std::size_t num_features);

/// Reads a forest written by write_forest. Returns the forest and the
/// feature count it was trained with. Throws caml::ParseError on
/// malformed input.
struct LoadedForest {
  RandomForest forest;
  std::size_t num_features = 0;
};
LoadedForest read_forest(std::istream& in);

/// Durable single-forest file: the write_forest text wrapped in a
/// checksummed CAMLF1 container (kind "forest") and published
/// atomically. read_forest_file rejects truncated or bit-flipped files
/// with a ParseError naming the file and offset; a legacy unframed
/// forest file is still accepted.
void write_forest_file(const std::string& path, const RandomForest& forest,
                       std::size_t num_features);
LoadedForest read_forest_file(const std::string& path);

}  // namespace caml
