#include "ml/forest_view.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/sigguard.hpp"

namespace caml {

namespace {

/// Same inference counters forest.cpp feeds, so serve traffic on a
/// mapped store shows up in the identical caml_forest_* metrics.
struct MappedForestMetrics {
  obs::Histogram& batch_rows;
  obs::Counter& rows_predicted;

  static MappedForestMetrics& get() {
    static MappedForestMetrics m{
        obs::Registry::global().histogram("caml_forest_batch_rows",
                                          "Rows per predict_proba_batch call"),
        obs::Registry::global().counter("caml_forest_rows_predicted_total",
                                        "Rows classified across all batch predictions"),
    };
    return m;
  }
};

}  // namespace

void MappedForest::fit(const Dataset&) {
  throw Error("MappedForest is a read-only view over a mapped store and cannot be fitted");
}

std::pair<std::uint64_t, std::uint64_t> MappedForest::leaf_votes(const TreeRef& tree,
                                                                 const std::int8_t* row) {
  std::size_t at = 0;
  for (;;) {
    const PackedNode node = decode_packed_node(tree.nodes + at * kPackedNodeBytes);
    if (node.is_leaf()) {
      return {read_u64(tree.count0 + at * 8), read_u64(tree.count1 + at * 8)};
    }
    at = static_cast<std::size_t>(row[node.feature] <= node.threshold ? node.left
                                                                      : node.right);
  }
}

/// Every traversal of the raw mapping runs under a SIGBUS guard: if the
/// backing file is truncated under us, the fault becomes a MappingFault
/// throw instead of killing the daemon. The guarded lambdas are
/// longjmp-safe by construction — plain reads and arithmetic into
/// storage allocated before the guard.
constexpr const char* kForestFault =
    "SIGBUS while traversing the mapped model store (backing file truncated or rewritten "
    "in place under the mapping)";

double MappedForest::predict_proba(const std::int8_t* row) const {
  CAML_ASSERT(!trees_.empty());
  double sum = 0.0;
  io::with_sigbus_guard(kForestFault, [&] {
    for (const TreeRef& tree : trees_) {
      const auto [c0, c1] = leaf_votes(tree, row);
      const std::uint64_t votes = c0 + c1;
      sum += votes == 0 ? 0.5 : static_cast<double>(c1) / static_cast<double>(votes);
    }
  });
  return sum / static_cast<double>(trees_.size());
}

std::uint8_t MappedForest::predict(const std::int8_t* row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

std::vector<double> MappedForest::predict_proba_batch(const std::int8_t* rows, std::size_t n,
                                                      std::size_t stride) const {
  CAML_ASSERT(!trees_.empty());
  CAML_TRACE_SPAN_ITEMS("predict", n);
  MappedForestMetrics& metrics = MappedForestMetrics::get();
  metrics.batch_rows.record(n);
  metrics.rows_predicted.add(n);
  // Tree-major sweep with votes accumulated per row in tree order — the
  // exact summation RandomForest::predict_proba_batch performs, so the
  // probabilities (and therefore the labels) are bit-identical.
  std::vector<double> sum(n, 0.0);
  io::with_sigbus_guard(kForestFault, [&] {
    for (const TreeRef& tree : trees_) {
      for (std::size_t r = 0; r < n; ++r) {
        const auto [c0, c1] = leaf_votes(tree, rows + r * stride);
        const std::uint64_t votes = c0 + c1;
        sum[r] += votes == 0 ? 0.5 : static_cast<double>(c1) / static_cast<double>(votes);
      }
    }
  });
  for (double& s : sum) s /= static_cast<double>(trees_.size());
  return sum;
}

std::vector<std::uint8_t> MappedForest::predict_batch(const std::int8_t* rows, std::size_t n,
                                                      std::size_t stride) const {
  const std::vector<double> proba = predict_proba_batch(rows, n, stride);
  std::vector<std::uint8_t> out(n);
  for (std::size_t r = 0; r < n; ++r) out[r] = proba[r] >= 0.5 ? 1 : 0;
  return out;
}

std::vector<double> MappedForest::predict_margin_batch(const std::int8_t* rows, std::size_t n,
                                                       std::size_t stride) const {
  CAML_ASSERT(!trees_.empty());
  // Mirrors RandomForest::predict_margin_batch expression for expression
  // (hard vote per tree, tree-order accumulation), so margins from a
  // mapped store are bit-identical to the text-loaded forest's.
  std::vector<double> vote1(n, 0.0);
  io::with_sigbus_guard(kForestFault, [&] {
    for (const TreeRef& tree : trees_) {
      for (std::size_t r = 0; r < n; ++r) {
        const auto [c0, c1] = leaf_votes(tree, rows + r * stride);
        vote1[r] += c1 > c0 ? 1.0 : (c1 == c0 ? 0.5 : 0.0);
      }
    }
  });
  std::vector<double> margin(n);
  const double trees = static_cast<double>(trees_.size());
  for (std::size_t r = 0; r < n; ++r) {
    margin[r] = std::abs(2.0 * vote1[r] / trees - 1.0);
  }
  return margin;
}

}  // namespace caml
