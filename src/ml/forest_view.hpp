#pragma once

#include <cstring>

#include "ml/classifier.hpp"
#include "ml/tree.hpp"

namespace caml {

/// Packed on-disk tree node: the PR 5 hot-traversal layout (left, right,
/// feature, threshold in 16 bytes) persisted verbatim, so a mapped store
/// walks trees with the same memory shape the in-memory kernel tuned
/// for. Field offsets are fixed (0/4/8/10, 5 zero pad bytes) and all
/// values little-endian-native; accessors go through memcpy so the
/// mapping may start at any byte alignment.
inline constexpr std::size_t kPackedNodeBytes = 16;

struct PackedNode {
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::uint16_t feature = 0;
  std::int8_t threshold = 0;

  bool is_leaf() const { return left < 0; }
};

inline PackedNode decode_packed_node(const unsigned char* p) {
  PackedNode n;
  std::memcpy(&n.left, p, 4);
  std::memcpy(&n.right, p + 4, 4);
  std::memcpy(&n.feature, p + 8, 2);
  std::memcpy(&n.threshold, p + 10, 1);
  return n;
}

inline void encode_packed_node(const DecisionTree::NodeRecord& r, unsigned char* p) {
  std::memcpy(p, &r.left, 4);
  std::memcpy(p + 4, &r.right, 4);
  std::memcpy(p + 8, &r.feature, 2);
  std::memcpy(p + 10, &r.threshold, 1);
  std::memset(p + 11, 0, 5);
}

inline std::uint64_t read_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

/// Random Forest over externally owned packed sections — the zero-copy
/// read side of the binary model store. Each tree is three raw spans
/// inside one read-only mapping (packed nodes, leaf count0[], leaf
/// count1[]); predict traverses them in place, no parse, no copy, no
/// ownership. Vote aggregation replicates RandomForest bit for bit:
/// per-row soft votes accumulate in tree order with the identical
/// floating-point expression, so a mapped store and a text-loaded store
/// answer byte-identically (enforced by tests/store_test.cpp).
///
/// Lifetime: the spans must outlive the view (MappedModelStore keeps the
/// mapping alive). Thread safety: predict is const over immutable bytes,
/// safe to share across serve workers like RandomForest.
class MappedForest final : public Classifier {
 public:
  struct TreeRef {
    const unsigned char* nodes = nullptr;   ///< node_count * 16 bytes
    const unsigned char* count0 = nullptr;  ///< node_count u64 leaf votes
    const unsigned char* count1 = nullptr;
    std::size_t node_count = 0;
  };

  MappedForest() = default;
  MappedForest(std::vector<TreeRef> trees, std::size_t num_features)
      : trees_(std::move(trees)), num_features_(num_features) {}

  /// Mapped forests are read-only snapshots; training them is a misuse.
  void fit(const Dataset&) override;

  std::uint8_t predict(const std::int8_t* row) const override;
  double predict_proba(const std::int8_t* row) const;
  std::vector<std::uint8_t> predict_batch(const std::int8_t* rows, std::size_t n,
                                          std::size_t stride) const override;
  std::vector<double> predict_proba_batch(const std::int8_t* rows, std::size_t n,
                                          std::size_t stride) const;

  /// Hard-vote disagreement margin, bit-identical to
  /// RandomForest::predict_margin_batch over the same trees.
  std::vector<double> predict_margin_batch(const std::int8_t* rows, std::size_t n,
                                           std::size_t stride) const override;

  std::string name() const override { return "MappedForest"; }

  std::size_t num_trees() const { return trees_.size(); }
  std::size_t num_features() const { return num_features_; }
  const TreeRef& tree(std::size_t t) const { return trees_[t]; }

  /// Leaf votes of one tree for one row (the traversal primitive).
  static std::pair<std::uint64_t, std::uint64_t> leaf_votes(const TreeRef& tree,
                                                            const std::int8_t* row);

 private:
  std::vector<TreeRef> trees_;
  std::size_t num_features_ = 0;
};

}  // namespace caml
