#include "ml/knn.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace caml {

void KnnClassifier::fit(const Dataset& data) {
  CAML_ASSERT(data.num_rows() > 0);
  num_features_ = data.num_features();
  reference_.clear();
  reference_labels_.clear();

  std::vector<std::size_t> keep;
  if (params_.max_reference_rows > 0 && data.num_rows() > params_.max_reference_rows) {
    Rng rng(params_.seed);
    keep = rng.sample_indices(data.num_rows(), params_.max_reference_rows);
  } else {
    keep.resize(data.num_rows());
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i;
  }
  reference_.reserve(keep.size() * num_features_);
  reference_labels_.reserve(keep.size());
  for (std::size_t r : keep) {
    const std::int8_t* row = data.row(r);
    reference_.insert(reference_.end(), row, row + num_features_);
    reference_labels_.push_back(data.label(r));
  }
}

std::uint8_t KnnClassifier::predict(const std::int8_t* row) const {
  CAML_ASSERT(!reference_labels_.empty());
  const std::size_t k = std::min(params_.k, reference_labels_.size());
  // Bounded max-heap of the k smallest distances, as (distance, label).
  std::vector<std::pair<std::uint32_t, std::uint8_t>> heap;
  heap.reserve(k + 1);
  for (std::size_t r = 0; r < reference_labels_.size(); ++r) {
    const std::int8_t* ref = reference_.data() + r * num_features_;
    std::uint32_t dist = 0;
    for (std::size_t f = 0; f < num_features_; ++f) {
      dist += static_cast<std::uint32_t>(std::abs(static_cast<int>(row[f]) - ref[f]));
    }
    if (heap.size() < k) {
      heap.emplace_back(dist, reference_labels_[r]);
      std::push_heap(heap.begin(), heap.end());
    } else if (dist < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {dist, reference_labels_[r]};
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::size_t ones = 0;
  for (const auto& [d, l] : heap) ones += l;
  return 2 * ones >= heap.size() ? 1 : 0;
}

}  // namespace caml
