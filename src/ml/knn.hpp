#pragma once

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace caml {

struct KnnParams {
  std::size_t k = 5;
  /// Stored reference rows are capped (uniform subsample) to bound the
  /// O(stored) query cost; 0 = keep everything.
  std::size_t max_reference_rows = 20000;
  std::uint64_t seed = 0x6B4E4Eull;
};

/// k-nearest-neighbours with L1 distance over the integer features. One
/// of the baseline algorithms the paper evaluated before choosing the
/// Random Forest.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(KnnParams params = {}) : params_(params) {}

  void fit(const Dataset& data) override;
  std::uint8_t predict(const std::int8_t* row) const override;
  std::string name() const override { return "kNN"; }

 private:
  KnnParams params_;
  std::size_t num_features_ = 0;
  std::vector<std::int8_t> reference_;
  std::vector<std::uint8_t> reference_labels_;
};

}  // namespace caml
