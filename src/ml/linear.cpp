#include "ml/linear.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace caml {

namespace {

double dot_plus_bias(const std::vector<double>& w, const std::int8_t* row) {
  double acc = w.back();
  for (std::size_t f = 0; f + 1 < w.size(); ++f) acc += w[f] * row[f];
  return acc;
}

}  // namespace

double LogisticClassifier::decision(const std::int8_t* row) const {
  CAML_ASSERT(!weights_.empty());
  return dot_plus_bias(weights_, row);
}

std::uint8_t LogisticClassifier::predict(const std::int8_t* row) const {
  return decision(row) >= 0.0 ? 1 : 0;
}

void LogisticClassifier::fit(const Dataset& data) {
  CAML_ASSERT(data.num_rows() > 0);
  weights_.assign(data.num_features() + 1, 0.0);
  Rng rng(params_.seed);
  const std::size_t per_epoch =
      params_.max_rows_per_epoch == 0
          ? data.num_rows()
          : std::min(data.num_rows(), params_.max_rows_per_epoch);
  for (std::size_t e = 0; e < params_.epochs; ++e) {
    const double lr = params_.learning_rate / (1.0 + static_cast<double>(e));
    for (std::size_t i = 0; i < per_epoch; ++i) {
      const std::size_t r = static_cast<std::size_t>(rng.below(data.num_rows()));
      const std::int8_t* row = data.row(r);
      const double y = data.label(r) ? 1.0 : 0.0;
      const double z = dot_plus_bias(weights_, row);
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double g = p - y;
      for (std::size_t f = 0; f + 1 < weights_.size(); ++f) {
        weights_[f] -= lr * (g * row[f] + params_.l2 * weights_[f]);
      }
      weights_.back() -= lr * g;
    }
  }
}

void LinearSvmClassifier::fit(const Dataset& data) {
  CAML_ASSERT(data.num_rows() > 0);
  weights_.assign(data.num_features() + 1, 0.0);
  Rng rng(params_.seed);
  const double lambda = std::max(params_.l2, 1e-8);
  const std::size_t per_epoch =
      params_.max_rows_per_epoch == 0
          ? data.num_rows()
          : std::min(data.num_rows(), params_.max_rows_per_epoch);
  std::size_t step = 0;
  for (std::size_t e = 0; e < params_.epochs; ++e) {
    for (std::size_t i = 0; i < per_epoch; ++i) {
      ++step;
      const double lr = 1.0 / (lambda * static_cast<double>(step));
      const std::size_t r = static_cast<std::size_t>(rng.below(data.num_rows()));
      const std::int8_t* row = data.row(r);
      const double y = data.label(r) ? 1.0 : -1.0;
      const double margin = y * dot_plus_bias(weights_, row);
      for (std::size_t f = 0; f + 1 < weights_.size(); ++f) {
        weights_[f] *= 1.0 - lr * lambda;
      }
      if (margin < 1.0) {
        for (std::size_t f = 0; f + 1 < weights_.size(); ++f) {
          weights_[f] += lr * y * row[f];
        }
        weights_.back() += lr * y;
      }
    }
  }
}

void RidgeClassifier::fit(const Dataset& data) {
  CAML_ASSERT(data.num_rows() > 0);
  const std::size_t d = data.num_features() + 1;  // + bias
  // Normal equations: (X^T X + l2 I) w = X^T y, with y in {-1, +1}.
  std::vector<double> a(d * d, 0.0);
  std::vector<double> b(d, 0.0);
  std::vector<double> x(d, 1.0);
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    const std::int8_t* row = data.row(r);
    for (std::size_t f = 0; f + 1 < d; ++f) x[f] = row[f];
    x[d - 1] = 1.0;
    const double y = data.label(r) ? 1.0 : -1.0;
    for (std::size_t i = 0; i < d; ++i) {
      b[i] += x[i] * y;
      for (std::size_t j = i; j < d; ++j) a[i * d + j] += x[i] * x[j];
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    a[i * d + i] += l2_;
    for (std::size_t j = 0; j < i; ++j) a[i * d + j] = a[j * d + i];
  }
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < d; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < d; ++r) {
      if (std::abs(a[r * d + col]) > std::abs(a[pivot * d + col])) pivot = r;
    }
    if (std::abs(a[pivot * d + col]) < 1e-12) continue;  // singular direction
    if (pivot != col) {
      for (std::size_t j = 0; j < d; ++j) std::swap(a[pivot * d + j], a[col * d + j]);
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a[col * d + col];
    for (std::size_t r = 0; r < d; ++r) {
      if (r == col) continue;
      const double factor = a[r * d + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < d; ++j) a[r * d + j] -= factor * a[col * d + j];
      b[r] -= factor * b[col];
    }
  }
  weights_.assign(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    weights_[i] = std::abs(a[i * d + i]) < 1e-12 ? 0.0 : b[i] / a[i * d + i];
  }
}

std::uint8_t RidgeClassifier::predict(const std::int8_t* row) const {
  CAML_ASSERT(!weights_.empty());
  double acc = weights_.back();
  for (std::size_t f = 0; f + 1 < weights_.size(); ++f) acc += weights_[f] * row[f];
  return acc >= 0.0 ? 1 : 0;
}

}  // namespace caml
