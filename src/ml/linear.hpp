#pragma once

#include "ml/classifier.hpp"

namespace caml {

struct SgdParams {
  std::size_t epochs = 8;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  std::uint64_t seed = 0x11EA12ull;
  /// Rows visited per epoch are capped for very large sets (0 = all).
  std::size_t max_rows_per_epoch = 200000;
};

/// Logistic regression trained by SGD — the "Linear" baseline.
class LogisticClassifier : public Classifier {
 public:
  explicit LogisticClassifier(SgdParams params = {}) : params_(params) {}

  void fit(const Dataset& data) override;
  std::uint8_t predict(const std::int8_t* row) const override;
  std::string name() const override { return "Logistic"; }

  double decision(const std::int8_t* row) const;

 protected:
  SgdParams params_;
  std::vector<double> weights_;  // + bias at the back
};

/// Linear SVM (hinge loss, Pegasos-style SGD) — the "SVM" baseline.
class LinearSvmClassifier : public LogisticClassifier {
 public:
  explicit LinearSvmClassifier(SgdParams params = {}) : LogisticClassifier(params) {}

  void fit(const Dataset& data) override;
  std::string name() const override { return "LinearSVM"; }
};

/// Ridge regression on +/-1 targets, solved in closed form (normal
/// equations, Gaussian elimination) — the "Ridge" baseline.
class RidgeClassifier : public Classifier {
 public:
  explicit RidgeClassifier(double l2 = 1.0) : l2_(l2) {}

  void fit(const Dataset& data) override;
  std::uint8_t predict(const std::int8_t* row) const override;
  std::string name() const override { return "Ridge"; }

 private:
  double l2_;
  std::vector<double> weights_;  // + bias at the back
};

}  // namespace caml
