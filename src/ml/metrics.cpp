#include "ml/metrics.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caml {

double ConfusionMatrix::accuracy() const {
  const std::uint64_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) / static_cast<double>(t);
}

double ConfusionMatrix::precision() const {
  const std::uint64_t denom = true_positive + false_positive;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::recall() const {
  const std::uint64_t denom = true_positive + false_negative;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::to_string() const {
  return "tn=" + std::to_string(true_negative) + " fp=" + std::to_string(false_positive) +
         " fn=" + std::to_string(false_negative) + " tp=" + std::to_string(true_positive) +
         " acc=" + format_fixed(100.0 * accuracy(), 2) + "%";
}

ConfusionMatrix confusion(const std::vector<std::uint8_t>& truth,
                          const std::vector<std::uint8_t>& predicted) {
  CAML_ASSERT(truth.size() == predicted.size());
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i]) {
      if (predicted[i]) ++cm.true_positive;
      else ++cm.false_negative;
    } else {
      if (predicted[i]) ++cm.false_positive;
      else ++cm.true_negative;
    }
  }
  return cm;
}

double accuracy(const std::vector<std::uint8_t>& truth,
                const std::vector<std::uint8_t>& predicted) {
  return confusion(truth, predicted).accuracy();
}

}  // namespace caml
