#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace caml {

/// Binary confusion matrix and the derived scores used in the paper's
/// evaluation (prediction accuracy per cell).
struct ConfusionMatrix {
  std::uint64_t true_negative = 0;
  std::uint64_t false_positive = 0;
  std::uint64_t false_negative = 0;
  std::uint64_t true_positive = 0;

  std::uint64_t total() const {
    return true_negative + false_positive + false_negative + true_positive;
  }
  double accuracy() const;
  double precision() const;
  double recall() const;
  double f1() const;

  std::string to_string() const;
};

/// Builds the confusion matrix of predictions vs truth (equal lengths).
ConfusionMatrix confusion(const std::vector<std::uint8_t>& truth,
                          const std::vector<std::uint8_t>& predicted);

/// Plain accuracy in [0, 1].
double accuracy(const std::vector<std::uint8_t>& truth,
                const std::vector<std::uint8_t>& predicted);

}  // namespace caml
