#include "ml/tree.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace caml {

std::vector<std::uint8_t> Classifier::predict_batch(const std::int8_t* rows, std::size_t n,
                                                    std::size_t stride) const {
  std::vector<std::uint8_t> out;
  out.reserve(n);
  for (std::size_t r = 0; r < n; ++r) out.push_back(predict(rows + r * stride));
  return out;
}

std::vector<std::uint8_t> Classifier::predict_all(const Dataset& data) const {
  std::vector<std::uint8_t> out;
  out.reserve(data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r) out.push_back(predict(data.row(r)));
  return out;
}

std::vector<double> Classifier::predict_margin_batch(const std::int8_t*, std::size_t n,
                                                     std::size_t) const {
  return std::vector<double>(n, 1.0);
}

void DecisionTree::fit(const Dataset& data) {
  std::vector<std::uint32_t> indices(data.num_rows());
  std::iota(indices.begin(), indices.end(), 0u);
  fit_indices(data, std::move(indices));
}

void DecisionTree::fit_indices(const Dataset& data, std::vector<std::uint32_t> indices) {
  const ColumnView columns(data);
  fit_indices(data, columns, std::move(indices));
}

void DecisionTree::fit_indices(const Dataset& data, const ColumnView& columns,
                               std::vector<std::uint32_t> indices) {
  CAML_ASSERT(!indices.empty());
  CAML_ASSERT(columns.num_rows() == data.num_rows() &&
              columns.num_features() == data.num_features());
  nodes_.clear();
  count0_.clear();
  count1_.clear();
  num_features_ = data.num_features();
  importance_.assign(num_features_, 0.0);
  const auto [lo, hi] = data.feature_range();
  min_value_ = lo;
  max_value_ = hi;
  const std::size_t buckets = static_cast<std::size_t>(max_value_ - min_value_) + 1;
  feature_order_.resize(num_features_);
  // Invariant across build() nodes: the histograms are all-zero on entry
  // to every split search — each search clears exactly the buckets it
  // touched (see touched_ below) instead of sweeping the full range.
  hist0_.assign(buckets, 0u);
  hist1_.assign(buckets, 0u);
  touched_.reserve(buckets);
  build(data, columns, indices, 0, indices.size(), 0);
  double total = 0.0;
  for (double v : importance_) total += v;
  if (total > 0.0) {
    for (double& v : importance_) v /= total;
  }
}

std::int32_t DecisionTree::build(const Dataset& data, const ColumnView& columns,
                                 std::vector<std::uint32_t>& indices, std::size_t begin,
                                 std::size_t end, std::size_t depth) {
  std::uint64_t node_count0 = 0, node_count1 = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t w = data.weight(indices[i]);
    if (data.label(indices[i])) node_count1 += w;
    else node_count0 += w;
  }
  const std::uint64_t n = node_count0 + node_count1;
  const std::int32_t id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  count0_.push_back(node_count0);
  count1_.push_back(node_count1);

  const bool pure = node_count0 == 0 || node_count1 == 0;
  if (pure || depth >= params_.max_depth || n < params_.min_samples_split) return id;

  // Histogram-based split search over a (possibly random) feature set.
  const std::size_t buckets = hist0_.size();
  std::vector<std::uint16_t>& feature_order = feature_order_;
  std::iota(feature_order.begin(), feature_order.end(), static_cast<std::uint16_t>(0));
  std::size_t features_to_try = num_features_;
  if (params_.max_features > 0 && params_.max_features < num_features_) {
    // Partial shuffle: first max_features entries become a random subset.
    for (std::size_t i = 0; i < params_.max_features; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng_.below(static_cast<std::uint64_t>(num_features_ - i)));
      std::swap(feature_order[i], feature_order[j]);
    }
    features_to_try = params_.max_features;
  }

  const double total = static_cast<double>(n);
  double best_gini = 2.0;  // anything real is < 1
  std::uint16_t best_feature = 0;
  std::int8_t best_threshold = 0;
  bool found = false;

  std::vector<std::uint64_t>& hist0 = hist0_;
  std::vector<std::uint64_t>& hist1 = hist1_;
  for (std::size_t fi = 0; fi < num_features_; ++fi) {
    // Like scikit-learn, keep inspecting features past max_features
    // until at least one valid split was found; stopping early on an
    // all-constant sample would create impure leaves for rows that a
    // remaining feature separates perfectly.
    if (fi >= features_to_try && found) break;
    if (fi >= features_to_try) {
      // Extend the random subset one feature at a time.
      const std::size_t j = fi + static_cast<std::size_t>(
                                     rng_.below(static_cast<std::uint64_t>(num_features_ - fi)));
      std::swap(feature_order[fi], feature_order[j]);
    }
    const std::uint16_t f = feature_order[fi];
    const std::int8_t* col = columns.column(f);
    touched_.clear();
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t r = indices[i];
      const std::size_t b = static_cast<std::size_t>(col[r] - min_value_);
      if ((hist0[b] | hist1[b]) == 0) touched_.push_back(static_cast<std::uint32_t>(b));
      const std::uint32_t w = data.weight(r);
      if (data.label(r)) hist1[b] += w;
      else hist0[b] += w;
    }
    // Prefix scan: threshold after bucket b sends values <= b left.
    std::uint64_t l0 = 0, l1 = 0;
    for (std::size_t b = 0; b + 1 < buckets; ++b) {
      l0 += hist0[b];
      l1 += hist1[b];
      const std::uint64_t left = l0 + l1;
      const std::uint64_t right = n - left;
      if (left < params_.min_samples_leaf || right < params_.min_samples_leaf) continue;
      if (left == 0 || right == 0) continue;
      const double dl0 = static_cast<double>(l0);
      const double dl1 = static_cast<double>(l1);
      const double r0 = static_cast<double>(node_count0 - l0);
      const double r1 = static_cast<double>(node_count1 - l1);
      const double dleft = static_cast<double>(left);
      const double dright = static_cast<double>(right);
      const double gl = 1.0 - (dl0 * dl0 + dl1 * dl1) / (dleft * dleft);
      const double gr = 1.0 - (r0 * r0 + r1 * r1) / (dright * dright);
      const double gini = (dleft * gl + dright * gr) / total;
      if (gini < best_gini) {
        best_gini = gini;
        best_feature = f;
        best_threshold = static_cast<std::int8_t>(static_cast<int>(b) + min_value_);
        found = true;
      }
    }
    // Restore the all-zero invariant by clearing only the buckets this
    // node's rows actually landed in — a node spanning few distinct
    // values no longer pays for the full value range.
    for (const std::uint32_t b : touched_) {
      hist0[b] = 0;
      hist1[b] = 0;
    }
  }
  // No valid split means every row is identical on every feature (or
  // leaf-size limits forbid all partitions): an honest mixed leaf.
  // Zero-gain splits are deliberately accepted — XOR-shaped label
  // patterns have no single-feature gain yet separate perfectly two
  // levels down (scikit-learn behaves the same way).
  if (!found) return id;

  // Gini importance: weighted impurity decrease of the chosen split.
  {
    const double p0 = static_cast<double>(node_count0) / total;
    const double p1 = static_cast<double>(node_count1) / total;
    const double parent_gini = 1.0 - p0 * p0 - p1 * p1;
    importance_[best_feature] += total * std::max(0.0, parent_gini - best_gini);
  }

  const std::int8_t* best_col = columns.column(best_feature);
  const auto mid_it =
      std::partition(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                     indices.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::uint32_t r) { return best_col[r] <= best_threshold; });
  const std::size_t mid = static_cast<std::size_t>(mid_it - indices.begin());
  CAML_ASSERT(mid > begin && mid < end);

  nodes_[static_cast<std::size_t>(id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(id)].threshold = best_threshold;
  const std::int32_t left = build(data, columns, indices, begin, mid, depth + 1);
  nodes_[static_cast<std::size_t>(id)].left = left;
  const std::int32_t right = build(data, columns, indices, mid, end, depth + 1);
  nodes_[static_cast<std::size_t>(id)].right = right;
  return id;
}

std::uint8_t DecisionTree::predict(const std::int8_t* row) const {
  const auto [c0, c1] = leaf_votes(row);
  return c1 > c0 ? 1 : 0;
}

std::pair<std::uint64_t, std::uint64_t> DecisionTree::leaf_votes(const std::int8_t* row) const {
  CAML_ASSERT(!nodes_.empty());
  std::size_t at = 0;
  for (;;) {
    const Node& node = nodes_[at];
    if (node.is_leaf()) return {count0_[at], count1_[at]};
    at = static_cast<std::size_t>(row[node.feature] <= node.threshold ? node.left : node.right);
  }
}

std::size_t DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    const auto [at, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& node = nodes_[at];
    if (!node.is_leaf()) {
      stack.push_back({static_cast<std::size_t>(node.left), d + 1});
      stack.push_back({static_cast<std::size_t>(node.right), d + 1});
    }
  }
  return best;
}

}  // namespace caml
