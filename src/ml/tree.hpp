#pragma once

#include <iosfwd>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace caml {

/// CART decision-tree hyperparameters shared with the forest.
struct TreeParams {
  std::size_t max_depth = 64;
  /// Weighted-sample thresholds (duplicated rows count with their
  /// dedup weight, matching scikit-learn sample_weight semantics).
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per split: 0 = all, otherwise a random subset of
  /// this size (set by the forest to sqrt(F)).
  std::size_t max_features = 0;
};

/// CART decision tree with Gini impurity, specialized for small-integer
/// features: split search uses per-value counting (O(rows + values))
/// instead of sorting.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(TreeParams params = {}, std::uint64_t seed = 1)
      : params_(params), rng_(seed) {}

  void fit(const Dataset& data) override;

  /// Fit on a subset of rows (bootstrap sample from the forest). Builds
  /// a column-major transpose of the data internally.
  void fit_indices(const Dataset& data, std::vector<std::uint32_t> indices);

  /// As above, but reusing a caller-provided column-major view of the
  /// same dataset (RandomForest::fit builds one and shares it across all
  /// trees instead of re-transposing per tree).
  void fit_indices(const Dataset& data, const ColumnView& columns,
                   std::vector<std::uint32_t> indices);

  std::uint8_t predict(const std::int8_t* row) const override;
  std::string name() const override { return "DecisionTree"; }

  /// Weighted votes of the leaf the row lands in: {count0, count1}.
  std::pair<std::uint64_t, std::uint64_t> leaf_votes(const std::int8_t* row) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t depth() const;

  /// Flat-node serialization used by the forest I/O (ml/forest_io.hpp).
  void save(std::ostream& os) const;
  static DecisionTree load(std::istream& in, std::size_t& line_no);

  /// One flat node in serialization order — exactly the six fields the
  /// text format carries, so every store format (text lines, packed
  /// binary sections) round-trips through the same record.
  struct NodeRecord {
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint16_t feature = 0;
    std::int8_t threshold = 0;
    std::uint64_t count0 = 0;
    std::uint64_t count1 = 0;
  };
  NodeRecord node_record(std::size_t i) const;

  /// Rebuilds a tree from flat records (the binary-store import path).
  /// Applies the same structural checks as the text loader: non-empty,
  /// children in range. Throws caml::ParseError on violation.
  static DecisionTree from_records(const std::vector<NodeRecord>& records);

  /// Gini importance per feature (weighted impurity decrease summed over
  /// this tree's splits, normalized to sum 1; all-zero when the tree is
  /// a single leaf or was loaded from disk).
  const std::vector<double>& feature_importance() const { return importance_; }

 private:
  /// Hot traversal record: exactly the fields predict()/leaf_votes()
  /// touch while walking the tree, padded to 16 bytes so four nodes share
  /// a cache line and the node array stays SoA-friendly. The cold leaf
  /// vote counts live in the parallel count0_/count1_ arrays and are read
  /// only once per lookup, at the leaf.
  struct alignas(16) Node {
    // Internal node: feature/threshold with children; leaf: children -1.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint16_t feature = 0;
    std::int8_t threshold = 0;  // go left iff value <= threshold
    bool is_leaf() const { return left < 0; }
  };
  static_assert(sizeof(Node) == 16, "hot node record must stay 16 bytes");

  std::int32_t build(const Dataset& data, const ColumnView& columns,
                     std::vector<std::uint32_t>& indices, std::size_t begin, std::size_t end,
                     std::size_t depth);

  TreeParams params_;
  Rng rng_;
  std::vector<Node> nodes_;
  // Weighted leaf votes, parallel to nodes_ (cold fields, SoA layout).
  std::vector<std::uint64_t> count0_;
  std::vector<std::uint64_t> count1_;
  std::vector<double> importance_;
  // Scratch buffers reused across build() nodes (hot path).
  std::vector<std::uint16_t> feature_order_;
  std::vector<std::uint64_t> hist0_;
  std::vector<std::uint64_t> hist1_;
  std::vector<std::uint32_t> touched_;  ///< histogram buckets to clear
  std::size_t num_features_ = 0;
  std::int8_t min_value_ = 0;
  std::int8_t max_value_ = 0;
};

}  // namespace caml
