#include "netlist/cell.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace caml {

char mos_char(MosType t) { return t == MosType::kNmos ? 'N' : 'P'; }

const char* terminal_name(Terminal t) {
  switch (t) {
    case Terminal::kDrain: return "D";
    case Terminal::kGate: return "G";
    case Terminal::kSource: return "S";
    case Terminal::kBulk: return "B";
  }
  throw Error("invalid Terminal");
}

NetId Transistor::terminal(Terminal t) const {
  switch (t) {
    case Terminal::kDrain: return drain;
    case Terminal::kGate: return gate;
    case Terminal::kSource: return source;
    case Terminal::kBulk: return bulk;
  }
  throw Error("invalid Terminal");
}

void Transistor::set_terminal(Terminal t, NetId net) {
  switch (t) {
    case Terminal::kDrain: drain = net; return;
    case Terminal::kGate: gate = net; return;
    case Terminal::kSource: source = net; return;
    case Terminal::kBulk: bulk = net; return;
  }
  throw Error("invalid Terminal");
}

NetId Cell::add_net(const std::string& name, NetKind kind) {
  if (find_net(name)) throw Error("cell " + name_ + ": duplicate net name '" + name + "'");
  nets_.push_back(Net{name, kind});
  const NetId id = static_cast<NetId>(nets_.size() - 1);
  switch (kind) {
    case NetKind::kInput: inputs_.push_back(id); break;
    case NetKind::kOutput:
      if (output_ != kNoNet) throw Error("cell " + name_ + ": multiple output pins");
      output_ = id;
      break;
    case NetKind::kPower:
      if (vdd_ != kNoNet) throw Error("cell " + name_ + ": multiple power nets");
      vdd_ = id;
      break;
    case NetKind::kGround:
      if (vss_ != kNoNet) throw Error("cell " + name_ + ": multiple ground nets");
      vss_ = id;
      break;
    case NetKind::kInternal: break;
  }
  return id;
}

void Cell::remove_last_net() {
  if (nets_.empty()) throw Error("cell " + name_ + ": remove_last_net on empty cell");
  const NetKind kind = nets_.back().kind;
  nets_.pop_back();
  // Internal nets never enter the pin cache; anything else needs the
  // cached indices rebuilt (no allocation: inputs_ keeps its capacity).
  if (kind != NetKind::kInternal) refresh_pin_cache();
}

void Cell::remove_last_transistor() {
  if (transistors_.empty()) {
    throw Error("cell " + name_ + ": remove_last_transistor on empty cell");
  }
  transistors_.pop_back();
}

std::optional<NetId> Cell::find_net(const std::string& name) const {
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i].name == name) return static_cast<NetId>(i);
  }
  return std::nullopt;
}

TransistorId Cell::add_transistor(Transistor t) {
  const NetId max = static_cast<NetId>(nets_.size());
  for (int i = 0; i < kNumTerminals; ++i) {
    const NetId n = t.terminal(static_cast<Terminal>(i));
    if (n < 0 || n >= max) {
      throw Error("cell " + name_ + ": transistor '" + t.name + "' has invalid terminal net");
    }
  }
  transistors_.push_back(std::move(t));
  return static_cast<TransistorId>(transistors_.size() - 1);
}

NetId Cell::output() const {
  if (output_ == kNoNet) throw Error("cell " + name_ + ": no output pin");
  return output_;
}

NetId Cell::vdd() const {
  if (vdd_ == kNoNet) throw Error("cell " + name_ + ": no power net");
  return vdd_;
}

NetId Cell::vss() const {
  if (vss_ == kNoNet) throw Error("cell " + name_ + ": no ground net");
  return vss_;
}

void Cell::refresh_pin_cache() {
  inputs_.clear();
  output_ = vdd_ = vss_ = kNoNet;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const NetId id = static_cast<NetId>(i);
    switch (nets_[i].kind) {
      case NetKind::kInput: inputs_.push_back(id); break;
      case NetKind::kOutput:
        if (output_ != kNoNet) throw Error("cell " + name_ + ": multiple output pins");
        output_ = id;
        break;
      case NetKind::kPower:
        if (vdd_ != kNoNet) throw Error("cell " + name_ + ": multiple power nets");
        vdd_ = id;
        break;
      case NetKind::kGround:
        if (vss_ != kNoNet) throw Error("cell " + name_ + ": multiple ground nets");
        vss_ = id;
        break;
      case NetKind::kInternal: break;
    }
  }
}

void Cell::validate() const {
  if (name_.empty()) throw Error("cell has no name");
  if (inputs_.empty()) throw Error("cell " + name_ + ": no input pins");
  if (output_ == kNoNet) throw Error("cell " + name_ + ": no output pin");
  if (vdd_ == kNoNet) throw Error("cell " + name_ + ": no power net");
  if (vss_ == kNoNet) throw Error("cell " + name_ + ": no ground net");
  if (transistors_.empty()) throw Error("cell " + name_ + ": no transistors");

  std::unordered_set<std::string> device_names;
  for (const Transistor& t : transistors_) {
    if (t.name.empty()) throw Error("cell " + name_ + ": unnamed transistor");
    if (!device_names.insert(t.name).second) {
      throw Error("cell " + name_ + ": duplicate device name '" + t.name + "'");
    }
    if (t.width_um <= 0 || t.length_um <= 0) {
      throw Error("cell " + name_ + ": device '" + t.name + "' has non-positive size");
    }
    if (t.drain == t.source) {
      throw Error("cell " + name_ + ": device '" + t.name + "' has drain tied to source");
    }
  }
}

}  // namespace caml
