#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace caml {

/// Index of a net inside a Cell. Nets are value-indexed; -1 is invalid.
using NetId = std::int32_t;
/// Index of a transistor inside a Cell.
using TransistorId = std::int32_t;

inline constexpr NetId kNoNet = -1;

enum class MosType : std::uint8_t { kNmos, kPmos };

char mos_char(MosType t);

/// Role of a net in a standard cell.
enum class NetKind : std::uint8_t {
  kInput,     ///< cell input pin
  kOutput,    ///< cell output pin
  kInternal,  ///< internal node
  kPower,     ///< VDD
  kGround,    ///< VSS
};

struct Net {
  std::string name;
  NetKind kind = NetKind::kInternal;
};

/// MOS transistor terminals, in the order SPICE M-cards list them.
enum class Terminal : std::uint8_t { kDrain = 0, kGate = 1, kSource = 2, kBulk = 3 };

inline constexpr int kNumTerminals = 4;

/// "D" / "G" / "S" / "B".
const char* terminal_name(Terminal t);

struct Transistor {
  std::string name;       ///< device name from the source netlist (e.g. "MN0")
  MosType type = MosType::kNmos;
  NetId drain = kNoNet;
  NetId gate = kNoNet;
  NetId source = kNoNet;
  NetId bulk = kNoNet;
  double width_um = 1.0;
  double length_um = 0.03;

  NetId terminal(Terminal t) const;
  void set_terminal(Terminal t, NetId net);
};

/// A single-output combinational standard cell at transistor level.
///
/// The cell owns its nets and transistors by value; NetId/TransistorId
/// are stable indices. This is the unit every other module operates on:
/// the simulator evaluates it, the defect module perturbs copies of it,
/// and the CA-matrix module canonicalizes it.
class Cell {
 public:
  Cell() = default;
  explicit Cell(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a net; returns its id. Throws caml::Error on duplicate name.
  NetId add_net(const std::string& name, NetKind kind);

  /// Removes the most recently added net (LIFO undo, used by
  /// DefectOverlay to revert an in-place defect). The caller must have
  /// re-pointed any transistor terminal away from the net first. Throws
  /// caml::Error when the cell has no nets.
  void remove_last_net();

  /// Removes the most recently added transistor (LIFO undo). Throws
  /// caml::Error when the cell has no transistors.
  void remove_last_transistor();

  /// Pre-grows net/transistor storage so later add_net/add_transistor
  /// calls up to these totals perform no heap allocation (the in-place
  /// defect-injection hot path relies on this).
  void reserve(std::size_t nets, std::size_t transistors) {
    nets_.reserve(nets);
    transistors_.reserve(transistors);
  }

  /// Id of the named net, or nullopt.
  std::optional<NetId> find_net(const std::string& name) const;

  /// Adds a transistor; returns its id. Terminals must reference existing
  /// nets.
  TransistorId add_transistor(Transistor t);

  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Transistor>& transistors() const { return transistors_; }
  Net& net(NetId id) { return nets_.at(static_cast<std::size_t>(id)); }
  const Net& net(NetId id) const { return nets_.at(static_cast<std::size_t>(id)); }
  Transistor& transistor(TransistorId id) { return transistors_.at(static_cast<std::size_t>(id)); }
  const Transistor& transistor(TransistorId id) const {
    return transistors_.at(static_cast<std::size_t>(id));
  }

  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_transistors() const { return transistors_.size(); }

  /// Input pin net ids in pin order (stimulus bit i drives inputs()[i]).
  const std::vector<NetId>& inputs() const { return inputs_; }
  std::size_t num_inputs() const { return inputs_.size(); }

  /// The single output pin. Throws if the cell has none.
  NetId output() const;
  bool has_output() const { return output_ != kNoNet; }

  /// Power / ground nets. Throws if absent.
  NetId vdd() const;
  NetId vss() const;
  bool has_rails() const { return vdd_ != kNoNet && vss_ != kNoNet; }

  /// Recomputes the cached input/output/rail indices from net kinds.
  /// Called automatically by add_net; call after mutating net kinds.
  void refresh_pin_cache();

  /// Checks structural sanity: exactly one output, both rails present,
  /// >= 1 input, every transistor terminal valid, no transistor gate tied
  /// to its own drain-source short circuit of rails, names unique.
  /// Throws caml::Error describing the first problem found.
  void validate() const;

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Transistor> transistors_;
  std::vector<NetId> inputs_;
  NetId output_ = kNoNet;
  NetId vdd_ = kNoNet;
  NetId vss_ = kNoNet;
};

}  // namespace caml
