#include "netlist/graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace caml {

CellGraph::CellGraph(const Cell& cell) : cell_(&cell) {
  incidence_.resize(cell.num_nets());
  channel_.resize(cell.num_nets());
  gate_loads_.resize(cell.num_nets());
  for (std::size_t ti = 0; ti < cell.num_transistors(); ++ti) {
    const auto id = static_cast<TransistorId>(ti);
    const Transistor& t = cell.transistor(id);
    for (int k = 0; k < kNumTerminals; ++k) {
      const auto term = static_cast<Terminal>(k);
      incidence_[static_cast<std::size_t>(t.terminal(term))].push_back(TerminalRef{id, term});
    }
    channel_[static_cast<std::size_t>(t.drain)].push_back(id);
    channel_[static_cast<std::size_t>(t.source)].push_back(id);
    gate_loads_[static_cast<std::size_t>(t.gate)].push_back(id);
  }
}

const std::vector<TerminalRef>& CellGraph::incidence(NetId net) const {
  return incidence_.at(static_cast<std::size_t>(net));
}

const std::vector<TransistorId>& CellGraph::channel_transistors(NetId net) const {
  return channel_.at(static_cast<std::size_t>(net));
}

const std::vector<TransistorId>& CellGraph::gate_loads(NetId net) const {
  return gate_loads_.at(static_cast<std::size_t>(net));
}

std::vector<std::vector<TransistorId>> CellGraph::channel_connected_components() const {
  const Cell& cell = *cell_;
  const NetId vdd = cell.has_rails() ? cell.vdd() : kNoNet;
  const NetId vss = cell.has_rails() ? cell.vss() : kNoNet;
  std::vector<int> comp(cell.num_transistors(), -1);
  std::vector<std::vector<TransistorId>> out;
  for (std::size_t seed = 0; seed < cell.num_transistors(); ++seed) {
    if (comp[seed] != -1) continue;
    const int c = static_cast<int>(out.size());
    out.emplace_back();
    std::vector<TransistorId> stack{static_cast<TransistorId>(seed)};
    comp[seed] = c;
    while (!stack.empty()) {
      const TransistorId id = stack.back();
      stack.pop_back();
      out.back().push_back(id);
      const Transistor& t = cell.transistor(id);
      for (NetId net : {t.drain, t.source}) {
        if (net == vdd || net == vss) continue;  // rails are boundaries
        for (TransistorId other : channel_[static_cast<std::size_t>(net)]) {
          if (comp[static_cast<std::size_t>(other)] == -1) {
            comp[static_cast<std::size_t>(other)] = c;
            stack.push_back(other);
          }
        }
      }
    }
    std::sort(out.back().begin(), out.back().end());
  }
  return out;
}

std::vector<NetId> CellGraph::component_channel_nets(
    const std::vector<TransistorId>& component) const {
  const Cell& cell = *cell_;
  const NetId vdd = cell.has_rails() ? cell.vdd() : kNoNet;
  const NetId vss = cell.has_rails() ? cell.vss() : kNoNet;
  std::vector<NetId> nets;
  for (TransistorId id : component) {
    const Transistor& t = cell.transistor(id);
    nets.push_back(t.drain);
    nets.push_back(t.source);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  // Rails excluded: callers want the stage's logical nets.
  std::erase_if(nets, [&](NetId n) { return n == vdd || n == vss; });
  return nets;
}

}  // namespace caml
