#pragma once

#include <vector>

#include "netlist/cell.hpp"

namespace caml {

/// A (transistor, terminal) incidence on a net.
struct TerminalRef {
  TransistorId transistor;
  Terminal terminal;

  bool operator==(const TerminalRef&) const = default;
};

/// Immutable connectivity view over a Cell: per-net terminal incidence
/// and the channel (source/drain) graph. Built once, then shared by the
/// simulator and the CA-matrix canonicalizer.
class CellGraph {
 public:
  explicit CellGraph(const Cell& cell);

  const Cell& cell() const { return *cell_; }

  /// Every terminal touching the net (including gates and bulks).
  const std::vector<TerminalRef>& incidence(NetId net) const;

  /// Transistors whose source or drain touches the net.
  const std::vector<TransistorId>& channel_transistors(NetId net) const;

  /// Transistors whose gate is driven by the net.
  const std::vector<TransistorId>& gate_loads(NetId net) const;

  /// Channel-connected components: groups of transistors connected
  /// through source/drain nets. Power and ground nets act as component
  /// boundaries (they do not merge components). Each component is the
  /// transistor set of one "stage" of the cell.
  std::vector<std::vector<TransistorId>> channel_connected_components() const;

  /// For each component from channel_connected_components(), the set of
  /// non-rail nets it touches through source/drain terminals.
  std::vector<NetId> component_channel_nets(const std::vector<TransistorId>& component) const;

 private:
  const Cell* cell_;
  std::vector<std::vector<TerminalRef>> incidence_;
  std::vector<std::vector<TransistorId>> channel_;
  std::vector<std::vector<TransistorId>> gate_loads_;
};

}  // namespace caml
