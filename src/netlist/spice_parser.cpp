#include "netlist/spice_parser.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caml {

namespace {

/// Logical line after continuation joining, with its source line number.
struct LogicalLine {
  std::string text;
  std::size_t line_no;
};

std::vector<LogicalLine> read_logical_lines(std::istream& in) {
  std::vector<LogicalLine> out;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip trailing '$' comment.
    if (std::size_t dollar = raw.find('$'); dollar != std::string::npos) {
      raw.resize(dollar);
    }
    std::string_view t = trim(raw);
    if (t.empty()) continue;
    if (t[0] == '+') {
      if (out.empty()) throw ParseError("continuation line with no preceding card", line_no);
      out.back().text += ' ';
      out.back().text += std::string(t.substr(1));
      continue;
    }
    // '*' comment lines are dropped, except the *.PININFO annotation
    // which carries pin directions.
    if (t[0] == '*' && !starts_with_ci(t, "*.PININFO")) continue;
    out.push_back(LogicalLine{std::string(t), line_no});
  }
  return out;
}

/// Parse a SPICE dimension like "0.4U", "400N", "4E-7" into microns.
double parse_size_um(const std::string& token, std::size_t line_no) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str()) throw ParseError("bad numeric value '" + token + "'", line_no);
  std::string suffix = to_lower(std::string(end));
  if (suffix.empty()) {
    // Bare value: meters when it looks like an SI value, microns when it
    // is a plain small number such as "0.4".
    return v < 1e-3 ? v * 1e6 : v;
  }
  if (suffix == "u" || suffix == "um") return v;
  if (suffix == "n" || suffix == "nm") return v * 1e-3;
  if (suffix == "m") return v * 1e3;
  throw ParseError("unsupported unit suffix '" + suffix + "'", line_no);
}

bool model_matches(const std::string& model, const std::vector<std::string>& patterns) {
  const std::string m = to_lower(model);
  for (const auto& p : patterns) {
    if (m.find(p) != std::string::npos) return true;
  }
  return false;
}

bool is_power_name(const std::string& name) {
  const std::string n = to_lower(name);
  return n == "vdd" || n == "vcc" || n == "vpwr" || n == "vddd" || n.rfind("vdd", 0) == 0;
}

bool is_ground_name(const std::string& name) {
  const std::string n = to_lower(name);
  return n == "vss" || n == "gnd" || n == "vgnd" || n == "vsss" || n.rfind("vss", 0) == 0;
}

struct RawDevice {
  std::string name;
  std::string drain, gate, source, bulk;
  std::string model;
  double w_um = 1.0;
  double l_um = 0.03;
};

}  // namespace

std::vector<Cell> SpiceParser::parse(std::istream& in) const {
  const std::vector<LogicalLine> lines = read_logical_lines(in);
  std::vector<Cell> cells;

  std::size_t i = 0;
  while (i < lines.size()) {
    const LogicalLine& header = lines[i];
    if (!starts_with_ci(header.text, ".SUBCKT")) {
      if (starts_with_ci(header.text, ".END") || starts_with_ci(header.text, ".GLOBAL") ||
          starts_with_ci(header.text, ".PARAM") || starts_with_ci(header.text, ".INCLUDE")) {
        ++i;
        continue;
      }
      throw ParseError("expected .SUBCKT, got '" + header.text + "'", header.line_no);
    }
    const std::vector<std::string> head = split(header.text);
    if (head.size() < 3) throw ParseError("subcircuit needs a name and pins", header.line_no);
    const std::string cell_name = head[1];
    std::vector<std::string> pins(head.begin() + 2, head.end());

    // Gather body lines until .ENDS.
    std::map<std::string, char> pininfo;  // pin -> I/O/P/G
    std::vector<RawDevice> devices;
    ++i;
    bool closed = false;
    for (; i < lines.size(); ++i) {
      const LogicalLine& l = lines[i];
      if (starts_with_ci(l.text, ".ENDS")) {
        ++i;
        closed = true;
        break;
      }
      if (starts_with_ci(l.text, "*.PININFO")) {
        for (const std::string& tok : split(l.text.substr(9))) {
          const std::vector<std::string> kv = split_keep_empty(tok, ':');
          if (kv.size() != 2 || kv[1].size() != 1) {
            throw ParseError("bad PININFO entry '" + tok + "'", l.line_no);
          }
          pininfo[kv[0]] = static_cast<char>(std::toupper(static_cast<unsigned char>(kv[1][0])));
        }
        continue;
      }
      if (l.text[0] == 'M' || l.text[0] == 'm') {
        const std::vector<std::string> tok = split(l.text);
        if (tok.size() < 6) throw ParseError("M-card needs 4 nets and a model", l.line_no);
        RawDevice d;
        d.name = tok[0];
        d.drain = tok[1];
        d.gate = tok[2];
        d.source = tok[3];
        d.bulk = tok[4];
        d.model = tok[5];
        for (std::size_t k = 6; k < tok.size(); ++k) {
          const std::vector<std::string> kv = split_keep_empty(tok[k], '=');
          if (kv.size() != 2) continue;  // ignore e.g. "m=1"-less params
          if (iequals(kv[0], "W")) d.w_um = parse_size_um(kv[1], l.line_no);
          if (iequals(kv[0], "L")) d.l_um = parse_size_um(kv[1], l.line_no);
        }
        devices.push_back(std::move(d));
        continue;
      }
      if (l.text[0] == '.') {
        throw ParseError("unsupported card inside subcircuit: '" + l.text + "'", l.line_no);
      }
      // Other device kinds (R/C/X...) are not part of the supported cell
      // modeling; reject loudly rather than mis-characterize the cell.
      throw ParseError("unsupported device card '" + l.text + "'", l.line_no);
    }
    if (!closed) throw ParseError("missing .ENDS for subcircuit " + cell_name, header.line_no);

    // Decide pin directions.
    std::map<std::string, NetKind> pin_kind;
    if (!pininfo.empty()) {
      for (const std::string& p : pins) {
        auto it = pininfo.find(p);
        if (it == pininfo.end()) {
          throw ParseError("pin '" + p + "' missing from PININFO in " + cell_name,
                           header.line_no);
        }
        switch (it->second) {
          case 'I': pin_kind[p] = NetKind::kInput; break;
          case 'O': pin_kind[p] = NetKind::kOutput; break;
          case 'P': pin_kind[p] = NetKind::kPower; break;
          case 'G': pin_kind[p] = NetKind::kGround; break;
          case 'B': pin_kind[p] = NetKind::kInternal; break;  // bidi unsupported -> internal
          default:
            throw ParseError(std::string("bad PININFO direction '") + it->second + "'",
                             header.line_no);
        }
      }
    } else {
      // Heuristic inference.
      std::map<std::string, bool> drives_gate, touches_sd;
      for (const RawDevice& d : devices) {
        drives_gate[d.gate] = true;
        touches_sd[d.drain] = true;
        touches_sd[d.source] = true;
      }
      for (const std::string& p : pins) {
        if (is_power_name(p)) {
          pin_kind[p] = NetKind::kPower;
        } else if (is_ground_name(p)) {
          pin_kind[p] = NetKind::kGround;
        } else if (drives_gate.count(p)) {
          pin_kind[p] = NetKind::kInput;
        } else if (touches_sd.count(p)) {
          pin_kind[p] = NetKind::kOutput;
        } else {
          throw ParseError("cannot infer direction of unconnected pin '" + p + "' in " +
                               cell_name,
                           header.line_no);
        }
      }
    }

    Cell cell(cell_name);
    for (const std::string& p : pins) cell.add_net(p, pin_kind.at(p));
    auto net_of = [&](const std::string& name) -> NetId {
      if (auto id = cell.find_net(name)) return *id;
      return cell.add_net(name, NetKind::kInternal);
    };
    for (const RawDevice& d : devices) {
      Transistor t;
      t.name = d.name;
      if (model_matches(d.model, options_.nmos_models)) {
        t.type = MosType::kNmos;
      } else if (model_matches(d.model, options_.pmos_models)) {
        t.type = MosType::kPmos;
      } else {
        throw ParseError("unknown MOS model '" + d.model + "' in " + cell_name, header.line_no);
      }
      t.drain = net_of(d.drain);
      t.gate = net_of(d.gate);
      t.source = net_of(d.source);
      t.bulk = net_of(d.bulk);
      t.width_um = d.w_um;
      t.length_um = d.l_um;
      cell.add_transistor(std::move(t));
    }
    cell.validate();
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<Cell> SpiceParser::parse_string(const std::string& text) const {
  std::istringstream in(text);
  return parse(in);
}

std::vector<Cell> SpiceParser::parse_file(const std::string& path) const {
  std::ifstream in(path);
  if (!in) throw Error("cannot open netlist file: " + path);
  return parse(in);
}

}  // namespace caml
