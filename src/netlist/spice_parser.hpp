#pragma once

#include <istream>
#include <string>
#include <vector>

#include "netlist/cell.hpp"

namespace caml {

/// Parses CDL-style SPICE standard-cell netlists:
///
///   .SUBCKT NAND2X1 A B Z VDD VSS
///   *.PININFO A:I B:I Z:O VDD:P VSS:G
///   MN0 net0 A VSS VSS nch W=0.4U L=0.03U
///   MP0 Z A VDD VDD pch W=0.6U L=0.03U
///   .ENDS
///
/// Supported syntax: '*' comment lines, '$' trailing comments, '+'
/// continuation lines, case-insensitive keywords, M-cards with the
/// standard D G S B terminal order, W=/L= parameters with optional
/// U/N/M suffixes (micro/nano/milli; bare values are meters when >= 1e-3
/// is implausible, so bare values <= 1 are treated as microns — the
/// convention used by the library generator).
///
/// Pin directions come from the CDL *.PININFO annotation when present
/// (I=input, O=output, P=power, G=ground); otherwise they are inferred:
/// nets named like VDD/VCC/VPWR are power, VSS/GND/VGND ground, pins
/// driving at least one transistor gate are inputs, remaining pins
/// touching a source/drain are outputs.
class SpiceParser {
 public:
  /// NMOS/PMOS model-name classification: a model containing one of
  /// these (case-insensitive) substrings is NMOS resp. PMOS. Defaults
  /// cover nch/pch, nfet/pfet, nmos/pmos, nlvt/plvt, nsvt/psvt.
  struct Options {
    std::vector<std::string> nmos_models = {"nch", "nfet", "nmos", "nlvt", "nsvt", "n18"};
    std::vector<std::string> pmos_models = {"pch", "pfet", "pmos", "plvt", "psvt", "p18"};
  };

  SpiceParser() = default;
  explicit SpiceParser(Options options) : options_(std::move(options)) {}

  /// Parses every .SUBCKT in the stream. Throws caml::ParseError on
  /// malformed input.
  std::vector<Cell> parse(std::istream& in) const;

  /// Convenience: parse from a string.
  std::vector<Cell> parse_string(const std::string& text) const;

  /// Parse a file on disk. Throws caml::Error if unreadable.
  std::vector<Cell> parse_file(const std::string& path) const;

 private:
  Options options_;
};

}  // namespace caml
