#include "netlist/spice_writer.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace caml {

void SpiceWriter::write(std::ostream& os, const Cell& cell) const {
  os << ".SUBCKT " << cell.name();
  for (const Net& n : cell.nets()) {
    if (n.kind != NetKind::kInternal) os << ' ' << n.name;
  }
  os << '\n';
  if (options_.emit_pininfo) {
    os << "*.PININFO";
    for (const Net& n : cell.nets()) {
      switch (n.kind) {
        case NetKind::kInput: os << ' ' << n.name << ":I"; break;
        case NetKind::kOutput: os << ' ' << n.name << ":O"; break;
        case NetKind::kPower: os << ' ' << n.name << ":P"; break;
        case NetKind::kGround: os << ' ' << n.name << ":G"; break;
        case NetKind::kInternal: break;
      }
    }
    os << '\n';
  }
  for (const Transistor& t : cell.transistors()) {
    // SPICE device type is the card's first letter: MOS cards must start
    // with 'M'.
    if (t.name.empty() || (t.name[0] != 'M' && t.name[0] != 'm')) os << 'M';
    os << t.name << ' ' << cell.net(t.drain).name << ' ' << cell.net(t.gate).name << ' '
       << cell.net(t.source).name << ' ' << cell.net(t.bulk).name << ' '
       << (t.type == MosType::kNmos ? options_.nmos_model : options_.pmos_model)
       << " W=" << format_fixed(t.width_um, options_.size_decimals) << "U"
       << " L=" << format_fixed(t.length_um, options_.size_decimals) << "U\n";
  }
  os << ".ENDS\n";
}

void SpiceWriter::write_library(std::ostream& os, const std::vector<Cell>& cells) const {
  os << "* caml generated standard-cell library (" << cells.size() << " cells)\n";
  for (const Cell& c : cells) {
    os << '\n';
    write(os, c);
  }
}

std::string SpiceWriter::to_string(const Cell& cell) const {
  std::ostringstream os;
  write(os, cell);
  return os.str();
}

}  // namespace caml
