#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "netlist/cell.hpp"

namespace caml {

/// Emits CDL-style SPICE for cells produced by this library (inverse of
/// SpiceParser; round-trips exactly up to whitespace).
class SpiceWriter {
 public:
  struct Options {
    std::string nmos_model = "nch";
    std::string pmos_model = "pch";
    bool emit_pininfo = true;
    /// Number of decimals for W/L in microns.
    int size_decimals = 3;
  };

  SpiceWriter() = default;
  explicit SpiceWriter(Options options) : options_(std::move(options)) {}

  void write(std::ostream& os, const Cell& cell) const;
  void write_library(std::ostream& os, const std::vector<Cell>& cells) const;
  std::string to_string(const Cell& cell) const;

 private:
  Options options_;
};

}  // namespace caml
