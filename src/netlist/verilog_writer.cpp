#include "netlist/verilog_writer.hpp"

#include <sstream>

#include "util/error.hpp"

namespace caml {

namespace {

/// Verilog identifiers cannot contain arbitrary characters; escape
/// anything suspicious with the standard backslash form.
std::string vlog_name(const std::string& name) {
  bool plain = !name.empty() && (std::isalpha(static_cast<unsigned char>(name[0])) ||
                                 name[0] == '_');
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '$') plain = false;
  }
  return plain ? name : "\\" + name + " ";
}

}  // namespace

void VerilogWriter::write(std::ostream& os, const Cell& cell) const {
  os << "module " << vlog_name(cell.name()) << " (";
  bool first = true;
  for (const Net& n : cell.nets()) {
    if (n.kind == NetKind::kInput || n.kind == NetKind::kOutput) {
      if (!first) os << ", ";
      os << (n.kind == NetKind::kInput ? "input " : "output ") << vlog_name(n.name);
      first = false;
    }
  }
  os << ");\n";
  os << "  supply1 " << vlog_name(cell.net(cell.vdd()).name) << ";\n";
  os << "  supply0 " << vlog_name(cell.net(cell.vss()).name) << ";\n";
  for (const Net& n : cell.nets()) {
    if (n.kind == NetKind::kInternal) os << "  wire " << vlog_name(n.name) << ";\n";
  }
  for (const Transistor& t : cell.transistors()) {
    // Verilog primitive port order: (drain, source, gate).
    os << "  " << (t.type == MosType::kNmos ? "nmos" : "pmos") << ' ' << vlog_name(t.name)
       << " (" << vlog_name(cell.net(t.drain).name) << ", " << vlog_name(cell.net(t.source).name)
       << ", " << vlog_name(cell.net(t.gate).name) << ");\n";
  }
  os << "endmodule\n";
}

void VerilogWriter::write_library(std::ostream& os, const std::vector<Cell>& cells) const {
  os << "// caml generated switch-level library (" << cells.size() << " cells)\n";
  for (const Cell& c : cells) {
    os << '\n';
    write(os, c);
  }
}

std::string VerilogWriter::to_string(const Cell& cell) const {
  std::ostringstream os;
  write(os, cell);
  return os.str();
}

}  // namespace caml
