#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "netlist/cell.hpp"

namespace caml {

/// Emits a cell as a Verilog switch-level module using the `nmos` /
/// `pmos` primitives — the representation the paper's Section III.A
/// mentions as the alternative to the defect-free electrical
/// simulation ("a Verilog simulation, with a CDL netlist that should be
/// written using NMOS and PMOS primitives").
///
///   module NAND2X1 (input A, input B, output Z);
///     supply1 VDD;
///     supply0 VSS;
///     wire net0;
///     nmos MN10 (Z, net0, A);    // drain, source, gate
///     ...
///   endmodule
class VerilogWriter {
 public:
  void write(std::ostream& os, const Cell& cell) const;
  void write_library(std::ostream& os, const std::vector<Cell>& cells) const;
  std::string to_string(const Cell& cell) const;
};

}  // namespace caml
