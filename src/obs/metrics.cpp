#include "obs/metrics.hpp"

#include <bit>
#include <sstream>

#include "util/error.hpp"

namespace caml::obs {

std::size_t Histogram::bucket_for(std::uint64_t v) {
  // Buckets 0..7 hold the exact values 0..7; above that each octave
  // [2^m, 2^(m+1)) splits into 8 sub-buckets keyed by the 3 bits after
  // the leading 1.
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const std::size_t sub = static_cast<std::size_t>((v >> (msb - 3)) & 7);
  const std::size_t bucket = kSubBuckets * static_cast<std::size_t>(msb - 3) + kSubBuckets + sub;
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

double Histogram::bucket_upper(std::size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<double>(bucket);
  const std::size_t m = 3 + (bucket - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (bucket - kSubBuckets) % kSubBuckets;
  return static_cast<double>(((sub + 9) << (m - 3)) - 1);
}

void Histogram::record(std::uint64_t v) {
  buckets_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev && !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count += s.buckets[b];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  const std::uint64_t target =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= target) return Histogram::bucket_upper(b);
  }
  return Histogram::bucket_upper(Histogram::kBuckets - 1);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) buckets.resize(other.buckets.size());
  for (std::size_t b = 0; b < other.buckets.size(); ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

HistogramSnapshot HistogramSnapshot::diff(const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  out.buckets.resize(buckets.size());
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t before = b < earlier.buckets.size() ? earlier.buckets[b] : 0;
    CAML_ASSERT(buckets[b] >= before);
    out.buckets[b] = buckets[b] - before;
    out.count += out.buckets[b];
  }
  out.sum = sum - earlier.sum;
  out.max = max;
  return out;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
  for (const auto& [name, text] : other.help) help.emplace(name, text);
}

namespace {

void expose_preamble(std::ostringstream& os, const std::string& name, const char* type,
                     const std::map<std::string, std::string>& help) {
  const auto it = help.find(name);
  if (it != help.end() && !it->second.empty()) {
    os << "# HELP " << name << ' ' << it->second << '\n';
  }
  os << "# TYPE " << name << ' ' << type << '\n';
}

/// Formats a bucket upper bound: the bounds are integers by
/// construction, so avoid the noise of scientific notation.
std::string le_label(double upper) {
  return std::to_string(static_cast<std::uint64_t>(upper));
}

}  // namespace

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [name, v] : counters) {
    expose_preamble(os, name, "counter", help);
    os << name << ' ' << v << '\n';
  }
  for (const auto& [name, v] : gauges) {
    expose_preamble(os, name, "gauge", help);
    os << name << ' ' << v << '\n';
  }
  for (const auto& [name, h] : histograms) {
    expose_preamble(os, name, "histogram", help);
    // Cumulative counts; empty buckets are skipped (the cumulative value
    // is unchanged there), +Inf always emitted.
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cum += h.buckets[b];
      os << name << "_bucket{le=\"" << le_label(Histogram::bucket_upper(b)) << "\"} " << cum
         << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << name << "_sum " << h.sum << '\n';
    os << name << "_count " << h.count << '\n';
  }
  return os.str();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!alpha && !(digit && i > 0)) return false;
  }
  return true;
}

}  // namespace

void Registry::note_registered(const std::string& name, const std::string& help) {
  if (!valid_metric_name(name)) throw Error("invalid metric name '" + name + "'");
  if (!help.empty()) help_.emplace(name, help);
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) || histograms_.count(name)) {
    throw Error("metric '" + name + "' already registered with a different type");
  }
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    note_registered(name, help);
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || histograms_.count(name)) {
    throw Error("metric '" + name + "' already registered with a different type");
  }
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    note_registered(name, help);
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || gauges_.count(name)) {
    throw Error("metric '" + name + "' already registered with a different type");
  }
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    note_registered(name, help);
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  s.help = help_;
  return s;
}

}  // namespace caml::obs
