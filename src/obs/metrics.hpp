#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace caml::obs {

/// Monotonically increasing event count. All mutators are relaxed
/// atomics — safe from any thread, never a lock on the hot path.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, high-water mark). set/add
/// are relaxed; update_max raises the value monotonically (CAS loop).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if above the current value.
  void update_max(std::int64_t v) {
    std::int64_t prev = value_.load(std::memory_order_relaxed);
    while (v > prev && !value_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time copy of a Histogram, safe to format, compare and merge.
/// merge() is associative and commutative (bucket-wise sums, max of
/// maxima), so snapshots taken on different shards/processes can be
/// combined in any order.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts (kBuckets wide)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< sum of recorded values
  std::uint64_t max = 0;  ///< largest recorded value (exact, not bucketed)

  /// Value at quantile q in [0, 1], exact to within one log-scale bucket
  /// (~9% relative error). 0 when empty.
  double percentile(double q) const;
  void merge(const HistogramSnapshot& other);
  /// Bucket-wise difference against an earlier snapshot of the same
  /// histogram — the distribution of values recorded in between. `max`
  /// is carried over from this snapshot (maxima do not subtract).
  HistogramSnapshot diff(const HistogramSnapshot& earlier) const;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Log-scaled histogram: 8 sub-buckets per octave, values 0..7 exact,
/// upper range ~2^40 (≈ 12 days when recording microseconds). record()
/// is three relaxed atomic ops — lock-free, no allocation. One
/// implementation serves request latencies, task durations, batch sizes
/// and anything else with a long-tailed distribution.
class Histogram {
 public:
  static constexpr std::size_t kOctaves = 40;
  static constexpr std::size_t kSubBuckets = 8;
  static constexpr std::size_t kBuckets = kOctaves * kSubBuckets;

  /// Bucket index holding value `v`.
  static std::size_t bucket_for(std::uint64_t v);
  /// Inclusive upper bound of a bucket.
  static double bucket_upper(std::size_t bucket);

  void record(std::uint64_t v);
  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time copy of a whole Registry. merge() combines snapshots
/// from different registries (or the same one at different times) —
/// counters and gauges sum, histograms merge bucket-wise; associative
/// and commutative, so shard rollups are order-independent.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Help strings keyed by metric name (first registration wins).
  std::map<std::string, std::string> help;

  void merge(const MetricsSnapshot& other);

  /// Prometheus-compatible text exposition: # HELP / # TYPE lines, then
  /// samples; histograms emit cumulative le="..." buckets plus _sum and
  /// _count. Deterministic (name-sorted) output.
  std::string to_text() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Named metrics registry. Registration (counter/gauge/histogram) takes
/// a mutex and returns a stable reference — call it once at setup (or
/// through a function-local static) and mutate through the reference;
/// the mutation path is lock-free. Re-registering a name returns the
/// existing metric; a name registered as a different type throws.
///
/// Registry::global() is the process-wide instance every subsystem
/// registers into (names prefixed caml_); independent instances exist
/// for tests and shard-local aggregation.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "");

  MetricsSnapshot snapshot() const;

 private:
  void note_registered(const std::string& name, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace caml::obs
