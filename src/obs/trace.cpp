#include "obs/trace.hpp"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <mutex>
#include <sstream>

#include "util/error.hpp"
#include "util/timing.hpp"

namespace caml::obs {

namespace detail {
std::atomic<unsigned> g_mode{0};
}  // namespace detail

namespace {

constexpr unsigned kTraceBit = 1u;
constexpr unsigned kProfileBit = 2u;

/// Per-thread CPU clock in microseconds (profiling only — never on the
/// disabled path).
std::int64_t thread_cpu_us() {
  timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 + ts.tv_nsec / 1'000;
}

struct TraceEvent {
  const char* name;
  std::int64_t ts_us;   ///< relative to trace_start
  std::int64_t dur_us;
  std::uint32_t tid;
  std::vector<std::pair<std::string, std::string>> args;  ///< values pre-rendered as JSON
};

/// Shared trace/profile state. Spans append under the mutex at *close*
/// time only (one lock per completed span, none while the span runs);
/// the disabled path never takes it.
struct Collector {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::int64_t t0_us = 0;
  std::uint64_t dropped = 0;
  std::atomic<std::uint32_t> next_tid{0};
  std::map<std::string, StageStats> stages;

  /// Bounded buffer: a forgotten long-running trace degrades into
  /// counting drops instead of eating the heap.
  static constexpr std::size_t kMaxEvents = 1u << 20;

  static Collector& get() {
    static Collector instance;
    return instance;
  }
};

std::uint32_t this_thread_tid() {
  thread_local const std::uint32_t tid =
      Collector::get().next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void set_mode_bit(unsigned bit, bool on) {
  if (on) {
    detail::g_mode.fetch_or(bit, std::memory_order_relaxed);
  } else {
    detail::g_mode.fetch_and(~bit, std::memory_order_relaxed);
  }
}

void json_escape_into(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_string(const std::string& text) {
  std::string out = "\"";
  json_escape_into(out, text);
  out += '"';
  return out;
}

}  // namespace

bool trace_active() { return (detail::mode() & kTraceBit) != 0; }
bool profile_active() { return (detail::mode() & kProfileBit) != 0; }

void trace_start() {
  Collector& c = Collector::get();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.events.clear();
  c.dropped = 0;
  c.t0_us = monotonic_us();
  set_mode_bit(kTraceBit, true);
}

std::string trace_stop_json() {
  set_mode_bit(kTraceBit, false);
  Collector& c = Collector::get();
  std::lock_guard<std::mutex> lock(c.mutex);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : c.events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    out += json_string(e.name);
    out += ",\"cat\":\"caml\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    out += std::to_string(e.ts_us);
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) out += ',';
        out += json_string(e.args[a].first);
        out += ':';
        out += e.args[a].second;  // already a JSON token
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":" +
         std::to_string(c.dropped) + "}}";
  c.events.clear();
  return out;
}

void trace_stop_write(const std::string& path) {
  const std::string json = trace_stop_json();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os || !(os << json) || !os.flush()) {
    throw Error("cannot write trace file " + path);
  }
}

std::uint64_t trace_dropped_events() {
  Collector& c = Collector::get();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.dropped;
}

void profile_start() {
  Collector& c = Collector::get();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.stages.clear();
  set_mode_bit(kProfileBit, true);
}

void profile_stop() { set_mode_bit(kProfileBit, false); }

std::vector<std::pair<std::string, StageStats>> profile_snapshot() {
  Collector& c = Collector::get();
  std::vector<std::pair<std::string, StageStats>> out;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    out.assign(c.stages.begin(), c.stages.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.wall_us > b.second.wall_us;
  });
  return out;
}

std::string profile_summary() {
  const auto stages = profile_snapshot();
  if (stages.empty()) return std::string();
  std::size_t name_width = 5;
  for (const auto& [name, stats] : stages) name_width = std::max(name_width, name.size());
  std::ostringstream os;
  os << "profile (wall = summed span time; overlapping spans exceed elapsed):\n";
  os << "  " << std::left << std::setw(static_cast<int>(name_width)) << "stage" << std::right
     << std::setw(10) << "calls" << std::setw(12) << "wall_s" << std::setw(12) << "cpu_s"
     << std::setw(12) << "items" << std::setw(14) << "items_per_s" << '\n';
  for (const auto& [name, stats] : stages) {
    const double wall_s = static_cast<double>(stats.wall_us) / 1e6;
    const double cpu_s = static_cast<double>(stats.cpu_us) / 1e6;
    os << "  " << std::left << std::setw(static_cast<int>(name_width)) << name << std::right
       << std::setw(10) << stats.calls << std::setw(12) << std::fixed << std::setprecision(3)
       << wall_s << std::setw(12) << cpu_s << std::setw(12) << stats.items << std::setw(14)
       << std::setprecision(1)
       << (stats.items == 0 || wall_s <= 0.0 ? 0.0
                                             : static_cast<double>(stats.items) / wall_s)
       << '\n';
  }
  return os.str();
}

void TraceSpan::begin(const char* name, std::uint64_t items, unsigned mode) {
  name_ = name;
  items_ = items;
  tracing_ = (mode & kTraceBit) != 0;
  profiling_ = (mode & kProfileBit) != 0;
  start_us_ = monotonic_us();
  if (profiling_) cpu_start_us_ = thread_cpu_us();
}

void TraceSpan::end() {
  const std::int64_t end_us = monotonic_us();
  const std::int64_t wall = end_us - start_us_;
  Collector& c = Collector::get();
  if (tracing_) {
    if (items_ > 0) args_.emplace_back("items", std::to_string(items_));
    TraceEvent e;
    e.name = name_;
    e.ts_us = start_us_ - c.t0_us;
    e.dur_us = wall;
    e.tid = this_thread_tid();
    e.args = std::move(args_);
    std::lock_guard<std::mutex> lock(c.mutex);
    if (c.events.size() < Collector::kMaxEvents) {
      c.events.push_back(std::move(e));
    } else {
      ++c.dropped;
    }
  }
  if (profiling_) {
    const std::int64_t cpu = thread_cpu_us() - cpu_start_us_;
    std::lock_guard<std::mutex> lock(c.mutex);
    StageStats& s = c.stages[name_];
    s.calls += 1;
    s.wall_us += static_cast<std::uint64_t>(std::max<std::int64_t>(wall, 0));
    s.cpu_us += static_cast<std::uint64_t>(std::max<std::int64_t>(cpu, 0));
    s.items += items_;
  }
}

void TraceSpan::attr(const char* key, const std::string& value) {
  if (!tracing_) return;
  args_.emplace_back(key, json_string(value));
}

void TraceSpan::attr(const char* key, std::int64_t value) {
  if (!tracing_) return;
  args_.emplace_back(key, std::to_string(value));
}

}  // namespace caml::obs
