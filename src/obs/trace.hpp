#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace caml::obs {

// ---------------------------------------------------------------------------
// Tracing: CAML_TRACE_SPAN(name) opens an RAII scope that, while tracing
// is enabled, records one complete ("ph":"X") event — name, start, wall
// duration, a small stable thread id, optional attributes — for export
// as Chrome trace-event JSON (load in chrome://tracing or
// https://ui.perfetto.dev). Span names must be string literals (static
// storage); attribute values are copied.
//
// Determinism contract: spans only *observe* — they never touch RNG
// streams, data, or control flow, so every model/prediction output is
// byte-identical with tracing enabled or disabled (tested). Disabled,
// a span costs one relaxed atomic load and a branch.
// ---------------------------------------------------------------------------

/// True while trace events are being collected.
bool trace_active();

/// Starts (or restarts) collection; clears previously buffered events.
void trace_start();

/// Stops collection and renders the buffered events as a Chrome
/// trace-event JSON document ("traceEvents" array). Clears the buffer.
std::string trace_stop_json();

/// trace_stop_json() written to `path` (plain file write; throws
/// caml::Error when the file cannot be written).
void trace_stop_write(const std::string& path);

/// Events discarded because the in-memory cap was reached during the
/// current (or last) collection; 0 in healthy runs. Also exported in the
/// JSON under otherData.dropped_events.
std::uint64_t trace_dropped_events();

// ---------------------------------------------------------------------------
// Profiling: the same spans feed per-stage rollups — calls, summed wall
// and thread-CPU time, item throughput — aggregated by span name while
// profiling is enabled, printed as an end-of-run summary table
// (CLI --profile). Wall time is summed across spans, so concurrent
// spans of one stage can exceed elapsed process time (it is busy time,
// not a timeline).
// ---------------------------------------------------------------------------

/// True while per-stage rollups are being aggregated.
bool profile_active();

/// Starts (or restarts) aggregation; clears previous rollups.
void profile_start();

/// Stops aggregation (rollups remain readable until profile_start()).
void profile_stop();

/// Aggregated stats of one stage (span name).
struct StageStats {
  std::uint64_t calls = 0;
  std::uint64_t wall_us = 0;
  std::uint64_t cpu_us = 0;
  std::uint64_t items = 0;
};

/// All stage rollups, sorted by descending wall time.
std::vector<std::pair<std::string, StageStats>> profile_snapshot();

/// Fixed-width summary table of profile_snapshot() — the end-of-run
/// report printed by the CLI under --profile. Empty string when no
/// stage completed.
std::string profile_summary();

namespace detail {
/// Bit 0: tracing, bit 1: profiling. A single flag word keeps the
/// disabled-span fast path to one relaxed load.
extern std::atomic<unsigned> g_mode;
inline unsigned mode() { return g_mode.load(std::memory_order_relaxed); }
}  // namespace detail

/// RAII tracing/profiling scope. Construct through CAML_TRACE_SPAN /
/// CAML_TRACE_SPAN_ITEMS; `name` must point to static storage.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::uint64_t items = 0) {
    const unsigned mode = detail::mode();
    if (mode == 0) return;
    begin(name, items, mode);
  }
  ~TraceSpan() {
    if (tracing_ || profiling_) end();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a key/value attribute (exported in the event's "args").
  /// No-ops unless tracing is active.
  void attr(const char* key, const std::string& value);
  void attr(const char* key, std::int64_t value);

 private:
  void begin(const char* name, std::uint64_t items, unsigned mode);
  void end();

  const char* name_ = nullptr;
  std::int64_t start_us_ = 0;
  std::int64_t cpu_start_us_ = 0;
  std::uint64_t items_ = 0;
  bool tracing_ = false;
  bool profiling_ = false;
  /// Values pre-rendered as JSON tokens (quoted strings / bare numbers).
  std::vector<std::pair<std::string, std::string>> args_;
};

#define CAML_OBS_CAT2(a, b) a##b
#define CAML_OBS_CAT(a, b) CAML_OBS_CAT2(a, b)

/// Opens a tracing/profiling span covering the rest of the enclosing
/// scope. `name` must be a string literal.
#define CAML_TRACE_SPAN(name) \
  ::caml::obs::TraceSpan CAML_OBS_CAT(caml_trace_span_, __LINE__)(name)

/// Like CAML_TRACE_SPAN, also crediting `items` units of work to the
/// stage's throughput rollup (and the event's "items" attribute).
#define CAML_TRACE_SPAN_ITEMS(name, items) \
  ::caml::obs::TraceSpan CAML_OBS_CAT(caml_trace_span_, __LINE__)( \
      name, static_cast<std::uint64_t>(items))

}  // namespace caml::obs
