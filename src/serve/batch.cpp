#include "serve/batch.hpp"

#include <map>
#include <optional>
#include <utility>

#include "camatrix/canonical.hpp"
#include "camodel/model_io.hpp"
#include "defect/universe.hpp"
#include "flow/ml_flow.hpp"
#include "netlist/spice_parser.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/sigguard.hpp"

namespace caml::serve {

namespace {

Frame error_response(std::uint64_t request_id, ErrorCode code, const std::string& message) {
  Frame frame;
  frame.type = MsgType::kError;
  frame.request_id = request_id;
  frame.payload = encode_error(ErrorBody{code, 0, message});
  return frame;
}

/// Per-job scratch while the batch is in flight. `cell` points into
/// `cells`, which owns the parse result for the job's lifetime.
struct Item {
  PredictOutcome out;
  std::vector<Cell> cells;
  const Cell* cell = nullptr;
  std::optional<PreparedPrediction> prepared;
  const Classifier* classifier = nullptr;
};

}  // namespace

std::vector<PredictOutcome> answer_predict_batch(const ModelStore& store,
                                                 const PolicyProfile& policy,
                                                 std::vector<PredictJob> jobs) {
  CAML_TRACE_SPAN_ITEMS("serve_batch", jobs.size());
  std::vector<Item> items(jobs.size());

  // Phase 1 — per-request prepare: parse, route to a group model, build
  // the unlabeled matrix + model skeleton. Failures settle the item
  // immediately with a structured error and drop out of phase 2.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    PredictJob& job = jobs[i];
    Item& item = items[i];
    item.out.conn_id = job.conn_id;
    item.out.seq = job.seq;
    item.out.enqueued_us = job.enqueued_us;
    const std::uint64_t id = job.request_id;
    try {
      item.cells = SpiceParser().parse_string(job.netlist);
      if (item.cells.size() != 1) {
        item.out.kind = PredictOutcome::Kind::kError;
        item.out.response =
            error_response(id, ErrorCode::kBadRequest,
                           "expected exactly one .SUBCKT per request, got " +
                               std::to_string(item.cells.size()));
        continue;
      }
      const Cell& cell = item.cells.front();
      item.cell = &cell;
      const GroupKey key{cell.num_inputs(), cell.num_transistors()};
      item.classifier = store.classifier_for(key);
      if (item.classifier == nullptr) {
        item.out.kind = PredictOutcome::Kind::kNoGroup;
        item.out.response = error_response(
            id, ErrorCode::kNoGroup,
            "no trained model for group (" + std::to_string(key.num_inputs) + " inputs, " +
                std::to_string(key.num_transistors) + " transistors); cell " + cell.name() +
                " needs conventional generation");
        continue;
      }
      const CanonicalCell canonical = canonicalize(cell);
      item.prepared = prepare_prediction(cell, canonical,
                                         policy.policy_for(cell.num_inputs()), SimConfig{},
                                         store.matrix_options(), enumerate_defects(cell));
      item.out.response.type = MsgType::kPredictOk;
      item.out.response.request_id = id;
    } catch (const ParseError& e) {
      item.out.kind = PredictOutcome::Kind::kError;
      item.out.response = error_response(id, ErrorCode::kParseError, e.what());
    } catch (const Error& e) {
      log_warn() << "prediction failed: " << e.what();
      item.out.kind = PredictOutcome::Kind::kError;
      item.out.response = error_response(id, ErrorCode::kInternal, e.what());
    }
  }

  // Phase 2 — coalesced classification: concatenate the feature rows of
  // every prepared item that routed to the same group model and sweep
  // them through one predict_batch call. Rows are classified
  // independently, so splitting the labels back per item reproduces the
  // per-request result bit for bit.
  std::map<const Classifier*, std::vector<std::size_t>> by_group;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].prepared) by_group[items[i].classifier].push_back(i);
  }
  for (const auto& [classifier, member_items] : by_group) {
    std::size_t total_rows = 0;
    std::size_t stride = 0;
    for (const std::size_t i : member_items) {
      const CaMatrix& matrix = items[i].prepared->matrix;
      if (stride == 0) stride = matrix.num_features();
      CAML_ASSERT(matrix.num_features() == stride);  // one group = one feature layout
      total_rows += matrix.num_rows();
    }
    std::vector<std::uint8_t> labels;
    try {
      if (total_rows > 0) {
        if (member_items.size() == 1) {
          // Single request for this group: classify its rows in place.
          const CaMatrix& matrix = items[member_items.front()].prepared->matrix;
          labels = classifier->predict_batch(matrix.features().data(), matrix.num_rows(),
                                             stride);
        } else {
          std::vector<std::int8_t> rows;
          rows.reserve(total_rows * stride);
          for (const std::size_t i : member_items) {
            const std::vector<std::int8_t>& f = items[i].prepared->matrix.features();
            rows.insert(rows.end(), f.begin(), f.end());
          }
          labels = classifier->predict_batch(rows.data(), total_rows, stride);
        }
      }
    } catch (const io::MappingFault& e) {
      // The mapped store faulted mid-traversal (file changed under the
      // mapping). Fail this group's requests with a structured INTERNAL
      // and flag the outcomes so the server swaps to a good snapshot —
      // the daemon itself never dies.
      log_error() << "store fault while classifying a serve batch: " << e.what();
      for (const std::size_t i : member_items) {
        Item& item = items[i];
        item.out.kind = PredictOutcome::Kind::kError;
        item.out.store_fault = true;
        item.out.response =
            error_response(item.out.response.request_id, ErrorCode::kInternal, e.what());
      }
      continue;
    }
    std::size_t offset = 0;
    for (const std::size_t i : member_items) {
      Item& item = items[i];
      const std::size_t n = item.prepared->matrix.num_rows();
      const std::uint8_t* item_labels = labels.data() + offset;
      offset += n;  // advance even if finishing fails: later items keep their slice
      try {
        const CaModel predicted = finish_prediction(std::move(*item.prepared), item_labels);
        item.out.response.payload = ca_model_to_string(predicted, *item.cell);
        item.out.kind = PredictOutcome::Kind::kOk;
        item.out.rows_classified = predicted.defects.size() * predicted.stimuli.size();
      } catch (const Error& e) {
        log_warn() << "prediction failed: " << e.what();
        item.out.kind = PredictOutcome::Kind::kError;
        item.out.response =
            error_response(item.out.response.request_id, ErrorCode::kInternal, e.what());
      }
    }
  }

  std::vector<PredictOutcome> outcomes;
  outcomes.reserve(items.size());
  for (Item& item : items) outcomes.push_back(std::move(item.out));
  return outcomes;
}

}  // namespace caml::serve
