#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/characterize.hpp"
#include "flow/model_store.hpp"
#include "serve/protocol.hpp"

namespace caml::serve {

/// One decoded kPredictCell request waiting for the compute plane.
/// conn/seq route the finished response back to its connection and slot
/// it into that connection's response order; the reactor fills them and
/// the compute plane echoes them untouched.
struct PredictJob {
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  std::uint64_t request_id = 0;
  std::string netlist;
  std::int64_t enqueued_us = 0;  ///< decode timestamp, for end-to-end latency
  /// Absolute monotonic deadline (microseconds) after which the client
  /// no longer wants the answer; -1 = no deadline. The compute plane
  /// sheds expired jobs with DEADLINE_EXCEEDED instead of computing them.
  std::int64_t deadline_us = -1;
};

/// The answer to one PredictJob, ready for the wire.
struct PredictOutcome {
  enum class Kind { kOk, kNoGroup, kError, kShed };

  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  std::int64_t enqueued_us = 0;
  Frame response;
  Kind kind = Kind::kError;
  std::uint64_t rows_classified = 0;  ///< CA-matrix rows this request pushed through a forest
  /// True when this error came from a fault on the mapped store (SIGBUS
  /// or size change) — the server must swap to a good snapshot.
  bool store_fault = false;
};

/// Answers a coalesced batch of PREDICT requests against one store
/// snapshot: every request's cell is parsed and prepared independently
/// (matrix build + golden simulation), then the feature rows of all
/// requests that map to the same group model are concatenated and
/// classified in a single Classifier::predict_batch sweep — the
/// cross-connection batching the per-request serve path could never
/// exploit. Per-row classification is independent, so the responses are
/// byte-identical to answering each request alone (tested).
///
/// Never throws: malformed payloads, unknown groups and internal
/// failures become structured kError responses for their own request
/// only. Outcomes are returned in job order.
std::vector<PredictOutcome> answer_predict_batch(const ModelStore& store,
                                                 const PolicyProfile& policy,
                                                 std::vector<PredictJob> jobs);

}  // namespace caml::serve
