#include "serve/client.hpp"

#include <chrono>
#include <thread>

namespace caml::serve {

void Client::ensure_connected() {
  if (fd_.valid()) return;
  if (!options_.socket_path.empty()) {
    fd_ = connect_unix(options_.socket_path, options_.connect_timeout_ms);
  } else {
    fd_ = connect_tcp(options_.host, options_.port, options_.connect_timeout_ms);
  }
}

Frame Client::roundtrip(MsgType request_type, const std::string& payload,
                        MsgType expected_type) {
  Frame request;
  request.type = request_type;
  request.request_id = next_id_++;
  request.payload = payload;

  int overload_wait_spent_ms = 0;
  for (int attempt = 0;; ++attempt) {
    try {
      ensure_connected();
      write_frame(fd_.get(), request, options_.timeout_ms);
      std::optional<Frame> response = read_frame(fd_.get(), options_.timeout_ms);
      if (!response) {
        errno = 0;
        throw Error("connection lost: server closed the connection");
      }
      if (response->type == MsgType::kError) {
        // Backpressure rejects are written before the server reads the
        // request, so they carry id 0 — still an answer to us (the
        // connection serves exactly one in-flight request).
        if (response->request_id != request.request_id && response->request_id != 0) {
          throw Error("response id " + std::to_string(response->request_id) +
                      " does not match request id " + std::to_string(request.request_id));
        }
        throw RemoteError(decode_error(response->payload));
      }
      if (response->request_id != request.request_id) {
        throw Error("response id " + std::to_string(response->request_id) +
                    " does not match request id " + std::to_string(request.request_id));
      }
      if (response->type != expected_type) {
        throw Error("unexpected response type " +
                    std::to_string(static_cast<unsigned>(response->type)));
      }
      return std::move(*response);
    } catch (const RemoteError& e) {
      if (e.code() != ErrorCode::kOverloaded) throw;
      // The server closed the connection after the reject; reconnect on
      // the next attempt. Honor its retry_after_ms hint, but never sleep
      // past the total overload budget — a saturated server should turn
      // into a caller-visible error, not an unbounded stall.
      fd_.reset();
      const int hint = e.retry_after_ms() > 0
                           ? static_cast<int>(e.retry_after_ms())
                           : options_.backoff_ms * (attempt + 1);
      if (overload_wait_spent_ms + hint > options_.overload_retry_budget_ms) throw;
      overload_wait_spent_ms += hint;
      std::this_thread::sleep_for(std::chrono::milliseconds(hint));
    } catch (const Error& e) {
      fd_.reset();
      if (attempt >= options_.retries || !is_connection_lost_error(e.what())) throw;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(options_.backoff_ms) * (attempt + 1)));
    }
  }
}

std::string Client::predict_cell(const std::string& netlist_text) {
  return roundtrip(MsgType::kPredictCell, netlist_text, MsgType::kPredictOk).payload;
}

std::vector<BatchResult> Client::predict_cells(const std::vector<std::string>& netlists,
                                               std::size_t window) {
  std::vector<BatchResult> results(netlists.size());
  if (netlists.empty()) return results;
  if (window == 0) window = 1;
  ensure_connected();
  const std::uint64_t first_id = next_id_;
  std::size_t sent = 0;
  std::size_t received = 0;
  try {
    while (received < netlists.size()) {
      // Keep the window full before reading: the server reads request
      // frames continuously (its reactor never blocks on our pace), so a
      // blocking write here can only wait on the network, not deadlock.
      while (sent < netlists.size() && sent - received < window) {
        Frame request;
        request.type = MsgType::kPredictCell;
        request.request_id = next_id_++;
        request.payload = netlists[sent];
        write_frame(fd_.get(), request, options_.timeout_ms);
        ++sent;
      }
      std::optional<Frame> response = read_frame(fd_.get(), options_.timeout_ms);
      if (!response) {
        errno = 0;
        throw Error("connection lost: server closed the connection mid-batch");
      }
      const std::uint64_t want = first_id + received;
      if (response->request_id != want) {
        throw Error("pipelined response id " + std::to_string(response->request_id) +
                    " arrived out of order (expected " + std::to_string(want) + ")");
      }
      BatchResult& result = results[received];
      if (response->type == MsgType::kError) {
        result.error = decode_error(response->payload);
      } else if (response->type == MsgType::kPredictOk) {
        result.payload = std::move(response->payload);
      } else {
        throw Error("unexpected response type " +
                    std::to_string(static_cast<unsigned>(response->type)));
      }
      ++received;
    }
  } catch (...) {
    fd_.reset();
    throw;
  }
  return results;
}

void Client::ping() { roundtrip(MsgType::kPing, "", MsgType::kPong); }

std::string Client::stats() {
  return roundtrip(MsgType::kStats, "", MsgType::kStatsOk).payload;
}

}  // namespace caml::serve
