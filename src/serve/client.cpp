#include "serve/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace caml::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t default_retry_seed() {
  static std::atomic<std::uint64_t> counter{0};
  return splitmix64((static_cast<std::uint64_t>(::getpid()) << 20) ^
                    counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

int overload_backoff_ms(std::uint64_t seed, int attempt, int hint_ms, int base_ms,
                        int cap_ms) {
  const std::int64_t floor_ms = std::max<std::int64_t>({hint_ms, base_ms, 1});
  const int shift = std::min(attempt, 20);  // 2^20x is past any sane cap
  std::int64_t wait = std::min<std::int64_t>(std::max(cap_ms, 1), floor_ms << shift);
  wait = std::max<std::int64_t>(wait, hint_ms);  // the hint floors even past the cap
  // Jitter factor in [1, 2): a 53-bit mantissa drawn deterministically
  // from (seed, attempt) — two clients with different seeds spread out
  // instead of re-stampeding on the same schedule.
  const double jitter =
      static_cast<double>(splitmix64(seed ^ (0x5CEDB00Full + static_cast<std::uint64_t>(
                                                                 attempt))) >>
                          11) *
      0x1.0p-53;
  return static_cast<int>(wait + static_cast<std::int64_t>(static_cast<double>(wait) *
                                                           jitter));
}

Client::Client(ClientOptions options) : options_(std::move(options)) {
  retry_seed_ = options_.retry_seed != 0 ? options_.retry_seed : default_retry_seed();
}

void Client::ensure_connected() {
  if (fd_.valid()) return;
  if (!options_.socket_path.empty()) {
    fd_ = connect_unix(options_.socket_path, options_.connect_timeout_ms);
  } else {
    fd_ = connect_tcp(options_.host, options_.port, options_.connect_timeout_ms);
  }
}

Frame Client::make_predict_frame(const std::string& netlist_text) {
  Frame request;
  request.type = MsgType::kPredictCell;
  request.request_id = next_id_++;
  if (options_.deadline_ms > 0) {
    request.version = kProtocolVersionDeadline;
    request.payload = encode_predict_payload(options_.deadline_ms, netlist_text);
  } else {
    // No deadline: plain v1 frame, compatible with pre-deadline servers.
    request.payload = netlist_text;
  }
  return request;
}

Frame Client::roundtrip(Frame request, MsgType expected_type) {
  int overload_wait_spent_ms = 0;
  int overload_attempt = 0;
  for (int attempt = 0;; ++attempt) {
    try {
      ensure_connected();
      write_frame(fd_.get(), request, options_.timeout_ms);
      std::optional<Frame> response = read_frame(fd_.get(), options_.timeout_ms);
      if (!response) {
        errno = 0;
        throw Error("connection lost: server closed the connection");
      }
      if (response->type == MsgType::kError) {
        // Backpressure rejects are written before the server reads the
        // request, so they carry id 0 — still an answer to us (the
        // connection serves exactly one in-flight request).
        if (response->request_id != request.request_id && response->request_id != 0) {
          throw Error("response id " + std::to_string(response->request_id) +
                      " does not match request id " + std::to_string(request.request_id));
        }
        throw RemoteError(decode_error(response->payload));
      }
      if (response->request_id != request.request_id) {
        throw Error("response id " + std::to_string(response->request_id) +
                    " does not match request id " + std::to_string(request.request_id));
      }
      if (response->type != expected_type) {
        throw Error("unexpected response type " +
                    std::to_string(static_cast<unsigned>(response->type)));
      }
      return std::move(*response);
    } catch (const RemoteError& e) {
      if (e.code() != ErrorCode::kOverloaded) throw;
      // The server may close the connection after the reject; reconnect
      // on the next attempt. Back off exponentially with deterministic
      // jitter (the server's retry_after_ms hint is the floor), but
      // never sleep past the total overload budget — a saturated server
      // should turn into a caller-visible error, not an unbounded stall.
      fd_.reset();
      const int wait =
          overload_backoff_ms(retry_seed_, overload_attempt++,
                              static_cast<int>(e.retry_after_ms()), options_.backoff_ms,
                              options_.overload_backoff_cap_ms);
      if (overload_wait_spent_ms + wait > options_.overload_retry_budget_ms) throw;
      overload_wait_spent_ms += wait;
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    } catch (const Error& e) {
      fd_.reset();
      if (attempt >= options_.retries || !is_connection_lost_error(e.what())) throw;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(options_.backoff_ms) * (attempt + 1)));
    }
  }
}

std::string Client::predict_cell(const std::string& netlist_text) {
  return roundtrip(make_predict_frame(netlist_text), MsgType::kPredictOk).payload;
}

std::vector<BatchResult> Client::predict_cells(const std::vector<std::string>& netlists,
                                               std::size_t window) {
  std::vector<BatchResult> results(netlists.size());
  if (netlists.empty()) return results;
  if (window == 0) window = 1;
  ensure_connected();
  const std::uint64_t first_id = next_id_;
  std::size_t sent = 0;
  std::size_t received = 0;
  try {
    while (received < netlists.size()) {
      // Keep the window full before reading: the server reads request
      // frames continuously (its reactor never blocks on our pace), so a
      // blocking write here can only wait on the network, not deadlock.
      while (sent < netlists.size() && sent - received < window) {
        write_frame(fd_.get(), make_predict_frame(netlists[sent]), options_.timeout_ms);
        ++sent;
      }
      std::optional<Frame> response = read_frame(fd_.get(), options_.timeout_ms);
      if (!response) {
        errno = 0;
        throw Error("connection lost: server closed the connection mid-batch");
      }
      const std::uint64_t want = first_id + received;
      if (response->request_id != want) {
        throw Error("pipelined response id " + std::to_string(response->request_id) +
                    " arrived out of order (expected " + std::to_string(want) + ")");
      }
      BatchResult& result = results[received];
      if (response->type == MsgType::kError) {
        result.error = decode_error(response->payload);
      } else if (response->type == MsgType::kPredictOk) {
        result.payload = std::move(response->payload);
      } else {
        throw Error("unexpected response type " +
                    std::to_string(static_cast<unsigned>(response->type)));
      }
      ++received;
    }
  } catch (...) {
    fd_.reset();
    throw;
  }
  return results;
}

void Client::ping() {
  Frame request;
  request.type = MsgType::kPing;
  request.request_id = next_id_++;
  roundtrip(std::move(request), MsgType::kPong);
}

std::string Client::stats() {
  Frame request;
  request.type = MsgType::kStats;
  request.request_id = next_id_++;
  return roundtrip(std::move(request), MsgType::kStatsOk).payload;
}

}  // namespace caml::serve
