#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/net.hpp"

namespace caml::serve {

struct ClientOptions {
  /// Unix-domain socket path; when empty, connects to host:port TCP.
  std::string socket_path;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Round-trip deadline per request (send + predict + receive).
  int timeout_ms = 30000;
  int connect_timeout_ms = 5000;
  /// Extra attempts after a lost connection (reset / refused / EOF).
  /// Safe because inference is pure: replaying a request cannot change
  /// server state. Structured server errors other than OVERLOADED are
  /// never retried.
  int retries = 1;
  /// Backoff before attempt k is backoff_ms * k.
  int backoff_ms = 100;
  /// Total sleep budget for retrying OVERLOADED rejects. Each retry
  /// waits the server's retry_after_ms hint (falling back to the
  /// connection-loss backoff when the hint is 0) and retries persist
  /// until the next wait would exceed this budget, at which point the
  /// RemoteError propagates. 0 disables overload retries entirely.
  int overload_retry_budget_ms = 1000;
};

/// A structured error answered by the server (kError frame). code()
/// distinguishes NO_GROUP (route the cell to conventional generation)
/// from OVERLOADED (back off retry_after_ms and retry) from the rest.
class RemoteError : public Error {
 public:
  explicit RemoteError(const ErrorBody& body)
      : Error(std::string(error_code_name(body.code)) + ": " + body.message),
        code_(body.code),
        retry_after_ms_(body.retry_after_ms) {}

  ErrorCode code() const { return code_; }
  std::uint32_t retry_after_ms() const { return retry_after_ms_; }

 private:
  ErrorCode code_;
  std::uint32_t retry_after_ms_;
};

/// Outcome of one request inside a pipelined predict_cells() batch.
/// Structured per-request errors (NO_GROUP, parse errors, overload) land
/// here instead of throwing, so one bad cell never voids its batchmates.
struct BatchResult {
  std::string payload;             ///< `.camodel` text when ok()
  std::optional<ErrorBody> error;  ///< the structured kError otherwise

  bool ok() const { return !error.has_value(); }
};

/// Blocking client for the caml inference service. Connects lazily on
/// the first request and keeps the connection alive across requests
/// (the server closes idle connections; the client reconnects
/// transparently, with one retry + backoff on connection loss).
/// Not thread-safe: use one Client per thread.
class Client {
 public:
  explicit Client(ClientOptions options) : options_(std::move(options)) {}

  /// Predicts the CA model of the single .SUBCKT in `netlist_text`.
  /// Returns the `.camodel` text. Throws RemoteError on structured
  /// server errors, caml::Error on transport failure.
  std::string predict_cell(const std::string& netlist_text);

  /// Pipelined batch predict: keeps up to `window` requests in flight on
  /// one connection and reads responses in request order (the server
  /// guarantees in-order delivery per connection, and coalesces the
  /// pipelined requests into cross-connection compute batches). Results
  /// come back in input order; per-request failures are returned, not
  /// thrown. Throws caml::Error only on transport failure, which voids
  /// the whole batch (no mid-batch replay — callers resubmit).
  std::vector<BatchResult> predict_cells(const std::vector<std::string>& netlists,
                                         std::size_t window = 64);

  /// Liveness probe (kPing/kPong round trip).
  void ping();

  /// Fetches the server's unified observability snapshot (kStats): the
  /// process-wide metrics registry rendered as Prometheus-compatible
  /// text exposition.
  std::string stats();

  void close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }

 private:
  void ensure_connected();
  Frame roundtrip(MsgType request_type, const std::string& payload, MsgType expected_type);

  ClientOptions options_;
  Fd fd_;
  std::uint64_t next_id_ = 1;
};

}  // namespace caml::serve
