#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/net.hpp"

namespace caml::serve {

struct ClientOptions {
  /// Unix-domain socket path; when empty, connects to host:port TCP.
  std::string socket_path;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Round-trip deadline per request (send + predict + receive).
  int timeout_ms = 30000;
  int connect_timeout_ms = 5000;
  /// Extra attempts after a lost connection (reset / refused / EOF).
  /// Safe because inference is pure: replaying a request cannot change
  /// server state. Structured server errors other than OVERLOADED are
  /// never retried.
  int retries = 1;
  /// Backoff before attempt k is backoff_ms * k.
  int backoff_ms = 100;
  /// Total sleep budget for retrying OVERLOADED rejects. Retries wait
  /// an exponentially growing, jittered backoff (see
  /// overload_backoff_ms; the server's retry_after_ms hint is the
  /// floor) and persist until the next wait would exceed this budget,
  /// at which point the RemoteError propagates. 0 disables overload
  /// retries entirely.
  int overload_retry_budget_ms = 1000;
  /// Cap on one overload backoff sleep, before jitter.
  int overload_backoff_cap_ms = 2000;
  /// Seed for the deterministic backoff jitter; 0 derives a per-client
  /// seed from the pid and a process-local counter, so a fleet of
  /// clients restarted together decorrelates instead of re-stampeding
  /// the server in lockstep.
  std::uint64_t retry_seed = 0;
  /// Per-request compute deadline shipped to the server (protocol v2):
  /// when > 0, predict requests carry this budget and the server sheds
  /// them with DEADLINE_EXCEEDED instead of computing answers nobody is
  /// waiting for. 0 sends plain v1 frames (compatible with old servers).
  std::uint32_t deadline_ms = 0;
};

/// Backoff before overload retry `attempt` (0-based): exponential from
/// max(hint, base) doubling per attempt, capped at `cap_ms`, then
/// stretched by a deterministic jitter factor in [1, 2) drawn from
/// splitmix64(seed, attempt). The server's hint stays a hard floor —
/// jitter only ever waits longer, never hammers the server earlier than
/// asked. Pure function of its arguments, so retry schedules are
/// reproducible per seed and provably decorrelated across seeds
/// (tests/serve_test.cpp).
int overload_backoff_ms(std::uint64_t seed, int attempt, int hint_ms, int base_ms,
                        int cap_ms);

/// A structured error answered by the server (kError frame). code()
/// distinguishes NO_GROUP (route the cell to conventional generation)
/// from OVERLOADED (back off retry_after_ms and retry) from the rest.
class RemoteError : public Error {
 public:
  explicit RemoteError(const ErrorBody& body)
      : Error(std::string(error_code_name(body.code)) + ": " + body.message),
        code_(body.code),
        retry_after_ms_(body.retry_after_ms) {}

  ErrorCode code() const { return code_; }
  std::uint32_t retry_after_ms() const { return retry_after_ms_; }

 private:
  ErrorCode code_;
  std::uint32_t retry_after_ms_;
};

/// Outcome of one request inside a pipelined predict_cells() batch.
/// Structured per-request errors (NO_GROUP, parse errors, overload) land
/// here instead of throwing, so one bad cell never voids its batchmates.
struct BatchResult {
  std::string payload;             ///< `.camodel` text when ok()
  std::optional<ErrorBody> error;  ///< the structured kError otherwise

  bool ok() const { return !error.has_value(); }
};

/// Blocking client for the caml inference service. Connects lazily on
/// the first request and keeps the connection alive across requests
/// (the server closes idle connections; the client reconnects
/// transparently, with one retry + backoff on connection loss).
/// Not thread-safe: use one Client per thread.
class Client {
 public:
  explicit Client(ClientOptions options);

  /// Predicts the CA model of the single .SUBCKT in `netlist_text`.
  /// Returns the `.camodel` text. Throws RemoteError on structured
  /// server errors, caml::Error on transport failure.
  std::string predict_cell(const std::string& netlist_text);

  /// Pipelined batch predict: keeps up to `window` requests in flight on
  /// one connection and reads responses in request order (the server
  /// guarantees in-order delivery per connection, and coalesces the
  /// pipelined requests into cross-connection compute batches). Results
  /// come back in input order; per-request failures are returned, not
  /// thrown. Throws caml::Error only on transport failure, which voids
  /// the whole batch (no mid-batch replay — callers resubmit).
  std::vector<BatchResult> predict_cells(const std::vector<std::string>& netlists,
                                         std::size_t window = 64);

  /// Liveness probe (kPing/kPong round trip).
  void ping();

  /// Fetches the server's unified observability snapshot (kStats): the
  /// process-wide metrics registry rendered as Prometheus-compatible
  /// text exposition.
  std::string stats();

  void close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }

 private:
  void ensure_connected();
  Frame roundtrip(Frame request, MsgType expected_type);
  Frame make_predict_frame(const std::string& netlist_text);

  ClientOptions options_;
  Fd fd_;
  std::uint64_t next_id_ = 1;
  std::uint64_t retry_seed_ = 0;  ///< resolved from options at construction
};

}  // namespace caml::serve
