#include "serve/protocol.hpp"

#include "util/net.hpp"

namespace caml::serve {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "BAD_REQUEST";
    case ErrorCode::kUnsupportedVersion: return "UNSUPPORTED_VERSION";
    case ErrorCode::kParseError: return "PARSE_ERROR";
    case ErrorCode::kNoGroup: return "NO_GROUP";
    case ErrorCode::kOverloaded: return "OVERLOADED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxPayload) {
    throw ProtocolError("payload of " + std::to_string(frame.payload.size()) +
                        " bytes exceeds the " + std::to_string(kMaxPayload) + " byte limit");
  }
  std::string out;
  out.reserve(kHeaderSize + frame.payload.size());
  put_u32(out, kMagic);
  put_u16(out, frame.version);
  put_u16(out, static_cast<std::uint16_t>(frame.type));
  put_u64(out, frame.request_id);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

FrameHeader decode_header(const unsigned char* buf) {
  if (get_u32(buf) != kMagic) throw ProtocolError("bad magic");
  FrameHeader header;
  header.version = get_u16(buf + 4);
  header.type = static_cast<MsgType>(get_u16(buf + 6));
  header.request_id = get_u64(buf + 8);
  header.payload_size = get_u32(buf + 16);
  if (header.payload_size > kMaxPayload) {
    throw ProtocolError("payload length " + std::to_string(header.payload_size) +
                        " exceeds the " + std::to_string(kMaxPayload) + " byte limit");
  }
  return header;
}

Frame decode_frame(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    throw ProtocolError("truncated frame: " + std::to_string(bytes.size()) +
                        " bytes, need at least " + std::to_string(kHeaderSize));
  }
  const FrameHeader header =
      decode_header(reinterpret_cast<const unsigned char*>(bytes.data()));
  if (bytes.size() != kHeaderSize + header.payload_size) {
    throw ProtocolError("frame length mismatch: header says " +
                        std::to_string(header.payload_size) + " payload bytes, buffer has " +
                        std::to_string(bytes.size() - kHeaderSize));
  }
  Frame frame;
  frame.version = header.version;
  frame.type = header.type;
  frame.request_id = header.request_id;
  frame.payload.assign(bytes.substr(kHeaderSize));
  return frame;
}

void FrameAssembler::feed(const char* data, std::size_t n) {
  // Compact before growing: once everything buffered has been consumed
  // the copy is free, and a partially consumed buffer only compacts when
  // the dead prefix dominates — O(1) amortized either way.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

std::optional<Frame> FrameAssembler::next_frame() {
  const std::size_t avail = buf_.size() - pos_;
  if (!have_header_) {
    if (avail < kHeaderSize) return std::nullopt;
    header_ = decode_header(reinterpret_cast<const unsigned char*>(buf_.data() + pos_));
    have_header_ = true;
  }
  if (buf_.size() - pos_ < kHeaderSize + header_.payload_size) return std::nullopt;
  Frame frame;
  frame.version = header_.version;
  frame.type = header_.type;
  frame.request_id = header_.request_id;
  frame.payload.assign(buf_, pos_ + kHeaderSize, header_.payload_size);
  pos_ += kHeaderSize + header_.payload_size;
  have_header_ = false;
  return frame;
}

void FrameAssembler::reset() {
  buf_.clear();
  pos_ = 0;
  have_header_ = false;
}

std::string encode_error(const ErrorBody& body) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(body.code));
  put_u32(out, body.retry_after_ms);
  out += body.message;
  return out;
}

ErrorBody decode_error(std::string_view payload) {
  if (payload.size() < 8) throw ProtocolError("error payload shorter than its fixed fields");
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  ErrorBody body;
  body.code = static_cast<ErrorCode>(get_u32(p));
  body.retry_after_ms = get_u32(p + 4);
  body.message.assign(payload.substr(8));
  return body;
}

std::string encode_predict_payload(std::uint32_t deadline_ms, std::string_view netlist) {
  std::string out;
  out.reserve(4 + netlist.size());
  put_u32(out, deadline_ms);
  out.append(netlist);
  return out;
}

PredictPayload split_predict_payload(std::uint16_t version, std::string payload) {
  PredictPayload out;
  if (version < kProtocolVersionDeadline) {
    out.netlist = std::move(payload);
    return out;
  }
  if (payload.size() < 4) {
    throw ProtocolError("v2 predict payload shorter than its deadline field");
  }
  out.deadline_ms = get_u32(reinterpret_cast<const unsigned char*>(payload.data()));
  out.netlist = payload.substr(4);
  return out;
}

std::optional<Frame> read_frame(int fd, int timeout_ms) {
  unsigned char header_buf[kHeaderSize];
  if (!read_exact(fd, header_buf, kHeaderSize, timeout_ms)) return std::nullopt;
  const FrameHeader header = decode_header(header_buf);
  Frame frame;
  frame.version = header.version;
  frame.type = header.type;
  frame.request_id = header.request_id;
  frame.payload.resize(header.payload_size);
  if (header.payload_size > 0 &&
      !read_exact(fd, frame.payload.data(), frame.payload.size(), timeout_ms)) {
    throw Error("connection lost: EOF inside frame payload");
  }
  return frame;
}

void write_frame(int fd, const Frame& frame, int timeout_ms) {
  const std::string bytes = encode_frame(frame);
  write_all(fd, bytes.data(), bytes.size(), timeout_ms);
}

}  // namespace caml::serve
