#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace caml::serve {

/// Wire format of the caml inference service: length-prefixed binary
/// frames, all integers little-endian.
///
///   offset  size  field
///        0     4  magic   "CAMQ" (0x51 0x4D 0x41 0x43 on the wire)
///        4     2  version (kProtocolVersion)
///        6     2  type    (MsgType)
///        8     8  request id (echoed verbatim in the response)
///       16     4  payload length (bytes; <= kMaxPayload)
///       20     n  payload
///
/// Request payloads: kPredictCell carries the UTF-8 SPICE/CDL text of
/// exactly one .SUBCKT. kPing and kStats carry nothing. Response
/// payloads: kPredictOk carries the predicted `.camodel` text; kError
/// carries an ErrorBody (see encode_error); kPong carries nothing;
/// kStatsOk carries the unified metrics snapshot as Prometheus-
/// compatible text exposition (see obs::MetricsSnapshot::to_text).
///
/// Version 2 ("deadline dialect") changes exactly one payload:
/// kPredictCell gains a 4-byte little-endian `deadline_ms` prefix (0 =
/// no deadline) before the netlist text, letting the server shed
/// requests whose client has already given up. Every other message is
/// identical in both versions and the server answers v1 and v2 clients
/// alike, so old clients are unaffected.
inline constexpr std::uint32_t kMagic = 0x514D4143u;  // "CAMQ" little-endian
inline constexpr std::uint16_t kProtocolVersion = 1;
/// The deadline dialect: kPredictCell payloads start with u32 deadline_ms.
inline constexpr std::uint16_t kProtocolVersionDeadline = 2;
/// Highest version the server speaks; anything above (or 0) is rejected
/// with kUnsupportedVersion.
inline constexpr std::uint16_t kMaxProtocolVersion = kProtocolVersionDeadline;
inline constexpr std::size_t kHeaderSize = 20;
/// Upper bound on a payload: large enough for any realistic cell netlist
/// or predicted model, small enough that a corrupt length field cannot
/// trigger a giant allocation.
inline constexpr std::uint32_t kMaxPayload = 16u << 20;

enum class MsgType : std::uint16_t {
  kPredictCell = 1,  ///< request: predict the CA model of one cell
  kPredictOk = 2,    ///< response: payload is the .camodel text
  kError = 3,        ///< response: payload is an ErrorBody
  kPing = 4,         ///< request: liveness / readiness probe
  kPong = 5,         ///< response to kPing
  kStats = 6,        ///< request: unified observability snapshot
  kStatsOk = 7,      ///< response: payload is the text exposition
};

/// Structured error codes carried in kError payloads.
enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,          ///< unknown message type / malformed payload
  kUnsupportedVersion = 2,  ///< frame version the server does not speak
  kParseError = 3,          ///< netlist payload failed to parse
  kNoGroup = 4,             ///< no trained model for the cell's group
  kOverloaded = 5,          ///< queue full; retry after retry_after_ms
  kInternal = 6,            ///< unexpected server-side failure
  kDeadlineExceeded = 7,    ///< request shed: its client deadline expired
};

const char* error_code_name(ErrorCode code);

/// Raised by decoders on malformed bytes (bad magic, oversized or
/// truncated frame). Distinct from caml::Error so the server can tell a
/// protocol violation (close the connection) from an I/O failure.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error("protocol: " + what) {}
};

/// One decoded frame. `payload` is raw bytes (text for this protocol's
/// payload types, but the framing layer does not care).
struct Frame {
  std::uint16_t version = kProtocolVersion;
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  std::string payload;
};

/// Decoded fixed-size header.
struct FrameHeader {
  std::uint16_t version = 0;
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  std::uint32_t payload_size = 0;
};

/// Serializes a frame (header + payload). Throws ProtocolError if the
/// payload exceeds kMaxPayload.
std::string encode_frame(const Frame& frame);

/// Decodes the 20-byte header. Throws ProtocolError on bad magic or a
/// payload length above kMaxPayload. Does NOT reject unknown versions —
/// the server must still read the frame to answer with
/// kUnsupportedVersion.
FrameHeader decode_header(const unsigned char* buf);

/// One-shot decode of a complete frame from a buffer (tests and simple
/// clients). Throws ProtocolError on bad magic, oversize, or when the
/// buffer is truncated or has trailing bytes.
Frame decode_frame(std::string_view bytes);

/// Incremental frame assembly for the event-loop server: feed() raw
/// bytes exactly as they come off a non-blocking socket and a complete
/// Frame pops out per fully buffered message, however the bytes were
/// fragmented (header split across reads, several pipelined frames in
/// one read). The internal buffer is retained across frames and —
/// via the server's connection pool — across connections, so
/// steady-state assembly stops allocating once it has grown to the
/// largest frame seen.
class FrameAssembler {
 public:
  /// Buffers `n` bytes. Call next_frame() until it returns nullopt to
  /// drain every message completed by this chunk. Throws ProtocolError
  /// on bad magic or an oversized declared length — framing on this
  /// connection is unrecoverable and it must be closed.
  void feed(const char* data, std::size_t n);

  /// Extracts the next complete frame, or nullopt when more bytes are
  /// needed.
  std::optional<Frame> next_frame();

  /// True while a message is mid-assembly (bytes buffered but not yet a
  /// complete frame) — the caller should arm its read deadline.
  bool has_partial() const { return pos_ < buf_.size() || have_header_; }

  /// Drops buffered state but keeps the buffer's capacity (connection
  /// reuse).
  void reset();

 private:
  std::string buf_;          ///< unconsumed bytes [pos_, size)
  std::size_t pos_ = 0;      ///< consumed prefix, compacted lazily
  bool have_header_ = false;
  FrameHeader header_;
};

/// Structured payload of a kError response.
struct ErrorBody {
  ErrorCode code = ErrorCode::kInternal;
  /// Backpressure hint: how long the client should wait before retrying
  /// (only meaningful for kOverloaded; 0 otherwise).
  std::uint32_t retry_after_ms = 0;
  std::string message;
};

std::string encode_error(const ErrorBody& body);
/// Throws ProtocolError if the payload is shorter than the fixed fields.
ErrorBody decode_error(std::string_view payload);

/// Decoded kPredictCell payload, version-independent.
struct PredictPayload {
  /// Client budget in milliseconds measured from server receipt; 0 means
  /// "no deadline" (the v1 behavior).
  std::uint32_t deadline_ms = 0;
  std::string netlist;
};

/// Encodes a v2 kPredictCell payload (deadline prefix + netlist). For
/// deadline_ms == 0 prefer a plain v1 frame whose payload is the bare
/// netlist — it keeps old servers compatible.
std::string encode_predict_payload(std::uint32_t deadline_ms, std::string_view netlist);

/// Splits a kPredictCell payload according to the frame's version:
/// v1 payloads are the bare netlist, v2 payloads carry the deadline
/// prefix. Throws ProtocolError when a v2 payload is shorter than its
/// fixed field.
PredictPayload split_predict_payload(std::uint16_t version, std::string payload);

/// Reads one frame from `fd`. Returns nullopt on clean EOF between
/// frames (peer closed). Throws ProtocolError on malformed bytes and
/// caml::Error on I/O failure or timeout.
std::optional<Frame> read_frame(int fd, int timeout_ms);

/// Writes one frame to `fd`. Throws caml::Error on I/O failure/timeout.
void write_frame(int fd, const Frame& frame, int timeout_ms);

}  // namespace caml::serve
