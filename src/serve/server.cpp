#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include <algorithm>

#include "camodel/model_io.hpp"
#include "netlist/spice_parser.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/timing.hpp"

namespace caml::serve {

namespace {

/// Waits for the connection to turn readable, or for the stop pipe to
/// fire, or for the idle timeout. Returns true only when request bytes
/// are pending.
bool wait_request_or_stop(int conn_fd, int stop_fd, int timeout_ms) {
  struct pollfd p[2];
  p[0] = {conn_fd, POLLIN, 0};
  p[1] = {stop_fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(p, 2, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) return false;                          // idle timeout
    if (p[0].revents & (POLLIN | POLLHUP)) return true; // request (or EOF to read)
    return false;                                       // stop pipe fired
  }
}

Frame error_frame(std::uint64_t request_id, ErrorCode code, const std::string& message,
                  std::uint32_t retry_after_ms = 0) {
  Frame frame;
  frame.type = MsgType::kError;
  frame.request_id = request_id;
  frame.payload = encode_error(ErrorBody{code, retry_after_ms, message});
  return frame;
}

}  // namespace

Server::Server(GroupModelStore store, ServerOptions options)
    : store_(std::make_shared<const GroupModelStore>(std::move(store))),
      options_(std::move(options)) {}

Server::~Server() { stop(); }

std::shared_ptr<const GroupModelStore> Server::store_snapshot() const {
  std::lock_guard<std::mutex> lock(store_mutex_);
  return store_;
}

void Server::reload(GroupModelStore store) {
  auto fresh = std::make_shared<const GroupModelStore>(std::move(store));
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    store_.swap(fresh);
  }
  stats_.record_reload();
  log_info() << "model store reloaded: " << store_snapshot()->num_groups()
             << " group models now serving";
}

void Server::start() {
  CAML_ASSERT(!started_);
  stop_pipe_ = make_pipe();
  if (!options_.socket_path.empty()) {
    listener_ = listen_unix(options_.socket_path);
  } else {
    listener_ = listen_tcp(options_.tcp_port);
    bound_port_ = local_port(listener_.get());
  }
  // Non-blocking listener: poll() readiness can be stale (aborted
  // handshake), and the acceptor must never block inside accept().
  ::fcntl(listener_.get(), F_SETFL, ::fcntl(listener_.get(), F_GETFL) | O_NONBLOCK);

  const std::size_t jobs = resolve_jobs(options_.jobs);
  pool_ = std::make_unique<ThreadPool>(jobs);
  worker_futures_.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    worker_futures_.push_back(pool_->submit([this] { worker_loop(); }));
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  started_ = true;
  log_info() << "serving " << store_snapshot()->num_groups() << " group models on "
             << (options_.socket_path.empty()
                     ? "tcp 127.0.0.1:" + std::to_string(bound_port_)
                     : options_.socket_path)
             << " (" << jobs << " workers, queue " << options_.max_queue << ")";
}

void Server::stop() {
  if (!started_ || stopped_) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_ = true;
  }
  // Closing the write end raises POLLHUP on the read end for every
  // poller at once — acceptor and idle workers wake immediately.
  stop_pipe_.wr.reset();
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  queue_cv_.notify_all();
  for (std::future<void>& f : worker_futures_) {
    try {
      f.get();
    } catch (const std::exception& e) {
      log_error() << "serve worker died: " << e.what();
    }
  }
  worker_futures_.clear();
  pool_.reset();
  listener_.reset();
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
  stopped_ = true;
}

void Server::acceptor_loop() {
  for (;;) {
    struct pollfd p[2];
    p[0] = {listener_.get(), POLLIN, 0};
    p[1] = {stop_pipe_.rd.get(), POLLIN, 0};
    const int rc = ::poll(p, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      log_error() << "serve acceptor poll failed; shutting down acceptor";
      return;
    }
    if (p[1].revents != 0 || draining_) return;
    if ((p[0].revents & POLLIN) == 0) continue;
    Fd conn;
    try {
      conn = accept_connection(listener_.get());
    } catch (const Error& e) {
      log_warn() << "accept failed: " << e.what();
      continue;
    }
    if (!conn) continue;
    stats_.record_connection();
    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.size() >= options_.max_queue) {
        reject = true;
      } else {
        pending_.push_back(std::move(conn));
        stats_.update_queue_depth(pending_.size());
      }
    }
    if (reject) {
      reject_overloaded(std::move(conn));
    } else {
      queue_cv_.notify_one();
    }
  }
}

void Server::reject_overloaded(Fd conn) {
  stats_.record_reject();
  // Best-effort reject: the request was never read, so the id is 0. A
  // short write deadline keeps a slow client from stalling the acceptor.
  const int timeout = std::min(options_.write_timeout_ms, 250);
  try {
    write_frame(conn.get(), error_frame(0, ErrorCode::kOverloaded,
                                        "request queue full; retry after " +
                                            std::to_string(options_.retry_after_ms) + " ms",
                                        options_.retry_after_ms),
                timeout);
    // The client has usually written its request already; closing with
    // unread bytes in the receive buffer turns into an RST that can
    // destroy the reject frame before the client reads it. Half-close
    // and drain (bounded by the same short deadline) so the frame
    // arrives ahead of a clean FIN and the retry-after hint is actually
    // delivered.
    ::shutdown(conn.get(), SHUT_WR);
    char sink[4096];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout);
    while (wait_readable(conn.get(), 50)) {
      if (::read(conn.get(), sink, sizeof sink) <= 0) break;
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
  } catch (const Error&) {
    // Client gone or unwritable — it was being rejected anyway.
  }
}

void Server::worker_loop() {
  for (;;) {
    Fd conn;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return draining_.load() || !pending_.empty(); });
      if (pending_.empty()) return;  // draining and fully drained
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    handle_connection(std::move(conn));
  }
}

void Server::handle_connection(Fd conn) {
  for (;;) {
    if (!wait_request_or_stop(conn.get(), stop_pipe_.rd.get(), options_.idle_timeout_ms)) {
      return;  // idle timeout or shutdown while between requests
    }
    std::optional<Frame> request;
    try {
      request = read_frame(conn.get(), options_.read_timeout_ms);
    } catch (const ProtocolError& e) {
      // Malformed bytes: framing is unrecoverable on this connection.
      // Answer best-effort and close; the server itself keeps serving.
      log_warn() << "closing connection on malformed frame: " << e.what();
      stats_.record_error();
      try {
        write_frame(conn.get(), error_frame(0, ErrorCode::kBadRequest, e.what()),
                    options_.write_timeout_ms);
      } catch (const Error&) {
      }
      return;
    } catch (const Error& e) {
      log_warn() << "dropping connection: " << e.what();
      return;
    }
    if (!request) return;  // clean EOF

    const Stopwatch watch;
    Frame response;
    CAML_TRACE_SPAN("serve_request");
    const bool keep_open = handle_request(*request, response);
    try {
      write_frame(conn.get(), response, options_.write_timeout_ms);
    } catch (const Error& e) {
      log_warn() << "response write failed: " << e.what();
      return;
    }
    stats_.record_latency_us(watch.elapsed_us());
    if (!keep_open) return;
  }
}

bool Server::handle_request(const Frame& request, Frame& response) {
  if (request.version != kProtocolVersion) {
    stats_.record_error();
    response = error_frame(request.request_id, ErrorCode::kUnsupportedVersion,
                           "server speaks protocol version " +
                               std::to_string(kProtocolVersion) + ", request carried " +
                               std::to_string(request.version));
    return false;  // later frames of an unknown dialect are untrustworthy
  }
  switch (request.type) {
    case MsgType::kPing: {
      stats_.record_ping();
      response.type = MsgType::kPong;
      response.request_id = request.request_id;
      return true;
    }
    case MsgType::kPredictCell:
      response = predict_response(request);
      return true;
    case MsgType::kStats: {
      // Unified snapshot: every subsystem's caml_* metrics (serve, pool,
      // flows, forests) from the process-wide registry.
      stats_.record_stats_request();
      response.type = MsgType::kStatsOk;
      response.request_id = request.request_id;
      response.payload = obs::Registry::global().snapshot().to_text();
      return true;
    }
    default: {
      stats_.record_error();
      response = error_frame(request.request_id, ErrorCode::kBadRequest,
                             "unknown message type " +
                                 std::to_string(static_cast<unsigned>(request.type)));
      return true;
    }
  }
}

Frame Server::predict_response(const Frame& request) {
  const std::uint64_t id = request.request_id;
  // One snapshot per request: has_group and predict must consult the
  // same store even if a SIGHUP reload swaps it mid-request.
  const std::shared_ptr<const GroupModelStore> store = store_snapshot();
  try {
    const std::vector<Cell> cells = SpiceParser().parse_string(request.payload);
    if (cells.size() != 1) {
      stats_.record_error();
      return error_frame(id, ErrorCode::kBadRequest,
                         "expected exactly one .SUBCKT per request, got " +
                             std::to_string(cells.size()));
    }
    const Cell& cell = cells.front();
    const GroupKey key{cell.num_inputs(), cell.num_transistors()};
    if (!store->has_group(key)) {
      stats_.record_error();
      return error_frame(id, ErrorCode::kNoGroup,
                         "no trained model for group (" + std::to_string(key.num_inputs) +
                             " inputs, " + std::to_string(key.num_transistors) +
                             " transistors); cell " + cell.name() +
                             " needs conventional generation");
    }
    const CanonicalCell canonical = canonicalize(cell);
    const CaModel predicted = store->predict(
        cell, canonical, options_.policy.policy_for(cell.num_inputs()), SimConfig{});
    Frame response;
    response.type = MsgType::kPredictOk;
    response.request_id = id;
    response.payload = ca_model_to_string(predicted, cell);
    stats_.record_ok(1, predicted.defects.size() * predicted.stimuli.size());
    return response;
  } catch (const ParseError& e) {
    stats_.record_error();
    return error_frame(id, ErrorCode::kParseError, e.what());
  } catch (const Error& e) {
    stats_.record_error();
    log_warn() << "prediction failed: " << e.what();
    return error_frame(id, ErrorCode::kInternal, e.what());
  }
}

}  // namespace caml::serve
