#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timing.hpp"

namespace caml::serve {

namespace {

/// Cap on bytes read from one connection per reactor round, so a
/// flooding client cannot starve its neighbours inside one poll cycle.
constexpr std::size_t kReadBudgetPerRound = 256 * 1024;
/// How long a half-closed connection is drained (discarding unread
/// request bytes) so the final frame arrives ahead of a clean FIN
/// instead of being destroyed by an RST.
constexpr std::int64_t kHalfCloseDrainUs = 250'000;

Frame error_frame(std::uint64_t request_id, ErrorCode code, const std::string& message,
                  std::uint32_t retry_after_ms = 0) {
  Frame frame;
  frame.type = MsgType::kError;
  frame.request_id = request_id;
  frame.payload = encode_error(ErrorBody{code, retry_after_ms, message});
  return frame;
}

}  // namespace

/// Per-connection reactor state. The frame-assembly and output buffers
/// are the expensive parts; closed Connection objects park in the
/// server's pool and are recycled (capacity intact) by the next accept.
struct Server::Connection {
  /// One encoded response waiting for (or mid-way through) the wire.
  struct OutFrame {
    std::string bytes;
    /// Decode timestamp of the request this answers; -1 for frames that
    /// answer no readable request (overload rejects, malformed-frame
    /// errors) — those never feed the latency histogram.
    std::int64_t started_us = -1;
  };

  Fd fd;
  std::uint64_t id = 0;
  bool admitted = true;  ///< false: overload-rejected at accept, never read
  FrameAssembler assembler;

  std::deque<OutFrame> out;   ///< in-order responses, front partially written
  std::size_t out_off = 0;    ///< bytes of out.front() already on the wire
  std::uint64_t next_seq = 0;        ///< sequence assigned to the next decoded request
  std::uint64_t next_flush_seq = 0;  ///< next sequence allowed onto the wire
  std::map<std::uint64_t, OutFrame> reorder;  ///< completed out of order

  std::size_t inflight = 0;  ///< decoded predicts awaiting the compute plane
  bool close_after_flush = false;
  bool draining_reads = false;  ///< write side shut; discarding input until EOF
  bool read_eof = false;

  std::int64_t idle_deadline_us = 0;
  std::int64_t read_deadline_us = -1;   ///< armed while a frame is partial
  std::int64_t write_deadline_us = -1;  ///< armed while output is queued
  std::int64_t drain_deadline_us = -1;  ///< armed while draining_reads

  bool quiet() const { return inflight == 0 && out.empty() && reorder.empty(); }

  void recycle() {
    fd.reset();
    id = 0;
    admitted = true;
    assembler.reset();
    out.clear();
    out_off = 0;
    next_seq = 0;
    next_flush_seq = 0;
    reorder.clear();
    inflight = 0;
    close_after_flush = false;
    draining_reads = false;
    read_eof = false;
    read_deadline_us = -1;
    write_deadline_us = -1;
    drain_deadline_us = -1;
  }
};

Server::Server(std::shared_ptr<const ModelStore> store, ServerOptions options)
    : store_(std::move(store)), options_(std::move(options)) {
  CAML_ASSERT(store_ != nullptr);
}

Server::Server(GroupModelStore store, ServerOptions options)
    : Server(std::make_shared<const GroupModelStore>(std::move(store)),
             std::move(options)) {}

Server::~Server() { stop(); }

std::shared_ptr<const ModelStore> Server::store_snapshot() const {
  std::lock_guard<std::mutex> lock(store_mutex_);
  return store_;
}

void Server::record_sojourn_locked(std::int64_t sojourn_us) {
  const std::uint32_t clamped = static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(sojourn_us, 0, std::numeric_limits<std::uint32_t>::max()));
  sojourn_ring_[sojourn_count_ % sojourn_ring_.size()] = clamped;
  ++sojourn_count_;
}

bool Server::sojourn_over_target_locked() {
  if (options_.sojourn_target_ms <= 0) return false;
  const std::size_t n = std::min(sojourn_count_, sojourn_ring_.size());
  // Too few samples to call a percentile — a cold server must not shed.
  if (n < 8) return false;
  std::array<std::uint32_t, 128> window;
  std::copy_n(sojourn_ring_.begin(), n, window.begin());
  const std::size_t rank = (99 * (n - 1)) / 100;
  std::nth_element(window.begin(), window.begin() + rank, window.begin() + n);
  const std::uint32_t p99_us = window[rank];
  stats_.update_sojourn_p99(p99_us);
  return p99_us > static_cast<std::uint64_t>(options_.sojourn_target_ms) * 1000;
}

void Server::reload(std::shared_ptr<const ModelStore> store) {
  CAML_ASSERT(store != nullptr);
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    // The outgoing store becomes the recovery fallback — unless it is
    // the one being replaced BECAUSE it faulted.
    if (!store_faulted_ && store_ != store) last_good_ = store_;
    store_faulted_ = false;
    store_.swap(store);
  }
  stats_.record_reload();
  log_info() << "model store reloaded: " << store_snapshot()->num_groups()
             << " group models now serving";
}

void Server::handle_store_fault(const std::shared_ptr<const ModelStore>& faulted) {
  stats_.record_store_fault();
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    if (store_ != faulted) return;  // another worker already recovered
    store_faulted_ = true;
  }
  // Re-open from the source of truth off the store lock (disk I/O).
  std::shared_ptr<const ModelStore> fresh;
  if (refresh_) {
    try {
      fresh = refresh_();
    } catch (const std::exception& e) {
      log_error() << "store refresh after fault failed: " << e.what();
    }
  }
  if (fresh != nullptr) {
    log_warn() << "store fault: refreshed the model store from disk";
    reload(std::move(fresh));
    return;
  }
  std::shared_ptr<const ModelStore> fallback;
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    if (store_ != faulted) return;  // recovered concurrently after all
    if (last_good_ != nullptr && last_good_ != faulted) fallback = last_good_;
  }
  if (fallback != nullptr) {
    log_warn() << "store fault: no refresh available, serving the last-good snapshot";
    reload(std::move(fallback));
    return;
  }
  // Nothing to swap to: keep serving (requests against the faulted
  // snapshot keep failing INTERNAL; the guard keeps the process alive
  // until a SIGHUP reload brings a good store).
  log_error() << "store fault: no replacement store available; serving degraded";
}

void Server::reload(GroupModelStore store) {
  reload(std::make_shared<const GroupModelStore>(std::move(store)));
}

void Server::start() {
  CAML_ASSERT(!started_);
  stop_pipe_ = make_pipe();
  wake_pipe_ = make_pipe();
  if (!options_.socket_path.empty()) {
    listener_ = listen_unix(options_.socket_path);
  } else {
    listener_ = listen_tcp(options_.tcp_port);
    bound_port_ = local_port(listener_.get());
  }
  // Non-blocking listener: poll() readiness can be stale (aborted
  // handshake), and the reactor must never block inside accept(). The
  // fcntl result is checked — a silently blocking listener would stall
  // the whole event loop on one accept.
  set_nonblocking(listener_.get(), true, "serve listener");

  worker_count_ = resolve_jobs(options_.jobs);
  read_scratch_.resize(64 * 1024);
  pool_ = std::make_unique<ThreadPool>(worker_count_);
  worker_futures_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    worker_futures_.push_back(pool_->submit([this] { worker_loop(); }));
  }
  reactor_ = std::thread([this] { reactor_loop(); });
  started_ = true;
  log_info() << "serving " << store_snapshot()->num_groups() << " group models on "
             << (options_.socket_path.empty()
                     ? "tcp 127.0.0.1:" + std::to_string(bound_port_)
                     : options_.socket_path)
             << " (event loop + " << worker_count_ << " compute workers, batch "
             << options_.max_batch << ", queue " << options_.max_queue << ")";
}

void Server::stop() {
  if (!started_ || stopped_) return;
  draining_ = true;
  // Closing the write end raises POLLHUP on the read end: the reactor
  // wakes, stops accepting, and drains in-flight work bounded by
  // idle_timeout_ms.
  stop_pipe_.wr.reset();
  if (reactor_.joinable()) reactor_.join();
  {
    // The reactor is gone: responses to still-queued requests have no
    // reader, so the backlog is dropped rather than computed into the
    // void. In-flight batches finish on their own.
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_draining_ = true;
    job_queue_.clear();
    stats_.update_predict_backlog(0);
  }
  jobs_cv_.notify_all();
  for (std::future<void>& f : worker_futures_) {
    try {
      f.get();
    } catch (const std::exception& e) {
      log_error() << "serve worker died: " << e.what();
    }
  }
  worker_futures_.clear();
  pool_.reset();
  listener_.reset();
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
  stopped_ = true;
}

// ---------------------------------------------------------------------------
// Compute plane

void Server::worker_loop() {
  for (;;) {
    std::vector<PredictJob> batch;
    std::vector<PredictOutcome> shed;
    std::vector<std::int64_t> sojourns;
    std::size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(jobs_mutex_);
      jobs_cv_.wait(lock, [this] { return jobs_draining_ || !job_queue_.empty(); });
      if (job_queue_.empty()) return;  // draining and fully drained
      const std::size_t n = std::min(job_queue_.size(), std::max<std::size_t>(
                                                            options_.max_batch, 1));
      const std::int64_t now = monotonic_us();
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        PredictJob job = std::move(job_queue_.front());
        job_queue_.pop_front();
        record_sojourn_locked(now - job.enqueued_us);
        sojourns.push_back(now - job.enqueued_us);
        if (job.deadline_us >= 0 && now >= job.deadline_us) {
          // The client's deadline already passed while the job queued:
          // computing the answer would be pure waste — shed it with a
          // structured DEADLINE_EXCEEDED instead.
          PredictOutcome out;
          out.kind = PredictOutcome::Kind::kShed;
          out.conn_id = job.conn_id;
          out.seq = job.seq;
          out.enqueued_us = -1;  // sheds never feed the latency histogram
          out.response = error_frame(job.request_id, ErrorCode::kDeadlineExceeded,
                                     "deadline expired after " +
                                         std::to_string((now - job.enqueued_us) / 1000) +
                                         " ms in queue; request shed before compute");
          shed.push_back(std::move(out));
        } else {
          batch.push_back(std::move(job));
        }
      }
      popped = n;
      jobs_inflight_ += popped;
      stats_.update_predict_backlog(job_queue_.size());
    }
    for (const std::int64_t s : sojourns) stats_.record_sojourn_us(s);

    std::vector<PredictOutcome> outcomes;
    if (!batch.empty()) {
      stats_.record_batch(batch.size());
      const std::shared_ptr<const ModelStore> snap = store_snapshot();
      if (!snap->healthy()) {
        // Backing storage changed under the mapping (size revalidation
        // failed): answers would be garbage or SIGBUS. Fail the batch
        // up front and trigger recovery.
        for (PredictJob& job : batch) {
          PredictOutcome out;
          out.kind = PredictOutcome::Kind::kError;
          out.store_fault = true;
          out.conn_id = job.conn_id;
          out.seq = job.seq;
          out.enqueued_us = job.enqueued_us;
          out.response = error_frame(job.request_id, ErrorCode::kInternal,
                                     "model store backing file changed under the mapping");
          outcomes.push_back(std::move(out));
        }
      } else {
        outcomes = answer_predict_batch(*snap, options_.policy, std::move(batch));
      }
      bool faulted = false;
      for (const PredictOutcome& o : outcomes) {
        if (o.store_fault) faulted = true;
        switch (o.kind) {
          case PredictOutcome::Kind::kOk: stats_.record_ok(1, o.rows_classified); break;
          case PredictOutcome::Kind::kNoGroup: stats_.record_no_group(); break;
          case PredictOutcome::Kind::kError: stats_.record_error(); break;
          case PredictOutcome::Kind::kShed: stats_.record_shed_expired(); break;
        }
      }
      if (faulted) handle_store_fault(snap);
    }
    for (PredictOutcome& o : shed) {
      stats_.record_shed_expired();
      outcomes.push_back(std::move(o));
    }
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_.insert(done_.end(), std::make_move_iterator(outcomes.begin()),
                   std::make_move_iterator(outcomes.end()));
    }
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_inflight_ -= popped;
    }
    // Wake the reactor. A full pipe means wakeups are already pending —
    // EAGAIN is success here.
    const char byte = 0;
    [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_.wr.get(), &byte, 1);
  }
}

// ---------------------------------------------------------------------------
// Connection plane (reactor thread)

void Server::publish_queue_depth() {
  const std::size_t depth = admitted_ > worker_count_ ? admitted_ - worker_count_ : 0;
  stats_.update_queue_depth(depth);
}

void Server::enqueue_response(Connection& conn, std::uint64_t seq, Frame frame,
                              std::int64_t started_us) {
  enqueue_encoded(conn, seq, encode_frame(frame), started_us);
}

void Server::enqueue_encoded(Connection& conn, std::uint64_t seq, std::string bytes,
                             std::int64_t started_us) {
  Connection::OutFrame out{std::move(bytes), started_us};
  if (seq != conn.next_flush_seq) {
    // Completed out of request order (a later pipelined request finished
    // in an earlier batch): hold it until its turn so the wire carries
    // responses in request order.
    conn.reorder.emplace(seq, std::move(out));
    return;
  }
  const bool was_empty = conn.out.empty();
  conn.out.push_back(std::move(out));
  ++conn.next_flush_seq;
  for (auto it = conn.reorder.begin();
       it != conn.reorder.end() && it->first == conn.next_flush_seq;
       it = conn.reorder.erase(it)) {
    conn.out.push_back(std::move(it->second));
    ++conn.next_flush_seq;
  }
  if (was_empty) {
    conn.write_deadline_us =
        monotonic_us() + static_cast<std::int64_t>(options_.write_timeout_ms) * 1000;
    // Try the wire immediately — most responses fit the socket buffer
    // and never wait for the next poll round.
    handle_writable(conn);
  }
}

void Server::dispatch_frame(Connection& conn, Frame frame) {
  const std::int64_t now = monotonic_us();
  conn.idle_deadline_us = now + static_cast<std::int64_t>(options_.idle_timeout_ms) * 1000;
  const std::uint64_t seq = conn.next_seq++;

  if (frame.version == 0 || frame.version > kMaxProtocolVersion) {
    stats_.record_error();
    enqueue_response(conn, seq,
                     error_frame(frame.request_id, ErrorCode::kUnsupportedVersion,
                                 "server speaks protocol versions 1-" +
                                     std::to_string(kMaxProtocolVersion) +
                                     ", request carried " + std::to_string(frame.version)),
                     now);
    conn.close_after_flush = true;  // later frames of an unknown dialect are untrustworthy
    return;
  }
  switch (frame.type) {
    case MsgType::kPing: {
      stats_.record_ping();
      Frame pong;
      pong.type = MsgType::kPong;
      pong.request_id = frame.request_id;
      enqueue_response(conn, seq, std::move(pong), now);
      return;
    }
    case MsgType::kStats: {
      // Unified snapshot: every subsystem's caml_* metrics (serve, pool,
      // flows, forests) from the process-wide registry.
      stats_.record_stats_request();
      Frame response;
      response.type = MsgType::kStatsOk;
      response.request_id = frame.request_id;
      response.payload = obs::Registry::global().snapshot().to_text();
      enqueue_response(conn, seq, std::move(response), now);
      return;
    }
    case MsgType::kPredictCell: {
      PredictPayload req;
      try {
        req = split_predict_payload(frame.version, std::move(frame.payload));
      } catch (const ProtocolError& e) {
        stats_.record_error();
        enqueue_response(conn, seq,
                         error_frame(frame.request_id, ErrorCode::kBadRequest, e.what()),
                         now);
        return;
      }
      bool queue_full = false;
      bool latency_shed = false;
      {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        if (job_queue_.size() >= options_.max_pending_predicts) {
          queue_full = true;  // hard memory bound, checked first
        } else if (sojourn_over_target_locked()) {
          // Latency-signal shedding: the queue's recent p99 sojourn
          // already exceeds the target, so this request would most
          // likely expire in line. Turn it away while it is still
          // cheap — before it costs queue memory and compute.
          latency_shed = true;
        } else {
          PredictJob job;
          job.conn_id = conn.id;
          job.seq = seq;
          job.request_id = frame.request_id;
          job.netlist = std::move(req.netlist);
          job.enqueued_us = now;
          if (req.deadline_ms > 0) {
            job.deadline_us = now + static_cast<std::int64_t>(req.deadline_ms) * 1000;
          }
          job_queue_.push_back(std::move(job));
          stats_.update_predict_backlog(job_queue_.size());
        }
      }
      if (queue_full || latency_shed) {
        // Request-level backpressure: the connection survives, only this
        // request is asked to come back later.
        if (latency_shed) {
          stats_.record_shed_overload();
        } else {
          stats_.record_reject();
        }
        enqueue_response(conn, seq,
                         error_frame(frame.request_id, ErrorCode::kOverloaded,
                                     std::string(latency_shed ? "queue sojourn p99 over "
                                                                "target; retry after "
                                                              : "request queue full; "
                                                                "retry after ") +
                                         std::to_string(options_.retry_after_ms) + " ms",
                                     options_.retry_after_ms),
                         -1);
        return;
      }
      ++conn.inflight;
      jobs_cv_.notify_one();
      return;
    }
    default: {
      stats_.record_error();
      enqueue_response(conn, seq,
                       error_frame(frame.request_id, ErrorCode::kBadRequest,
                                   "unknown message type " +
                                       std::to_string(static_cast<unsigned>(frame.type))),
                       now);
      return;
    }
  }
}

void Server::handle_readable(Connection& conn) {
  std::size_t budget = kReadBudgetPerRound;
  while (budget > 0) {
    const IoResult r = read_some(conn.fd.get(), read_scratch_.data(), read_scratch_.size());
    if (r.would_block) break;
    if (r.closed) {
      conn.read_eof = true;
      return;
    }
    budget -= std::min(budget, r.bytes);
    if (conn.draining_reads) continue;  // half-closed: discard everything
    try {
      conn.assembler.feed(read_scratch_.data(), r.bytes);
      while (!conn.close_after_flush && !stopping_) {
        std::optional<Frame> frame = conn.assembler.next_frame();
        if (!frame) break;
        dispatch_frame(conn, std::move(*frame));
      }
    } catch (const ProtocolError& e) {
      // Malformed bytes: framing is unrecoverable on this connection.
      // Answer best-effort (after any responses already owed) and
      // close; the server itself keeps serving.
      log_warn() << "closing connection on malformed frame: " << e.what();
      stats_.record_error();
      enqueue_response(conn, conn.next_seq++,
                       error_frame(0, ErrorCode::kBadRequest, e.what()), -1);
      conn.close_after_flush = true;
      return;
    }
    if (r.bytes < read_scratch_.size()) break;  // socket drained
  }
  // Arm the per-frame read deadline when a frame is mid-assembly; a
  // completed frame disarms it.
  if (conn.assembler.has_partial()) {
    if (conn.read_deadline_us < 0) {
      conn.read_deadline_us =
          monotonic_us() + static_cast<std::int64_t>(options_.read_timeout_ms) * 1000;
    }
  } else {
    conn.read_deadline_us = -1;
  }
}

void Server::handle_writable(Connection& conn) {
  while (!conn.out.empty()) {
    Connection::OutFrame& front = conn.out.front();
    const IoResult r = write_some(conn.fd.get(), front.bytes.data() + conn.out_off,
                                  front.bytes.size() - conn.out_off);
    if (r.closed) {
      conn.read_eof = true;  // peer gone; sweep closes the connection
      conn.out.clear();
      conn.out_off = 0;
      return;
    }
    if (r.would_block) return;
    conn.out_off += r.bytes;
    conn.write_deadline_us =
        monotonic_us() + static_cast<std::int64_t>(options_.write_timeout_ms) * 1000;
    if (conn.out_off < front.bytes.size()) continue;
    if (front.started_us >= 0) {
      stats_.record_latency_us(monotonic_us() - front.started_us);
    }
    conn.out.pop_front();
    conn.out_off = 0;
  }
  conn.write_deadline_us = -1;
  conn.idle_deadline_us =
      monotonic_us() + static_cast<std::int64_t>(options_.idle_timeout_ms) * 1000;
}

void Server::accept_new_connections() {
  for (;;) {
    Fd accepted;
    try {
      accepted = accept_connection(listener_.get());
    } catch (const Error& e) {
      log_warn() << "accept failed: " << e.what();
      return;
    }
    if (!accepted) return;
    stats_.record_connection();
    try {
      set_nonblocking(accepted.get(), true, "accepted connection");
    } catch (const Error& e) {
      // A connection that cannot be made non-blocking would deadlock the
      // reactor on its first stalled read — drop it, keep serving.
      log_warn() << "dropping connection: " << e.what();
      continue;
    }
    if (options_.socket_path.empty()) {
      const int one = 1;
      ::setsockopt(accepted.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }

    std::unique_ptr<Connection> conn;
    if (!conn_pool_.empty()) {
      conn = std::move(conn_pool_.back());
      conn_pool_.pop_back();
    } else {
      conn = std::make_unique<Connection>();
    }
    conn->fd = std::move(accepted);
    conn->id = next_conn_id_++;
    conn->idle_deadline_us =
        monotonic_us() + static_cast<std::int64_t>(options_.idle_timeout_ms) * 1000;

    if (admitted_ >= worker_count_ + options_.max_queue) {
      // Admission control: reject before reading anything (the request
      // id is therefore 0), then half-close and drain so the reject —
      // and its retry-after hint — survives the client's unread bytes.
      conn->admitted = false;
      stats_.record_reject();
      Connection& ref = *conn;
      conns_.push_back(std::move(conn));
      enqueue_response(ref, ref.next_seq++,
                       error_frame(0, ErrorCode::kOverloaded,
                                   "request queue full; retry after " +
                                       std::to_string(options_.retry_after_ms) + " ms",
                                   options_.retry_after_ms),
                       -1);
      ref.close_after_flush = true;
      continue;
    }
    ++admitted_;
    publish_queue_depth();
    conns_.push_back(std::move(conn));
  }
}

void Server::begin_close(Connection& conn) {
  // Half-close: FIN after the flushed responses, then drain unread
  // request bytes briefly. Closing outright with bytes in the receive
  // buffer turns into an RST that can destroy the final frame before
  // the client reads it.
  ::shutdown(conn.fd.get(), SHUT_WR);
  conn.draining_reads = true;
  conn.drain_deadline_us = monotonic_us() + kHalfCloseDrainUs;
}

void Server::close_connection(std::size_t index) {
  std::unique_ptr<Connection>& slot = conns_[index];
  if (!slot) return;
  if (slot->admitted) {
    --admitted_;
    publish_queue_depth();
  }
  slot->recycle();
  conn_pool_.push_back(std::move(slot));
  slot.reset();
}

void Server::drain_completions() {
  std::vector<PredictOutcome> done;
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done.swap(done_);
  }
  for (PredictOutcome& outcome : done) {
    Connection* conn = nullptr;
    for (const std::unique_ptr<Connection>& c : conns_) {
      if (c && c->id == outcome.conn_id) {
        conn = c.get();
        break;
      }
    }
    if (conn == nullptr) continue;  // connection died while computing
    CAML_ASSERT(conn->inflight > 0);
    --conn->inflight;
    enqueue_response(*conn, outcome.seq, std::move(outcome.response), outcome.enqueued_us);
  }
}

void Server::sweep_deadlines(std::int64_t now_us) {
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    Connection* conn = conns_[i].get();
    if (conn == nullptr) continue;
    if (conn->draining_reads) {
      if (conn->read_eof || now_us >= conn->drain_deadline_us) close_connection(i);
      continue;
    }
    const bool quiet = conn->quiet();
    if (conn->read_eof && quiet) {
      close_connection(i);  // clean EOF (or mid-frame EOF: nothing more can complete)
      continue;
    }
    if (conn->close_after_flush && quiet) {
      begin_close(*conn);
      continue;
    }
    if (stopping_ && quiet) {
      close_connection(i);  // shutdown drain: this connection owes nothing
      continue;
    }
    if (!conn->out.empty() && now_us >= conn->write_deadline_us) {
      log_warn() << "dropping connection: write stalled past "
                 << options_.write_timeout_ms << " ms";
      close_connection(i);
      continue;
    }
    if (conn->assembler.has_partial() && conn->read_deadline_us >= 0 &&
        now_us >= conn->read_deadline_us) {
      log_warn() << "dropping connection: frame incomplete after "
                 << options_.read_timeout_ms << " ms";
      close_connection(i);
      continue;
    }
    if (!stopping_ && quiet && !conn->assembler.has_partial() &&
        now_us >= conn->idle_deadline_us) {
      close_connection(i);  // idle keep-alive expiry
      continue;
    }
  }
}

bool Server::fully_drained() const {
  for (const std::unique_ptr<Connection>& c : conns_) {
    if (c) return false;
  }
  return true;
}

void Server::reactor_loop() {
  std::vector<struct pollfd> pfds;
  std::vector<std::size_t> pfd_conn;
  for (;;) {
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Connection>& c) { return !c; }),
                 conns_.end());

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({stop_pipe_.rd.get(), POLLIN, 0});
    pfds.push_back({wake_pipe_.rd.get(), POLLIN, 0});
    const bool accepting = !stopping_;
    if (accepting) pfds.push_back({listener_.get(), POLLIN, 0});
    const std::size_t conn_base = pfds.size();
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      const Connection& conn = *conns_[i];
      short events = 0;
      const bool reads_requests =
          conn.admitted && !conn.close_after_flush && !conn.read_eof && !stopping_;
      if (reads_requests || conn.draining_reads) events |= POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      pfds.push_back({conn.fd.get(), events, 0});
      pfd_conn.push_back(i);
    }

    // Poll until the nearest deadline (connection idle/read/write/drain
    // or the bounded shutdown drain).
    std::int64_t next_deadline = -1;
    const auto consider = [&next_deadline](std::int64_t d) {
      if (d >= 0 && (next_deadline < 0 || d < next_deadline)) next_deadline = d;
    };
    if (stopping_) consider(stop_deadline_us_);
    for (const std::unique_ptr<Connection>& c : conns_) {
      if (c->draining_reads) consider(c->drain_deadline_us);
      if (!c->out.empty()) consider(c->write_deadline_us);
      if (c->assembler.has_partial()) consider(c->read_deadline_us);
      if (!stopping_ && c->quiet() && !c->assembler.has_partial()) {
        consider(c->idle_deadline_us);
      }
    }
    int timeout_ms = -1;
    if (next_deadline >= 0) {
      const std::int64_t left = next_deadline - monotonic_us();
      timeout_ms = left <= 0 ? 0 : static_cast<int>((left + 999) / 1000);
    }

    // Fault injection rides the same EINTR retry path a real signal
    // would take (CAML_FAULT=net-poll:eintr:...).
    const int rc = fault::before_net_poll("net-poll")
                       ? (errno = EINTR, -1)
                       : ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      log_error() << "serve reactor poll failed; shutting down server";
      break;
    }
    const std::int64_t now = monotonic_us();

    // The stop signal is checked before any connection work: a chatty
    // keep-alive client whose fd is always readable can no longer
    // starve shutdown (it used to win the poll forever). The drain of
    // in-flight connections is bounded by idle_timeout_ms.
    if (!stopping_ && (pfds[0].revents != 0 || draining_.load())) {
      stopping_ = true;
      stop_deadline_us_ = now + static_cast<std::int64_t>(options_.idle_timeout_ms) * 1000;
      listener_.reset();  // refuse new connections at once
    }
    if (pfds[1].revents != 0) {
      char sink[256];
      while (::read(wake_pipe_.rd.get(), sink, sizeof sink) > 0) {
      }
    }
    drain_completions();
    if (!stopping_ && accepting && (pfds[2].revents & POLLIN) != 0) {
      accept_new_connections();
    }
    for (std::size_t p = 0; p < pfd_conn.size(); ++p) {
      const struct pollfd& pfd = pfds[conn_base + p];
      const std::size_t idx = pfd_conn[p];
      if (!conns_[idx]) continue;
      if ((pfd.revents & POLLNVAL) != 0) {
        close_connection(idx);
        continue;
      }
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        handle_readable(*conns_[idx]);
      }
      if (!conns_[idx]) continue;
      if ((pfd.revents & POLLOUT) != 0) handle_writable(*conns_[idx]);
    }
    sweep_deadlines(now);

    if (stopping_) {
      if (fully_drained()) break;
      if (now >= stop_deadline_us_) {
        log_warn() << "shutdown drain deadline reached; dropping remaining connections";
        break;
      }
    }
  }
  conns_.clear();
}

}  // namespace caml::serve
