#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/characterize.hpp"
#include "flow/model_store.hpp"
#include "serve/protocol.hpp"
#include "serve/stats.hpp"
#include "util/net.hpp"
#include "util/thread_pool.hpp"

namespace caml::serve {

struct ServerOptions {
  /// Unix-domain socket path. When empty the server listens on loopback
  /// TCP `tcp_port` instead (0 = pick an ephemeral port; see port()).
  std::string socket_path;
  std::uint16_t tcp_port = 0;
  /// Worker threads draining the request queue (0 = one per hardware
  /// thread). Each worker owns one connection at a time.
  std::size_t jobs = 0;
  /// Pending (accepted but not yet picked up) connections beyond the
  /// workers. When full, new connections are rejected immediately with a
  /// kOverloaded error carrying retry_after_ms — bounded memory under
  /// overload instead of unbounded queue growth.
  std::size_t max_queue = 64;
  /// Per-frame read deadline once bytes started flowing.
  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  /// How long a keep-alive connection may sit idle between requests
  /// before the server closes it. Also bounds the shutdown drain.
  int idle_timeout_ms = 2000;
  /// Backpressure hint clients receive in kOverloaded rejects.
  std::uint32_t retry_after_ms = 50;
  /// Stimulus-policy schedule for predictions (same input-count heuristic
  /// as `caml predict` without --policy).
  PolicyProfile policy;
};

/// Long-lived inference daemon: loads a trained GroupModelStore once and
/// answers CA-model prediction requests over the serve protocol.
///
/// Threading: one acceptor thread plus `jobs` workers on a ThreadPool.
/// The store is shared read-only across all workers — GroupModelStore::
/// predict is const and touches no hidden mutable state (see the note in
/// model_store.hpp), so requests never copy or lock the models.
///
/// Lifecycle: construct → start() (binds + spawns threads; throws on
/// bind failure) → stop() (graceful: stops accepting, serves queued
/// connections, finishes in-flight requests, joins). stop() is
/// idempotent and also runs from the destructor. It is NOT
/// async-signal-safe — signal handlers should write to a self-pipe and
/// let the main thread call stop() (see `caml serve`).
///
/// Hot reload: reload() atomically swaps in a replacement store.
/// Callers load + validate the new store first (off the serving
/// threads) and only call reload() on success, so a corrupt file on
/// disk never displaces the store that is already serving. In-flight
/// requests finish on the snapshot they started with; subsequent
/// requests see the new store.
class Server {
 public:
  Server(GroupModelStore store, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  void stop();

  /// Atomically replaces the model store (SIGHUP hot-reload). Safe to
  /// call while serving; never blocks workers beyond a pointer swap.
  void reload(GroupModelStore store);

  bool running() const { return started_ && !draining_; }
  /// Actual TCP port (resolves tcp_port == 0); 0 for Unix-domain mode.
  std::uint16_t port() const { return bound_port_; }
  const ServerOptions& options() const { return options_; }

  StatsSnapshot stats() const { return stats_.snapshot(); }

 private:
  void acceptor_loop();
  void worker_loop();
  void handle_connection(Fd conn);
  /// Builds the response frame for one request (never throws; failures
  /// become kError responses). Returns false when the connection must
  /// close after the response (e.g. unsupported version).
  bool handle_request(const Frame& request, Frame& response);
  Frame predict_response(const Frame& request);
  void reject_overloaded(Fd conn);
  /// The store serving right now. Each request takes one snapshot and
  /// uses it throughout, so a concurrent reload() can never swap the
  /// models out from under a half-finished prediction.
  std::shared_ptr<const GroupModelStore> store_snapshot() const;

  std::shared_ptr<const GroupModelStore> store_;  // guarded by store_mutex_
  mutable std::mutex store_mutex_;
  const ServerOptions options_;

  Fd listener_;
  Pipe stop_pipe_;  // wr end closed by stop(): every poller sees POLLHUP
  std::uint16_t bound_port_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> draining_{false};

  std::thread acceptor_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> worker_futures_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Fd> pending_;

  ServeStats stats_;
};

}  // namespace caml::serve
