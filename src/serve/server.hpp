#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/characterize.hpp"
#include "flow/model_store.hpp"
#include "serve/batch.hpp"
#include "serve/protocol.hpp"
#include "serve/stats.hpp"
#include "util/net.hpp"
#include "util/thread_pool.hpp"

namespace caml::serve {

struct ServerOptions {
  /// Unix-domain socket path. When empty the server listens on loopback
  /// TCP `tcp_port` instead (0 = pick an ephemeral port; see port()).
  std::string socket_path;
  std::uint16_t tcp_port = 0;
  /// Compute-plane worker threads draining coalesced predict batches
  /// (0 = one per hardware thread). Connections are NOT pinned to
  /// workers: the reactor multiplexes every connection and any worker
  /// answers any request.
  std::size_t jobs = 0;
  /// Admission control: connections beyond `jobs + max_queue` are
  /// rejected immediately with a kOverloaded error carrying
  /// retry_after_ms — bounded memory under overload instead of
  /// unbounded connection growth.
  std::size_t max_queue = 64;
  /// Requests coalesced into one compute batch: the reactor queues
  /// decoded PREDICT requests from all connections and a worker drains
  /// up to max_batch of them at once into a single cross-connection
  /// Classifier::predict_batch sweep per group model.
  std::size_t max_batch = 32;
  /// Decoded PREDICT requests allowed to wait for the compute plane.
  /// Beyond it, requests are answered kOverloaded (the connection stays
  /// open) — backpressure for deeply pipelined clients.
  std::size_t max_pending_predicts = 1024;
  /// Per-frame read deadline once bytes of a frame started arriving.
  int read_timeout_ms = 5000;
  /// Deadline for a stalled response write (no progress while bytes are
  /// queued for the peer).
  int write_timeout_ms = 5000;
  /// How long a keep-alive connection may sit idle between requests
  /// before the server closes it. Also bounds the shutdown drain of
  /// in-flight connections: stop() never waits longer than this for a
  /// chatty client.
  int idle_timeout_ms = 2000;
  /// Backpressure hint clients receive in kOverloaded rejects.
  std::uint32_t retry_after_ms = 50;
  /// Latency-signal admission policy: when the p99 queue sojourn over
  /// the most recent computed PREDICTs exceeds this target, new PREDICTs
  /// are shed with kOverloaded before they enter the queue — the queue
  /// is already slower than anyone's patience, so adding to it only
  /// manufactures future DEADLINE_EXCEEDED answers. 0 disables the
  /// policy (the fixed max_pending_predicts bound still applies either
  /// way). `caml serve` defaults this on; the library default stays off
  /// so embedded/test servers behave deterministically.
  int sojourn_target_ms = 0;
  /// Stimulus-policy schedule for predictions (same input-count heuristic
  /// as `caml predict` without --policy).
  PolicyProfile policy;
};

/// Long-lived inference daemon: loads a trained GroupModelStore once and
/// answers CA-model prediction requests over the serve protocol.
///
/// Architecture — connection plane vs. compute plane:
///
///   * One reactor thread owns every client fd in a poll() event loop:
///     non-blocking reads feed per-connection FrameAssemblers (buffers
///     pooled and reused across connections), cheap requests (PING,
///     STATS, protocol errors) are answered inline, and responses are
///     written through per-connection output queues, so any number of
///     pipelined requests can be in flight per connection while
///     responses still go out in request order.
///   * `jobs` ThreadPool workers form the compute plane: each drains up
///     to max_batch decoded PREDICT requests — coalesced across all
///     connections — and answers them with one Classifier::predict_batch
///     sweep per group model (see serve/batch.hpp). Finished frames are
///     handed back to the reactor over a wakeup pipe.
///
/// The wire protocol is byte-compatible with the thread-per-connection
/// server this replaced; existing clients work unchanged.
///
/// Lifecycle: construct → start() (binds + spawns threads; throws on
/// bind failure) → stop() (graceful: checks the stop signal before any
/// connection work, stops accepting, finishes requests already decoded,
/// and bounds the drain by idle_timeout_ms so a chatty keep-alive
/// client cannot starve shutdown). stop() is idempotent and also runs
/// from the destructor. It is NOT async-signal-safe — signal handlers
/// should write to a self-pipe and let the main thread call stop() (see
/// `caml serve`).
///
/// Hot reload: reload() atomically swaps in a replacement store.
/// Callers load + validate the new store first (off the serving
/// threads) and only call reload() on success, so a corrupt file on
/// disk never displaces the store that is already serving. In-flight
/// batches finish on the snapshot they started with; subsequent batches
/// see the new store.
class Server {
 public:
  /// Serves any ModelStore implementation — the owning GroupModelStore
  /// or a zero-copy store::MappedModelStore over the binary section.
  Server(std::shared_ptr<const ModelStore> store, ServerOptions options);
  /// Convenience: wraps an owning store (the common test/train path).
  Server(GroupModelStore store, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  void stop();

  /// Atomically replaces the model store (SIGHUP hot-reload). Safe to
  /// call while serving; never blocks workers beyond a pointer swap.
  /// The shared_ptr form also swaps in a mapped binary store — the old
  /// mapping stays alive until the last in-flight batch drops its
  /// snapshot.
  void reload(std::shared_ptr<const ModelStore> store);
  void reload(GroupModelStore store);

  /// Installs a callback that re-opens the store from its source of
  /// truth (disk). When a serving snapshot is found faulted (SIGBUS on
  /// the mapping, or the backing file's size changed), the server calls
  /// it to force a reload; if it throws or returns null the server falls
  /// back to the last-good snapshot. Call before start().
  void set_store_refresh(std::function<std::shared_ptr<const ModelStore>()> refresh) {
    refresh_ = std::move(refresh);
  }

  bool running() const { return started_ && !draining_; }
  /// Actual TCP port (resolves tcp_port == 0); 0 for Unix-domain mode.
  std::uint16_t port() const { return bound_port_; }
  const ServerOptions& options() const { return options_; }

  StatsSnapshot stats() const { return stats_.snapshot(); }

 private:
  struct Connection;

  void reactor_loop();
  void worker_loop();

  // Reactor internals (reactor thread only).
  void accept_new_connections();
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  void dispatch_frame(Connection& conn, Frame frame);
  void enqueue_response(Connection& conn, std::uint64_t seq, Frame frame,
                        std::int64_t started_us);
  void enqueue_encoded(Connection& conn, std::uint64_t seq, std::string bytes,
                       std::int64_t started_us);
  void drain_completions();
  void begin_close(Connection& conn);
  void close_connection(std::size_t index);
  void sweep_deadlines(std::int64_t now_us);
  void publish_queue_depth();
  bool fully_drained() const;

  /// The store serving right now. Each compute batch takes one snapshot
  /// and uses it throughout, so a concurrent reload() can never swap the
  /// models out from under a half-finished prediction.
  std::shared_ptr<const ModelStore> store_snapshot() const;

  /// Records one queue sojourn into the admission policy's sliding
  /// window. Caller holds jobs_mutex_.
  void record_sojourn_locked(std::int64_t sojourn_us);
  /// True when the policy is on and the window's p99 exceeds the target
  /// (also publishes the p99 gauge). Caller holds jobs_mutex_.
  bool sojourn_over_target_locked();
  /// Store-fault recovery (worker threads): if `faulted` is still the
  /// serving store, force a refresh from disk, falling back to the
  /// last-good snapshot. Never throws; the daemon keeps running even
  /// when no good store is reachable (requests keep failing INTERNAL
  /// until a SIGHUP or a successful refresh).
  void handle_store_fault(const std::shared_ptr<const ModelStore>& faulted);

  std::shared_ptr<const ModelStore> store_;  // guarded by store_mutex_
  /// Previous store kept across reload() (unless it faulted) — the
  /// fallback snapshot store-fault recovery swaps back in when the
  /// refresh callback cannot produce a good store.
  std::shared_ptr<const ModelStore> last_good_;  // guarded by store_mutex_
  bool store_faulted_ = false;                   // guarded by store_mutex_
  std::function<std::shared_ptr<const ModelStore>()> refresh_;  // set before start()
  mutable std::mutex store_mutex_;
  const ServerOptions options_;
  std::size_t worker_count_ = 0;

  Fd listener_;
  Pipe stop_pipe_;  // wr end closed by stop(): the reactor sees POLLHUP
  Pipe wake_pipe_;  // workers write one byte after publishing completions
  std::uint16_t bound_port_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> draining_{false};

  std::thread reactor_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> worker_futures_;

  // Reactor-owned connection table: conns_[i] may be null (closed slot);
  // closed Connection objects park in conn_pool_ so their frame buffers
  // are reused by the next accept.
  std::vector<std::unique_ptr<Connection>> conns_;
  std::vector<std::unique_ptr<Connection>> conn_pool_;
  std::uint64_t next_conn_id_ = 1;
  std::size_t admitted_ = 0;           ///< live, non-rejected connections
  std::vector<char> read_scratch_;     ///< one shared socket-read buffer
  bool stopping_ = false;              ///< reactor saw the stop signal
  std::int64_t stop_deadline_us_ = 0;  ///< bounded-drain deadline once stopping

  // Reactor → compute plane: coalesced predict-job queue.
  std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::deque<PredictJob> job_queue_;
  bool jobs_draining_ = false;
  std::size_t jobs_inflight_ = 0;  ///< popped but not yet completed (guarded by jobs_mutex_)
  /// Sliding window of recent queue sojourns feeding the p99 admission
  /// policy (guarded by jobs_mutex_; plain ring, no allocation on the
  /// hot path).
  std::array<std::uint32_t, 128> sojourn_ring_{};
  std::size_t sojourn_count_ = 0;

  // Compute plane → reactor: finished responses.
  std::mutex done_mutex_;
  std::vector<PredictOutcome> done_;

  ServeStats stats_;
};

}  // namespace caml::serve
