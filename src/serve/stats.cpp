#include "serve/stats.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace caml::serve {

namespace {

obs::Registry& reg() { return obs::Registry::global(); }

}  // namespace

ServeStats::ServeStats()
    : connections_(reg().counter("caml_serve_connections_total",
                                 "Connections accepted by the serve daemon")),
      ok_(reg().counter("caml_serve_requests_ok_total",
                        "Predictions answered kPredictOk")),
      errors_(reg().counter("caml_serve_requests_error_total",
                            "Structured kError answers (excluding overload rejects and "
                            "NO_GROUP routing misses)")),
      no_group_(reg().counter("caml_serve_no_group_total",
                              "NO_GROUP answers: well-formed requests whose cell group has "
                              "no trained model (a routing miss, not a server error)")),
      rejected_(reg().counter("caml_serve_rejected_overload_total",
                              "Backpressure rejects at the acceptor")),
      pings_(reg().counter("caml_serve_pings_total", "kPing probes answered")),
      stats_requests_(reg().counter("caml_serve_stats_requests_total",
                                    "kStats snapshots served")),
      cells_(reg().counter("caml_serve_cells_predicted_total",
                           "Cells predicted over the serve protocol")),
      rows_(reg().counter("caml_serve_rows_classified_total",
                          "CA-matrix rows pushed through the forests while serving")),
      reloads_(reg().counter("caml_serve_reloads_total",
                             "Successful SIGHUP store reloads")),
      shed_expired_(reg().counter("caml_serve_shed_expired_total",
                                  "Queued PREDICTs dropped with DEADLINE_EXCEEDED because "
                                  "their client deadline expired before compute")),
      shed_overload_(reg().counter("caml_serve_shed_overload_total",
                                   "PREDICTs shed at admission by the sojourn-p99 latency "
                                   "policy")),
      store_faults_(reg().counter("caml_serve_store_faults_total",
                                  "Mapped-store faults (SIGBUS / size change under the "
                                  "mapping) converted to INTERNAL answers plus recovery")),
      queue_depth_gauge_(reg().gauge("caml_serve_queue_depth",
                                     "Connections queued beyond serving capacity right "
                                     "now (0 when drained)")),
      queue_high_water_gauge_(reg().gauge("caml_serve_queue_high_water",
                                          "Max queue depth observed")),
      predict_backlog_gauge_(reg().gauge("caml_serve_predict_backlog",
                                         "Decoded PREDICT requests waiting for the compute "
                                         "plane right now (0 when drained)")),
      sojourn_p99_gauge_(reg().gauge("caml_serve_sojourn_p99_us",
                                     "Sliding-window p99 queue sojourn the admission policy "
                                     "sees (microseconds)")),
      latency_(reg().histogram("caml_serve_request_latency_us",
                               "Per-request decode-to-response-written latency in "
                               "microseconds")),
      batch_size_(reg().histogram("caml_serve_batch_size",
                                  "Requests per coalesced cross-connection predict batch")),
      sojourn_(reg().histogram("caml_serve_queue_sojourn_us",
                               "Queue sojourn (decode to compute-plane pop) per PREDICT in "
                               "microseconds")),
      base_connections_(connections_.value()),
      base_ok_(ok_.value()),
      base_errors_(errors_.value()),
      base_no_group_(no_group_.value()),
      base_rejected_(rejected_.value()),
      base_pings_(pings_.value()),
      base_stats_requests_(stats_requests_.value()),
      base_cells_(cells_.value()),
      base_rows_(rows_.value()),
      base_reloads_(reloads_.value()),
      base_shed_expired_(shed_expired_.value()),
      base_shed_overload_(shed_overload_.value()),
      base_store_faults_(store_faults_.value()),
      base_latency_(latency_.snapshot()),
      base_batch_size_(batch_size_.snapshot()),
      base_sojourn_(sojourn_.snapshot()) {}

void ServeStats::record_latency_us(std::int64_t us) {
  const std::uint64_t v = us < 0 ? 0 : static_cast<std::uint64_t>(us);
  latency_.record(v);
  std::uint64_t prev = latency_max_us_.load(std::memory_order_relaxed);
  while (v > prev && !latency_max_us_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

void ServeStats::update_queue_depth(std::size_t depth) {
  // Live gauge first (set, not max: this is the side the pop path feeds
  // so the reading returns to 0 once the queue drains), then the
  // monotonic high-water views.
  queue_depth_gauge_.set(static_cast<std::int64_t>(depth));
  queue_high_water_gauge_.update_max(static_cast<std::int64_t>(depth));
  std::uint64_t prev = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > prev &&
         !queue_high_water_.compare_exchange_weak(prev, depth, std::memory_order_relaxed)) {
  }
}

StatsSnapshot ServeStats::snapshot() const {
  StatsSnapshot s;
  s.connections_accepted = connections_.value() - base_connections_;
  s.requests_ok = ok_.value() - base_ok_;
  s.requests_error = errors_.value() - base_errors_;
  s.no_group = no_group_.value() - base_no_group_;
  s.rejected_overload = rejected_.value() - base_rejected_;
  s.pings = pings_.value() - base_pings_;
  s.stats_requests = stats_requests_.value() - base_stats_requests_;
  s.cells_predicted = cells_.value() - base_cells_;
  s.rows_classified = rows_.value() - base_rows_;
  const std::int64_t depth = queue_depth_gauge_.value();
  s.queue_depth = depth < 0 ? 0 : static_cast<std::uint64_t>(depth);
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  s.reloads = reloads_.value() - base_reloads_;
  s.shed_expired = shed_expired_.value() - base_shed_expired_;
  s.shed_overload = shed_overload_.value() - base_shed_overload_;
  s.store_faults = store_faults_.value() - base_store_faults_;
  const obs::HistogramSnapshot sojourn = sojourn_.snapshot().diff(base_sojourn_);
  if (sojourn.count > 0) s.sojourn_p99_ms = sojourn.percentile(0.99) / 1000.0;
  const obs::HistogramSnapshot batches = batch_size_.snapshot().diff(base_batch_size_);
  s.batches = batches.count;
  if (batches.count > 0) {
    s.batch_mean = static_cast<double>(batches.sum) / static_cast<double>(batches.count);
  }
  s.latency_max_ms =
      static_cast<double>(latency_max_us_.load(std::memory_order_relaxed)) / 1000.0;

  const obs::HistogramSnapshot lat = latency_.snapshot().diff(base_latency_);
  s.latency_count = lat.count;
  if (lat.count > 0) {
    s.latency_p50_ms = lat.percentile(0.50) / 1000.0;
    s.latency_p99_ms = lat.percentile(0.99) / 1000.0;
  }
  return s;
}

std::string format_stats(const StatsSnapshot& s) {
  std::ostringstream os;
  os << "serve_stats:\n"
     << "  connections_accepted " << s.connections_accepted << '\n'
     << "  requests_served      " << s.requests_served() << '\n'
     << "  requests_ok          " << s.requests_ok << '\n'
     << "  requests_error       " << s.requests_error << '\n'
     << "  no_group             " << s.no_group << '\n'
     << "  rejected_overload    " << s.rejected_overload << '\n'
     << "  pings                " << s.pings << '\n'
     << "  stats_requests       " << s.stats_requests << '\n'
     << "  cells_predicted      " << s.cells_predicted << '\n'
     << "  rows_classified      " << s.rows_classified << '\n'
     << "  queue_depth          " << s.queue_depth << '\n'
     << "  queue_high_water     " << s.queue_high_water << '\n'
     << "  batches              " << s.batches << '\n'
     << "  batch_mean           " << format_fixed(s.batch_mean, 2) << '\n'
     << "  reloads              " << s.reloads << '\n'
     << "  shed_expired         " << s.shed_expired << '\n'
     << "  shed_overload        " << s.shed_overload << '\n'
     << "  store_faults         " << s.store_faults << '\n'
     << "  sojourn_p99_ms       " << format_fixed(s.sojourn_p99_ms, 3) << '\n'
     << "  latency_p50_ms       " << format_fixed(s.latency_p50_ms, 3) << '\n'
     << "  latency_p99_ms       " << format_fixed(s.latency_p99_ms, 3) << '\n'
     << "  latency_max_ms       " << format_fixed(s.latency_max_ms, 3) << '\n';
  return os.str();
}

}  // namespace caml::serve
