#include "serve/stats.hpp"

#include <bit>
#include <sstream>

#include "util/strings.hpp"

namespace caml::serve {

std::size_t ServeStats::bucket_for(std::uint64_t us) {
  // Buckets 0..7 hold the exact values 0..7 us; above that each octave
  // [2^m, 2^(m+1)) splits into 8 sub-buckets keyed by the 3 bits after
  // the leading 1.
  if (us < kSubBuckets) return static_cast<std::size_t>(us);
  const int msb = 63 - std::countl_zero(us);
  const std::size_t sub = static_cast<std::size_t>((us >> (msb - 3)) & 7);
  const std::size_t bucket = kSubBuckets * static_cast<std::size_t>(msb - 3) + kSubBuckets + sub;
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

double ServeStats::bucket_upper_us(std::size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<double>(bucket);
  const std::size_t m = 3 + (bucket - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (bucket - kSubBuckets) % kSubBuckets;
  return static_cast<double>(((sub + 9) << (m - 3)) - 1);
}

void ServeStats::record_latency_us(std::int64_t us) {
  const std::uint64_t v = us < 0 ? 0 : static_cast<std::uint64_t>(us);
  latency_hist_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev = latency_max_us_.load(std::memory_order_relaxed);
  while (v > prev && !latency_max_us_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

void ServeStats::update_queue_depth(std::size_t depth) {
  std::uint64_t prev = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > prev &&
         !queue_high_water_.compare_exchange_weak(prev, depth, std::memory_order_relaxed)) {
  }
}

StatsSnapshot ServeStats::snapshot() const {
  StatsSnapshot s;
  s.connections_accepted = connections_.load(std::memory_order_relaxed);
  s.requests_ok = ok_.load(std::memory_order_relaxed);
  s.requests_error = errors_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_.load(std::memory_order_relaxed);
  s.pings = pings_.load(std::memory_order_relaxed);
  s.cells_predicted = cells_.load(std::memory_order_relaxed);
  s.rows_classified = rows_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.latency_max_ms =
      static_cast<double>(latency_max_us_.load(std::memory_order_relaxed)) / 1000.0;

  std::array<std::uint64_t, kBuckets> hist;
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    hist[b] = latency_hist_[b].load(std::memory_order_relaxed);
    total += hist[b];
  }
  s.latency_count = total;
  if (total > 0) {
    const auto percentile = [&](double q) {
      const std::uint64_t target =
          static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        cum += hist[b];
        if (cum >= target) return bucket_upper_us(b) / 1000.0;
      }
      return bucket_upper_us(kBuckets - 1) / 1000.0;
    };
    s.latency_p50_ms = percentile(0.50);
    s.latency_p99_ms = percentile(0.99);
  }
  return s;
}

std::string format_stats(const StatsSnapshot& s) {
  std::ostringstream os;
  os << "serve_stats:\n"
     << "  connections_accepted " << s.connections_accepted << '\n'
     << "  requests_served      " << s.requests_served() << '\n'
     << "  requests_ok          " << s.requests_ok << '\n'
     << "  requests_error       " << s.requests_error << '\n'
     << "  rejected_overload    " << s.rejected_overload << '\n'
     << "  pings                " << s.pings << '\n'
     << "  cells_predicted      " << s.cells_predicted << '\n'
     << "  rows_classified      " << s.rows_classified << '\n'
     << "  queue_high_water     " << s.queue_high_water << '\n'
     << "  reloads              " << s.reloads << '\n'
     << "  latency_p50_ms       " << format_fixed(s.latency_p50_ms, 3) << '\n'
     << "  latency_p99_ms       " << format_fixed(s.latency_p99_ms, 3) << '\n'
     << "  latency_max_ms       " << format_fixed(s.latency_max_ms, 3) << '\n';
  return os.str();
}

}  // namespace caml::serve
