#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace caml::serve {

/// Point-in-time copy of the serve counters, safe to format and compare.
struct StatsSnapshot {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_ok = 0;       ///< predictions answered kPredictOk
  std::uint64_t requests_error = 0;    ///< structured kError answers (excl. rejects + NO_GROUP)
  std::uint64_t no_group = 0;          ///< NO_GROUP routing misses (legitimate, not errors)
  std::uint64_t rejected_overload = 0; ///< backpressure rejects at the acceptor
  std::uint64_t pings = 0;
  std::uint64_t stats_requests = 0;    ///< kStats snapshots served
  std::uint64_t cells_predicted = 0;
  std::uint64_t rows_classified = 0;   ///< CA-matrix rows pushed through the forests
  std::uint64_t queue_depth = 0;       ///< queued-beyond-capacity right now (0 when drained)
  std::uint64_t queue_high_water = 0;  ///< max queue depth observed
  std::uint64_t batches = 0;           ///< coalesced predict batches computed
  double batch_mean = 0.0;             ///< mean requests per coalesced batch
  std::uint64_t reloads = 0;           ///< successful SIGHUP store reloads
  std::uint64_t shed_expired = 0;      ///< DEADLINE_EXCEEDED sheds (client deadline ran out in queue)
  std::uint64_t shed_overload = 0;     ///< PREDICTs shed by the sojourn-p99 admission policy
  std::uint64_t store_faults = 0;      ///< mapping faults converted to INTERNAL + recovery
  double sojourn_p99_ms = 0.0;         ///< p99 queue sojourn of computed requests
  std::uint64_t latency_count = 0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  std::uint64_t requests_served() const {
    // shed_expired requests receive a structured DEADLINE_EXCEEDED answer,
    // so they count as served; shed_overload parallels rejected_overload
    // (the request never entered the plane) and stays out.
    return requests_ok + requests_error + no_group + pings + stats_requests + shed_expired;
  }
};

/// Serve counters, kept in the process-wide obs::Registry (metric names
/// caml_serve_*) so the SIGUSR1 dump, the STATS request and `caml query
/// --stats` all expose one unified snapshot. The registry metrics are
/// process-global and monotonic; each ServeStats instance additionally
/// remembers the registry values at its construction and reports deltas,
/// so per-server snapshots keep exact per-instance semantics (tests spin
/// up many servers in one process).
///
/// All mutators are lock-free (relaxed atomics in obs::Counter /
/// obs::Histogram); snapshot() may race individual increments but never
/// tears a single counter — fine for monitoring output. Latency lives in
/// the shared obs::Histogram (log-scaled, 8 sub-buckets per octave of
/// microseconds): p50/p99 are exact to within ~9% with O(1) memory.
class ServeStats {
 public:
  ServeStats();

  void record_connection() { connections_.add(); }
  void record_ping() { pings_.add(); }
  void record_stats_request() { stats_requests_.add(); }
  void record_reject() { rejected_.add(); }
  void record_error() { errors_.add(); }
  /// A NO_GROUP routing miss: the request was well-formed, the library
  /// just has no trained model for the cell's group. Counted on its own
  /// so legitimate routing misses never inflate the server error rate.
  void record_no_group() { no_group_.add(); }
  void record_ok(std::uint64_t cells, std::uint64_t rows) {
    ok_.add();
    cells_.add(cells);
    rows_.add(rows);
  }
  void record_reload() { reloads_.add(); }
  /// A queued PREDICT dropped with DEADLINE_EXCEEDED because its client
  /// deadline expired before the compute plane reached it.
  void record_shed_expired() { shed_expired_.add(); }
  /// A PREDICT shed at admission by the latency-signal policy (queue
  /// sojourn p99 above target).
  void record_shed_overload() { shed_overload_.add(); }
  /// A fault on the mapped store (SIGBUS / size change) converted into
  /// structured INTERNAL responses plus a forced reload.
  void record_store_fault() { store_faults_.add(); }
  /// Queue sojourn (decode → compute-plane pop) of one PREDICT.
  void record_sojourn_us(std::int64_t us) {
    sojourn_.record(us < 0 ? 0 : static_cast<std::uint64_t>(us));
  }
  /// Publishes the sliding-window sojourn p99 the admission policy sees.
  void update_sojourn_p99(std::uint64_t us) {
    sojourn_p99_gauge_.set(static_cast<std::int64_t>(us));
  }
  void record_latency_us(std::int64_t us);
  /// One coalesced predict batch of `requests` requests handed to the
  /// compute plane.
  void record_batch(std::size_t requests) { batch_size_.record(requests); }
  /// Sets the live queue-depth gauge (and raises the high-water mark).
  /// Callers must report shrinkage too — a gauge only ever fed on the
  /// push side reads high forever after a burst.
  void update_queue_depth(std::size_t depth);
  /// Decoded PREDICT requests currently waiting for the compute plane.
  /// Fed on enqueue AND dequeue so the gauge drains back to 0.
  void update_predict_backlog(std::size_t depth) {
    predict_backlog_gauge_.set(static_cast<std::int64_t>(depth));
  }

  StatsSnapshot snapshot() const;

 private:
  obs::Counter& connections_;
  obs::Counter& ok_;
  obs::Counter& errors_;
  obs::Counter& no_group_;
  obs::Counter& rejected_;
  obs::Counter& pings_;
  obs::Counter& stats_requests_;
  obs::Counter& cells_;
  obs::Counter& rows_;
  obs::Counter& reloads_;
  obs::Counter& shed_expired_;
  obs::Counter& shed_overload_;
  obs::Counter& store_faults_;
  obs::Gauge& queue_depth_gauge_;
  obs::Gauge& queue_high_water_gauge_;
  obs::Gauge& predict_backlog_gauge_;
  obs::Gauge& sojourn_p99_gauge_;
  obs::Histogram& latency_;
  obs::Histogram& batch_size_;
  obs::Histogram& sojourn_;

  // Registry values at construction: snapshot() reports deltas.
  std::uint64_t base_connections_;
  std::uint64_t base_ok_;
  std::uint64_t base_errors_;
  std::uint64_t base_no_group_;
  std::uint64_t base_rejected_;
  std::uint64_t base_pings_;
  std::uint64_t base_stats_requests_;
  std::uint64_t base_cells_;
  std::uint64_t base_rows_;
  std::uint64_t base_reloads_;
  std::uint64_t base_shed_expired_;
  std::uint64_t base_shed_overload_;
  std::uint64_t base_store_faults_;
  obs::HistogramSnapshot base_latency_;
  obs::HistogramSnapshot base_batch_size_;
  obs::HistogramSnapshot base_sojourn_;

  // Maxima are per-instance (they do not subtract); the global gauge
  // still tracks the process-wide high water.
  std::atomic<std::uint64_t> queue_high_water_{0};
  std::atomic<std::uint64_t> latency_max_us_{0};
};

/// The `serve_stats` block dumped on SIGUSR1 and at shutdown.
std::string format_stats(const StatsSnapshot& s);

}  // namespace caml::serve
