#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace caml::serve {

/// Point-in-time copy of the serve counters, safe to format and compare.
struct StatsSnapshot {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_ok = 0;       ///< predictions answered kPredictOk
  std::uint64_t requests_error = 0;    ///< structured kError answers (excl. rejects)
  std::uint64_t rejected_overload = 0; ///< backpressure rejects at the acceptor
  std::uint64_t pings = 0;
  std::uint64_t cells_predicted = 0;
  std::uint64_t rows_classified = 0;   ///< CA-matrix rows pushed through the forests
  std::uint64_t queue_high_water = 0;  ///< max pending connections observed
  std::uint64_t reloads = 0;           ///< successful SIGHUP store reloads
  std::uint64_t latency_count = 0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  std::uint64_t requests_served() const { return requests_ok + requests_error + pings; }
};

/// Lock-free counters for the serve daemon. All mutators are safe to
/// call concurrently from any worker; snapshot() may race individual
/// increments (counters are read one by one) but never tears a single
/// counter — fine for monitoring output.
///
/// Latency is kept in a log-scaled histogram (8 sub-buckets per octave
/// of microseconds), so p50/p99 are exact to within ~9% of the true
/// value with O(1) memory and no per-request allocation.
class ServeStats {
 public:
  void record_connection() { connections_.fetch_add(1, std::memory_order_relaxed); }
  void record_ping() { pings_.fetch_add(1, std::memory_order_relaxed); }
  void record_reject() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void record_error() { errors_.fetch_add(1, std::memory_order_relaxed); }
  void record_ok(std::uint64_t cells, std::uint64_t rows) {
    ok_.fetch_add(1, std::memory_order_relaxed);
    cells_.fetch_add(cells, std::memory_order_relaxed);
    rows_.fetch_add(rows, std::memory_order_relaxed);
  }
  void record_reload() { reloads_.fetch_add(1, std::memory_order_relaxed); }
  void record_latency_us(std::int64_t us);
  /// Raises the queue high-water mark to `depth` if above it.
  void update_queue_depth(std::size_t depth);

  StatsSnapshot snapshot() const;

 private:
  static constexpr std::size_t kOctaves = 40;     // up to ~2^40 us ≈ 12 days
  static constexpr std::size_t kSubBuckets = 8;   // per octave
  static constexpr std::size_t kBuckets = kOctaves * kSubBuckets;
  static std::size_t bucket_for(std::uint64_t us);
  static double bucket_upper_us(std::size_t bucket);

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> pings_{0};
  std::atomic<std::uint64_t> cells_{0};
  std::atomic<std::uint64_t> rows_{0};
  std::atomic<std::uint64_t> queue_high_water_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> latency_max_us_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> latency_hist_{};
};

/// The `serve_stats` block dumped on SIGUSR1 and at shutdown.
std::string format_stats(const StatsSnapshot& s);

}  // namespace caml::serve
