#include "sim/evaluator.hpp"

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace caml {

namespace {

bool transistor_active(const Transistor& t, Sig gate_value) {
  if (t.type == MosType::kNmos) return gate_value == Sig::kOne;
  return gate_value == Sig::kZero;
}

}  // namespace

GoldenResult simulate_golden(const Cell& cell, const std::vector<Stimulus>& stimuli,
                             const SimConfig& config) {
  CAML_TRACE_SPAN_ITEMS("golden_sim", stimuli.size());
  GoldenResult result;
  result.responses.reserve(stimuli.size());
  result.initial_responses.reserve(stimuli.size());
  result.activity.reserve(stimuli.size());
  SwitchSim sim(cell, config);

  const auto gate_states = [&]() {
    std::vector<bool> active(cell.num_transistors());
    for (std::size_t ti = 0; ti < cell.num_transistors(); ++ti) {
      const Transistor& t = cell.transistor(static_cast<TransistorId>(ti));
      const Sig g = sim.net_value(t.gate);
      if (!sig_is_binary(g)) {
        throw Error("cell " + cell.name() + ": gate of device '" + t.name +
                    "' does not settle to a binary value in the golden simulation");
      }
      active[ti] = transistor_active(t, g);
    }
    return active;
  };

  for (const Stimulus& s : stimuli) {
    sim.reset();
    const Sig initial_out = sim.apply(s.initial_pattern());
    Sig out = initial_out;
    const std::vector<bool> initial_active = gate_states();
    std::vector<bool> final_active = initial_active;
    if (!s.is_static()) {
      out = sim.apply(s.final_pattern());
      final_active = gate_states();
    }
    if (!sig_is_binary(initial_out) || !sig_is_binary(out)) {
      throw Error("cell " + cell.name() + ": output does not settle to a binary value under '" +
                  s.to_string() + "' in the golden simulation");
    }
    result.responses.push_back(out);
    result.initial_responses.push_back(initial_out);
    std::vector<Wave> act(cell.num_transistors());
    for (std::size_t ti = 0; ti < cell.num_transistors(); ++ti) {
      act[ti] = wave_from_pair(initial_active[ti], final_active[ti]);
    }
    result.activity.push_back(std::move(act));
  }
  return result;
}

std::uint64_t truth_table(const Cell& cell, const SimConfig& config) {
  const std::size_t n = cell.num_inputs();
  CAML_ASSERT(n >= 1 && n <= 6);  // 2^6 = 64 rows fit the uint64 encoding
  std::uint64_t tt = 0;
  SwitchSim sim(cell, config);
  for (InputPattern p = 0; p < (InputPattern{1} << n); ++p) {
    sim.reset();
    const Sig out = sim.apply(p);
    if (!sig_is_binary(out)) {
      throw Error("cell " + cell.name() + ": non-binary output in truth_table()");
    }
    if (out == Sig::kOne) tt |= std::uint64_t{1} << p;
  }
  return tt;
}

std::vector<Sig> simulate_responses(const Cell& cell, const std::vector<Stimulus>& stimuli,
                                    const SimConfig& config) {
  std::vector<Sig> out(stimuli.size(), Sig::kX);
  SwitchSim sim(cell, config);
  sim.run_batch(stimuli, out.data());
  return out;
}

}  // namespace caml
