#pragma once

#include <cstdint>
#include <vector>

#include "logic/stimulus.hpp"
#include "logic/wave.hpp"
#include "netlist/cell.hpp"
#include "sim/switch_sim.hpp"

namespace caml {

/// Result of the single defect-free ("golden") simulation of a cell: the
/// cell response and the per-transistor switching activity for every
/// stimulus — exactly the information the paper's CA-matrix needs
/// (Section III.A).
struct GoldenResult {
  /// responses[s] = output value under stimuli[s] (after the final
  /// pattern for dynamic stimuli). Always binary for a valid cell.
  std::vector<Sig> responses;
  /// Output value after the *initial* pattern of stimulus s (equals
  /// responses[s] for static stimuli). Combined with responses[s] this
  /// yields the 4-valued response column of the CA-matrix.
  std::vector<Sig> initial_responses;
  /// activity[s][t] = switching activity of transistor t under stimulus
  /// s: kZero (passive), kOne (active), kRise (passive -> active),
  /// kFall (active -> passive). "Active" follows the paper's definition:
  /// logic-1 on an NMOS gate, logic-0 on a PMOS gate.
  std::vector<std::vector<Wave>> activity;
};

/// Runs the golden simulation over a stimulus list. Throws caml::Error
/// if the defect-free cell fails to settle to a binary value on its
/// output or on any transistor gate (such a netlist is not a valid
/// combinational standard cell).
GoldenResult simulate_golden(const Cell& cell, const std::vector<Stimulus>& stimuli,
                             const SimConfig& config = {});

/// Truth table of the cell over its 2^n static patterns, encoded with
/// bit p = response to input pattern p. Computed from the golden
/// simulation; throws like simulate_golden. At most 16 inputs.
std::uint64_t truth_table(const Cell& cell, const SimConfig& config = {});

/// Response of a (possibly defect-injected) cell to every stimulus.
/// Unlike the golden simulation, X / Z responses are allowed and
/// reported as-is.
std::vector<Sig> simulate_responses(const Cell& cell, const std::vector<Stimulus>& stimuli,
                                    const SimConfig& config = {});

}  // namespace caml
