#include "sim/switch_sim.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caml {

int SimConfig::device_strength(const Transistor& t) const {
  const double mobility = t.type == MosType::kPmos ? pmos_mobility : 1.0;
  const double effective = t.width_um * mobility / t.length_um * 0.03;  // normalized to L=30nm
  const double ratio = effective / unit_width_um;
  const int cls = base_strength + static_cast<int>(std::lround(std::log2(std::max(ratio, 1e-6))));
  return std::clamp(cls, min_strength, max_strength);
}

SwitchSim::SwitchSim(const Cell& cell, SimConfig config) : cell_(&cell), config_(config) {
  rebind();
}

void SwitchSim::bind(const Cell& cell) {
  cell_ = &cell;
  rebind();
}

void SwitchSim::reserve(std::size_t nets, std::size_t transistors) {
  device_gate_.reserve(transistors);
  device_is_pmos_.reserve(transistors);
  device_strength_.reserve(transistors);
  adj_offset_.reserve(nets + 1);
  adj_.reserve(2 * transistors);
  gate_offset_.reserve(nets + 1);
  gate_list_.reserve(transistors);
  csr_cursor_.reserve(nets);
  value_.reserve(nets);
  strength_.reserve(nets);
  retained_.reserve(nets);
  driven_.reserve(nets);
  pinned_x_.reserve(nets);
  cond_.reserve(transistors);
  queued_.reserve(nets);
  // The queued_ guard keeps each net in the worklist at most once, so
  // `nets` entries bound the list for the whole propagation.
  worklist_.reserve(nets);
  previous_.reserve(nets);
  batch_state_.reserve(nets);
}

void SwitchSim::rebind() {
  const Cell& cell = *cell_;
  const std::size_t nets = cell.num_nets();
  const std::size_t devices = cell.num_transistors();

  device_gate_.resize(devices);
  device_is_pmos_.resize(devices);
  device_strength_.resize(devices);
  for (std::size_t t = 0; t < devices; ++t) {
    const Transistor& tr = cell.transistors()[t];
    device_gate_[t] = tr.gate;
    device_is_pmos_[t] = tr.type == MosType::kPmos ? 1 : 0;
    device_strength_[t] = config_.device_strength(tr);
  }

  // Channel CSR. Filling in ascending transistor order (drain arc before
  // source arc) reproduces the per-net visit order of the former
  // vector-of-vectors adjacency exactly.
  adj_offset_.assign(nets + 1, 0);
  for (const Transistor& tr : cell.transistors()) {
    ++adj_offset_[static_cast<std::size_t>(tr.drain) + 1];
    ++adj_offset_[static_cast<std::size_t>(tr.source) + 1];
  }
  for (std::size_t n = 0; n < nets; ++n) adj_offset_[n + 1] += adj_offset_[n];
  adj_.resize(2 * devices);
  csr_cursor_.assign(adj_offset_.begin(), adj_offset_.begin() + static_cast<std::ptrdiff_t>(nets));
  for (std::size_t t = 0; t < devices; ++t) {
    const Transistor& tr = cell.transistors()[t];
    const std::int32_t s = device_strength_[t];
    adj_[csr_cursor_[static_cast<std::size_t>(tr.drain)]++] =
        ChannelArc{tr.source, static_cast<TransistorId>(t), s};
    adj_[csr_cursor_[static_cast<std::size_t>(tr.source)]++] =
        ChannelArc{tr.drain, static_cast<TransistorId>(t), s};
  }

  // Gate-load CSR (which conductions a net value change invalidates).
  gate_offset_.assign(nets + 1, 0);
  for (std::size_t t = 0; t < devices; ++t) {
    ++gate_offset_[static_cast<std::size_t>(device_gate_[t]) + 1];
  }
  for (std::size_t n = 0; n < nets; ++n) gate_offset_[n + 1] += gate_offset_[n];
  gate_list_.resize(devices);
  csr_cursor_.assign(gate_offset_.begin(),
                     gate_offset_.begin() + static_cast<std::ptrdiff_t>(nets));
  for (std::size_t t = 0; t < devices; ++t) {
    gate_list_[csr_cursor_[static_cast<std::size_t>(device_gate_[t])]++] =
        static_cast<TransistorId>(t);
  }

  value_.assign(nets, Sig::kZ);
  strength_.assign(nets, 0);
  retained_.assign(nets, Sig::kZ);
  driven_.assign(nets, 0);
  pinned_x_.assign(nets, 0);
  cond_.assign(devices, Conduction::kOff);
  queued_.assign(nets, 0);
  previous_.assign(nets, Sig::kZ);
  worklist_.clear();
  batch_valid_ = false;
  oscillated_ = false;
}

void SwitchSim::reset() {
  std::fill(retained_.begin(), retained_.end(), Sig::kZ);
  std::fill(value_.begin(), value_.end(), Sig::kZ);
  std::fill(strength_.begin(), strength_.end(), 0);
  oscillated_ = false;
}

SwitchSim::Conduction SwitchSim::conduction_for(Sig gate, bool is_pmos) {
  // Total over the Sig domain by construction: Sig values are 0..3 and
  // index the table directly — no unreachable error branch.
  static constexpr Conduction kTable[2][4] = {
      // NMOS: gate 0 -> off, 1 -> on, X -> unknown, Z (floating) -> off
      {Conduction::kOff, Conduction::kOn, Conduction::kUnknown, Conduction::kOff},
      // PMOS: gate 0 -> on, 1 -> off, X -> unknown, Z (floating) -> off
      {Conduction::kOn, Conduction::kOff, Conduction::kUnknown, Conduction::kOff},
  };
  return kTable[is_pmos ? 1 : 0][static_cast<std::size_t>(gate) & 3u];
}

void SwitchSim::eval_conduction(TransistorId t) {
  const auto ti = static_cast<std::size_t>(t);
  cond_[ti] = conduction_for(value_[static_cast<std::size_t>(device_gate_[ti])],
                             device_is_pmos_[ti] != 0);
}

void SwitchSim::eval_all_conduction() {
  for (std::size_t t = 0; t < cond_.size(); ++t) {
    eval_conduction(static_cast<TransistorId>(t));
  }
}

namespace {

/// Join of two values meeting at the same strength.
Sig join(Sig a, Sig b) {
  if (a == b) return a;
  if (a == Sig::kZ) return b;
  if (b == Sig::kZ) return a;
  return Sig::kX;
}

}  // namespace

void SwitchSim::propagate() {
  const std::size_t nets = value_.size();

  // Initialize every net from its sources: driven nets at drive
  // strength, oscillation-pinned nets at drive strength (X), floating
  // nets at their retained charge.
  for (std::size_t n = 0; n < nets; ++n) {
    if (driven_[n]) {
      strength_[n] = config_.drive_strength;
    } else if (pinned_x_[n]) {
      value_[n] = Sig::kX;
      strength_[n] = config_.drive_strength;
    } else if (retained_[n] != Sig::kZ) {
      value_[n] = retained_[n];
      strength_[n] = config_.charge_strength;
    } else {
      value_[n] = Sig::kZ;
      strength_[n] = 0;
    }
  }

  // Worklist relaxation over a monotone lattice: a net's strength only
  // rises, and at its top strength the value only degrades towards X.
  // Each net re-enters the worklist a bounded number of times, so the
  // fixpoint is reached unconditionally — pass-transistor cycles cannot
  // oscillate here.
  worklist_.clear();
  for (std::size_t n = 0; n < nets; ++n) {
    queued_[n] = 1;
    worklist_.push_back(static_cast<std::uint32_t>(n));
  }

  const auto offer = [&](std::size_t to, Sig v, int s) -> bool {
    if (driven_[to] || pinned_x_[to]) return false;  // fixed nets
    if (v == Sig::kZ || s <= 0) return false;        // nothing to offer
    if (s > strength_[to]) {
      strength_[to] = s;
      value_[to] = v;
      return true;
    }
    if (s == strength_[to]) {
      const Sig joined = join(value_[to], v);
      if (joined != value_[to]) {
        value_[to] = joined;
        return true;
      }
    }
    return false;
  };

  while (!worklist_.empty()) {
    const std::size_t n = worklist_.back();
    worklist_.pop_back();
    queued_[n] = 0;
    if (value_[n] == Sig::kZ) continue;
    const std::uint32_t arc_end = adj_offset_[n + 1];
    for (std::uint32_t a = adj_offset_[n]; a < arc_end; ++a) {
      const ChannelArc& arc = adj_[a];
      const Conduction c = cond_[static_cast<std::size_t>(arc.device)];
      if (c == Conduction::kOff) continue;
      const auto other = static_cast<std::size_t>(arc.other);
      const Sig v = c == Conduction::kUnknown ? Sig::kX : value_[n];
      const int s = std::min(strength_[n], arc.strength);
      if (offer(other, v, s) && !queued_[other]) {
        queued_[other] = 1;
        worklist_.push_back(static_cast<std::uint32_t>(other));
      }
    }
  }
}

void SwitchSim::full_propagate() {
  eval_all_conduction();
  propagate();
}

bool SwitchSim::solve(std::size_t cap) {
  const std::size_t nets = value_.size();
  for (std::size_t iter = 0; iter < cap; ++iter) {
    if (iter == 0) {
      // The pre-solve values were set externally (apply / pinning), so
      // every conduction state is potentially stale.
      eval_all_conduction();
    } else {
      // Incremental: previous_ holds the values conduction was last
      // computed from (the state before the last propagate), so exactly
      // the gates on since-changed nets need re-evaluation. This yields
      // bit-identical conduction states to a full re-evaluation.
      bool cond_changed = false;
      for (std::size_t n = 0; n < nets; ++n) {
        if (value_[n] == previous_[n]) continue;
        const std::uint32_t end = gate_offset_[n + 1];
        for (std::uint32_t g = gate_offset_[n]; g < end; ++g) {
          const auto ti = static_cast<std::size_t>(gate_list_[g]);
          const Conduction c = conduction_for(
              value_[static_cast<std::size_t>(device_gate_[ti])], device_is_pmos_[ti] != 0);
          if (c != cond_[ti]) {
            cond_[ti] = c;
            cond_changed = true;
          }
        }
      }
      // With every conduction state unchanged, the next propagation is a
      // deterministic replay of the previous one over identical inputs
      // (conduction, drives, pins, retained charge): value_ already holds
      // its result, so the convergence test below would succeed verbatim.
      // Returning here skips that confirming propagation — the floor per
      // apply() drops from two full propagations to one.
      if (!cond_changed) return true;
    }
    previous_ = value_;
    propagate();
    if (value_ == previous_ && iter > 0) return true;
    // iter 0 always runs a second time: the first propagation computed
    // conduction from the pre-solve values.
  }
  return false;
}

Sig SwitchSim::apply(InputPattern pattern) {
  const Cell& cell = *cell_;
  // The previous steady state becomes the retained charge.
  retained_ = value_;
  std::fill(driven_.begin(), driven_.end(), std::uint8_t{0});
  std::fill(pinned_x_.begin(), pinned_x_.end(), std::uint8_t{0});
  oscillated_ = false;

  const auto drive = [&](NetId net, Sig v) {
    value_[static_cast<std::size_t>(net)] = v;
    driven_[static_cast<std::size_t>(net)] = 1;
  };
  drive(cell.vdd(), Sig::kOne);
  drive(cell.vss(), Sig::kZero);
  const auto& inputs = cell.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    drive(inputs[i], sig_from_bool((pattern >> i) & 1u));
  }

  // Conduction changes at most once per transistor per settled stage in
  // feedforward cells; the cap only matters for genuine feedback loops.
  const std::size_t cap = 2 * cell.num_transistors() + 8;
  if (!solve(cap)) {
    // Conduction-level oscillation (e.g. a gate-drain short forming an
    // inverting loop): pin the nets still moving to X and re-solve.
    oscillated_ = true;
    previous_ = value_;
    full_propagate();
    for (std::size_t n = 0; n < cell.num_nets(); ++n) {
      if (value_[n] != previous_[n]) pinned_x_[n] = 1;
    }
    if (!solve(cap)) {
      // Multi-phase oscillation: pessimize every floating net.
      for (std::size_t n = 0; n < cell.num_nets(); ++n) {
        if (!driven_[n]) pinned_x_[n] = 1;
      }
      full_propagate();
    }
  }
  return net_value(cell.output());
}

Sig SwitchSim::run(const Stimulus& stimulus) {
  CAML_ASSERT(stimulus.num_inputs() == cell_->num_inputs());
  reset();
  Sig out = apply(stimulus.initial_pattern());
  if (!stimulus.is_static()) out = apply(stimulus.final_pattern());
  return out;
}

void SwitchSim::run_batch(const Stimulus* stimuli, std::size_t count, Sig* out) {
  batch_valid_ = false;
  for (std::size_t i = 0; i < count; ++i) {
    const Stimulus& s = stimuli[i];
    CAML_ASSERT(s.num_inputs() == cell_->num_inputs());
    const InputPattern initial = s.initial_pattern();
    if (!batch_valid_ || initial != batch_pattern_) {
      reset();
      batch_out_ = apply(initial);
      // The settled values are the only state the next apply() reads:
      // retained charge is taken from value_ on entry, drives/pins are
      // cleared, and propagate() rewrites every strength. Snapshotting
      // them captures the cold-start initial state exactly.
      batch_state_ = value_;
      batch_pattern_ = initial;
      batch_valid_ = true;
    }
    if (s.is_static()) {
      out[i] = batch_out_;
      continue;
    }
    value_ = batch_state_;
    out[i] = apply(s.final_pattern());
  }
}

Sig SwitchSim::net_value(NetId net) const { return value_.at(static_cast<std::size_t>(net)); }

}  // namespace caml
