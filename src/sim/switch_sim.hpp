#pragma once

#include <cstdint>
#include <vector>

#include "logic/stimulus.hpp"
#include "logic/wave.hpp"
#include "netlist/cell.hpp"

namespace caml {

/// Tuning knobs of the switch-level engine.
///
/// Strengths form a small integer lattice: rail/input drivers are
/// strongest, transistor paths attenuate to the device's strength class,
/// stored charge on a floating net is weakest. A net's value is the join
/// of the strongest contributions reaching it; equal-strength conflicts
/// resolve to X. Transistor strength classes derive from W/L so that
/// technology sizing rules influence which short-induced fights win —
/// the mechanism by which CA models become (slightly) technology
/// dependent, as the paper observes for test-condition changes.
struct SimConfig {
  /// Strength of primary inputs and of the VDD/VSS rails.
  int drive_strength = 100;
  /// Strength of retained charge on a floating net.
  int charge_strength = 1;
  /// Strength class of a device with width == unit_width_um.
  int base_strength = 5;
  /// Width that maps to base_strength (before mobility correction).
  double unit_width_um = 0.2;
  /// Clamp range of device strength classes.
  int min_strength = 2;
  int max_strength = 9;
  /// PMOS mobility penalty: effective width is width * pmos_mobility.
  double pmos_mobility = 0.5;

  /// Strength class of a transistor under this configuration.
  int device_strength(const Transistor& t) const;
};

/// Event-free switch-level simulator for one Cell.
///
/// Usage: construct once per cell, then for each stimulus call run(); or
/// drive pattern-by-pattern with reset() / apply(). When the bound cell
/// is mutated in place (DefectOverlay), call rebind() to re-derive the
/// internal structure — after a reserve() covering the mutated sizes the
/// rebind and every subsequent apply()/run() perform no heap allocation,
/// which is what makes the per-defect characterization loop
/// allocation-free. The engine models:
///  - bidirectional conduction through MOS channels,
///  - discrete drive-strength resolution (fights resolve to the stronger
///    side, ties to X),
///  - charge retention on floating nets (Z until first driven, then the
///    last steady value at charge strength) — which is what makes
///    stuck-open defects require two-pattern tests,
///  - pessimistic X propagation: an X on a gate makes the channel
///    conduction unknown, which conveys X at path strength; a Z gate
///    (truly floating, e.g. after a gate-open defect) leaves the channel
///    non-conducting,
///  - oscillation containment: nets still changing at the sweep cap are
///    pinned to X and the solve is repeated once.
///
/// Internally the channel graph is a CSR adjacency of packed arcs (other
/// terminal, device, path strength) so the propagation worklist touches
/// one contiguous array, and conduction re-evaluation between solve
/// iterations is incremental: only transistors whose gate net changed in
/// the previous iteration are recomputed. Both are exact — the results
/// are bit-identical to the naive full re-evaluation.
class SwitchSim {
 public:
  explicit SwitchSim(const Cell& cell, SimConfig config = {});

  const Cell& cell() const { return *cell_; }
  const SimConfig& config() const { return config_; }

  /// Re-binds to a (possibly different) cell and fully re-derives device
  /// strengths, adjacency and state storage.
  void bind(const Cell& cell);

  /// Re-derives the internal structure from the currently bound cell
  /// after it was mutated in place. Reuses all buffers: with capacity
  /// from reserve() this performs no heap allocation.
  void rebind();

  /// Pre-grows every internal buffer for cells up to the given sizes so
  /// later rebind()/apply() calls never allocate.
  void reserve(std::size_t nets, std::size_t transistors);

  /// Forget all stored charge (all non-driven nets return to Z).
  void reset();

  /// Apply an input pattern and settle to steady state. Returns the cell
  /// output value. Stored charge from the previous steady state is kept.
  Sig apply(InputPattern pattern);

  /// Full stimulus from a cold start: reset, apply the initial pattern,
  /// then (for dynamic stimuli) the final pattern. Returns the final
  /// output value.
  Sig run(const Stimulus& stimulus);

  /// Runs every stimulus exactly as consecutive run() calls would (each
  /// from a cold start) and writes the final output values to out.
  ///
  /// A run's result is a pure function of the settled state after the
  /// initial pattern, and that state is fully captured by the net values
  /// (apply() rederives everything else). Stimulus generators emit
  /// two-pattern sets grouped by initial pattern, so the settled initial
  /// state is computed once per group and replayed for every final
  /// pattern sharing it — near-halving the apply() count of a defect
  /// sweep. Net state afterwards is that of the last stimulus processed.
  void run_batch(const Stimulus* stimuli, std::size_t count, Sig* out);
  void run_batch(const std::vector<Stimulus>& stimuli, Sig* out) {
    run_batch(stimuli.data(), stimuli.size(), out);
  }

  /// Steady-state value of any net after the last apply().
  Sig net_value(NetId net) const;

  /// True if the last apply() hit the sweep cap (oscillation detected and
  /// contained by pinning to X).
  bool last_solve_oscillated() const { return oscillated_; }

 private:
  enum class Conduction : std::uint8_t { kOff, kOn, kUnknown };

  /// One direction of a MOS channel as seen from a net: conduction
  /// carries the source net's value to `other` at min(value strength,
  /// `strength`). Packed so the worklist loop reads one contiguous array.
  struct ChannelArc {
    NetId other;
    TransistorId device;
    std::int32_t strength;
  };

  /// Channel conduction for a gate value — a total function of the Sig
  /// domain by construction (constexpr table), so there is no unreachable
  /// error path in the hot loop.
  static Conduction conduction_for(Sig gate, bool is_pmos);

  void eval_conduction(TransistorId t);
  void eval_all_conduction();

  /// One full net resolution for the current (frozen) conduction states:
  /// a monotone lattice propagation (strength only increases, values only
  /// degrade towards X at equal strength), so it always reaches a
  /// fixpoint regardless of pass-transistor cycles.
  void propagate();

  /// Conduction evaluation followed by one propagation — the seed
  /// semantics of a standalone propagate() call, used by the oscillation
  /// containment paths.
  void full_propagate();

  /// Outer loop: alternate conduction evaluation and propagation until
  /// net values stabilize. Between iterations only transistors whose
  /// gate net changed are re-evaluated. Returns false if the conduction
  /// states never stabilize (genuine feedback, e.g. a gate-drain short).
  bool solve(std::size_t cap);

  const Cell* cell_;
  SimConfig config_;

  // Packed per-transistor records (hot fields of Transistor).
  std::vector<NetId> device_gate_;
  std::vector<std::uint8_t> device_is_pmos_;
  std::vector<std::int32_t> device_strength_;

  // CSR channel adjacency: arcs for net n live in
  // adj_[adj_offset_[n] .. adj_offset_[n + 1]).
  std::vector<std::uint32_t> adj_offset_;
  std::vector<ChannelArc> adj_;
  // CSR gate loads: transistors whose gate is net n, for incremental
  // conduction re-evaluation.
  std::vector<std::uint32_t> gate_offset_;
  std::vector<TransistorId> gate_list_;
  std::vector<std::uint32_t> csr_cursor_;  ///< scratch for CSR fills

  std::vector<Sig> value_;               ///< current net values
  std::vector<int> strength_;            ///< strength backing each value
  std::vector<Sig> retained_;            ///< steady value of previous pattern (charge)
  std::vector<std::uint8_t> driven_;     ///< fixed by input/rail this pattern
  std::vector<std::uint8_t> pinned_x_;   ///< oscillation containment

  // Persistent scratch of the solve/propagate loops (hoisted so the
  // steady state allocates nothing).
  std::vector<Conduction> cond_;         ///< per-transistor conduction
  std::vector<std::uint8_t> queued_;
  std::vector<std::uint32_t> worklist_;
  std::vector<Sig> previous_;            ///< values before the last propagate
  // run_batch cache: settled net values after applying batch_pattern_
  // from a cold start, plus the output it produced.
  std::vector<Sig> batch_state_;
  InputPattern batch_pattern_ = 0;
  Sig batch_out_ = Sig::kX;
  bool batch_valid_ = false;
  bool oscillated_ = false;
};

}  // namespace caml
