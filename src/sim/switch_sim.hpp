#pragma once

#include <vector>

#include "logic/stimulus.hpp"
#include "logic/wave.hpp"
#include "netlist/cell.hpp"

namespace caml {

/// Tuning knobs of the switch-level engine.
///
/// Strengths form a small integer lattice: rail/input drivers are
/// strongest, transistor paths attenuate to the device's strength class,
/// stored charge on a floating net is weakest. A net's value is the join
/// of the strongest contributions reaching it; equal-strength conflicts
/// resolve to X. Transistor strength classes derive from W/L so that
/// technology sizing rules influence which short-induced fights win —
/// the mechanism by which CA models become (slightly) technology
/// dependent, as the paper observes for test-condition changes.
struct SimConfig {
  /// Strength of primary inputs and of the VDD/VSS rails.
  int drive_strength = 100;
  /// Strength of retained charge on a floating net.
  int charge_strength = 1;
  /// Strength class of a device with width == unit_width_um.
  int base_strength = 5;
  /// Width that maps to base_strength (before mobility correction).
  double unit_width_um = 0.2;
  /// Clamp range of device strength classes.
  int min_strength = 2;
  int max_strength = 9;
  /// PMOS mobility penalty: effective width is width * pmos_mobility.
  double pmos_mobility = 0.5;

  /// Strength class of a transistor under this configuration.
  int device_strength(const Transistor& t) const;
};

/// Event-free switch-level simulator for one Cell.
///
/// Usage: construct once per (possibly defect-injected) cell, then for
/// each stimulus call run(); or drive pattern-by-pattern with reset() /
/// apply(). The engine models:
///  - bidirectional conduction through MOS channels,
///  - discrete drive-strength resolution (fights resolve to the stronger
///    side, ties to X),
///  - charge retention on floating nets (Z until first driven, then the
///    last steady value at charge strength) — which is what makes
///    stuck-open defects require two-pattern tests,
///  - pessimistic X propagation: an X on a gate makes the channel
///    conduction unknown, which conveys X at path strength; a Z gate
///    (truly floating, e.g. after a gate-open defect) leaves the channel
///    non-conducting,
///  - oscillation containment: nets still changing at the sweep cap are
///    pinned to X and the solve is repeated once.
class SwitchSim {
 public:
  explicit SwitchSim(const Cell& cell, SimConfig config = {});

  const Cell& cell() const { return *cell_; }
  const SimConfig& config() const { return config_; }

  /// Forget all stored charge (all non-driven nets return to Z).
  void reset();

  /// Apply an input pattern and settle to steady state. Returns the cell
  /// output value. Stored charge from the previous steady state is kept.
  Sig apply(InputPattern pattern);

  /// Full stimulus from a cold start: reset, apply the initial pattern,
  /// then (for dynamic stimuli) the final pattern. Returns the final
  /// output value.
  Sig run(const Stimulus& stimulus);

  /// Steady-state value of any net after the last apply().
  Sig net_value(NetId net) const;

  /// True if the last apply() hit the sweep cap (oscillation detected and
  /// contained by pinning to X).
  bool last_solve_oscillated() const { return oscillated_; }

 private:
  enum class Conduction : std::uint8_t { kOff, kOn, kUnknown };

  Conduction conduction_of(TransistorId id) const;

  /// One full net resolution for the current conduction states: a
  /// monotone lattice propagation (strength only increases, values only
  /// degrade towards X at equal strength), so it always reaches a
  /// fixpoint regardless of pass-transistor cycles.
  void propagate();

  /// Outer loop: alternate conduction evaluation and propagation until
  /// net values stabilize. Returns false if the conduction states never
  /// stabilize (genuine feedback, e.g. a gate-drain short).
  bool solve(std::size_t cap);

  const Cell* cell_;
  SimConfig config_;
  std::vector<int> device_strength_;
  /// channel_adj_[net] = transistors whose source or drain touches net.
  std::vector<std::vector<TransistorId>> channel_adj_;

  std::vector<Sig> value_;       ///< current net values
  std::vector<int> strength_;    ///< strength backing each value
  std::vector<Sig> retained_;    ///< steady value of previous pattern (charge)
  std::vector<bool> driven_;     ///< fixed by input/rail this pattern
  std::vector<bool> pinned_x_;   ///< oscillation containment
  bool oscillated_ = false;
};

}  // namespace caml
