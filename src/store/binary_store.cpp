#include "store/binary_store.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace caml::store {

namespace {

std::uint32_t read_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

std::uint32_t matrix_to_flags(const MatrixOptions& m) {
  std::uint32_t flags = 0;
  if (m.include_activity) flags |= 1u << 0;
  if (m.include_response) flags |= 1u << 1;
  if (m.include_truth_table) flags |= 1u << 2;
  if (m.include_defect_kind) flags |= 1u << 3;
  return flags;
}

MatrixOptions flags_to_matrix(std::uint32_t flags) {
  MatrixOptions m;
  m.include_activity = (flags & (1u << 0)) != 0;
  m.include_response = (flags & (1u << 1)) != 0;
  m.include_truth_table = (flags & (1u << 2)) != 0;
  m.include_defect_kind = (flags & (1u << 3)) != 0;
  return m;
}

std::uint64_t tree_section_bytes(std::uint64_t node_count) {
  // header + packed nodes + count0 + count1.
  return kTreeHeaderBytes + node_count * (kPackedNodeBytes + 8 + 8);
}

/// Encodes one tree section (header, nodes, count0, count1) appended to
/// `out`. Shared by the CRC pre-pass and the write pass so both see the
/// exact same bytes.
void encode_tree(const DecisionTree& tree, std::string& out) {
  const std::size_t nc = tree.num_nodes();
  out.clear();
  out.reserve(tree_section_bytes(nc));
  append_u64(out, nc);
  append_u64(out, 0);  // reserved
  unsigned char node[kPackedNodeBytes];
  std::vector<DecisionTree::NodeRecord> records(nc);
  for (std::size_t i = 0; i < nc; ++i) records[i] = tree.node_record(i);
  for (std::size_t i = 0; i < nc; ++i) {
    encode_packed_node(records[i], node);
    out.append(reinterpret_cast<const char*>(node), kPackedNodeBytes);
  }
  for (std::size_t i = 0; i < nc; ++i) append_u64(out, records[i].count0);
  for (std::size_t i = 0; i < nc; ++i) append_u64(out, records[i].count1);
}

struct SectionPlan {
  GroupKey key;
  const RandomForest* forest = nullptr;
  std::uint64_t offset = 0;  ///< within the payload
  std::uint64_t size = 0;
};

}  // namespace

void write_binary_store_file(const std::string& path, const GroupModelStore& store) {
  // Plan the sections: sizes, offsets, index.
  std::vector<SectionPlan> plan;
  for (const GroupKey& key : store.group_keys()) {
    SectionPlan s;
    s.key = key;
    s.forest = store.forest_for(key);
    CAML_ASSERT(s.forest != nullptr);
    CAML_ASSERT(key.num_inputs <= std::numeric_limits<std::uint32_t>::max());
    CAML_ASSERT(key.num_transistors <= std::numeric_limits<std::uint32_t>::max());
    CAML_ASSERT(s.forest->num_features() <= std::numeric_limits<std::uint32_t>::max());
    for (const DecisionTree& tree : s.forest->trees()) {
      s.size += tree_section_bytes(tree.num_nodes());
    }
    plan.push_back(s);
  }
  const std::uint64_t index_offset = kBinHeaderBytes;
  const std::uint64_t data_offset = index_offset + plan.size() * kIndexEntryBytes;
  std::uint64_t at = data_offset;
  for (SectionPlan& s : plan) {
    s.offset = at;
    at += s.size;
  }
  const std::uint64_t payload_size = at;

  std::string index;
  index.reserve(plan.size() * kIndexEntryBytes);
  for (const SectionPlan& s : plan) {
    append_u32(index, static_cast<std::uint32_t>(s.key.num_inputs));
    append_u32(index, static_cast<std::uint32_t>(s.key.num_transistors));
    append_u64(index, s.offset);
    append_u64(index, s.size);
    append_u32(index, static_cast<std::uint32_t>(s.forest->trees().size()));
    append_u32(index, static_cast<std::uint32_t>(s.forest->num_features()));
  }

  // Pre-pass: the data-section CRC must land in the header, which is
  // written before the data — encode each tree once into a reusable
  // scratch buffer and feed the CRC, so memory stays O(largest tree)
  // instead of O(store).
  io::Crc32 data_crc;
  std::string scratch;
  for (const SectionPlan& s : plan) {
    for (const DecisionTree& tree : s.forest->trees()) {
      encode_tree(tree, scratch);
      data_crc.update(scratch);
    }
  }

  std::string header;
  header.reserve(kBinHeaderBytes);
  header.append(kBinaryMagic, sizeof(kBinaryMagic));
  append_u32(header, kEndianTag);
  append_u32(header, kBinaryVersion);
  append_u64(header, payload_size);
  append_u32(header, static_cast<std::uint32_t>(plan.size()));
  append_u32(header, matrix_to_flags(store.matrix_options()));
  append_u64(header, index_offset);
  append_u64(header, data_offset);
  append_u32(header, io::crc32(index));
  append_u32(header, data_crc.value());
  append_u64(header, 0);  // reserved
  CAML_ASSERT(header.size() == kBinHeaderBytes);

  io::ChecksummedFileWriter writer(path, std::string(kBinaryStoreKind), "store");
  writer.write(header.data(), header.size());
  writer.write(index.data(), index.size());
  for (const SectionPlan& s : plan) {
    for (const DecisionTree& tree : s.forest->trees()) {
      encode_tree(tree, scratch);
      writer.write(scratch.data(), scratch.size());
    }
  }
  writer.commit();  // flushes the tail chunk, then publishes
  CAML_ASSERT(writer.bytes_written() == payload_size);
}

bool is_binary_store_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  const std::string want =
      std::string(io::kContainerMagic) + " " + std::string(kBinaryStoreKind) + " ";
  std::string head(want.size(), '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  return static_cast<std::size_t>(in.gcount()) == want.size() && head == want;
}

namespace {

/// Container-header scan done in place over the mapping (no payload
/// copy, unlike io::unwrap_checksummed). Returns the payload view and
/// its absolute file offset; `declared_crc` is checked by the caller
/// only under Verify::kFull, because hashing the whole payload is the
/// O(file) cost the mapped open exists to avoid.
struct Container {
  std::string_view payload;
  std::size_t payload_base = 0;  ///< file offset of payload start
  std::uint32_t declared_crc = 0;
};

[[noreturn]] void fail_at(const std::string& path, std::uint64_t offset,
                          const std::string& what) {
  throw ParseError::in_file(
      path, ParseError(what + " (at byte offset " + std::to_string(offset) + ")", 1));
}

Container parse_container(const std::string& path, std::string_view bytes) {
  if (!io::is_checksummed(bytes)) {
    fail_at(path, 0, "not a " + std::string(io::kContainerMagic) + " container (bad magic)");
  }
  const std::size_t header_end = bytes.find('\n');
  if (header_end == std::string_view::npos) {
    fail_at(path, bytes.size(), "container header has no newline (file truncated)");
  }
  const std::vector<std::string> tok = split(bytes.substr(0, header_end));
  if (tok.size() != 4 || tok[2].rfind("len=", 0) != 0 || tok[3].rfind("crc32=", 0) != 0) {
    fail_at(path, 0, "malformed container header '" +
                         std::string(bytes.substr(0, header_end)) + "'");
  }
  if (tok[1] != kBinaryStoreKind) {
    fail_at(path, 0, "container holds a '" + tok[1] + "' payload, expected '" +
                         std::string(kBinaryStoreKind) + "'");
  }
  const auto declared_len = try_parse_uint64(std::string_view(tok[2]).substr(4));
  if (!declared_len) {
    fail_at(path, 0, "malformed container header '" +
                         std::string(bytes.substr(0, header_end)) + "'");
  }
  Container c;
  c.payload_base = header_end + 1;
  c.payload = bytes.substr(c.payload_base);
  if (c.payload.size() != *declared_len) {
    fail_at(path, bytes.size(),
            "truncated container: header declares " + std::to_string(*declared_len) +
                " payload bytes but " + std::to_string(c.payload.size()) + " are present");
  }
  // crc32= token: 8 hex digits (validated by width + parse).
  const std::string_view crc_text = std::string_view(tok[3]).substr(6);
  std::uint32_t crc = 0;
  if (crc_text.size() != 8) fail_at(path, 0, "malformed container crc field");
  for (const char ch : crc_text) {
    crc <<= 4;
    if (ch >= '0' && ch <= '9') crc |= static_cast<std::uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') crc |= static_cast<std::uint32_t>(ch - 'a' + 10);
    else if (ch >= 'A' && ch <= 'F') crc |= static_cast<std::uint32_t>(ch - 'A' + 10);
    else fail_at(path, 0, "malformed container crc field");
  }
  c.declared_crc = crc;
  return c;
}

}  // namespace

MappedModelStore MappedModelStore::open(const std::string& path, Verify verify) {
  MappedModelStore store;
  store.path_ = path;
  store.file_ = io::MappedFile(path);
  const Container c = parse_container(path, store.file_.bytes());
  const unsigned char* payload =
      reinterpret_cast<const unsigned char*>(c.payload.data());
  const std::uint64_t size = c.payload.size();
  // Errors report absolute file offsets (payload offset + container
  // header length) so a hexdump of the named offset shows the bad bytes.
  const auto file_off = [&](std::uint64_t payload_off) {
    return payload_off + c.payload_base;
  };

  if (verify == Verify::kFull) {
    const std::uint32_t actual = io::crc32(c.payload);
    if (actual != c.declared_crc) {
      fail_at(path, file_off(0), "container checksum mismatch over the payload");
    }
  }

  if (size < kBinHeaderBytes) {
    fail_at(path, file_off(size),
            "binary store truncated: " + std::to_string(size) + " payload bytes, header needs " +
                std::to_string(kBinHeaderBytes));
  }
  if (std::memcmp(payload, kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    fail_at(path, file_off(0), "bad binary store magic");
  }
  if (read_u32(payload + 8) != kEndianTag) {
    fail_at(path, file_off(8),
            "binary store byte order does not match this host (endian tag mismatch)");
  }
  const std::uint32_t version = read_u32(payload + 12);
  if (version != kBinaryVersion) {
    fail_at(path, file_off(12),
            "unsupported binary store version " + std::to_string(version) + " (expected " +
                std::to_string(kBinaryVersion) + ")");
  }
  if (read_u64(payload + 16) != size) {
    fail_at(path, file_off(16),
            "header payload_size " + std::to_string(read_u64(payload + 16)) +
                " does not match actual payload size " + std::to_string(size));
  }
  const std::uint64_t group_count = read_u32(payload + 24);
  const std::uint32_t matrix_flags = read_u32(payload + 28);
  if ((matrix_flags & ~0xFu) != 0) {
    fail_at(path, file_off(28), "unknown matrix flag bits");
  }
  const std::uint64_t index_offset = read_u64(payload + 32);
  const std::uint64_t data_offset = read_u64(payload + 40);
  const std::uint32_t index_crc = read_u32(payload + 48);
  const std::uint32_t data_crc = read_u32(payload + 52);
  const std::uint64_t index_bytes = group_count * kIndexEntryBytes;
  if (index_offset != kBinHeaderBytes) {
    fail_at(path, file_off(32), "index_offset must be " + std::to_string(kBinHeaderBytes));
  }
  // group_count is a u32 and kIndexEntryBytes is 32, so index_bytes
  // cannot overflow u64; the bound checks below are plain comparisons.
  if (data_offset != index_offset + index_bytes) {
    fail_at(path, file_off(40),
            "data_offset " + std::to_string(data_offset) + " does not follow the index (" +
                std::to_string(index_offset + index_bytes) + ")");
  }
  if (data_offset > size) {
    fail_at(path, file_off(40), "index table extends past the payload end");
  }
  const std::string_view index_view = c.payload.substr(index_offset, index_bytes);
  if (io::crc32(index_view) != index_crc) {
    fail_at(path, file_off(index_offset), "index table checksum mismatch");
  }
  if (verify == Verify::kFull) {
    if (io::crc32(c.payload.substr(data_offset)) != data_crc) {
      fail_at(path, file_off(data_offset), "data section checksum mismatch");
    }
  }

  store.matrix_ = flags_to_matrix(matrix_flags);
  store.keys_.reserve(group_count);
  store.forests_.reserve(group_count);
  store.infos_.reserve(group_count);

  std::uint64_t expected_offset = data_offset;
  for (std::uint64_t g = 0; g < group_count; ++g) {
    const unsigned char* entry = payload + index_offset + g * kIndexEntryBytes;
    const std::uint64_t entry_off = file_off(index_offset + g * kIndexEntryBytes);
    GroupInfo info;
    info.key = GroupKey{read_u32(entry), read_u32(entry + 4)};
    info.forest_offset = read_u64(entry + 8);
    info.forest_size = read_u64(entry + 16);
    info.num_trees = read_u32(entry + 24);
    info.num_features = read_u32(entry + 28);
    if (!store.keys_.empty() && !(store.keys_.back() < info.key)) {
      fail_at(path, entry_off, "index keys not in strictly ascending order");
    }
    if (info.num_trees == 0) fail_at(path, entry_off, "group declares zero trees");
    if (info.num_features == 0) fail_at(path, entry_off, "group declares zero features");
    // Sections are contiguous in index order, so bounds reduce to a
    // running cursor: any gap, overlap or out-of-bounds offset trips.
    if (info.forest_offset != expected_offset) {
      fail_at(path, entry_off,
              "forest section offset " + std::to_string(info.forest_offset) +
                  " does not match the running layout (" + std::to_string(expected_offset) +
                  ")");
    }
    if (info.forest_size > size - expected_offset) {
      fail_at(path, entry_off, "forest section extends past the payload end");
    }
    expected_offset += info.forest_size;

    // Walk the tree sections: O(1) per tree (header only), so opening a
    // store stays independent of node counts.
    std::vector<MappedForest::TreeRef> trees;
    trees.reserve(info.num_trees);
    std::uint64_t at = info.forest_offset;
    const std::uint64_t section_end = info.forest_offset + info.forest_size;
    for (std::uint32_t t = 0; t < info.num_trees; ++t) {
      if (section_end - at < kTreeHeaderBytes) {
        fail_at(path, file_off(at), "tree header extends past its forest section");
      }
      const std::uint64_t node_count = read_u64(payload + at);
      if (node_count == 0) fail_at(path, file_off(at), "tree declares zero nodes");
      if (node_count > static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max())) {
        fail_at(path, file_off(at), "tree node count exceeds the index range");
      }
      const std::uint64_t body = node_count * (kPackedNodeBytes + 16);
      if (section_end - at - kTreeHeaderBytes < body) {
        fail_at(path, file_off(at),
                "tree section (" + std::to_string(node_count) +
                    " nodes) extends past its forest section");
      }
      MappedForest::TreeRef ref;
      ref.node_count = node_count;
      ref.nodes = payload + at + kTreeHeaderBytes;
      ref.count0 = ref.nodes + node_count * kPackedNodeBytes;
      ref.count1 = ref.count0 + node_count * 8;
      trees.push_back(ref);
      at += kTreeHeaderBytes + body;
    }
    if (at != section_end) {
      fail_at(path, file_off(at),
              "forest section length mismatch: " + std::to_string(section_end - at) +
                  " trailing bytes after the last tree");
    }

    if (verify == Verify::kFull) {
      // Structural node validation: everything the traversal dereferences
      // is proven in range up front, so even a crafted file with valid
      // checksums cannot push predict() out of bounds or into a cycle
      // (children must point strictly forward).
      for (const MappedForest::TreeRef& ref : trees) {
        for (std::uint64_t i = 0; i < ref.node_count; ++i) {
          const PackedNode node = decode_packed_node(ref.nodes + i * kPackedNodeBytes);
          const std::uint64_t node_off = file_off(
              static_cast<std::uint64_t>(ref.nodes - payload) + i * kPackedNodeBytes);
          if (node.is_leaf()) continue;
          if (node.left <= static_cast<std::int64_t>(i) || node.right <= static_cast<std::int64_t>(i) ||
              static_cast<std::uint64_t>(node.left) >= ref.node_count ||
              static_cast<std::uint64_t>(node.right) >= ref.node_count) {
            fail_at(path, node_off, "tree node children out of range");
          }
          if (node.feature >= info.num_features) {
            fail_at(path, node_off, "tree node feature index out of range");
          }
        }
      }
    }

    store.keys_.push_back(info.key);
    store.forests_.emplace_back(std::move(trees),
                                static_cast<std::size_t>(info.num_features));
    store.infos_.push_back(info);
  }
  if (expected_offset != size) {
    fail_at(path, file_off(expected_offset),
            "payload has " + std::to_string(size - expected_offset) +
                " trailing bytes after the last forest section");
  }
  return store;
}

const Classifier* MappedModelStore::classifier_for(const GroupKey& key) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return nullptr;
  return &forests_[static_cast<std::size_t>(it - keys_.begin())];
}

GroupModelStore MappedModelStore::materialize() const {
  std::map<GroupKey, RandomForest> models;
  for (std::size_t g = 0; g < keys_.size(); ++g) {
    const MappedForest& view = forests_[g];
    std::vector<DecisionTree> trees;
    trees.reserve(view.num_trees());
    for (std::size_t t = 0; t < view.num_trees(); ++t) {
      const MappedForest::TreeRef& ref = view.tree(t);
      std::vector<DecisionTree::NodeRecord> records(ref.node_count);
      for (std::size_t i = 0; i < ref.node_count; ++i) {
        const PackedNode node = decode_packed_node(ref.nodes + i * kPackedNodeBytes);
        records[i].left = node.left;
        records[i].right = node.right;
        records[i].feature = node.feature;
        records[i].threshold = node.threshold;
        records[i].count0 = read_u64(ref.count0 + i * 8);
        records[i].count1 = read_u64(ref.count1 + i * 8);
      }
      trees.push_back(DecisionTree::from_records(records));
    }
    models.emplace(keys_[g], RandomForest::assemble(std::move(trees), view.num_features()));
  }
  return GroupModelStore::assemble(std::move(models), matrix_);
}

std::shared_ptr<const ModelStore> open_model_store(const std::string& path) {
  if (is_binary_store_file(path)) {
    auto store = std::make_shared<MappedModelStore>(MappedModelStore::open(path));
    log_info() << "opened binary model store " << path << " (" << store->num_groups()
               << " groups, " << store->bytes_mapped() << " bytes mapped)";
    return store;
  }
  return std::make_shared<GroupModelStore>(GroupModelStore::load_file(path));
}

}  // namespace caml::store
