#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flow/model_store.hpp"
#include "ml/forest_view.hpp"
#include "util/io.hpp"

namespace caml::store {

/// Binary model-store section: a CAMLF1 container of kind "models.bin"
/// whose payload is a fixed-layout, offset-indexed binary image of a
/// GroupModelStore. The layout is designed for zero-parse mmap serving:
/// a 64-byte header, a sorted group-key index table, then per-group
/// forest sections whose node arrays are the packed 16-byte hot-node
/// layout the in-memory traversal kernel uses — MappedModelStore walks
/// trees directly over the mapping.
///
/// Payload layout (all integers native little-endian, offsets relative
/// to the payload start; every field is read through memcpy so the
/// payload may begin at any byte alignment after the variable-length
/// container header):
///
///   BinHeader (64 bytes)
///     0  magic[8]        "CAMLBIN1"
///     8  endian u32      0x01020304 (byte-order canary)
///    12  version u32     1
///    16  payload_size u64  total payload bytes (== container len)
///    24  group_count u32
///    28  matrix_flags u32  bit0 activity, bit1 response,
///                          bit2 truth table, bit3 defect kind
///    32  index_offset u64  == 64
///    40  data_offset u64   == 64 + 32 * group_count
///    48  index_crc32 u32   CRC-32 of the index table bytes
///    52  payload_crc32 u32 CRC-32 of [data_offset, payload_size)
///    56  reserved u64      0
///
///   IndexEntry (32 bytes each, sorted by (inputs, transistors),
///   forest sections contiguous in index order)
///     0  num_inputs u32
///     4  num_transistors u32
///     8  forest_offset u64
///    16  forest_size u64
///    24  num_trees u32
///    28  num_features u32
///
///   Forest section: num_trees tree sections back to back, each
///     0  node_count u64
///     8  reserved u64    0
///    16  nodes   node_count * 16 bytes (packed hot nodes, ml/forest_view.hpp)
///        count0  node_count * u64 (leaf votes, class 0)
///        count1  node_count * u64
///
/// See docs/FORMATS.md for the normative spec.
inline constexpr std::string_view kBinaryStoreKind = "models.bin";
inline constexpr char kBinaryMagic[8] = {'C', 'A', 'M', 'L', 'B', 'I', 'N', '1'};
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::uint32_t kBinaryVersion = 1;
inline constexpr std::size_t kBinHeaderBytes = 64;
inline constexpr std::size_t kIndexEntryBytes = 32;
inline constexpr std::size_t kTreeHeaderBytes = 16;

/// Converts `store` to the binary section and publishes it atomically at
/// `path` (streaming writer, fault point "store" — same crash-safety
/// guarantees as the text save). Throws caml::Error on I/O failure.
void write_binary_store_file(const std::string& path, const GroupModelStore& store);

/// True when the file starts with a CAMLF1 "models.bin" container
/// header — the sniff `open_model_store` and the CLI use to pick the
/// binary or the text loader. False for missing/short files.
bool is_binary_store_file(const std::string& path);

/// Read-only model store over a memory-mapped binary section: open cost
/// is O(header + index + one header per tree), independent of forest
/// node counts, and predictions traverse the packed node arrays in
/// place — zero parse, zero copy. Implements the same ModelStore
/// contract as GroupModelStore and answers bit-identically (enforced by
/// tests/store_test.cpp).
class MappedModelStore final : public ModelStore {
 public:
  /// kFull (default, used by serve and the CLI) additionally checks the
  /// container CRC, the data-section CRC and every node's structural
  /// invariants (children forward-pointing and in range, feature index
  /// within the group's feature count) — a corrupt or adversarial file
  /// fails with a ParseError naming the file and byte offset, never UB.
  /// kMapOnly skips the O(payload) work and trusts the index CRC plus
  /// section-bounds walk; it exists so bench_store_load can demonstrate
  /// the size-independent open cost.
  enum class Verify { kFull, kMapOnly };

  /// Maps and validates `path`. Throws caml::ParseError (naming the file
  /// and byte offset) on any validation failure, caml::Error when the
  /// file cannot be opened or mapped.
  static MappedModelStore open(const std::string& path, Verify verify = Verify::kFull);

  MappedModelStore(MappedModelStore&&) noexcept = default;
  MappedModelStore& operator=(MappedModelStore&&) noexcept = default;

  std::size_t num_groups() const override { return keys_.size(); }
  const MatrixOptions& matrix_options() const override { return matrix_; }
  const Classifier* classifier_for(const GroupKey& key) const override;

  /// Size revalidation against the pinned fd: false once the backing
  /// file was truncated or rewritten in place (its on-disk size differs
  /// from the mapped size) — accesses past the new EOF would SIGBUS.
  /// The serve plane checks this before every batch and treats false as
  /// a store fault.
  bool healthy() const override { return !file_.size_changed(); }

  /// Per-group section facts for `caml store --info`.
  struct GroupInfo {
    GroupKey key;
    std::uint64_t forest_offset = 0;
    std::uint64_t forest_size = 0;
    std::uint32_t num_trees = 0;
    std::uint32_t num_features = 0;
  };
  const std::vector<GroupInfo>& group_infos() const { return infos_; }

  /// Size of the underlying mapping (whole file) — feeds the
  /// caml_store_bytes_mapped gauge.
  std::size_t bytes_mapped() const { return file_.size(); }
  const std::string& path() const { return path_; }

  /// Copies the mapped forests back into an owning GroupModelStore (the
  /// `caml store --to-text` conversion path). Trees are rebuilt through
  /// DecisionTree::from_records, so the result round-trips through the
  /// text format byte-identically.
  GroupModelStore materialize() const;

 private:
  MappedModelStore() = default;

  io::MappedFile file_;
  std::string path_;
  MatrixOptions matrix_;
  std::vector<GroupKey> keys_;          ///< sorted, parallel to forests_
  std::vector<MappedForest> forests_;
  std::vector<GroupInfo> infos_;
};

/// Opens `path` as whichever store format it holds: the mmap-backed
/// binary store when the container kind is "models.bin" (verified kFull),
/// otherwise the text loader (framed or legacy unframed). This is the
/// single entry point `caml serve` / `caml predict` load through, so a
/// daemon prefers the binary store automatically.
std::shared_ptr<const ModelStore> open_model_store(const std::string& path);

}  // namespace caml::store
