#pragma once

#include <stdexcept>
#include <string>

namespace caml {

/// Base exception for all errors raised by this library. Every throwing
/// API documents the condition; internal invariant violations use
/// CAML_ASSERT instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an input file (SPICE netlist, CA model) is malformed.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t line)
      : Error("line " + std::to_string(line) + ": " + what), line_(line) {}

  /// Prefixes a file name to an existing ParseError without re-stamping
  /// the "line N:" header — file loaders use this so corrupt artifacts
  /// fail loud naming the offending file.
  static ParseError in_file(const std::string& file, const ParseError& inner) {
    return ParseError(AlreadyFormatted{}, file + ": " + inner.what(), inner.line());
  }

  std::size_t line() const { return line_; }

 private:
  struct AlreadyFormatted {};
  ParseError(AlreadyFormatted, const std::string& what, std::size_t line)
      : Error(what), line_(line) {}

  std::size_t line_;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  throw Error(std::string("internal invariant violated: ") + expr + " at " + file + ":" +
              std::to_string(line));
}
}  // namespace detail

}  // namespace caml

/// Always-on invariant check; throws caml::Error (never aborts) so that
/// library users can recover and tests can assert on failure.
#define CAML_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::caml::detail::assert_fail(#expr, __FILE__, __LINE__))
