#include "util/fault.hpp"

#if CAML_FAULT_INJECTION

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caml::fault {

namespace {

struct State {
  Spec spec;
  bool armed = false;
  std::size_t hits = 0;       // matching operations since arm
  std::size_t triggered = 0;  // actual firings
};

std::mutex g_mutex;
State g_state;
std::once_flag g_env_once;

Kind parse_kind(const std::string& name) {
  if (name == "fail-write") return Kind::kFailWrite;
  if (name == "short-write") return Kind::kShortWrite;
  if (name == "torn-rename") return Kind::kTornRename;
  if (name == "kill") return Kind::kKill;
  if (name == "slow-io") return Kind::kSlowIo;
  if (name == "short-read") return Kind::kShortRead;
  if (name == "econnreset") return Kind::kConnReset;
  if (name == "eagain") return Kind::kEagain;
  if (name == "eintr") return Kind::kEintr;
  if (name == "stall") return Kind::kStall;
  throw Error("CAML_FAULT: unknown fault kind '" + name +
              "' (want fail-write | short-write | torn-rename | kill | slow-io | "
              "short-read | econnreset | eagain | eintr | stall)");
}

/// Parses CAML_FAULT once per process; an unset/empty variable leaves
/// the harness disarmed. A malformed spec throws on the first hook hit
/// (loud beats silently ignoring a typo in a crash test).
void arm_from_env_locked() {
  const char* env = std::getenv("CAML_FAULT");
  if (env == nullptr || *env == '\0') return;
  const std::vector<std::string> parts = split(env, ":");
  if (parts.size() < 3 || parts.size() > 4) {
    throw Error(std::string("CAML_FAULT: expected <point>:<kind>:<nth>[:<param>], got '") +
                env + "'");
  }
  Spec spec;
  spec.point = parts[0];
  spec.kind = parse_kind(parts[1]);
  const auto nth = try_parse_uint64(parts[2]);
  if (!nth || *nth == 0) throw Error("CAML_FAULT: nth must be a positive integer");
  spec.nth = static_cast<std::size_t>(*nth);
  if (parts.size() == 4) {
    const auto param = try_parse_uint64(parts[3]);
    if (!param) throw Error("CAML_FAULT: param must be a non-negative integer");
    spec.param = static_cast<std::size_t>(*param);
  }
  g_state.spec = spec;
  g_state.armed = true;
}

bool point_matches(const std::string& pattern, const char* point) {
  return pattern == "*" || pattern == point;
}

/// The class of operation a hook reports, deciding which kinds apply.
enum class Op { kFileWrite, kFileRename, kNetRead, kNetWrite, kNetPoll };

bool kind_applies(Kind kind, Op op) {
  // kill and slow-io treat every matching op as a crash/delay candidate.
  if (kind == Kind::kKill || kind == Kind::kSlowIo) return true;
  switch (op) {
    case Op::kFileWrite:
      return kind == Kind::kFailWrite || kind == Kind::kShortWrite;
    case Op::kFileRename:
      return kind == Kind::kTornRename;
    case Op::kNetRead:
      return kind == Kind::kShortRead || kind == Kind::kConnReset || kind == Kind::kEagain ||
             kind == Kind::kEintr || kind == Kind::kStall;
    case Op::kNetWrite:
      return kind == Kind::kShortWrite || kind == Kind::kConnReset || kind == Kind::kEagain ||
             kind == Kind::kEintr || kind == Kind::kStall;
    case Op::kNetPoll:
      return kind == Kind::kEintr;
  }
  return false;
}

/// How many consecutive ops a storm kind covers starting at nth.
std::size_t storm_span(const Spec& spec) {
  if (spec.kind == Kind::kEagain) return spec.param > 0 ? spec.param : 64;
  if (spec.kind == Kind::kEintr) return spec.param > 0 ? spec.param : 8;
  return 1;
}

/// Counts the operation and decides whether the armed spec fires on it.
/// Must be called with g_mutex held.
bool op_fires_locked(const char* point, Op op) {
  std::call_once(g_env_once, [] { arm_from_env_locked(); });
  if (!g_state.armed || !point_matches(g_state.spec.point, point)) return false;
  const Kind kind = g_state.spec.kind;
  if (!kind_applies(kind, op)) return false;
  ++g_state.hits;
  const std::size_t nth = g_state.spec.nth;
  // slow-io and the socket trickle kinds fire from the nth op on; the
  // EAGAIN/EINTR storms fire for a bounded run of consecutive ops; the
  // one-shot kinds fire exactly once.
  if (kind == Kind::kSlowIo || kind == Kind::kShortRead ||
      (kind == Kind::kShortWrite && (op == Op::kNetWrite))) {
    return g_state.hits >= nth;
  }
  if (kind == Kind::kEagain || kind == Kind::kEintr) {
    return g_state.hits >= nth && g_state.hits < nth + storm_span(g_state.spec);
  }
  return g_state.hits == nth;
}

[[noreturn]] void kill_self() {
  // A real crash: no unwinding, no destructors, no atexit. Exactly what
  // the durability layer must survive.
  ::kill(::getpid(), SIGKILL);
  ::pause();  // unreachable; silences [[noreturn]] analysis
  std::abort();
}

}  // namespace

void arm(const Spec& spec) {
  std::lock_guard<std::mutex> lock(g_mutex);
  // Defeat a pending CAML_FAULT parse: the test API always wins.
  std::call_once(g_env_once, [] {});
  g_state = State{};
  g_state.spec = spec;
  g_state.armed = spec.kind != Kind::kNone;
}

void disarm() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::call_once(g_env_once, [] {});
  g_state = State{};
}

std::size_t times_triggered() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_state.triggered;
}

std::size_t times_hit() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_state.hits;
}

WriteDecision before_write(const char* point, std::size_t n) {
  std::unique_lock<std::mutex> lock(g_mutex);
  if (!op_fires_locked(point, Op::kFileWrite)) return {n, false};
  ++g_state.triggered;
  const Spec spec = g_state.spec;
  lock.unlock();
  switch (spec.kind) {
    case Kind::kFailWrite:
      throw Error(std::string("fault injection: failing write at '") + point + "' (op " +
                  std::to_string(spec.nth) + ")");
    case Kind::kShortWrite: {
      const std::size_t keep = spec.param > 0 ? std::min(spec.param, n) : n / 2;
      return {keep, true};
    }
    case Kind::kKill:
      kill_self();
    case Kind::kSlowIo:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.param > 0 ? spec.param : 50));
      return {n, false};
    default:
      return {n, false};
  }
}

void before_rename(const char* point) {
  std::unique_lock<std::mutex> lock(g_mutex);
  if (!op_fires_locked(point, Op::kFileRename)) return;
  ++g_state.triggered;
  const Spec spec = g_state.spec;
  lock.unlock();
  switch (spec.kind) {
    case Kind::kTornRename:
      throw Error(std::string("fault injection: torn rename at '") + point + "' (op " +
                  std::to_string(spec.nth) + ")");
    case Kind::kKill:
      kill_self();
    case Kind::kSlowIo:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.param > 0 ? spec.param : 50));
      return;
    default:
      return;
  }
}

namespace {

/// Shared body of the socket read/write hooks: the only difference
/// between the two is the Op class (which controls kind applicability).
NetDecision net_io_decision(const char* point, std::size_t n, Op op) {
  std::unique_lock<std::mutex> lock(g_mutex);
  if (!op_fires_locked(point, op)) return {n, 0};
  ++g_state.triggered;
  const Spec spec = g_state.spec;
  lock.unlock();
  switch (spec.kind) {
    case Kind::kShortRead:
    case Kind::kShortWrite: {
      // Trickle: never deliver more than `param` bytes per syscall.
      const std::size_t cap = spec.param > 0 ? spec.param : 1;
      return {std::min(n, std::max<std::size_t>(cap, 1)), 0};
    }
    case Kind::kConnReset:
      return {0, ECONNRESET};
    case Kind::kEagain:
      return {0, EAGAIN};
    case Kind::kEintr:
      return {0, EINTR};
    case Kind::kStall:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.param > 0 ? spec.param : 200));
      return {n, 0};
    case Kind::kKill:
      kill_self();
    case Kind::kSlowIo:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.param > 0 ? spec.param : 50));
      return {n, 0};
    default:
      return {n, 0};
  }
}

}  // namespace

NetDecision before_net_read(const char* point, std::size_t n) {
  return net_io_decision(point, n, Op::kNetRead);
}

NetDecision before_net_write(const char* point, std::size_t n) {
  return net_io_decision(point, n, Op::kNetWrite);
}

bool before_net_poll(const char* point) {
  std::unique_lock<std::mutex> lock(g_mutex);
  if (!op_fires_locked(point, Op::kNetPoll)) return false;
  ++g_state.triggered;
  const Spec spec = g_state.spec;
  lock.unlock();
  if (spec.kind == Kind::kKill) kill_self();
  if (spec.kind == Kind::kSlowIo) {
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.param > 0 ? spec.param : 50));
    return false;
  }
  return spec.kind == Kind::kEintr;
}

}  // namespace caml::fault

#endif  // CAML_FAULT_INJECTION
