#include "util/fault.hpp"

#if CAML_FAULT_INJECTION

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caml::fault {

namespace {

struct State {
  Spec spec;
  bool armed = false;
  std::size_t hits = 0;       // matching operations since arm
  std::size_t triggered = 0;  // actual firings
};

std::mutex g_mutex;
State g_state;
std::once_flag g_env_once;

Kind parse_kind(const std::string& name) {
  if (name == "fail-write") return Kind::kFailWrite;
  if (name == "short-write") return Kind::kShortWrite;
  if (name == "torn-rename") return Kind::kTornRename;
  if (name == "kill") return Kind::kKill;
  if (name == "slow-io") return Kind::kSlowIo;
  throw Error("CAML_FAULT: unknown fault kind '" + name +
              "' (want fail-write | short-write | torn-rename | kill | slow-io)");
}

/// Parses CAML_FAULT once per process; an unset/empty variable leaves
/// the harness disarmed. A malformed spec throws on the first hook hit
/// (loud beats silently ignoring a typo in a crash test).
void arm_from_env_locked() {
  const char* env = std::getenv("CAML_FAULT");
  if (env == nullptr || *env == '\0') return;
  const std::vector<std::string> parts = split(env, ":");
  if (parts.size() < 3 || parts.size() > 4) {
    throw Error(std::string("CAML_FAULT: expected <point>:<kind>:<nth>[:<param>], got '") +
                env + "'");
  }
  Spec spec;
  spec.point = parts[0];
  spec.kind = parse_kind(parts[1]);
  const auto nth = try_parse_uint64(parts[2]);
  if (!nth || *nth == 0) throw Error("CAML_FAULT: nth must be a positive integer");
  spec.nth = static_cast<std::size_t>(*nth);
  if (parts.size() == 4) {
    const auto param = try_parse_uint64(parts[3]);
    if (!param) throw Error("CAML_FAULT: param must be a non-negative integer");
    spec.param = static_cast<std::size_t>(*param);
  }
  g_state.spec = spec;
  g_state.armed = true;
}

bool point_matches(const std::string& pattern, const char* point) {
  return pattern == "*" || pattern == point;
}

/// Counts the operation and decides whether the armed spec fires on it.
/// Must be called with g_mutex held.
bool op_fires_locked(const char* point, bool is_rename) {
  std::call_once(g_env_once, [] { arm_from_env_locked(); });
  if (!g_state.armed || !point_matches(g_state.spec.point, point)) return false;
  // Kind/op-type compatibility: write kinds skip renames and vice versa,
  // but kill and slow-io treat every persistence op as a crash/delay
  // candidate.
  const Kind kind = g_state.spec.kind;
  const bool applicable = kind == Kind::kKill || kind == Kind::kSlowIo ||
                          (is_rename ? kind == Kind::kTornRename
                                     : kind == Kind::kFailWrite || kind == Kind::kShortWrite);
  if (!applicable) return false;
  ++g_state.hits;
  // slow-io fires from the nth op on; the crash kinds fire exactly once.
  if (kind == Kind::kSlowIo) return g_state.hits >= g_state.spec.nth;
  return g_state.hits == g_state.spec.nth;
}

[[noreturn]] void kill_self() {
  // A real crash: no unwinding, no destructors, no atexit. Exactly what
  // the durability layer must survive.
  ::kill(::getpid(), SIGKILL);
  ::pause();  // unreachable; silences [[noreturn]] analysis
  std::abort();
}

}  // namespace

void arm(const Spec& spec) {
  std::lock_guard<std::mutex> lock(g_mutex);
  // Defeat a pending CAML_FAULT parse: the test API always wins.
  std::call_once(g_env_once, [] {});
  g_state = State{};
  g_state.spec = spec;
  g_state.armed = spec.kind != Kind::kNone;
}

void disarm() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::call_once(g_env_once, [] {});
  g_state = State{};
}

std::size_t times_triggered() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_state.triggered;
}

std::size_t times_hit() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_state.hits;
}

WriteDecision before_write(const char* point, std::size_t n) {
  std::unique_lock<std::mutex> lock(g_mutex);
  if (!op_fires_locked(point, /*is_rename=*/false)) return {n, false};
  ++g_state.triggered;
  const Spec spec = g_state.spec;
  lock.unlock();
  switch (spec.kind) {
    case Kind::kFailWrite:
      throw Error(std::string("fault injection: failing write at '") + point + "' (op " +
                  std::to_string(spec.nth) + ")");
    case Kind::kShortWrite: {
      const std::size_t keep = spec.param > 0 ? std::min(spec.param, n) : n / 2;
      return {keep, true};
    }
    case Kind::kKill:
      kill_self();
    case Kind::kSlowIo:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.param > 0 ? spec.param : 50));
      return {n, false};
    default:
      return {n, false};
  }
}

void before_rename(const char* point) {
  std::unique_lock<std::mutex> lock(g_mutex);
  if (!op_fires_locked(point, /*is_rename=*/true)) return;
  ++g_state.triggered;
  const Spec spec = g_state.spec;
  lock.unlock();
  switch (spec.kind) {
    case Kind::kTornRename:
      throw Error(std::string("fault injection: torn rename at '") + point + "' (op " +
                  std::to_string(spec.nth) + ")");
    case Kind::kKill:
      kill_self();
    case Kind::kSlowIo:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.param > 0 ? spec.param : 50));
      return;
    default:
      return;
  }
}

}  // namespace caml::fault

#endif  // CAML_FAULT_INJECTION
