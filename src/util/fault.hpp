#pragma once

#include <cstddef>
#include <string>

namespace caml::fault {

/// Deterministic fault-injection harness for the persistence and
/// network paths.
///
/// Compiled in only under -DCAML_FAULT_INJECTION=ON; the default build
/// gets inline no-op hooks (zero overhead, nothing to misconfigure in
/// production). When compiled in, one process-wide fault spec is armed
/// either through the test API (arm/disarm) or the CAML_FAULT
/// environment variable:
///
///   CAML_FAULT=<point>:<kind>:<nth>[:<param>]
///
/// where <point> is an injection-point name ("checkpoint", "store",
/// "net-read", "net-write", "net-poll", ...) or "*" for any point,
/// <kind> is one of
///
///   fail-write   throw caml::Error instead of performing the nth write
///   short-write  file writes: write only <param> bytes (default: half)
///                then throw. Socket writes: cap every send from the
///                nth on at <param> bytes (default 1) — a trickle that
///                stress-tests incremental frame transmission
///   torn-rename  throw right before the nth rename (temp file written,
///                target untouched — the classic torn-commit window)
///   kill         raise SIGKILL at the nth matching op (real crash;
///                no destructors, no cleanup)
///   slow-io      sleep <param> ms (default 50) at every matching
///                operation from the nth on
///   short-read   cap every socket read from the nth on at <param>
///                bytes (default 1) — the kernel-side short read
///   econnreset   fail the nth socket read/write with ECONNRESET
///   eagain       fail <param> consecutive socket ops (default 64)
///                starting at the nth with EAGAIN — a spurious-
///                readiness storm the retry loops must absorb
///   eintr        fail <param> consecutive socket/poll ops (default 8)
///                starting at the nth with EINTR — signal-interruption
///                storm; correct code retries, buggy code surfaces a
///                spurious error
///   stall        sleep <param> ms (default 200) once at the nth
///                socket op — a mid-frame stall
///
/// and <nth> is the 1-based ordinal of the matching operation. All
/// matching operations share one counter per armed spec, so
/// "*:kill:7" kills at the 7th matching operation of the process —
/// the knob the crash-safety harness sweeps.
enum class Kind {
  kNone,
  kFailWrite,
  kShortWrite,
  kTornRename,
  kKill,
  kSlowIo,
  kShortRead,
  kConnReset,
  kEagain,
  kEintr,
  kStall,
};

struct Spec {
  std::string point = "*";  ///< injection-point name, "*" matches all
  Kind kind = Kind::kNone;
  std::size_t nth = 1;    ///< 1-based ordinal of the triggering operation
  std::size_t param = 0;  ///< short-write: bytes kept; slow-io: delay ms
};

/// What the caller of before_write must do: write `allow_bytes` of the
/// requested span, then throw if `fail_after` (simulating a short write
/// cut off by a crash).
struct WriteDecision {
  std::size_t allow_bytes;
  bool fail_after;
};

/// What a socket read/write must do. When `force_errno` is nonzero the
/// caller skips the real syscall and behaves exactly as if it failed
/// with that errno (EINTR/EAGAIN/ECONNRESET take their normal handling
/// paths — injection proves those paths, it does not bypass them).
/// Otherwise the caller passes at most `allow_bytes` to the syscall.
struct NetDecision {
  std::size_t allow_bytes;
  int force_errno;
};

/// True when the harness is compiled in.
constexpr bool enabled() {
#if CAML_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

#if CAML_FAULT_INJECTION

/// Arms the process-wide spec (replacing any previous one, including one
/// parsed from CAML_FAULT) and resets the operation counter.
void arm(const Spec& spec);
/// Disarms and resets counters.
void disarm();
/// How many times the armed spec actually fired.
std::size_t times_triggered();
/// Operations observed since arming (matching the point pattern).
std::size_t times_hit();

/// Hook before writing `n` bytes at `point`. May throw caml::Error
/// (fail-write), truncate (short-write), sleep (slow-io) or SIGKILL the
/// process (kill).
WriteDecision before_write(const char* point, std::size_t n);
/// Hook before the commit rename at `point`. May throw (torn-rename),
/// sleep or SIGKILL.
void before_rename(const char* point);

/// Hook before reading up to `n` bytes from a socket at `point`
/// ("net-read"). May cap the read, force an errno, sleep or SIGKILL.
NetDecision before_net_read(const char* point, std::size_t n);
/// Hook before writing up to `n` bytes to a socket at `point`
/// ("net-write"). Same contract as before_net_read.
NetDecision before_net_write(const char* point, std::size_t n);
/// Hook before a poll()-style wait at `point` ("net-poll"). Returns
/// true when the caller must behave as if poll failed with EINTR.
bool before_net_poll(const char* point);

#else

inline void arm(const Spec&) {}
inline void disarm() {}
inline std::size_t times_triggered() { return 0; }
inline std::size_t times_hit() { return 0; }
inline WriteDecision before_write(const char*, std::size_t n) { return {n, false}; }
inline void before_rename(const char*) {}
inline NetDecision before_net_read(const char*, std::size_t n) { return {n, 0}; }
inline NetDecision before_net_write(const char*, std::size_t n) { return {n, 0}; }
inline bool before_net_poll(const char*) { return false; }

#endif

}  // namespace caml::fault
