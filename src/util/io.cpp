#include "util/io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"

namespace caml::io {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

std::string errno_text() { return std::strerror(errno); }

std::string hex8(std::uint32_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::optional<std::uint32_t> parse_hex8(std::string_view token) {
  if (token.size() != 8) return std::nullopt;
  std::uint32_t value = 0;
  for (const char ch : token) {
    value <<= 4;
    if (ch >= '0' && ch <= '9') value |= static_cast<std::uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') value |= static_cast<std::uint32_t>(ch - 'a' + 10);
    else if (ch >= 'A' && ch <= 'F') value |= static_cast<std::uint32_t>(ch - 'A' + 10);
    else return std::nullopt;
  }
  return value;
}

/// fsync the directory containing `path` so the rename itself is
/// durable. Best-effort: some filesystems reject fsync on directory
/// descriptors, and by this point the data rename already succeeded.
void fsync_parent_dir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

void Crc32::update(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = state_;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  state_ = crc;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read " + path + ": " + errno_text());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw Error("read failed for " + path);
  return buffer.str();
}

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw Error("cannot open " + path + ": " + errno_text());
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string detail = errno_text();
    ::close(fd);
    throw Error("cannot stat " + path + ": " + detail);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap of length 0 is invalid; an empty file maps to an empty view.
    ::close(fd);
    return;
  }
  void* base = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (base == MAP_FAILED) {
    const std::string detail = errno_text();
    ::close(fd);
    size_ = 0;
    throw Error("cannot mmap " + path + ": " + detail);
  }
  data_ = static_cast<const unsigned char*>(base);
  // Keep the fd: it pins the inode for the mapping's lifetime and feeds
  // size_changed() revalidation.
  fd_ = fd;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
  if (fd_ >= 0) ::close(fd_);
  data_ = nullptr;
  size_ = 0;
  fd_ = -1;
}

bool MappedFile::size_changed() const {
  if (fd_ < 0) return false;
  struct stat st{};
  if (::fstat(fd_, &st) != 0) return true;
  return static_cast<std::size_t>(st.st_size) != size_;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), fd_(other.fd_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.fd_ = -1;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    fd_ = other.fd_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.fd_ = -1;
  }
  return *this;
}

AtomicFileWriter::AtomicFileWriter(std::string path, std::string fault_point)
    : path_(std::move(path)),
      tmp_(path_ + ".tmp." + std::to_string(::getpid())),
      point_(std::move(fault_point)) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) abort();
}

void AtomicFileWriter::abort() noexcept {
  std::error_code ignored;
  std::filesystem::remove(tmp_, ignored);
}

void AtomicFileWriter::commit() {
  CAML_ASSERT(!committed_);
  const std::string payload = buffer_.str();

  const fault::WriteDecision decision = fault::before_write(point_.c_str(), payload.size());

  const int fd = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw Error("cannot create " + tmp_ + ": " + errno_text());
  std::size_t written = 0;
  while (written < decision.allow_bytes) {
    const ssize_t rc =
        ::write(fd, payload.data() + written, decision.allow_bytes - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      const std::string detail = errno_text();
      ::close(fd);
      throw Error("write failed for " + tmp_ + ": " + detail);
    }
    written += static_cast<std::size_t>(rc);
  }
  if (decision.fail_after) {
    // Injected short write: the bytes on disk stop mid-payload, exactly
    // like a crash between write() and fsync(). The temp file is doomed;
    // the target was never touched.
    ::close(fd);
    throw Error("fault injection: short write at '" + point_ + "' (" +
                std::to_string(decision.allow_bytes) + " of " +
                std::to_string(payload.size()) + " bytes)");
  }
  if (::fsync(fd) != 0) {
    const std::string detail = errno_text();
    ::close(fd);
    throw Error("fsync failed for " + tmp_ + ": " + detail);
  }
  if (::close(fd) != 0) throw Error("close failed for " + tmp_ + ": " + errno_text());

  fault::before_rename(point_.c_str());

  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    throw Error("rename " + tmp_ + " -> " + path_ + " failed: " + errno_text());
  }
  fsync_parent_dir(path_);
  committed_ = true;
}

void write_file_atomic(const std::string& path, std::string_view payload,
                       const std::string& fault_point) {
  AtomicFileWriter writer(path, fault_point);
  writer.stream() << payload;
  writer.commit();
}

std::string frame_checksummed(std::string_view kind, std::string_view payload) {
  CAML_ASSERT(!kind.empty() && kind.find_first_of(" \t\n") == std::string_view::npos);
  std::string out;
  out.reserve(payload.size() + 64);
  out.append(kContainerMagic);
  out.push_back(' ');
  out.append(kind);
  out.append(" len=").append(std::to_string(payload.size()));
  out.append(" crc32=").append(hex8(crc32(payload)));
  out.push_back('\n');
  out.append(payload);
  return out;
}

bool is_checksummed(std::string_view bytes) {
  return bytes.size() > kContainerMagic.size() &&
         bytes.substr(0, kContainerMagic.size()) == kContainerMagic &&
         bytes[kContainerMagic.size()] == ' ';
}

std::string unwrap_checksummed(std::string_view bytes, std::string_view kind,
                               const std::string& path_for_errors) {
  const auto fail = [&](const std::string& what) -> ParseError {
    return ParseError::in_file(path_for_errors, ParseError(what, 1));
  };
  if (!is_checksummed(bytes)) {
    throw fail("not a " + std::string(kContainerMagic) +
               " container (bad magic at offset 0)");
  }
  const std::size_t header_end = bytes.find('\n');
  if (header_end == std::string_view::npos) {
    throw fail("container header has no newline (file truncated at offset " +
               std::to_string(bytes.size()) + ")");
  }
  const std::vector<std::string> tok = split(bytes.substr(0, header_end));
  if (tok.size() != 4 || tok[2].rfind("len=", 0) != 0 || tok[3].rfind("crc32=", 0) != 0) {
    throw fail("malformed container header '" + std::string(bytes.substr(0, header_end)) +
               "'");
  }
  if (tok[1] != kind) {
    throw fail("container holds a '" + tok[1] + "' payload, expected '" + std::string(kind) +
               "'");
  }
  const auto declared_len = try_parse_uint64(std::string_view(tok[2]).substr(4));
  const auto declared_crc = parse_hex8(std::string_view(tok[3]).substr(6));
  if (!declared_len || !declared_crc) {
    throw fail("malformed container header '" + std::string(bytes.substr(0, header_end)) +
               "'");
  }
  const std::size_t payload_offset = header_end + 1;
  const std::string_view payload = bytes.substr(payload_offset);
  if (payload.size() != *declared_len) {
    throw fail("truncated container: header declares " + std::to_string(*declared_len) +
               " payload bytes but " + std::to_string(payload.size()) +
               " are present (payload starts at offset " + std::to_string(payload_offset) +
               ")");
  }
  const std::uint32_t actual_crc = crc32(payload);
  if (actual_crc != *declared_crc) {
    throw fail("checksum mismatch: payload crc32=" + hex8(actual_crc) +
               " but header says crc32=" + hex8(*declared_crc) + " (payload at offset " +
               std::to_string(payload_offset) + ")");
  }
  return std::string(payload);
}

void write_checksummed_file(const std::string& path, std::string_view kind,
                            std::string_view payload, const std::string& fault_point) {
  write_file_atomic(path, frame_checksummed(kind, payload), fault_point);
}

std::string read_checksummed_file(const std::string& path, std::string_view kind) {
  return unwrap_checksummed(read_file(path), kind, path);
}

std::string read_checksummed_or_raw(const std::string& path, std::string_view kind) {
  std::string bytes = read_file(path);
  if (!is_checksummed(bytes)) return bytes;
  return unwrap_checksummed(bytes, kind, path);
}

namespace {

/// Fixed-width CAMLF1 header so the streaming writer can back-patch the
/// real length and CRC over the placeholder: `len=` is zero-padded to 20
/// digits (the widest uint64), which from_chars-based readers parse
/// unchanged.
std::string fixed_width_header(std::string_view kind, std::uint64_t len,
                               std::uint32_t crc) {
  std::string digits = std::to_string(len);
  std::string out;
  out.append(kContainerMagic);
  out.push_back(' ');
  out.append(kind);
  out.append(" len=");
  out.append(20 - digits.size(), '0');
  out.append(digits);
  out.append(" crc32=").append(hex8(crc));
  out.push_back('\n');
  return out;
}

}  // namespace

/// Chunking streambuf: fills a fixed put area and hands full chunks to
/// the writer, so arbitrarily large payloads stream at O(chunk) memory.
class ChecksummedFileWriter::Buf : public std::streambuf {
 public:
  explicit Buf(ChecksummedFileWriter& writer) : writer_(writer) {
    setp(data_.data(), data_.data() + data_.size());
  }

  void flush_pending() {
    const std::size_t n = static_cast<std::size_t>(pptr() - pbase());
    if (n > 0) {
      writer_.flush_chunk(pbase(), n);
      setp(data_.data(), data_.data() + data_.size());
    }
  }

 protected:
  int overflow(int ch) override {
    flush_pending();
    if (ch != traits_type::eof()) {
      *pptr() = static_cast<char>(ch);
      pbump(1);
    }
    return ch == traits_type::eof() ? 0 : ch;
  }

  int sync() override {
    flush_pending();
    return 0;
  }

 private:
  ChecksummedFileWriter& writer_;
  std::array<char, 64 * 1024> data_;
};

ChecksummedFileWriter::ChecksummedFileWriter(std::string path, std::string kind,
                                             std::string fault_point)
    : path_(std::move(path)),
      tmp_(path_ + ".tmp." + std::to_string(::getpid())),
      kind_(std::move(kind)),
      point_(std::move(fault_point)),
      buf_(std::make_unique<Buf>(*this)),
      out_(buf_.get()) {
  CAML_ASSERT(!kind_.empty() && kind_.find_first_of(" \t\n") == std::string::npos);
  // Propagate flush_chunk errors out of operator<< instead of silently
  // latching badbit: with badbit in the exception mask the stream
  // rethrows the original caml::Error.
  out_.exceptions(std::ios::badbit);
  open_staging();
}

ChecksummedFileWriter::~ChecksummedFileWriter() {
  if (!committed_) abort();
}

void ChecksummedFileWriter::abort() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::error_code ignored;
  std::filesystem::remove(tmp_, ignored);
}

void ChecksummedFileWriter::open_staging() {
  fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) throw Error("cannot create " + tmp_ + ": " + errno_text());
  // Placeholder header of the exact final width; commit() patches the
  // real length and CRC in place.
  const std::string placeholder = fixed_width_header(kind_, 0, 0);
  std::size_t written = 0;
  while (written < placeholder.size()) {
    const ssize_t rc =
        ::write(fd_, placeholder.data() + written, placeholder.size() - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error("write failed for " + tmp_ + ": " + errno_text());
    }
    written += static_cast<std::size_t>(rc);
  }
}

void ChecksummedFileWriter::flush_chunk(const char* data, std::size_t n) {
  CAML_ASSERT(fd_ >= 0 && !committed_);
  const fault::WriteDecision decision = fault::before_write(point_.c_str(), n);
  crc_.update(std::string_view(data, n));
  payload_bytes_ += n;
  std::size_t written = 0;
  while (written < decision.allow_bytes) {
    const ssize_t rc = ::write(fd_, data + written, decision.allow_bytes - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error("write failed for " + tmp_ + ": " + errno_text());
    }
    written += static_cast<std::size_t>(rc);
  }
  if (decision.fail_after) {
    throw Error("fault injection: short write at '" + point_ + "' (" +
                std::to_string(decision.allow_bytes) + " of " + std::to_string(n) +
                " bytes)");
  }
}

void ChecksummedFileWriter::write(const void* data, std::size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

void ChecksummedFileWriter::commit() {
  CAML_ASSERT(!committed_);
  buf_->flush_pending();
  const std::string header = fixed_width_header(kind_, payload_bytes_, crc_.value());
  std::size_t written = 0;
  while (written < header.size()) {
    const ssize_t rc = ::pwrite(fd_, header.data() + written, header.size() - written,
                                static_cast<off_t>(written));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error("header patch failed for " + tmp_ + ": " + errno_text());
    }
    written += static_cast<std::size_t>(rc);
  }
  if (::fsync(fd_) != 0) throw Error("fsync failed for " + tmp_ + ": " + errno_text());
  if (::close(fd_) != 0) {
    fd_ = -1;
    throw Error("close failed for " + tmp_ + ": " + errno_text());
  }
  fd_ = -1;

  fault::before_rename(point_.c_str());

  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    throw Error("rename " + tmp_ + " -> " + path_ + " failed: " + errno_text());
  }
  fsync_parent_dir(path_);
  committed_ = true;
}

}  // namespace caml::io
