#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

namespace caml::io {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data` — the checksum
/// every CAMLF1 container carries over its payload.
std::uint32_t crc32(std::string_view data);

/// Incremental CRC-32 over a byte stream: feed chunks through update()
/// and read value() at any point. Equivalent to crc32() over the
/// concatenation, so writers can checksum while streaming instead of
/// buffering the whole payload.
class Crc32 {
 public:
  void update(std::string_view data);
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// Reads a whole file into memory. Throws caml::Error when the file
/// cannot be opened or read.
std::string read_file(const std::string& path);

/// All-or-nothing file replacement: buffers the payload in memory and,
/// on commit(), writes it to `<path>.tmp.<pid>`, fsyncs, renames over
/// `path` and fsyncs the parent directory. A crash (or injected fault)
/// at any point leaves the previous file intact — readers only ever see
/// the old bytes or the complete new bytes, never a torn mix.
///
/// `fault_point` names this writer's fault-injection site (see
/// util/fault.hpp); the default tags generic artifact writes.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path, std::string fault_point = "atomic");
  /// Removes the temp file if commit() was never reached or failed.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Buffer to stream the new contents into.
  std::ostream& stream() { return buffer_; }

  /// Durably publishes the buffered bytes. Throws caml::Error on any
  /// I/O failure (the target is left untouched). At most one commit.
  void commit();

  /// Discards the buffered bytes and removes the temp file (no-op when
  /// nothing was staged). Called by the destructor.
  void abort() noexcept;

 private:
  std::string path_;
  std::string tmp_;
  std::string point_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

/// One-shot atomic write of `payload` to `path` (no container framing).
void write_file_atomic(const std::string& path, std::string_view payload,
                       const std::string& fault_point = "atomic");

/// Read-only memory mapping of a whole file (RAII). The mapping is
/// private and never written through; bytes() stays valid until the
/// object (or the object it was moved into) is destroyed. Throws
/// caml::Error when the file cannot be opened, stat'ed or mapped.
///
/// The file descriptor is kept open for the mapping's lifetime: it pins
/// the inode (an unlink or atomic-rename replacement can never reclaim
/// the backing pages while we serve from them) and lets size_changed()
/// revalidate the on-disk size, catching in-place truncation — the one
/// mutation that makes accesses beyond the new EOF raise SIGBUS.
class MappedFile {
 public:
  MappedFile() = default;
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::string_view bytes() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }
  bool mapped() const { return data_ != nullptr; }

  /// True when the mapped file's current on-disk size no longer matches
  /// the mapped size — someone truncated or rewrote it in place, and
  /// pages beyond the new EOF would SIGBUS on access. Best-effort: an
  /// fstat failure reports "changed" (assume the worst).
  bool size_changed() const;

 private:
  void reset() noexcept;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  int fd_ = -1;  ///< pins the inode; -1 for empty/unmapped files
};

/// Checksummed container framing for durable artifacts. The on-disk
/// layout is a single header line followed by the raw payload bytes:
///
///   CAMLF1 <kind> len=<payload-bytes> crc32=<8-hex-digits>\n
///   <payload>
///
/// `kind` tags the payload type ("models", "camodel", "forest",
/// "journal") so loading the wrong artifact into a parser fails loud,
/// and the CRC turns silent truncation or bit rot into a ParseError
/// naming the file and byte offset instead of garbage models.
inline constexpr std::string_view kContainerMagic = "CAMLF1";

/// Frames `payload` (header + payload bytes) without touching disk.
std::string frame_checksummed(std::string_view kind, std::string_view payload);

/// True when `bytes` starts with the container magic — used by loaders
/// that also accept legacy unframed files.
bool is_checksummed(std::string_view bytes);

/// Validates the container (magic, kind, declared length, CRC) and
/// returns the payload. Throws caml::ParseError describing the failure,
/// the offending file and the byte offset.
std::string unwrap_checksummed(std::string_view bytes, std::string_view kind,
                               const std::string& path_for_errors);

/// frame + atomic write in one step.
void write_checksummed_file(const std::string& path, std::string_view kind,
                            std::string_view payload,
                            const std::string& fault_point = "atomic");

/// Streaming CAMLF1 writer: the atomic-publish guarantees of
/// AtomicFileWriter plus container framing, without ever holding the
/// payload in memory. Bytes flow straight to the staging file in fixed
/// chunks while a Crc32 runs incrementally; commit() back-patches the
/// header — written as a fixed-width placeholder (`len=` zero-padded to
/// 20 digits, which every existing reader parses) — then fsyncs and
/// renames. Saving a store costs O(chunk) resident memory instead of
/// 2-3x the serialized size.
class ChecksummedFileWriter {
 public:
  ChecksummedFileWriter(std::string path, std::string kind,
                        std::string fault_point = "atomic");
  /// Removes the staging file when commit() was never reached.
  ~ChecksummedFileWriter();

  ChecksummedFileWriter(const ChecksummedFileWriter&) = delete;
  ChecksummedFileWriter& operator=(const ChecksummedFileWriter&) = delete;

  /// Payload stream; bytes are chunk-flushed to the staging file.
  std::ostream& stream() { return out_; }
  /// Raw payload bytes (the binary-store writer path).
  void write(const void* data, std::size_t n);
  /// Payload bytes flushed to the staging file so far; the final total
  /// (chunks may still be buffered) only after commit().
  std::uint64_t bytes_written() const { return payload_bytes_; }

  /// Flushes, patches the real header, fsyncs and atomically publishes.
  /// Throws caml::Error on any I/O failure; the target is untouched.
  void commit();
  void abort() noexcept;

 private:
  class Buf;
  void flush_chunk(const char* data, std::size_t n);
  void open_staging();

  std::string path_;
  std::string tmp_;
  std::string kind_;
  std::string point_;
  int fd_ = -1;
  Crc32 crc_;
  std::uint64_t payload_bytes_ = 0;
  bool committed_ = false;
  std::unique_ptr<Buf> buf_;
  std::ostream out_;
};

/// read + validate + unwrap in one step.
std::string read_checksummed_file(const std::string& path, std::string_view kind);

/// Reads a file that is either a validated CAMLF1 container of `kind` or
/// a legacy unframed artifact (returned verbatim, unvalidated) — the
/// backward-compatible load path for stores written before framing.
std::string read_checksummed_or_raw(const std::string& path, std::string_view kind);

}  // namespace caml::io
