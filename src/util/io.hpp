#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace caml::io {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data` — the checksum
/// every CAMLF1 container carries over its payload.
std::uint32_t crc32(std::string_view data);

/// Reads a whole file into memory. Throws caml::Error when the file
/// cannot be opened or read.
std::string read_file(const std::string& path);

/// All-or-nothing file replacement: buffers the payload in memory and,
/// on commit(), writes it to `<path>.tmp.<pid>`, fsyncs, renames over
/// `path` and fsyncs the parent directory. A crash (or injected fault)
/// at any point leaves the previous file intact — readers only ever see
/// the old bytes or the complete new bytes, never a torn mix.
///
/// `fault_point` names this writer's fault-injection site (see
/// util/fault.hpp); the default tags generic artifact writes.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path, std::string fault_point = "atomic");
  /// Removes the temp file if commit() was never reached or failed.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Buffer to stream the new contents into.
  std::ostream& stream() { return buffer_; }

  /// Durably publishes the buffered bytes. Throws caml::Error on any
  /// I/O failure (the target is left untouched). At most one commit.
  void commit();

  /// Discards the buffered bytes and removes the temp file (no-op when
  /// nothing was staged). Called by the destructor.
  void abort() noexcept;

 private:
  std::string path_;
  std::string tmp_;
  std::string point_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

/// One-shot atomic write of `payload` to `path` (no container framing).
void write_file_atomic(const std::string& path, std::string_view payload,
                       const std::string& fault_point = "atomic");

/// Checksummed container framing for durable artifacts. The on-disk
/// layout is a single header line followed by the raw payload bytes:
///
///   CAMLF1 <kind> len=<payload-bytes> crc32=<8-hex-digits>\n
///   <payload>
///
/// `kind` tags the payload type ("models", "camodel", "forest",
/// "journal") so loading the wrong artifact into a parser fails loud,
/// and the CRC turns silent truncation or bit rot into a ParseError
/// naming the file and byte offset instead of garbage models.
inline constexpr std::string_view kContainerMagic = "CAMLF1";

/// Frames `payload` (header + payload bytes) without touching disk.
std::string frame_checksummed(std::string_view kind, std::string_view payload);

/// True when `bytes` starts with the container magic — used by loaders
/// that also accept legacy unframed files.
bool is_checksummed(std::string_view bytes);

/// Validates the container (magic, kind, declared length, CRC) and
/// returns the payload. Throws caml::ParseError describing the failure,
/// the offending file and the byte offset.
std::string unwrap_checksummed(std::string_view bytes, std::string_view kind,
                               const std::string& path_for_errors);

/// frame + atomic write in one step.
void write_checksummed_file(const std::string& path, std::string_view kind,
                            std::string_view payload,
                            const std::string& fault_point = "atomic");

/// read + validate + unwrap in one step.
std::string read_checksummed_file(const std::string& path, std::string_view kind);

/// Reads a file that is either a validated CAMLF1 container of `kind` or
/// a legacy unframed artifact (returned verbatim, unvalidated) — the
/// backward-compatible load path for stores written before framing.
std::string read_checksummed_or_raw(const std::string& path, std::string_view kind);

}  // namespace caml::io
