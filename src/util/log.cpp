#include "util/log.hpp"

#include <iostream>

namespace caml {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }

LogLevel Log::level() { return g_level; }

void Log::write(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::ostream& os = level >= LogLevel::kWarn ? std::cerr : std::clog;
  os << "[caml " << level_name(level) << "] " << message << '\n';
}

}  // namespace caml
