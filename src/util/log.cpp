#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace caml {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes sink writes so concurrent log lines (e.g. progress from the
// parallel characterization workers) never interleave mid-line.
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::write(LogLevel level, const std::string& message) {
  if (level < Log::level()) return;
  std::ostream& os = level >= LogLevel::kWarn ? std::cerr : std::clog;
  std::lock_guard<std::mutex> lock(g_write_mutex);
  os << "[caml " << level_name(level) << "] " << message << '\n';
}

}  // namespace caml
