#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

namespace caml {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal global logger. Benches lower the threshold to kInfo to narrate
/// long runs; tests leave it at kWarn to keep output clean.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static void write(LogLevel level, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Time-based throttle for progress logging from concurrent workers:
/// allow() grants at most one success per interval, lock-free, so a
/// high --jobs run never serializes its workers on the log mutex just
/// to print progress. Callers pass the current monotonic time (e.g.
/// monotonic_us()); losers of the CAS race simply skip their line.
/// The first call always succeeds.
class LogRateLimiter {
 public:
  explicit LogRateLimiter(std::int64_t min_interval_us)
      : interval_us_(min_interval_us) {}

  bool allow(std::int64_t now_us) {
    std::int64_t prev = last_us_.load(std::memory_order_relaxed);
    if (prev != kNever && now_us - prev < interval_us_) return false;
    return last_us_.compare_exchange_strong(prev, now_us, std::memory_order_relaxed);
  }

 private:
  static constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::min();
  std::int64_t interval_us_;
  std::atomic<std::int64_t> last_us_{kNever};
};

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace caml
