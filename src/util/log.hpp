#pragma once

#include <sstream>
#include <string>

namespace caml {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal global logger. Benches lower the threshold to kInfo to narrate
/// long runs; tests leave it at kWarn to keep output clean.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static void write(LogLevel level, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace caml
