#include "util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timing.hpp"

namespace caml {

namespace {

// Marker prefixes keyed on by is_connection_lost_error. Kept as plain
// message text so the public surface stays exception-type-minimal.
constexpr const char* kConnLost = "connection lost: ";

[[noreturn]] void net_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

[[noreturn]] void conn_lost(const std::string& what) {
  throw Error(kConnLost + what + (errno != 0 ? std::string(": ") + std::strerror(errno) : ""));
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Remaining budget of a deadline given in monotonic microseconds;
/// negative deadlines mean "wait forever" (poll convention: -1).
int remaining_ms(std::int64_t deadline_us) {
  if (deadline_us < 0) return -1;
  const std::int64_t left = deadline_us - monotonic_us();
  if (left <= 0) return 0;
  return static_cast<int>((left + 999) / 1000);
}

std::int64_t deadline_from(int timeout_ms) {
  return timeout_ms < 0 ? -1 : monotonic_us() + static_cast<std::int64_t>(timeout_ms) * 1000;
}

bool poll_one(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  for (;;) {
    // Injected EINTR takes the identical retry path a real signal would.
    if (fault::before_net_poll("net-poll")) {
      errno = EINTR;
      continue;
    }
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    net_fail("poll");
  }
}

/// recv()/send() issued through the fault harness. An injected errno
/// returns -1 with errno set, so callers exercise exactly the handling
/// path a real kernel failure would take; a byte cap simulates kernel
/// short reads/writes without touching the caller's retry logic.
ssize_t recv_injected(int fd, void* buf, std::size_t n) {
  const fault::NetDecision d = fault::before_net_read("net-read", n);
  if (d.force_errno != 0) {
    errno = d.force_errno;
    return -1;
  }
  return ::recv(fd, buf, std::max<std::size_t>(1, std::min(n, d.allow_bytes)), 0);
}

ssize_t send_injected(int fd, const void* buf, std::size_t n) {
  const fault::NetDecision d = fault::before_net_write("net-write", n);
  if (d.force_errno != 0) {
    errno = d.force_errno;
    return -1;
  }
  return ::send(fd, buf, std::max<std::size_t>(1, std::min(n, d.allow_bytes)), MSG_NOSIGNAL);
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void set_nonblocking(int fd, bool enable, const std::string& what) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0) net_fail("fcntl(F_GETFL) on " + what);
  const int wanted = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted == flags) return;
  if (::fcntl(fd, F_SETFL, wanted) < 0) net_fail("fcntl(F_SETFL) on " + what);
}

Pipe make_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) net_fail("pipe");
  Pipe p;
  p.rd.reset(fds[0]);
  p.wr.reset(fds[1]);
  for (int fd : fds) {
    set_nonblocking(fd, true, "self-pipe");
    set_cloexec(fd);
  }
  return p;
}

Fd listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd) net_fail("socket(AF_UNIX)");
  set_cloexec(fd.get());
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    net_fail("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) net_fail("listen " + path);
  return fd;
}

Fd listen_tcp(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) net_fail("socket(AF_INET)");
  set_cloexec(fd.get());
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    net_fail("bind tcp port " + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) net_fail("listen tcp");
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    net_fail("getsockname");
  }
  return ntohs(addr.sin_port);
}

namespace {

Fd finish_connect(Fd fd, const sockaddr* addr, socklen_t len, int timeout_ms,
                  const std::string& what) {
  // Non-blocking connect + poll so the timeout is honored. Both fcntl
  // flips are checked: a socket silently left blocking would turn the
  // timed connect into an unbounded one.
  set_nonblocking(fd.get(), true, "connect " + what);
  if (::connect(fd.get(), addr, len) != 0) {
    if (errno != EINPROGRESS) conn_lost("connect " + what);
    if (!poll_one(fd.get(), POLLOUT, timeout_ms)) {
      throw Error("connect " + what + ": timeout");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      errno = err;
      conn_lost("connect " + what);
    }
  }
  set_nonblocking(fd.get(), false, "connect " + what);  // back to blocking; I/O uses poll
  return fd;
}

}  // namespace

Fd connect_unix(const std::string& path, int timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd) net_fail("socket(AF_UNIX)");
  set_cloexec(fd.get());
  return finish_connect(std::move(fd), reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                        timeout_ms, path);
}

Fd connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error("invalid IPv4 address: " + host);
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) net_fail("socket(AF_INET)");
  set_cloexec(fd.get());
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return finish_connect(std::move(fd), reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                        timeout_ms, host + ":" + std::to_string(port));
}

Fd accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_cloexec(fd);
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) return Fd();
    net_fail("accept");
  }
}

bool wait_readable(int fd, int timeout_ms) { return poll_one(fd, POLLIN, timeout_ms); }

bool read_exact(int fd, void* buf, std::size_t n, int timeout_ms) {
  const std::int64_t deadline = deadline_from(timeout_ms);
  unsigned char* out = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    if (!poll_one(fd, POLLIN, remaining_ms(deadline))) {
      throw Error("read: timeout after " + std::to_string(timeout_ms) + " ms");
    }
    const ssize_t rc = recv_injected(fd, out + done, n - done);
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (done == 0) return false;  // clean EOF between records
      errno = 0;
      conn_lost("read: EOF mid-record");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET) conn_lost("read");
    net_fail("read");
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t n, int timeout_ms) {
  const std::int64_t deadline = deadline_from(timeout_ms);
  const unsigned char* in = static_cast<const unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    if (!poll_one(fd, POLLOUT, remaining_ms(deadline))) {
      throw Error("write: timeout after " + std::to_string(timeout_ms) + " ms");
    }
    const ssize_t rc = send_injected(fd, in + done, n - done);
    if (rc >= 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET || errno == EPIPE) conn_lost("write");
    net_fail("write");
  }
}

IoResult read_some(int fd, void* buf, std::size_t n) {
  for (;;) {
    const ssize_t rc = recv_injected(fd, buf, n);
    if (rc > 0) return {static_cast<std::size_t>(rc), false, false};
    if (rc == 0) return {0, true, false};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {0, false, true};
    if (errno == ECONNRESET) return {0, true, false};
    net_fail("read");
  }
}

IoResult write_some(int fd, const void* buf, std::size_t n) {
  for (;;) {
    const ssize_t rc = send_injected(fd, buf, n);
    if (rc >= 0) return {static_cast<std::size_t>(rc), false, false};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {0, false, true};
    if (errno == ECONNRESET || errno == EPIPE) return {0, true, false};
    net_fail("write");
  }
}

bool is_connection_lost_error(const std::string& what) {
  return what.rfind(kConnLost, 0) == 0;
}

}  // namespace caml
