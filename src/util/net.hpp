#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace caml {

/// RAII POSIX file descriptor: closes on destruction, move-only. An
/// invalid (empty) Fd holds -1.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Gives up ownership without closing.
  int release() { return std::exchange(fd_, -1); }

  /// Closes the descriptor (if any) and optionally adopts a new one.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// A pipe pair used for self-pipe wakeups: signal handlers and stop()
/// calls write one byte to `wr` to interrupt a poll() on `rd`. Both ends
/// are created non-blocking and close-on-exec.
struct Pipe {
  Fd rd;
  Fd wr;
};

/// Creates a non-blocking self-pipe. Throws caml::Error on failure.
Pipe make_pipe();

/// Binds and listens on a Unix-domain socket at `path` (an existing
/// stale socket file is unlinked first). Throws caml::Error on failure.
Fd listen_unix(const std::string& path, int backlog = 64);

/// Binds and listens on loopback TCP `port` (0 = ephemeral). Throws
/// caml::Error on failure.
Fd listen_tcp(std::uint16_t port, int backlog = 64);

/// The locally bound port of a listening TCP socket (resolves port 0).
std::uint16_t local_port(int fd);

/// Connects to a Unix-domain socket. Throws caml::Error on failure.
Fd connect_unix(const std::string& path, int timeout_ms);

/// Connects to loopback TCP. Throws caml::Error on failure.
Fd connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms);

/// Accepts one pending connection; empty Fd if the listener has nothing
/// ready (EAGAIN) or was interrupted. Throws caml::Error on real errors.
Fd accept_connection(int listen_fd);

/// Sets or clears O_NONBLOCK on `fd`, checking both fcntl calls — a
/// silently ignored failure would leave the descriptor blocking and
/// deadlock an event loop that assumes readiness-driven I/O. Throws
/// caml::Error (naming `what`) when either call fails.
void set_nonblocking(int fd, bool enable, const std::string& what);

/// Outcome of one non-blocking read/write attempt on a socket.
struct IoResult {
  std::size_t bytes = 0;     ///< bytes transferred this call
  bool closed = false;       ///< peer gone (EOF / reset / broken pipe)
  bool would_block = false;  ///< no progress possible right now (EAGAIN)
};

/// One non-blocking recv(). Returns {bytes} on progress, {closed} on
/// EOF or peer reset, {would_block} when the socket has no data. Throws
/// caml::Error only on unexpected failures — a vanished peer is a
/// normal event-loop outcome, not an exception.
IoResult read_some(int fd, void* buf, std::size_t n);

/// One non-blocking send() (SIGPIPE suppressed). Same conventions as
/// read_some; a peer that closed mid-write reports {closed}.
IoResult write_some(int fd, const void* buf, std::size_t n);

/// Waits until `fd` is readable. Returns false on timeout.
/// timeout_ms < 0 waits forever. Throws caml::Error on poll failure.
bool wait_readable(int fd, int timeout_ms);

/// Reads exactly `n` bytes. Returns false on clean EOF before the first
/// byte; throws caml::Error on mid-record EOF, error, or timeout (the
/// timeout covers the whole read, measured monotonically).
bool read_exact(int fd, void* buf, std::size_t n, int timeout_ms);

/// Writes all `n` bytes. Throws caml::Error on error or timeout. SIGPIPE
/// is suppressed (MSG_NOSIGNAL); a closed peer raises caml::Error.
void write_all(int fd, const void* buf, std::size_t n, int timeout_ms);

/// True when the Error message of a failed read/write/connect indicates
/// the peer vanished (connection reset / refused / broken pipe / EOF) —
/// the retryable class of client failures, as opposed to timeouts or
/// protocol violations.
bool is_connection_lost_error(const std::string& what);

}  // namespace caml
