#include "util/rng.hpp"

#include "util/error.hpp"

namespace caml {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  CAML_ASSERT(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  CAML_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next()); }

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  CAML_ASSERT(k <= n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be final.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace caml
