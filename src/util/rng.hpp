#pragma once

#include <cstdint>
#include <vector>

namespace caml {

/// Deterministic 64-bit RNG (xoshiro256** seeded via SplitMix64).
///
/// The whole library — library generation, technology scrambling, forest
/// bagging, sampling — draws randomness only through this class so every
/// experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// Derive an independent child generator (useful for per-cell or
  /// per-tree streams that do not perturb each other).
  Rng fork();

  /// Fisher-Yates shuffle of any random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). k must be <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace caml
