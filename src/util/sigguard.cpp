#include "util/sigguard.hpp"

#include <signal.h>

#include <mutex>

namespace caml::io {

namespace detail {

thread_local SigbusJump* t_sigbus_jump = nullptr;

namespace {

void sigbus_handler(int sig) {
  SigbusJump* jump = t_sigbus_jump;
  if (jump != nullptr) {
    // Async-signal-safe by construction: siglongjmp back into the armed
    // with_sigbus_guard frame, which then throws from normal context.
    siglongjmp(jump->buf, 1);
  }
  // No guard armed on this thread: a genuine bug, not a mapping fault.
  // Restore the default disposition and re-raise so the process dies
  // with the honest signal (core dump and all).
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  ::sigaction(sig, &dfl, nullptr);
  ::raise(sig);
}

}  // namespace

void install_sigbus_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa {};
    sa.sa_handler = &sigbus_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGBUS, &sa, nullptr);
  });
}

}  // namespace detail

}  // namespace caml::io
