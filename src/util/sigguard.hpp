#pragma once

#include <csetjmp>
#include <string>

#include "util/error.hpp"

namespace caml::io {

/// Thrown when a SIGBUS landed inside a with_sigbus_guard region — in
/// practice: a memory-mapped file was truncated or rewritten in place
/// under an active mapping, and a page beyond the new EOF was touched.
/// The throw happens from normal (post-longjmp) context, so ordinary
/// catch/unwind semantics apply to the caller.
class MappingFault : public Error {
 public:
  explicit MappingFault(const std::string& what) : Error("mapping fault: " + what) {}
};

namespace detail {

/// Thread-local jump target armed by with_sigbus_guard. The process-wide
/// SIGBUS handler siglongjmps to it when armed; when no guard is armed
/// on the faulting thread it restores the default disposition and
/// re-raises, so a genuine wild-pointer SIGBUS still crashes honestly.
struct SigbusJump {
  sigjmp_buf buf;
};

extern thread_local SigbusJump* t_sigbus_jump;

/// Installs the process-wide SIGBUS handler exactly once (thread-safe).
void install_sigbus_handler();

}  // namespace detail

/// Runs `fn` with SIGBUS on this thread converted into a MappingFault
/// carrying `what`. On a fault, every stack frame `fn` had open is
/// abandoned without unwinding — so the guarded region must be
/// longjmp-safe: plain reads and arithmetic over the mapping and
/// caller-owned buffers only. No allocation, no locks, no RAII
/// resources inside `fn`. Guards nest (per thread); an exception thrown
/// by `fn` itself propagates normally and disarms the guard.
template <typename Fn>
void with_sigbus_guard(const char* what, Fn&& fn) {
  detail::install_sigbus_handler();
  detail::SigbusJump jump;
  struct Restore {
    detail::SigbusJump* prev;
    ~Restore() { detail::t_sigbus_jump = prev; }
  } restore{detail::t_sigbus_jump};
  if (sigsetjmp(jump.buf, 1) != 0) {
    // Arrived via siglongjmp from the handler: this frame is intact,
    // the signal mask is restored, and throwing is safe again.
    throw MappingFault(what);
  }
  detail::t_sigbus_jump = &jump;
  fn();
}

}  // namespace caml::io
