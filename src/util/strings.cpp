#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/error.hpp"

namespace caml {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t start = i;
    while (i < s.size() && delims.find(s[i]) == std::string_view::npos) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_keep_empty(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with_ci(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

namespace {

template <typename T>
std::optional<T> from_chars_whole(std::string_view token) {
  T value{};
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

[[noreturn]] void parse_fail(std::string_view token, std::string_view what, std::size_t line) {
  throw ParseError(std::string(what) + ": bad integer '" + std::string(token) + "'", line);
}

}  // namespace

std::optional<std::uint64_t> try_parse_uint64(std::string_view token) {
  return from_chars_whole<std::uint64_t>(token);
}

std::optional<std::int64_t> try_parse_int64(std::string_view token) {
  return from_chars_whole<std::int64_t>(token);
}

std::uint64_t parse_uint64(std::string_view token, std::string_view what, std::size_t line) {
  const auto value = try_parse_uint64(token);
  if (!value) parse_fail(token, what, line);
  return *value;
}

std::int64_t parse_int64(std::string_view token, std::string_view what, std::size_t line) {
  const auto value = try_parse_int64(token);
  if (!value) parse_fail(token, what, line);
  return *value;
}

std::size_t parse_size(std::string_view token, std::string_view what, std::size_t line) {
  const std::uint64_t value = parse_uint64(token, what, line);
  if constexpr (sizeof(std::size_t) < sizeof(std::uint64_t)) {
    if (value > std::numeric_limits<std::size_t>::max()) parse_fail(token, what, line);
  }
  return static_cast<std::size_t>(value);
}

}  // namespace caml
