#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace caml {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t start = i;
    while (i < s.size() && delims.find(s[i]) == std::string_view::npos) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_keep_empty(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with_ci(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace caml
