#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace caml {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on any of the given delimiter characters; empty tokens dropped.
std::vector<std::string> split(std::string_view s, std::string_view delims = " \t");

/// Split on a single delimiter, keeping empty tokens.
std::vector<std::string> split_keep_empty(std::string_view s, char delim);

/// ASCII lower/upper-case copies.
std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

bool starts_with_ci(std::string_view s, std::string_view prefix);

/// Join tokens with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-free fixed-precision formatting of a double (e.g. "99.97").
std::string format_fixed(double value, int decimals);

/// Base-10 integer parsing of a whole token (optional leading '-' for
/// the signed variant). nullopt if the token is empty, has trailing
/// junk, or overflows the result type — never throws, never aborts.
std::optional<std::uint64_t> try_parse_uint64(std::string_view token);
std::optional<std::int64_t> try_parse_int64(std::string_view token);

/// Checked parsing for file loaders: like the try_ variants but a bad
/// token throws ParseError("<what> ...", line) instead of the uncaught
/// std::invalid_argument/std::out_of_range that std::stoul & friends
/// raise on corrupt input.
std::uint64_t parse_uint64(std::string_view token, std::string_view what, std::size_t line);
std::int64_t parse_int64(std::string_view token, std::string_view what, std::size_t line);
std::size_t parse_size(std::string_view token, std::string_view what, std::size_t line);

}  // namespace caml
