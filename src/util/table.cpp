#include "util/table.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caml {

void TextTable::new_row() { rows_.emplace_back(); }

void TextTable::cell(std::string text) {
  CAML_ASSERT(!rows_.empty());
  rows_.back().push_back(std::move(text));
}

void TextTable::cell(double value, int decimals) { cell(format_fixed(value, decimals)); }

void TextTable::cell(long long value) { cell(std::to_string(value)); }

void TextTable::print(std::ostream& os, std::size_t header_rows) const {
  std::size_t cols = 0;
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& s = c < r.size() ? r[c] : std::string();
      os << "| " << s << std::string(width[c] - s.size() + 1, ' ');
    }
    os << "|\n";
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < cols; ++c) os << "+" << std::string(width[c] + 2, '-');
    os << "+\n";
  };
  print_rule();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    print_row(rows_[i]);
    if (i + 1 == header_rows) print_rule();
  }
  print_rule();
}

void TextTable::print_csv(std::ostream& os) const {
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      bool needs_quote = r[c].find_first_of(",\"\n") != std::string::npos;
      if (!needs_quote) {
        os << r[c];
      } else {
        os << '"';
        for (char ch : r[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      }
    }
    os << '\n';
  }
}

}  // namespace caml
