#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace caml {

/// Fixed-width ASCII table writer used by the bench report generators to
/// print paper-style grids (e.g. Table IV accuracy matrices).
class TextTable {
 public:
  /// Start a new row; subsequent cell() calls append to it.
  void new_row();

  /// Append a cell to the current row.
  void cell(std::string text);
  void cell(double value, int decimals);
  void cell(long long value);

  /// Number of rows so far.
  std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment; header_rows rows are separated from the
  /// body with a rule line.
  void print(std::ostream& os, std::size_t header_rows = 1) const;

  /// Render as CSV (no alignment, comma-separated, minimal quoting).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace caml
