#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace caml {

ThreadPool::ThreadPool(std::size_t num_threads) {
  CAML_ASSERT(num_threads > 0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      // Drain remaining tasks even when stopping: submitted futures must
      // always become ready.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace caml
