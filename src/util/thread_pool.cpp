#include "util/thread_pool.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/timing.hpp"

namespace caml {

namespace {

/// Process-wide pool metrics, shared by every ThreadPool instance:
/// total tasks, per-task latency, summed busy time (worker utilization =
/// busy_us / (workers x wall)), and the deepest queue observed.
struct PoolMetrics {
  obs::Counter& tasks;
  obs::Counter& busy_us;
  obs::Histogram& task_us;
  obs::Gauge& queue_high_water;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::global().counter("caml_pool_tasks_total",
                                        "Tasks executed by ThreadPool workers"),
        obs::Registry::global().counter("caml_pool_busy_us_total",
                                        "Summed wall time workers spent running tasks"),
        obs::Registry::global().histogram("caml_pool_task_us",
                                          "Per-task execution latency in microseconds"),
        obs::Registry::global().gauge("caml_pool_queue_depth_high_water",
                                      "Deepest pending-task queue observed"),
    };
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  CAML_ASSERT(num_threads > 0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      // Drain remaining tasks even when stopping: submitted futures must
      // always become ready.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    PoolMetrics& metrics = PoolMetrics::get();
    const Stopwatch watch;
    task();
    const std::int64_t elapsed = watch.elapsed_us();
    metrics.tasks.add();
    metrics.busy_us.add(static_cast<std::uint64_t>(elapsed < 0 ? 0 : elapsed));
    metrics.task_us.record(static_cast<std::uint64_t>(elapsed < 0 ? 0 : elapsed));
  }
}

void ThreadPool::note_queue_depth(std::size_t depth) {
  PoolMetrics::get().queue_high_water.update_max(static_cast<std::int64_t>(depth));
}

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace caml
