#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace caml {

/// Fixed-size thread pool with a single FIFO task queue (no work
/// stealing). Tasks are submitted as callables and results retrieved
/// through futures, which also carry any exception the task threw.
///
/// The pool is the only threading primitive in the library; the hot
/// paths (library characterization, forest training) drive it through
/// the parallel_for / parallel_map helpers below, which fall back to a
/// plain inline loop for jobs <= 1 so a serial run never pays for
/// thread machinery.
class ThreadPool {
 public:
  /// Spawns num_threads workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable; the returned future yields its result or
  /// rethrows its exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> out = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push([task] { (*task)(); });
      note_queue_depth(tasks_.size());
    }
    cv_.notify_one();
    return out;
  }

 private:
  void worker_loop();
  /// Feeds the caml_pool_* observability metrics (queue-depth high
  /// water); called under mutex_ from submit().
  static void note_queue_depth(std::size_t depth);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Resolves a user-facing jobs knob: 0 means "one per hardware thread"
/// (at least 1), any other value is taken literally.
std::size_t resolve_jobs(std::size_t jobs);

/// Runs fn(i) for every i in [0, n), using up to `jobs` worker threads
/// (0 = hardware concurrency). Blocks until every index finished. If any
/// invocation throws, the exception of the lowest-indexed failing task
/// is rethrown after all tasks completed. jobs <= 1 (after resolution)
/// or n <= 1 runs inline on the calling thread in index order.
template <typename Fn>
void parallel_for(std::size_t n, std::size_t jobs, Fn&& fn) {
  jobs = resolve_jobs(jobs);
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(jobs, n));
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Maps fn over items on up to `jobs` threads; the result vector is in
/// input order regardless of completion order, so a parallel map is a
/// drop-in for the serial loop it replaces. Exception behavior matches
/// parallel_for.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, std::size_t jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn, const T&>> {
  using R = std::invoke_result_t<Fn, const T&>;
  jobs = resolve_jobs(jobs);
  if (jobs <= 1 || items.size() <= 1) {
    std::vector<R> out;
    out.reserve(items.size());
    for (const T& item : items) out.push_back(fn(item));
    return out;
  }
  ThreadPool pool(std::min(jobs, items.size()));
  std::vector<std::future<R>> futures;
  futures.reserve(items.size());
  for (const T& item : items) {
    futures.push_back(pool.submit([&fn, &item] { return fn(item); }));
  }
  std::vector<R> out;
  out.reserve(items.size());
  std::exception_ptr first_error;
  for (std::future<R>& f : futures) {
    try {
      out.push_back(f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

}  // namespace caml
