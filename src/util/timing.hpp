#pragma once

#include <chrono>
#include <cstdint>

namespace caml {

/// Monotonic clock reading in microseconds. Only differences are
/// meaningful (steady_clock epoch is arbitrary); used for I/O deadlines
/// and request-latency measurement, never for wall-clock timestamps.
inline std::int64_t monotonic_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic stopwatch for latency measurement.
class Stopwatch {
 public:
  Stopwatch() : start_us_(monotonic_us()) {}
  std::int64_t elapsed_us() const { return monotonic_us() - start_us_; }
  double elapsed_ms() const { return static_cast<double>(elapsed_us()) / 1000.0; }
  void restart() { start_us_ = monotonic_us(); }

 private:
  std::int64_t start_us_;
};

}  // namespace caml
