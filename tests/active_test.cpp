// Active-learning subsystem tests: margin API, incremental forest
// growth, budgeted acquisition, and the determinism contract (fixed
// seed + any jobs value => identical journals and byte-identical final
// model stores, including across kill+resume). Test names start with
// Active* so scripts/check_tsan.sh picks them up.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>
#include <unistd.h>

#include "active/acquisition.hpp"
#include "active/learner.hpp"
#include "libgen/technology.hpp"
#include "ml/forest.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace caml {
namespace {

namespace fs = std::filesystem;

using testing::build_function;
using testing::characterize;

std::string temp_dir(const char* tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("caml_active_" + std::to_string(::getpid()) + "_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string hexfloats(const std::vector<double>& values) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const double v : values) os << v << '\n';
  return os.str();
}

/// Labeled rows over `features` features with a weakly learnable
/// target, so a forest has genuine disagreement to expose.
Dataset make_dataset(std::size_t rows, std::size_t features, std::uint64_t seed) {
  Dataset data(features);
  std::uint64_t x = seed | 1;
  std::vector<std::int8_t> row(features);
  for (std::size_t r = 0; r < rows; ++r) {
    int sum = 0;
    for (std::int8_t& v : row) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      v = static_cast<std::int8_t>(static_cast<int>(x % 3) - 1);
      sum += v;
    }
    // Noisy majority label: mostly sum-driven, flipped every 7th row.
    const std::uint8_t label = (sum > 0) != (r % 7 == 0) ? 1 : 0;
    data.add_row(row.data(), label);
  }
  return data;
}

/// The standard fixture of these tests: a 28SOI training slice and a
/// C28 target slice sharing group shapes, plus one function the
/// training set never saw.
struct ActiveCorpus {
  std::vector<CharacterizedCell> training;
  std::vector<CharacterizedCell> targets;
};

const ActiveCorpus& corpus() {
  static const ActiveCorpus c = [] {
    const Technology soi = technology_28soi();
    const Technology c28 = technology_c28();
    ActiveCorpus out;
    for (const char* f : {"INV", "NAND2", "NOR2", "AOI21"}) {
      out.training.push_back(characterize(build_function(f, soi), soi));
      out.training.push_back(
          characterize(build_function(f, soi, {2, StructureVariant::kMerged}), soi));
    }
    for (const char* f : {"NAND2", "NOR2", "AOI21"}) {
      out.targets.push_back(characterize(build_function(f, c28), c28));
      out.targets.push_back(
          characterize(build_function(f, c28, {2, StructureVariant::kMerged}), c28));
    }
    // Functions/groups the training set never saw: prime acquisition
    // targets (their groups have no classifier at round 0).
    out.targets.push_back(characterize(build_function("XOR2", c28), c28));
    out.targets.push_back(
        characterize(build_function("XOR2", c28, {2, StructureVariant::kMerged}), c28));
    return out;
  }();
  return c;
}

active::ActiveOptions small_options() {
  active::ActiveOptions options;
  options.base.ml.forest.num_trees = 6;
  options.trees_per_round = 2;
  options.max_rounds = 3;
  options.budget_unit = active::BudgetUnit::kCount;
  options.sim_budget = 4;
  return options;
}

// ---------------------------------------------------------------------------
// Margin API

TEST(ActiveMargin, DefaultClassifierReportsFullConfidence) {
  DecisionTree tree;
  const Dataset data = make_dataset(64, 5, 7);
  tree.fit(data);
  const std::vector<std::int8_t> row(5, 0);
  const std::vector<double> margins = tree.predict_margin_batch(row.data(), 1, 5);
  ASSERT_EQ(margins.size(), 1u);
  EXPECT_DOUBLE_EQ(margins[0], 1.0);
}

TEST(ActiveMargin, ForestMarginTracksVoteDisagreement) {
  const Dataset data = make_dataset(256, 6, 11);
  ForestParams params;
  params.num_trees = 9;
  params.tree.max_features = 2;  // force per-split subsampling => diversity
  RandomForest forest(params);
  forest.fit(data);

  std::vector<std::int8_t> rows;
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t f = 0; f < 6; ++f) {
      rows.push_back(static_cast<std::int8_t>(static_cast<int>((r * 6 + f) % 3) - 1));
    }
  }
  const std::vector<double> margins = forest.predict_margin_batch(rows.data(), 64, 6);
  ASSERT_EQ(margins.size(), 64u);
  double min_m = 1.0;
  for (const double m : margins) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
    min_m = std::min(min_m, m);
  }
  // A 9-tree forest over noisy labels must disagree somewhere.
  EXPECT_LT(min_m, 1.0);

  // Batching must not change a single bit: per-row batches reproduce
  // the full sweep exactly.
  std::vector<double> per_row;
  for (std::size_t r = 0; r < 64; ++r) {
    per_row.push_back(forest.predict_margin_batch(rows.data() + r * 6, 1, 6).at(0));
  }
  EXPECT_EQ(hexfloats(per_row), hexfloats(margins));
}

TEST(ActiveMargin, BlendedConfidenceAndPriorOrdering) {
  EXPECT_DOUBLE_EQ(active::blended_confidence({1.0, 0.0}, {1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(active::blended_confidence({0.5}, {0.0}), 0.0);
  EXPECT_DOUBLE_EQ(active::blended_confidence({0.75}, {0.5}), 0.5);
  EXPECT_GT(active::structural_prior(StructureMatch::kIdentical),
            active::structural_prior(StructureMatch::kEquivalent));
  EXPECT_GT(active::structural_prior(StructureMatch::kEquivalent),
            active::structural_prior(StructureMatch::kNew));

  std::vector<active::CandidateScore> scores = {{3, 0.5}, {1, 0.5}, {2, 0.1}};
  active::sort_into_acquisition_order(scores);
  EXPECT_EQ(scores[0].cell_index, 2u);  // least confident first
  EXPECT_EQ(scores[1].cell_index, 1u);  // tie broken by index
  EXPECT_EQ(scores[2].cell_index, 3u);
}

// ---------------------------------------------------------------------------
// Incremental fit

TEST(ActiveFitMore, GrowsDeterministicallyAndMatchesAcrossJobs) {
  const Dataset first = make_dataset(200, 6, 3);
  const Dataset enlarged = make_dataset(260, 6, 3);  // superset-shaped growth

  ForestParams params;
  params.num_trees = 6;
  const auto grow = [&](std::size_t jobs) {
    ForestParams p = params;
    p.jobs = jobs;
    RandomForest forest(p);
    forest.fit(first);
    forest.fit_more(enlarged, 3);
    forest.fit_more(enlarged, 3);
    return forest;
  };
  const RandomForest serial = grow(1);
  const RandomForest threaded = grow(4);
  ASSERT_EQ(serial.trees().size(), 12u);
  ASSERT_EQ(threaded.trees().size(), 12u);

  std::vector<std::int8_t> rows;
  std::uint64_t x = 99;
  for (std::size_t i = 0; i < 50 * 6; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rows.push_back(static_cast<std::int8_t>(static_cast<int>(x % 3) - 1));
  }
  const std::vector<double> probe = serial.predict_proba_batch(rows.data(), 50, 6);
  EXPECT_NE(hexfloats(probe), hexfloats(std::vector<double>(50, 0.0)))
      << "probe rows must exercise non-trivial leaf mixtures";
  EXPECT_EQ(hexfloats(serial.predict_proba_batch(rows.data(), 50, 6)),
            hexfloats(threaded.predict_proba_batch(rows.data(), 50, 6)))
      << "warm-started forests must be bit-identical for any jobs value";

  // The increments draw fresh randomness: grown trees are not clones of
  // the first batch (they at least see different data).
  RandomForest refit(params);
  refit.fit(enlarged);
  EXPECT_EQ(refit.trees().size(), 6u);
  EXPECT_NE(hexfloats(serial.predict_proba_batch(rows.data(), 50, 6)),
            hexfloats(refit.predict_proba_batch(rows.data(), 50, 6)));

  // fit_more(0) is a no-op.
  RandomForest noop(params);
  noop.fit(first);
  noop.fit_more(enlarged, 0);
  EXPECT_EQ(noop.trees().size(), 6u);
}

// ---------------------------------------------------------------------------
// Acquisition loop

TEST(ActiveFlow, RespectsBudgetAndAcquiresMostUncertainFirst) {
  active::ActiveOptions options = small_options();
  options.sim_budget = 2;
  const active::ActiveReport report =
      active::run_active_flow(corpus().training, corpus().targets, options);

  EXPECT_LE(report.spent, options.sim_budget);
  EXPECT_LE(report.acquired, 2u);
  EXPECT_EQ(report.acquired,
            static_cast<std::size_t>(std::count(report.acquired_mask.begin(),
                                                report.acquired_mask.end(), 1)));
  // The XOR2 cells (last two targets) have no group model at round 0 —
  // confidence 0 — so the budget goes to them first.
  const std::size_t n = corpus().targets.size();
  EXPECT_EQ(report.acquired_mask[n - 2], 1);
  EXPECT_EQ(report.acquired_mask[n - 1], 1);
  // Everything else is predicted by the final forests.
  EXPECT_EQ(report.forced_conventional, 0u);
  for (const HybridCellOutcome& o : report.hybrid.outcomes) {
    if (report.acquired_mask[o.cell_index]) {
      EXPECT_FALSE(o.routed_to_ml);
    } else {
      EXPECT_TRUE(o.routed_to_ml);
      EXPECT_GT(o.accuracy, 0.9);
    }
  }
  EXPECT_FALSE(report.rounds.empty());
  EXPECT_DOUBLE_EQ(report.rounds.front().min_confidence, 0.0);
}

TEST(ActiveFlow, UnaffordableBudgetForcesConventionalRoute) {
  // Seconds-unit budget far below any cell's simulation cost: nothing
  // is acquirable, so the unseen-group cells must fall back to
  // conventional generation outside the budget.
  active::ActiveOptions options = small_options();
  options.budget_unit = active::BudgetUnit::kSeconds;
  options.sim_budget = 0.001;
  const active::ActiveReport report =
      active::run_active_flow(corpus().training, corpus().targets, options);
  EXPECT_EQ(report.acquired, 0u);
  EXPECT_DOUBLE_EQ(report.spent, 0.0);
  EXPECT_EQ(report.forced_conventional, 2u);  // the two XOR2 cells
}

TEST(ActiveFlow, ConvergedMarginsStopTheLoopEarly) {
  // With an easily satisfied margin, nothing is worth simulating: the
  // first round converges and no budget is spent.
  active::ActiveOptions options = small_options();
  options.converge_margin = 0.0;
  const active::ActiveReport report =
      active::run_active_flow(corpus().training, corpus().targets, options);
  EXPECT_EQ(report.acquired, 0u);
  ASSERT_EQ(report.rounds.size(), 1u);
  EXPECT_EQ(report.rounds[0].acquired, 0u);
}

TEST(ActiveFlow, HybridPolicyBlendsStructuralPrior) {
  active::ActiveOptions options = small_options();
  options.base.routing = RoutingPolicy::kHybrid;
  options.structural_prior_weight = 1.0;  // prior only: new structures first
  const active::ActiveReport report =
      active::run_active_flow(corpus().training, corpus().targets, options);
  EXPECT_EQ(report.policy, RoutingPolicy::kHybrid);
  // With a pure structural prior the two structurally new XOR2 cells
  // are the least confident candidates.
  const std::size_t n = corpus().targets.size();
  EXPECT_EQ(report.acquired_mask[n - 2], 1);
  EXPECT_EQ(report.acquired_mask[n - 1], 1);
}

TEST(ActiveFlow, PolicyMismatchesThrow) {
  active::ActiveOptions options = small_options();
  options.base.routing = RoutingPolicy::kStructural;
  EXPECT_THROW(active::run_active_flow(corpus().training, corpus().targets, options), Error);

  HybridOptions hybrid;
  hybrid.routing = RoutingPolicy::kActive;
  EXPECT_THROW(run_hybrid_flow(corpus().training, corpus().targets, hybrid), Error);
}

// ---------------------------------------------------------------------------
// Determinism contract

TEST(ActiveFlow, JournalsAndModelsIdenticalAcrossJobCounts) {
  const std::string dir1 = temp_dir("jobs1");
  const std::string dir4 = temp_dir("jobs4");
  const auto run = [&](const std::string& dir, std::size_t jobs) {
    active::ActiveOptions options = small_options();
    options.jobs = jobs;
    options.base.ml.forest.jobs = jobs;
    options.base.checkpoint.dir = dir;
    return active::run_active_flow(corpus().training, corpus().targets, options);
  };
  const active::ActiveReport serial = run(dir1, 1);
  const active::ActiveReport threaded = run(dir4, 4);

  EXPECT_EQ(slurp(dir1 + "/" + CheckpointJournal::kFileName),
            slurp(dir4 + "/" + CheckpointJournal::kFileName))
      << "acquisition journals must be byte-identical across job counts";

  const std::string store1 = dir1 + "/models.caml";
  const std::string store4 = dir4 + "/models.caml";
  serial.models.save_file(store1);
  threaded.models.save_file(store4);
  EXPECT_EQ(slurp(store1), slurp(store4))
      << "final model stores must be byte-identical across job counts";

  ASSERT_EQ(serial.hybrid.outcomes.size(), threaded.hybrid.outcomes.size());
  for (std::size_t i = 0; i < serial.hybrid.outcomes.size(); ++i) {
    EXPECT_EQ(serial.hybrid.outcomes[i].routed_to_ml, threaded.hybrid.outcomes[i].routed_to_ml);
    EXPECT_DOUBLE_EQ(serial.hybrid.outcomes[i].accuracy, threaded.hybrid.outcomes[i].accuracy);
  }
  EXPECT_EQ(serial.acquired_mask, threaded.acquired_mask);
}

TEST(ActiveFlow, ResumedRunEqualsUninterrupted) {
  const std::string full_dir = temp_dir("full");
  const std::string cut_dir = temp_dir("cut");

  const auto run = [&](const std::string& dir, std::size_t rounds, bool resume) {
    active::ActiveOptions options = small_options();
    options.max_rounds = rounds;
    options.base.checkpoint.dir = dir;
    options.base.checkpoint.every = 1;  // flush per acquisition
    options.base.checkpoint.resume = resume;
    return active::run_active_flow(corpus().training, corpus().targets, options);
  };

  // Uninterrupted reference.
  const active::ActiveReport full = run(full_dir, 3, false);
  // "Killed" after one round (simulated by capping rounds), then
  // resumed to completion from the journal.
  run(cut_dir, 1, false);
  const active::ActiveReport resumed = run(cut_dir, 3, true);

  EXPECT_EQ(slurp(full_dir + "/" + CheckpointJournal::kFileName),
            slurp(cut_dir + "/" + CheckpointJournal::kFileName))
      << "resumed journal must equal the uninterrupted run's";

  const std::string full_store = full_dir + "/models.caml";
  const std::string cut_store = cut_dir + "/models.caml";
  full.models.save_file(full_store);
  resumed.models.save_file(cut_store);
  EXPECT_EQ(slurp(full_store), slurp(cut_store))
      << "resumed model store must equal the uninterrupted run's";

  ASSERT_FALSE(resumed.rounds.empty());
  EXPECT_TRUE(resumed.rounds.front().replayed);
  EXPECT_EQ(resumed.acquired_mask, full.acquired_mask);
  EXPECT_DOUBLE_EQ(resumed.spent, full.spent);
}

TEST(ActiveFlow, FullRefitFallbackStaysDeterministic) {
  const auto run = [&](std::size_t jobs) {
    active::ActiveOptions options = small_options();
    options.full_refit = true;
    options.jobs = jobs;
    options.base.ml.forest.jobs = jobs;
    return active::run_active_flow(corpus().training, corpus().targets, options);
  };
  const active::ActiveReport a = run(1);
  const active::ActiveReport b = run(4);
  const std::string dir = temp_dir("refit");
  a.models.save_file(dir + "/a.caml");
  b.models.save_file(dir + "/b.caml");
  EXPECT_EQ(slurp(dir + "/a.caml"), slurp(dir + "/b.caml"));
  EXPECT_EQ(a.acquired_mask, b.acquired_mask);
}

}  // namespace
}  // namespace caml
