// Proof of the PR-5 "zero per-defect heap allocations" claim: global
// operator new/delete are replaced with counting versions, the
// overlay + rebind + run_batch loop runs once to populate every
// reserved buffer, and a second full pass over the defect universe must
// then perform exactly zero allocations.
//
// This lives in its own test binary (not caml_tests) because replacing
// the global allocator is program-wide; it is also excluded from
// sanitizer builds, which interpose their own new/delete.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "defect/overlay.hpp"
#include "defect/universe.hpp"
#include "libgen/builder.hpp"
#include "sim/switch_sim.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace caml {
namespace {

void expect_zero_alloc_sweep(const std::string& function, const DriveSpec& drive,
                             const UniverseOptions& universe_options) {
  const Technology tech = technology_28soi();
  Rng rng(7);
  const Cell cell = build_cell(find_function(function), tech, drive, {"", 1.0}, function, rng);
  const std::vector<Defect> universe = enumerate_defects(cell, universe_options);
  const auto stimuli = generate_stimuli(cell.num_inputs(), StimulusPolicy::kExhaustivePairs);
  ASSERT_FALSE(universe.empty());

  DefectOverlay overlay(cell);
  SwitchSim sim(overlay.cell());
  sim.reserve(cell.num_nets() + DefectOverlay::kMaxExtraNets,
              cell.num_transistors() + DefectOverlay::kMaxExtraTransistors);
  std::vector<Sig> out(stimuli.size(), Sig::kX);

  const auto sweep = [&] {
    for (const Defect& defect : universe) {
      overlay.apply(defect);
      sim.rebind();
      sim.run_batch(stimuli, out.data());
      overlay.revert();
    }
  };

  // Warmup: grows any buffer whose high-water mark reserve() cannot
  // know up front (e.g. the run_batch initial-state snapshot).
  sweep();

  g_allocations.store(0);
  g_counting.store(true);
  sweep();
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << function << ": steady-state defect loop allocated on the heap";
}

TEST(AllocationCount, DefectSweepSteadyStateIsAllocationFree) {
  expect_zero_alloc_sweep("NAND2", {1, StructureVariant::kWide}, {});
}

TEST(AllocationCount, FullUniverseSweepSteadyStateIsAllocationFree) {
  UniverseOptions options;
  options.inter_transistor_shorts = true;
  options.resistive_variants = true;
  expect_zero_alloc_sweep("AOI21", {2, StructureVariant::kSplit}, options);
}

}  // namespace
}  // namespace caml
