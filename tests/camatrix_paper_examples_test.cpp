// Reproductions of the paper's worked examples: Fig. 4 (NAND2 cell and
// partial CA-matrix), Table II (activity values and renaming), Fig. 5
// (branch equations), Table I (training dataset shape), Table III
// (defect columns).
#include <gtest/gtest.h>

#include "camatrix/canonical.hpp"
#include "camatrix/matrix.hpp"
#include "sim/evaluator.hpp"
#include "util/error.hpp"
#include "camodel/generate.hpp"
#include "test_support.hpp"

namespace caml {
namespace {

using testing::make_fig5_cell;
using testing::make_nand2;

// Fig. 4.b: the partial CA-matrix of NAND2. "AB=00 leads to two active
// PMOS transistors and two passive NMOS transistors."
TEST(PaperExamples, Fig4PartialMatrix) {
  const Cell cell = make_nand2();
  const auto stimuli = generate_stimuli(2, StimulusPolicy::kExhaustivePairs);
  const GoldenResult golden = simulate_golden(cell, stimuli);

  // Stimulus 00 (index 0).
  EXPECT_EQ(golden.activity[0][0], Wave::kZero);  // NMOS passive
  EXPECT_EQ(golden.activity[0][1], Wave::kZero);
  EXPECT_EQ(golden.activity[0][2], Wave::kOne);   // PMOS active
  EXPECT_EQ(golden.activity[0][3], Wave::kOne);
  EXPECT_EQ(golden.responses[0], Sig::kOne);

  // Row "0 F 1" from Table I: A=0, B falls, Z stays 1; transistor N11
  // (gate B) shows a falling activity, Py (gate B, PMOS) a rising one.
  for (std::size_t s = 0; s < stimuli.size(); ++s) {
    if (stimuli[s].to_string() != "0F") continue;
    EXPECT_EQ(golden.responses[s], Sig::kOne);
    EXPECT_EQ(golden.initial_responses[s], Sig::kOne);
    EXPECT_EQ(golden.activity[s][1], Wave::kFall);  // N11 active -> passive
    EXPECT_EQ(golden.activity[s][3], Wave::kRise);  // Py passive -> active
  }
}

// Table II: activity values 3/5/12/10 and the renaming N10->N0,
// N11->N1, Px->P1, Py->P0.
TEST(PaperExamples, TableIIRenaming) {
  const Cell cell = make_nand2();
  const CanonicalCell canon = canonicalize(cell);
  EXPECT_EQ(canon.activity[0].to_uint64(), 3u);
  EXPECT_EQ(canon.activity[1].to_uint64(), 5u);
  EXPECT_EQ(canon.activity[2].to_uint64(), 12u);
  EXPECT_EQ(canon.activity[3].to_uint64(), 10u);
  EXPECT_EQ(canon.canonical_name[0], "N0");
  EXPECT_EQ(canon.canonical_name[1], "N1");
  EXPECT_EQ(canon.canonical_name[2], "P1");
  EXPECT_EQ(canon.canonical_name[3], "P0");
}

// Fig. 5: "the inverter ... branch equation is (Ninv|Pinv)"; "the
// equation of the second branch (NMOS branch driving net Y) is
// ((N0&(N1|N2))|N3)", anonymized ((1n&(1n|1n))|1n).
TEST(PaperExamples, Fig5BranchEquations) {
  const Cell cell = make_fig5_cell();
  const CanonicalCell canon = canonicalize(cell);
  ASSERT_EQ(canon.branches.size(), 2u);
  EXPECT_EQ(canon.branches[0].anon_equation, "(1n|1p)");
  // The complex branch's complementary equation contains the paper's
  // anonymized NMOS half verbatim.
  EXPECT_NE(canon.branches[1].anon_equation.find("(1n&(1n|1n))"), std::string::npos);
}

// Table I shape: the training dataset has one row per (stimulus,
// defect) pair including the defect-free rows, four-valued inputs, the
// response, per-transistor activity and defect-location columns, and
// the detection class as label.
TEST(PaperExamples, TableIShape) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  const CanonicalCell canon = canonicalize(cell);
  const CaMatrix matrix = build_ca_matrix(cell, model, canon);
  EXPECT_EQ(matrix.num_rows(), (model.defects.size() + 1) * model.stimuli.size());
  // Columns: A, B | Z | truth table (a documented extension, see
  // DESIGN.md) | N0 N1 P0 P1 | 4 terminals x 4 transistors.
  EXPECT_EQ(matrix.num_features(), 2u + 1u + 4u + 4u + 16u);
  EXPECT_TRUE(matrix.has_labels());
}

// Table III: a source-drain short on P1 (formerly Px) marks exactly the
// P1_S and P1_D columns.
TEST(PaperExamples, TableIIIDefectColumns) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  const CanonicalCell canon = canonicalize(cell);
  const CaMatrix matrix = build_ca_matrix(cell, model, canon);

  // Find the defect "short(Px.S, Px.D)" (device index 2).
  std::int32_t wanted = -1;
  for (std::size_t d = 0; d < model.defects.size(); ++d) {
    const Defect& def = model.defects[d].defect;
    if (def.kind == DefectKind::kShort && def.a.transistor == 2 && def.b.transistor == 2 &&
        ((def.a.terminal == Terminal::kSource && def.b.terminal == Terminal::kDrain) ||
         (def.a.terminal == Terminal::kDrain && def.b.terminal == Terminal::kSource))) {
      wanted = static_cast<std::int32_t>(d);
    }
  }
  ASSERT_GE(wanted, 0);

  const auto& names = matrix.column_names();
  std::size_t defect_start = 0;
  while (names[defect_start] != "N0_D") ++defect_start;
  for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
    if (matrix.row_defect()[r] != wanted) continue;
    for (std::size_t c = defect_start; c < matrix.num_features(); ++c) {
      const bool marked = matrix.at(r, c) != 0;
      const bool expected = names[c] == "P1_S" || names[c] == "P1_D";
      EXPECT_EQ(marked, expected) << names[c];
    }
    break;
  }
}

// Section III.A: the CA-matrix length formula. The paper counts
// 2^n + 2^n * 2^(n-1) rows; this reproduction uses the exhaustive
// ordered-pair superset 2^n + 2^n * (2^n - 1) (see DESIGN.md) — for the
// NAND2 example that is 16 stimuli per defect.
TEST(PaperExamples, MatrixLengthFormula) {
  EXPECT_EQ(stimulus_count(2, StimulusPolicy::kExhaustivePairs), 16u);
  EXPECT_EQ(stimulus_count(3, StimulusPolicy::kExhaustivePairs), 8u + 8u * 7u);
}

}  // namespace
}  // namespace caml
