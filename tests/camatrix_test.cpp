#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "camatrix/activity.hpp"
#include "camatrix/branch.hpp"
#include "camatrix/canonical.hpp"
#include "camatrix/matrix.hpp"
#include "sim/evaluator.hpp"
#include "util/error.hpp"
#include "camodel/generate.hpp"
#include "libgen/builder.hpp"
#include "libgen/catalog.hpp"
#include "test_support.hpp"

namespace caml {
namespace {

using testing::make_nand2;
using testing::make_nor2;

// ---- Activity values ---------------------------------------------------

TEST(Activity, ValueOrderingAndRendering) {
  const auto v1 = ActivityValue::from_pattern_bits({false, false, true, true});   // 0011
  const auto v2 = ActivityValue::from_pattern_bits({false, true, false, true});   // 0101
  EXPECT_LT(v1, v2);
  EXPECT_EQ(v1.to_uint64(), 3u);
  EXPECT_EQ(v2.to_uint64(), 5u);
  EXPECT_EQ(v1.to_string(), "0011");
}

TEST(Activity, ComputedValuesMatchGateLogic) {
  // NAND2 from the paper's Table II (inputs enumerated A-major):
  // N(A)=0011=3, N(B)=0101=5, P(A)=1100=12, P(B)=1010=10.
  const Cell cell = make_nand2();
  const auto activity = compute_activity_values(cell);
  ASSERT_EQ(activity.size(), 4u);
  EXPECT_EQ(activity[0].to_uint64(), 3u);   // N10, gate A
  EXPECT_EQ(activity[1].to_uint64(), 5u);   // N11, gate B
  EXPECT_EQ(activity[2].to_uint64(), 12u);  // Px, gate A
  EXPECT_EQ(activity[3].to_uint64(), 10u);  // Py, gate B
}

// ---- Branch extraction / equations --------------------------------------

TEST(Branch, Nand2SingleBranchEquation) {
  const Cell cell = make_nand2();
  const auto activity = compute_activity_values(cell);
  const auto branches = extract_branches(cell, activity);
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].level, 1);
  EXPECT_TRUE(branches[0].is_sp);
  EXPECT_EQ(branches[0].anon_equation, "((1n&1n)|1p|1p)");
  EXPECT_EQ(branches[0].exit, cell.output());
}

TEST(Branch, Nor2Equation) {
  const Cell cell = make_nor2();
  const auto activity = compute_activity_values(cell);
  const auto branches = extract_branches(cell, activity);
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].anon_equation, "((1p&1p)|1n|1n)");
}

TEST(Branch, Fig5EquationsAndLevels) {
  // The paper's Fig. 5: the output inverter is the level-1 branch with
  // equation (1n|1p); the complex stage is level 2 and its NMOS half
  // reads ((1n&(1n|1n))|1n) within the complementary equation.
  const Cell cell = testing::make_fig5_cell();
  const auto activity = compute_activity_values(cell);
  const auto branches = extract_branches(cell, activity);
  ASSERT_EQ(branches.size(), 2u);
  EXPECT_EQ(branches[0].level, 1);
  EXPECT_EQ(branches[0].anon_equation, "(1n|1p)");
  EXPECT_EQ(branches[1].level, 2);
  EXPECT_NE(branches[1].anon_equation.find("(1n&(1n|1n))"), std::string::npos)
      << branches[1].anon_equation;
}

TEST(Branch, SortCriteriaLevelThenSizeThenEquation) {
  const Cell cell = testing::make_fig5_cell();
  const auto activity = compute_activity_values(cell);
  const auto branches = extract_branches(cell, activity);
  for (std::size_t i = 1; i < branches.size(); ++i) {
    EXPECT_LE(branches[i - 1].level, branches[i].level);
  }
}

TEST(Branch, SpTreeCollectsAllDevices) {
  const Cell cell = make_nand2();
  const auto activity = compute_activity_values(cell);
  const auto branches = extract_branches(cell, activity);
  std::vector<TransistorId> devices;
  branches[0].tree.collect_devices(devices);
  std::sort(devices.begin(), devices.end());
  EXPECT_EQ(devices, (std::vector<TransistorId>{0, 1, 2, 3}));
}

// ---- Canonical renaming --------------------------------------------------

TEST(Canonical, Nand2MatchesPaperRenaming) {
  // Paper Fig. 4 / Table II: N10 -> N0 (stack top), N11 -> N1,
  // Py -> P0 (smaller activity), Px -> P1.
  const Cell cell = make_nand2();
  const CanonicalCell canon = canonicalize(cell);
  EXPECT_EQ(canon.canonical_name[0], "N0");  // N10
  EXPECT_EQ(canon.canonical_name[1], "N1");  // N11
  EXPECT_EQ(canon.canonical_name[2], "P1");  // Px
  EXPECT_EQ(canon.canonical_name[3], "P0");  // Py
}

TEST(Canonical, IndexLayoutNmosFirst) {
  const Cell cell = make_nand2();
  const CanonicalCell canon = canonicalize(cell);
  EXPECT_EQ(canon.canonical_index(0), 0u);  // N0
  EXPECT_EQ(canon.canonical_index(1), 1u);  // N1
  EXPECT_EQ(canon.canonical_index(3), 2u);  // P0 comes after all N
  EXPECT_EQ(canon.canonical_index(2), 3u);  // P1
  EXPECT_THROW(canon.canonical_index(99), Error);
}

// Property: canonicalization is invariant under scrambling (device
// order, device names, internal net names).
TEST(Canonical, ScrambleInvarianceAcrossCatalog) {
  const Technology tech = technology_28soi();
  Rng rng(0xABCDEF);
  for (const char* name :
       {"NAND3", "NOR4", "AOI22", "OAI211", "XOR2", "MUX2I", "MAJ3", "AND3"}) {
    Rng r1 = rng.fork();
    Rng r2 = rng.fork();
    const Cell a = build_cell(find_function(name), tech, {1, StructureVariant::kWide},
                              {"", 1.0}, name, r1);
    const Cell b = build_cell(find_function(name), tech, {1, StructureVariant::kWide},
                              {"", 1.0}, name, r2);
    const CanonicalCell ca = canonicalize(a, tech.sim);
    const CanonicalCell cb = canonicalize(b, tech.sim);
    EXPECT_EQ(ca.structure_signature, cb.structure_signature) << name;
    EXPECT_EQ(ca.reduced_signature, cb.reduced_signature) << name;
    // The canonical transistor sequences must describe the same devices:
    // same (type, gate net activity) at each canonical position.
    ASSERT_EQ(ca.nmos_order.size(), cb.nmos_order.size()) << name;
    for (std::size_t i = 0; i < ca.nmos_order.size(); ++i) {
      EXPECT_EQ(ca.activity[static_cast<std::size_t>(ca.nmos_order[i])],
                cb.activity[static_cast<std::size_t>(cb.nmos_order[i])])
          << name << " N" << i;
    }
    for (std::size_t i = 0; i < ca.pmos_order.size(); ++i) {
      EXPECT_EQ(ca.activity[static_cast<std::size_t>(ca.pmos_order[i])],
                cb.activity[static_cast<std::size_t>(cb.pmos_order[i])])
          << name << " P" << i;
    }
  }
}

// Property: signatures are technology-independent for the same function.
TEST(Canonical, SignaturesMatchAcrossTechnologies) {
  for (const char* name : {"NAND2", "AOI21", "OAI22", "XOR2", "MIN3"}) {
    std::set<std::string> signatures;
    for (const Technology& tech : default_technologies()) {
      Rng rng(tech.seed);
      const Cell cell = build_cell(find_function(name), tech, {1, StructureVariant::kWide},
                                   {"", 1.0}, name, rng);
      signatures.insert(canonicalize(cell, tech.sim).structure_signature);
    }
    EXPECT_EQ(signatures.size(), 1u) << name;
  }
}

TEST(Canonical, ReducedSignatureNormalizesFig6Variants) {
  const Technology tech = technology_28soi();
  Rng rng(5);
  for (const char* name : {"NAND2", "NOR3", "AOI22"}) {
    Rng r0 = rng.fork(), r1 = rng.fork(), r2 = rng.fork(), r3 = rng.fork();
    const Cell x1 =
        build_cell(find_function(name), tech, {1, StructureVariant::kWide}, {"", 1.0}, "a", r0);
    const Cell merged = build_cell(find_function(name), tech, {2, StructureVariant::kMerged},
                                   {"", 1.0}, "b", r1);
    const Cell split = build_cell(find_function(name), tech, {2, StructureVariant::kSplit},
                                  {"", 1.0}, "c", r2);
    const Cell merged4 = build_cell(find_function(name), tech, {4, StructureVariant::kMerged},
                                    {"", 1.0}, "d", r3);
    const auto sig = [&](const Cell& c) { return canonicalize(c, tech.sim).reduced_signature; };
    const std::string base = sig(x1);
    EXPECT_EQ(sig(merged), base) << name;
    EXPECT_EQ(sig(split), base) << name;
    EXPECT_EQ(sig(merged4), base) << name;
    // But the *full* signatures differ: these are distinct structures.
    const auto full = [&](const Cell& c) {
      return canonicalize(c, tech.sim).structure_signature;
    };
    EXPECT_NE(full(merged), full(x1)) << name;
    EXPECT_EQ(full(merged), full(merged));
  }
}

TEST(Canonical, DifferentFunctionsDifferentSignatures) {
  const Technology tech = technology_28soi();
  Rng rng(6);
  std::set<std::string> signatures;
  for (const char* name : {"NAND2", "NOR2", "AOI21", "OAI21", "XOR2", "XNOR2"}) {
    Rng r = rng.fork();
    const Cell cell =
        build_cell(find_function(name), tech, {1, StructureVariant::kWide}, {"", 1.0}, name, r);
    signatures.insert(canonicalize(cell, tech.sim).reduced_signature);
  }
  // NAND2 vs NOR2 and AOI vs OAI have different structures; XOR2/XNOR2
  // share the structure (gate wiring differs, structure does not).
  EXPECT_GE(signatures.size(), 5u);
}

// ---- CA-matrix -----------------------------------------------------------

TEST(Matrix, ShapeAndColumnNames) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  const CanonicalCell canon = canonicalize(cell);
  const CaMatrix matrix = build_ca_matrix(cell, model, canon);

  EXPECT_EQ(matrix.num_features(), matrix_feature_count(2, 4));
  const auto& names = matrix.column_names();
  ASSERT_EQ(names.size(), matrix.num_features());
  EXPECT_EQ(names[0], "IN0");
  EXPECT_EQ(names[2], "Z");
  // Truth-table columns follow the response.
  EXPECT_EQ(names[3], "TT0");
  EXPECT_EQ(names[6], "TT3");
  // Activity columns in canonical order N0, N1, P0, P1.
  EXPECT_EQ(names[7], "N0");
  EXPECT_EQ(names[10], "P1");
  // Defect columns per terminal.
  EXPECT_EQ(names[11], "N0_D");
  EXPECT_EQ(names[12], "N0_G");
}

TEST(Matrix, FreeRowsAreAllZeroDefectColumnsLabelZero) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  const CanonicalCell canon = canonicalize(cell);
  const CaMatrix matrix = build_ca_matrix(cell, model, canon);
  std::size_t free_rows = 0;
  for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
    if (matrix.row_defect()[r] != CaMatrix::kFreeRow) continue;
    ++free_rows;
    EXPECT_EQ(matrix.labels()[r], 0);
    for (std::size_t c = 11; c < matrix.num_features(); ++c) {
      EXPECT_EQ(matrix.at(r, c), 0);
    }
  }
  EXPECT_EQ(free_rows, model.stimuli.size());
}

TEST(Matrix, DefectColumnsEncodeLocation) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  const CanonicalCell canon = canonicalize(cell);
  const CaMatrix matrix = build_ca_matrix(cell, model, canon);
  for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
    const std::int32_t d = matrix.row_defect()[r];
    if (d < 0) continue;
    int marks = 0;
    for (std::size_t c = 11; c < matrix.num_features(); ++c) marks += matrix.at(r, c);
    const bool is_open = model.defects[static_cast<std::size_t>(d)].defect.kind ==
                         DefectKind::kOpen;
    EXPECT_EQ(marks, is_open ? 1 : 2);
  }
}

TEST(Matrix, PmosActivityIsSignFlipped) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  const CanonicalCell canon = canonicalize(cell);
  const CaMatrix matrix = build_ca_matrix(cell, model, canon);
  // Row 0 = free row, stimulus 00: N columns passive (0), P columns
  // active and sign-flipped (-2 encodes an active PMOS). Activity
  // columns start after inputs, Z and the 4 truth-table columns.
  EXPECT_EQ(matrix.at(0, 7), 0);
  EXPECT_EQ(matrix.at(0, 8), 0);
  EXPECT_EQ(matrix.at(0, 9), -2);
  EXPECT_EQ(matrix.at(0, 10), -2);
  // Truth-table columns encode NAND2: 1,1,1,0.
  EXPECT_EQ(matrix.at(0, 3), 1);
  EXPECT_EQ(matrix.at(0, 6), 0);
}

TEST(Matrix, LabelsMatchModelDetection) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  const CanonicalCell canon = canonicalize(cell);
  const CaMatrix matrix = build_ca_matrix(cell, model, canon);
  for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
    const std::int32_t d = matrix.row_defect()[r];
    if (d < 0) continue;
    EXPECT_EQ(matrix.labels()[r],
              model.defects[static_cast<std::size_t>(d)].detection[matrix.row_stimulus()[r]]);
  }
}

TEST(Matrix, UnlabeledMatrixOmitsFreeRows) {
  const Cell cell = make_nand2();
  const CanonicalCell canon = canonicalize(cell);
  const std::vector<Defect> defects = enumerate_defects(cell);
  const CaMatrix matrix =
      build_unlabeled_matrix(cell, defects, StimulusPolicy::kExhaustivePairs, canon);
  EXPECT_FALSE(matrix.has_labels());
  EXPECT_EQ(matrix.num_rows(), defects.size() * 16u);
  for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
    EXPECT_GE(matrix.row_defect()[r], 0);
  }
}

TEST(Matrix, AblationOptionsChangeWidth) {
  MatrixOptions no_activity;
  no_activity.include_activity = false;
  MatrixOptions no_response;
  no_response.include_response = false;
  MatrixOptions with_kind;
  with_kind.include_defect_kind = true;
  MatrixOptions no_tt;
  no_tt.include_truth_table = false;
  EXPECT_EQ(matrix_feature_count(2, 4, no_activity), matrix_feature_count(2, 4) - 4);
  EXPECT_EQ(matrix_feature_count(2, 4, no_response), matrix_feature_count(2, 4) - 1);
  EXPECT_EQ(matrix_feature_count(2, 4, with_kind), matrix_feature_count(2, 4) + 1);
  EXPECT_EQ(matrix_feature_count(2, 4, no_tt), matrix_feature_count(2, 4) - 4);
}

// Property: two scrambled builds of the same cell produce identical
// CA-matrices up to row order (the ML layer sees the same data whatever
// the vendor netlist looked like).
TEST(Matrix, ScrambleInvarianceUpToRowOrder) {
  const Technology tech = technology_28soi();
  Rng rng(0x77);
  for (const char* name : {"NAND2", "AOI21", "XOR2"}) {
    Rng r1 = rng.fork(), r2 = rng.fork();
    const Cell a = build_cell(find_function(name), tech, {2, StructureVariant::kSplit},
                              {"", 1.0}, name, r1);
    const Cell b = build_cell(find_function(name), tech, {2, StructureVariant::kSplit},
                              {"", 1.0}, name, r2);
    const auto rows = [&](const Cell& c) {
      GenerationOptions gen;
      gen.sim = tech.sim;
      const CaModel model = generate_ca_model(c, gen);
      const CaMatrix m = build_ca_matrix(c, model, canonicalize(c, tech.sim), tech.sim);
      std::vector<std::vector<std::int8_t>> out;
      for (std::size_t r = 0; r < m.num_rows(); ++r) {
        std::vector<std::int8_t> row(m.row(r), m.row(r) + m.num_features());
        row.push_back(static_cast<std::int8_t>(m.labels()[r]));
        out.push_back(std::move(row));
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(rows(a), rows(b)) << name;
  }
}

}  // namespace
}  // namespace caml
