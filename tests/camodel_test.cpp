#include <gtest/gtest.h>

#include <set>

#include "camodel/generate.hpp"
#include "camodel/model_io.hpp"
#include "camodel/pattern_selection.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace caml {
namespace {

using testing::make_nand2;
using testing::make_nor2;

TEST(CaModel, ClassifyStaticDynamicUndetected) {
  CaModel model;
  model.num_inputs = 1;
  model.policy = StimulusPolicy::kExhaustivePairs;
  model.stimuli = generate_stimuli(1, StimulusPolicy::kExhaustivePairs);  // 0,1,R,F
  model.golden_responses = {Sig::kOne, Sig::kZero, Sig::kZero, Sig::kOne};
  model.defects.resize(3);
  model.defects[0].detection = {1, 0, 0, 0};  // detected by a static stimulus
  model.defects[1].detection = {0, 0, 1, 0};  // only by a transition
  model.defects[2].detection = {0, 0, 0, 0};  // never
  model.classify();
  EXPECT_EQ(model.defects[0].klass, DefectClass::kStatic);
  EXPECT_EQ(model.defects[1].klass, DefectClass::kDynamic);
  EXPECT_EQ(model.defects[2].klass, DefectClass::kUndetected);
  EXPECT_EQ(model.count_class(DefectClass::kStatic), 1u);
  EXPECT_EQ(model.count_class(DefectClass::kDynamic), 1u);
  EXPECT_EQ(model.count_class(DefectClass::kUndetected), 1u);
}

TEST(CaModel, EquivalenceClassesGroupIdenticalVectors) {
  CaModel model;
  model.num_inputs = 1;
  model.stimuli = generate_stimuli(1, StimulusPolicy::kStaticOnly);
  model.golden_responses = {Sig::kOne, Sig::kZero};
  model.defects.resize(4);
  model.defects[0].detection = {1, 0};
  model.defects[1].detection = {0, 1};
  model.defects[2].detection = {1, 0};  // same as defect 0
  model.defects[3].detection = {1, 1};
  model.classify();
  EXPECT_EQ(model.equivalence_classes.size(), 3u);
  EXPECT_EQ(model.defects[0].equivalence_class, model.defects[2].equivalence_class);
  EXPECT_NE(model.defects[0].equivalence_class, model.defects[1].equivalence_class);
}

TEST(Generate, DetectionRequiresBinaryDifference) {
  // Every detection bit set by the generator corresponds to a stimulus
  // where the faulty output is binary and differs from golden.
  const Cell cell = make_nand2();
  const GenerationOptions options;
  const CaModel model = generate_ca_model(cell, options);
  for (const CaDefectEntry& e : model.defects) {
    const Cell faulty = inject_defect(cell, e.defect, options.injection);
    SwitchSim sim(faulty, options.sim);
    for (std::size_t s = 0; s < model.stimuli.size(); ++s) {
      if (!e.detection[s]) continue;
      const Sig out = sim.run(model.stimuli[s]);
      EXPECT_TRUE(sig_is_binary(out));
      EXPECT_NE(out, model.golden_responses[s]);
    }
  }
}

TEST(Generate, StuckOpenDefectsAreDynamicOnNand2) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  // The source open of the NMOS stack-top transistor (N10, index 0) is a
  // classic stuck-open: no static detection, detected by two-pattern
  // tests.
  bool found = false;
  for (const CaDefectEntry& e : model.defects) {
    if (e.defect.kind == DefectKind::kOpen && e.defect.a.transistor == 0 &&
        e.defect.a.terminal == Terminal::kSource) {
      EXPECT_EQ(e.klass, DefectClass::kDynamic) << e.defect.describe(cell);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Generate, StaticOnlyPolicyFindsNoDynamicDefects) {
  const Cell cell = make_nand2();
  GenerationOptions options;
  options.policy = StimulusPolicy::kStaticOnly;
  const CaModel model = generate_ca_model(cell, options);
  EXPECT_EQ(model.count_class(DefectClass::kDynamic), 0u);
  // And the dynamic-capable policy detects strictly more defects.
  const CaModel full = generate_ca_model(cell);
  EXPECT_GT(full.count_class(DefectClass::kStatic) + full.count_class(DefectClass::kDynamic),
            model.count_class(DefectClass::kStatic));
}

TEST(Generate, SingleInputChangePolicyIsSubsetOfExhaustive) {
  const Cell cell = make_nor2();
  GenerationOptions reduced;
  reduced.policy = StimulusPolicy::kSingleInputChange;
  const CaModel small = generate_ca_model(cell, reduced);
  const CaModel full = generate_ca_model(cell);
  ASSERT_EQ(small.defects.size(), full.defects.size());
  // A defect undetected by the exhaustive set must be undetected by the
  // reduced one.
  for (std::size_t d = 0; d < full.defects.size(); ++d) {
    if (full.defects[d].klass == DefectClass::kUndetected) {
      EXPECT_EQ(small.defects[d].klass, DefectClass::kUndetected);
    }
  }
}

TEST(Generate, SimulationCountFormula) {
  const Cell cell = make_nand2();
  const GenerationOptions options;
  const CaModel model = generate_ca_model(cell, options);
  EXPECT_EQ(conventional_simulation_count(cell, options),
            1 + model.defects.size() * model.stimuli.size());
}

TEST(Generate, TechnologyChangesDetectionOfSomeDefects) {
  // The same cell characterized under two test-condition profiles
  // (different strength normalization) flips the class of at least one
  // defect — the paper's observation about PVT/test-condition
  // sensitivity of CA models.
  const Cell cell = make_nand2();
  GenerationOptions a;
  a.sim.unit_width_um = 0.2;
  a.sim.pmos_mobility = 0.55;
  GenerationOptions b;
  b.sim.unit_width_um = 0.42;
  b.sim.pmos_mobility = 0.45;
  const CaModel ma = generate_ca_model(cell, a);
  const CaModel mb = generate_ca_model(cell, b);
  ASSERT_EQ(ma.defects.size(), mb.defects.size());
  std::size_t differing = 0;
  for (std::size_t d = 0; d < ma.defects.size(); ++d) {
    differing += ma.defects[d].detection != mb.defects[d].detection;
  }
  EXPECT_GT(differing, 0u);
  // But the models stay mostly identical ("slight differences").
  EXPECT_LT(differing, ma.defects.size() / 2);
}

TEST(ModelIo, RejectsMalformedText) {
  const Cell cell = make_nand2();
  EXPECT_THROW(ca_model_from_string("JUNK\n", cell), ParseError);
  EXPECT_THROW(ca_model_from_string("CAMODEL X INPUTS 2 POLICY exhaustive DEFECTS 0\n", cell),
               ParseError);  // missing GOLDEN
  const std::string bad_golden =
      "CAMODEL X INPUTS 2 POLICY exhaustive DEFECTS 0\nGOLDEN 01\nENDMODEL\n";
  EXPECT_THROW(ca_model_from_string(bad_golden, cell), ParseError);  // wrong length
}

// Numeric header corruption (truncated downloads, bit rot) must raise
// ParseError, not escape as std::invalid_argument from std::stoul.
TEST(ModelIo, RejectsCorruptNumericFields) {
  const Cell cell = make_nand2();
  EXPECT_THROW(
      ca_model_from_string("CAMODEL X INPUTS twelve POLICY exhaustive DEFECTS 0\n", cell),
      ParseError);
  EXPECT_THROW(ca_model_from_string("CAMODEL X INPUTS 2 POLICY exhaustive DEFECTS 3x\n", cell),
               ParseError);
  // Implausibly wide header rejected before exponential stimulus
  // generation can exhaust memory.
  EXPECT_THROW(ca_model_from_string("CAMODEL X INPUTS 4000 POLICY exhaustive DEFECTS 0\n", cell),
               ParseError);
}

TEST(ModelIo, RejectsUnknownDevice) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  std::string text = ca_model_to_string(model, cell);
  const std::size_t pos = text.find("N10.");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "XXX.");
  EXPECT_THROW(ca_model_from_string(text, cell), Error);
}

TEST(ModelIo, ClassRecomputedOnRead) {
  const Cell cell = make_nand2();
  CaModel model = generate_ca_model(cell);
  std::string text = ca_model_to_string(model, cell);
  const CaModel back = ca_model_from_string(text, cell);
  for (std::size_t d = 0; d < model.defects.size(); ++d) {
    EXPECT_EQ(back.defects[d].klass, model.defects[d].klass);
  }
  EXPECT_EQ(back.equivalence_classes.size(), model.equivalence_classes.size());
}


TEST(PatternSelection, CoversEveryDetectableEquivalenceClass) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  const PatternSelection sel = select_patterns(model);
  EXPECT_DOUBLE_EQ(sel.coverage, 1.0);
  EXPECT_FALSE(sel.stimuli.empty());
  EXPECT_LT(sel.stimuli.size(), model.stimuli.size());  // far fewer than exhaustive

  // Verify the cover directly.
  for (const CaDefectEntry& d : model.defects) {
    if (d.klass == DefectClass::kUndetected) continue;
    bool covered = false;
    for (std::size_t s : sel.stimuli) covered |= d.detection[s] != 0;
    EXPECT_TRUE(covered) << d.defect.describe(cell);
  }
  // Undetected list matches the model classes.
  EXPECT_EQ(sel.undetected.size(), model.count_class(DefectClass::kUndetected));
}

TEST(PatternSelection, GreedyOrderIsMonotone) {
  const Cell cell = make_nor2();
  const CaModel model = generate_ca_model(cell);
  const PatternSelection sel = select_patterns(model);
  // Each selected stimulus must contribute at least one new class; a
  // duplicate selection would violate the greedy invariant.
  std::set<std::size_t> unique(sel.stimuli.begin(), sel.stimuli.end());
  EXPECT_EQ(unique.size(), sel.stimuli.size());
}

TEST(PatternSelection, BudgetLimitsSelection) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  PatternSelectionOptions options;
  options.max_patterns = 2;
  const PatternSelection sel = select_patterns(model, options);
  EXPECT_LE(sel.stimuli.size(), 2u);
  EXPECT_LT(sel.coverage, 1.0);
  EXPECT_GT(sel.coverage, 0.0);
}

TEST(PatternSelection, DynamicDefectsNeedDynamicPatterns) {
  // A NAND2 has stuck-open (dynamic-only) defects, so any full cover
  // must include at least one two-pattern stimulus.
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  const PatternSelection sel = select_patterns(model);
  bool any_dynamic = false;
  for (std::size_t s : sel.stimuli) any_dynamic |= !model.stimuli[s].is_static();
  EXPECT_TRUE(any_dynamic);
}

}  // namespace
}  // namespace caml
