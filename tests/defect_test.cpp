#include <gtest/gtest.h>

#include "defect/injector.hpp"
#include "defect/universe.hpp"
#include "camodel/generate.hpp"
#include "camodel/model_io.hpp"
#include "sim/switch_sim.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace caml {
namespace {

using testing::make_nand2;

TEST(Universe, OpensEnumeratedPerTerminal) {
  const Cell cell = make_nand2();
  UniverseOptions options;
  options.intra_transistor_shorts = false;
  const auto defects = enumerate_defects(cell, options);
  EXPECT_EQ(defects.size(), 4u * 3u);  // G, S, D per transistor
  for (const Defect& d : defects) {
    EXPECT_EQ(d.kind, DefectKind::kOpen);
    EXPECT_EQ(d.a, d.b);
    EXPECT_NE(d.a.terminal, Terminal::kBulk);  // bulk opens never modeled
  }
}

TEST(Universe, ShortsSkipAlreadyConnectedPairs) {
  const Cell cell = make_nand2();
  UniverseOptions options;
  options.opens = false;
  const auto defects = enumerate_defects(cell, options);
  // N10: 6 pairs; N11, Px, Py each have bulk tied to source -> 5 each.
  EXPECT_EQ(defects.size(), 6u + 5u + 5u + 5u);
  for (const Defect& d : defects) {
    EXPECT_EQ(d.kind, DefectKind::kShort);
    EXPECT_TRUE(d.is_intra_transistor());
    const Transistor& t = cell.transistor(d.a.transistor);
    EXPECT_NE(t.terminal(d.a.terminal), t.terminal(d.b.terminal));
  }
}

TEST(Universe, DeterministicOrder) {
  const Cell cell = make_nand2();
  const auto a = enumerate_defects(cell);
  const auto b = enumerate_defects(cell);
  EXPECT_EQ(a, b);
}

TEST(Universe, InterTransistorShortsWithinComponent) {
  const Cell cell = make_nand2();
  UniverseOptions options;
  options.opens = false;
  options.intra_transistor_shorts = false;
  options.inter_transistor_shorts = true;
  const auto defects = enumerate_defects(cell, options);
  EXPECT_GT(defects.size(), 0u);
  for (const Defect& d : defects) {
    EXPECT_EQ(d.kind, DefectKind::kShort);
    EXPECT_FALSE(d.is_intra_transistor());
  }
}

TEST(Defect, Describe) {
  const Cell cell = make_nand2();
  Defect open;
  open.kind = DefectKind::kOpen;
  open.a = open.b = TerminalRef{0, Terminal::kSource};
  EXPECT_EQ(open.describe(cell), "open(N10.S)");
  Defect bridge;
  bridge.kind = DefectKind::kShort;
  bridge.a = TerminalRef{2, Terminal::kDrain};
  bridge.b = TerminalRef{3, Terminal::kGate};
  EXPECT_EQ(bridge.describe(cell), "short(Px.D, Py.G)");
}

TEST(Injector, OpenDetachesTerminalToFloatingNet) {
  const Cell cell = make_nand2();
  Defect d;
  d.kind = DefectKind::kOpen;
  d.a = d.b = TerminalRef{0, Terminal::kSource};  // N10 source open
  const Cell faulty = inject_defect(cell, d);
  EXPECT_EQ(faulty.num_nets(), cell.num_nets() + 1);
  EXPECT_EQ(faulty.num_transistors(), cell.num_transistors());
  EXPECT_NE(faulty.transistor(0).source, cell.transistor(0).source);
}

TEST(Injector, ShortAddsAlwaysOnBridge) {
  const Cell cell = make_nand2();
  Defect d;
  d.kind = DefectKind::kShort;
  d.a = TerminalRef{0, Terminal::kDrain};   // N10.D = Z
  d.b = TerminalRef{0, Terminal::kSource};  // N10.S = net0
  const Cell faulty = inject_defect(cell, d);
  EXPECT_EQ(faulty.num_transistors(), cell.num_transistors() + 1);
  const Transistor& bridge = faulty.transistors().back();
  EXPECT_EQ(bridge.gate, faulty.vdd());  // always conducting
}

TEST(Injector, RejectsNoOpShort) {
  const Cell cell = make_nand2();
  Defect d;
  d.kind = DefectKind::kShort;
  d.a = TerminalRef{1, Terminal::kSource};  // N11.S = VSS
  d.b = TerminalRef{1, Terminal::kBulk};    // N11.B = VSS, same net
  EXPECT_THROW(inject_defect(cell, d), Error);
}

TEST(Injector, RejectsOutOfRangeTransistor) {
  const Cell cell = make_nand2();
  Defect d;
  d.kind = DefectKind::kOpen;
  d.a = d.b = TerminalRef{99, Terminal::kGate};
  EXPECT_THROW(inject_defect(cell, d), Error);
}

// Behavioural checks of the canonical defect mechanisms on NAND2.
TEST(DefectBehaviour, SourceDrainShortOnPmosPullsOutputHigh) {
  const Cell cell = make_nand2();
  Defect d;
  d.kind = DefectKind::kShort;
  d.a = TerminalRef{2, Terminal::kSource};  // Px: VDD
  d.b = TerminalRef{2, Terminal::kDrain};   // Px: Z
  const Cell faulty = inject_defect(cell, d);
  SwitchSim sim(faulty);
  sim.reset();
  // A=B=1 should give 0, but the short fights the NMOS stack. With the
  // default bridge strength the output is degraded away from a clean 0.
  const Sig out = sim.apply(0b11);
  EXPECT_NE(out, Sig::kZero);
}

TEST(DefectBehaviour, GateOpenBehavesStuckOff) {
  const Cell cell = make_nand2();
  Defect d;
  d.kind = DefectKind::kOpen;
  d.a = d.b = TerminalRef{0, Terminal::kGate};  // N10 gate open
  const Cell faulty = inject_defect(cell, d);
  SwitchSim sim(faulty);
  sim.reset();
  // Pull-down path broken: Z cannot go low; first 11 pattern gives a
  // floating (retained Z from cold start) output rather than 0.
  EXPECT_NE(sim.apply(0b11), Sig::kZero);
}

TEST(DefectBehaviour, StuckOpenNeedsTwoPatternTest) {
  const Cell cell = make_nand2();
  Defect d;
  d.kind = DefectKind::kOpen;
  d.a = d.b = TerminalRef{0, Terminal::kSource};  // N10 source open
  const Cell faulty = inject_defect(cell, d);
  SwitchSim sim(faulty);

  // Static 11 from cold start: output floats (Z) -> no definite detect.
  sim.reset();
  EXPECT_EQ(sim.apply(0b11), Sig::kZ);

  // Two-pattern 01 -> 11: the first pattern charges Z high, the broken
  // pull-down cannot discharge it -> faulty 1 vs golden 0: detected.
  const Sig out = sim.run(Stimulus::parse("R1"));
  EXPECT_EQ(out, Sig::kOne);
}


TEST(ResistiveDefects, UniverseDoublesWithVariants) {
  const Cell cell = make_nand2();
  UniverseOptions options;
  options.resistive_variants = true;
  const auto defects = enumerate_defects(cell, options);
  const auto hard_only = enumerate_defects(cell);
  EXPECT_EQ(defects.size(), 2 * hard_only.size());
  std::size_t resistive = 0;
  for (const Defect& d : defects) resistive += d.strength == DefectStrength::kResistive;
  EXPECT_EQ(resistive, hard_only.size());
}

TEST(ResistiveDefects, ResistiveShortLosesStrengthFight) {
  // Hard S-D short on the pull-up wins/X-es the fight at AB=11, but the
  // resistive variant is too weak to corrupt the strong pull-down.
  const Cell cell = make_nand2();
  Defect d;
  d.kind = DefectKind::kShort;
  d.a = TerminalRef{2, Terminal::kSource};
  d.b = TerminalRef{2, Terminal::kDrain};

  const Cell hard = inject_defect(cell, d);
  d.strength = DefectStrength::kResistive;
  const Cell soft = inject_defect(cell, d);

  SwitchSim hard_sim(hard), soft_sim(soft);
  hard_sim.reset();
  soft_sim.reset();
  EXPECT_NE(hard_sim.apply(0b11), Sig::kZero);   // corrupted
  EXPECT_EQ(soft_sim.apply(0b11), Sig::kZero);   // survives the weak short
}

TEST(ResistiveDefects, ResistiveOpenKeepsWeakPath) {
  // A resistive source open still pulls the output low (through the
  // residual bridge) when nothing fights it.
  const Cell cell = make_nand2();
  Defect d;
  d.kind = DefectKind::kOpen;
  d.strength = DefectStrength::kResistive;
  d.a = d.b = TerminalRef{0, Terminal::kSource};
  const Cell faulty = inject_defect(cell, d);
  SwitchSim sim(faulty);
  sim.reset();
  EXPECT_EQ(sim.apply(0b11), Sig::kZero);  // weak path still discharges Z
}

TEST(ResistiveDefects, DescribeIncludesStrength) {
  const Cell cell = make_nand2();
  Defect d;
  d.kind = DefectKind::kOpen;
  d.strength = DefectStrength::kResistive;
  d.a = d.b = TerminalRef{0, Terminal::kGate};
  EXPECT_EQ(d.describe(cell), "resistive-open(N10.G)");
}

TEST(ResistiveDefects, ModelTextRoundTripKeepsStrength) {
  const Cell cell = make_nand2();
  GenerationOptions options;
  options.universe.resistive_variants = true;
  const CaModel model = generate_ca_model(cell, options);
  const std::string text = ca_model_to_string(model, cell);
  const CaModel back = ca_model_from_string(text, cell);
  ASSERT_EQ(back.defects.size(), model.defects.size());
  for (std::size_t i = 0; i < model.defects.size(); ++i) {
    EXPECT_EQ(back.defects[i].defect.strength, model.defects[i].defect.strength);
    EXPECT_EQ(back.defects[i].detection, model.defects[i].detection);
  }
}

TEST(ResistiveDefects, SomeVariantsBehaveDifferently) {
  // At least one defect location must change its detection vector
  // between the hard and the resistive variant — otherwise the
  // resistance model would be inert.
  const Cell cell = make_nand2();
  GenerationOptions options;
  options.universe.resistive_variants = true;
  const CaModel model = generate_ca_model(cell, options);
  const std::size_t half = model.defects.size() / 2;
  std::size_t differing = 0;
  for (std::size_t i = 0; i < half; ++i) {
    // Enumeration appends resistive copies after the hard block.
    differing += model.defects[i].detection != model.defects[i + half].detection;
  }
  EXPECT_GT(differing, 0u);
  EXPECT_LT(differing, half);  // most behave identically
}

}  // namespace
}  // namespace caml
