#include <gtest/gtest.h>

#include "camodel/diagnosis.hpp"
#include "camodel/generate.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace caml {
namespace {

using testing::make_nand2;
using testing::make_nor2;

TEST(Diagnosis, InjectedDefectIsTopCandidate) {
  // Inject every detectable defect, observe the tester response, and
  // check the diagnosis ranks the defect's own equivalence class first
  // with an exact match.
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  for (std::size_t d = 0; d < model.defects.size(); ++d) {
    if (model.defects[d].klass == DefectClass::kUndetected) continue;
    const TesterResponse observed =
        simulate_tester_response(cell, model, model.defects[d].defect);
    const auto candidates = diagnose(model, observed);
    ASSERT_FALSE(candidates.empty()) << model.defects[d].defect.describe(cell);
    EXPECT_TRUE(candidates.front().exact) << model.defects[d].defect.describe(cell);
    EXPECT_EQ(candidates.front().equivalence_class, model.defects[d].equivalence_class)
        << model.defects[d].defect.describe(cell);
  }
}

TEST(Diagnosis, ResponseMatchesDetectionVector) {
  // The simulated tester response of defect d is exactly its detection
  // vector (by construction of the conventional flow).
  const Cell cell = make_nor2();
  const CaModel model = generate_ca_model(cell);
  for (std::size_t d = 0; d < model.defects.size(); d += 5) {
    const TesterResponse observed =
        simulate_tester_response(cell, model, model.defects[d].defect);
    EXPECT_EQ(observed.failing, model.defects[d].detection);
  }
}

TEST(Diagnosis, NoisyResponseStillRanksCulpritHighly) {
  // Flip one observation bit: the culprit should stay among the top
  // candidates even without an exact match.
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  Rng rng(11);
  std::size_t checked = 0;
  for (std::size_t d = 0; d < model.defects.size() && checked < 8; ++d) {
    if (model.defects[d].klass == DefectClass::kUndetected) continue;
    if (model.defects[d].detection.size() < 2) continue;
    TesterResponse observed = simulate_tester_response(cell, model, model.defects[d].defect);
    if (observed.num_failing() < 3) continue;  // too little signal to be noise-robust
    const std::size_t flip = static_cast<std::size_t>(rng.below(observed.failing.size()));
    observed.failing[flip] ^= 1;
    const auto candidates = diagnose(model, observed);
    ASSERT_FALSE(candidates.empty());
    bool found = false;
    for (std::size_t i = 0; i < candidates.size() && i < 3; ++i) {
      found |= candidates[i].equivalence_class == model.defects[d].equivalence_class;
    }
    EXPECT_TRUE(found) << model.defects[d].defect.describe(cell);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Diagnosis, AllPassingResponseYieldsNoCandidates) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  TesterResponse clean;
  clean.failing.assign(model.stimuli.size(), 0);
  EXPECT_TRUE(diagnose(model, clean).empty());
}

TEST(Diagnosis, TopKLimitsOutput) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  TesterResponse observed;
  observed.failing.assign(model.stimuli.size(), 1);  // everything fails
  DiagnosisOptions options;
  options.top_k = 3;
  EXPECT_LE(diagnose(model, observed, options).size(), 3u);
}

}  // namespace
}  // namespace caml
