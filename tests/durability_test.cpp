// Crash-safety tests: checkpoint journal semantics, durable artifact
// round-trips with corruption rejection, characterize/hybrid resume
// determinism, and (under -DCAML_FAULT_INJECTION=ON) a real SIGKILL
// mid-run followed by a byte-compare against an uninterrupted run.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "camodel/model_io.hpp"
#include "flow/characterize.hpp"
#include "flow/checkpoint.hpp"
#include "flow/hybrid.hpp"
#include "flow/model_store.hpp"
#include "ml/forest.hpp"
#include "ml/forest_io.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"

namespace caml {
namespace {

namespace fs = std::filesystem;

using testing::build_function;
using testing::characterize;

std::string temp_dir(const char* tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("caml_dur_" + std::to_string(::getpid()) + "_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// filename -> full contents for every regular file directly in `dir`.
std::map<std::string, std::string> snapshot_dir(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      files[entry.path().filename().string()] = slurp(entry.path().string());
    }
  }
  return files;
}

/// Corrupts one byte near the end of a file (payload region of a framed
/// artifact — past the header, so the CRC is what must catch it).
void flip_tail_byte(const std::string& path) {
  std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 4u);
  bytes[bytes.size() - 3] ^= 0x10;
  io::write_file_atomic(path, bytes);
}

/// A cheap three-cell library (small cells, exhaustive policy still
/// fast) for the characterize checkpoint tests.
Library small_library() {
  const Technology tech = technology_28soi();
  Library lib;
  lib.name = "chk";
  lib.technology = tech;
  lib.cells.push_back(build_function("INV", tech, {1, StructureVariant::kWide}, 11));
  lib.cells.push_back(build_function("NAND2", tech, {1, StructureVariant::kWide}, 12));
  lib.cells.push_back(build_function("NOR2", tech, {1, StructureVariant::kWide}, 13));
  return lib;
}

// ---------------------------------------------------------------------------
// Checkpoint journal

TEST(CheckpointJournal, RoundTripsUnitsAndPayloads) {
  const std::string dir = temp_dir("journal");
  {
    CheckpointJournal journal(dir, 2);
    journal.record("cell:b", "payload b");
    journal.record("cell:a");
    journal.record("cell:c", "payload c");
    journal.flush();
    EXPECT_EQ(journal.size(), 3u);
  }
  CheckpointJournal back(dir, 2);
  back.load();
  EXPECT_EQ(back.size(), 3u);
  EXPECT_TRUE(back.completed("cell:a"));
  EXPECT_TRUE(back.completed("cell:b"));
  EXPECT_FALSE(back.completed("cell:d"));
  EXPECT_EQ(back.payload("cell:b"), "payload b");
  EXPECT_EQ(back.payload("cell:a"), "");
  EXPECT_EQ(back.payload("cell:d"), "");
}

TEST(CheckpointJournal, FileBytesIndependentOfCompletionOrder) {
  const std::string dir_a = temp_dir("order_a");
  const std::string dir_b = temp_dir("order_b");
  CheckpointJournal a(dir_a, 0);
  CheckpointJournal b(dir_b, 0);
  // Same unit set, opposite completion order — e.g. two runs with
  // different thread schedules — must leave byte-identical journals.
  for (const char* unit : {"u1", "u2", "u3"}) a.record(unit, std::string("p-") + unit);
  for (const char* unit : {"u3", "u2", "u1"}) b.record(unit, std::string("p-") + unit);
  a.flush();
  b.flush();
  EXPECT_EQ(slurp(a.path()), slurp(b.path()));
}

TEST(CheckpointJournal, MissingJournalLoadsEmpty) {
  CheckpointJournal journal(temp_dir("empty"), 4);
  journal.load();
  EXPECT_EQ(journal.size(), 0u);
}

TEST(CheckpointJournal, CorruptJournalIsDiscardedNotTrusted) {
  const std::string dir = temp_dir("corrupt");
  {
    CheckpointJournal journal(dir, 1);
    journal.record("cell:a");
    journal.record("cell:b");
  }
  const std::string path = (fs::path(dir) / CheckpointJournal::kFileName).string();
  flip_tail_byte(path);
  CheckpointJournal back(dir, 1);
  back.load();  // warns and discards; resume re-runs everything
  EXPECT_EQ(back.size(), 0u);

  // Same for a journal replaced by plain garbage.
  io::write_file_atomic(path, "not a journal at all\n");
  CheckpointJournal again(dir, 1);
  again.load();
  EXPECT_EQ(again.size(), 0u);
}

// ---------------------------------------------------------------------------
// Durable artifacts reject corruption

TEST(DurableArtifacts, ModelStoreFileRoundTripAndCorruptionRejected) {
  const Technology tech = technology_28soi();
  std::vector<CharacterizedCell> training;
  training.push_back(characterize(build_function("INV", tech, {1, StructureVariant::kWide}, 3), tech));
  MlOptions ml;
  ml.forest.num_trees = 4;
  const GroupModelStore store = GroupModelStore::train(training, ml);

  const std::string dir = temp_dir("store");
  const std::string path = dir + "/models.caml";
  store.save_file(path);

  const GroupModelStore loaded = GroupModelStore::load_file(path);
  EXPECT_EQ(loaded.num_groups(), store.num_groups());

  // Legacy (unframed) stores still load through the sniffing reader.
  std::ostringstream legacy;
  store.save(legacy);
  io::write_file_atomic(dir + "/legacy.caml", legacy.str());
  EXPECT_EQ(GroupModelStore::load_file(dir + "/legacy.caml").num_groups(), store.num_groups());

  // A flipped payload byte fails loud with the file named in the error.
  flip_tail_byte(path);
  try {
    GroupModelStore::load_file(path);
    FAIL() << "expected ParseError for corrupt store";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  // Truncation (the classic partial-copy failure) is rejected too.
  const std::string bytes = slurp(dir + "/legacy.caml");
  io::write_checksummed_file(path, "models", bytes);
  std::string framed = slurp(path);
  framed.resize(framed.size() / 2);
  io::write_file_atomic(path, framed);
  EXPECT_THROW(GroupModelStore::load_file(path), ParseError);
}

TEST(DurableArtifacts, ForestFileRoundTripAndCorruptionRejected) {
  // A forest trained on a tiny synthetic dataset round-trips through the
  // framed file and refuses a flipped byte.
  Dataset data(2);
  for (int i = 0; i < 8; ++i) {
    const std::int8_t row[2] = {static_cast<std::int8_t>(i & 1),
                                static_cast<std::int8_t>((i >> 1) & 1)};
    data.add_row(row, static_cast<std::uint8_t>(i & 1));
  }
  ForestParams params;
  params.num_trees = 3;
  RandomForest forest(params);
  forest.fit(data);

  const std::string path = temp_dir("forest") + "/group.forest";
  write_forest_file(path, forest, data.num_features());
  const LoadedForest back = read_forest_file(path);
  EXPECT_EQ(back.num_features, data.num_features());

  flip_tail_byte(path);
  EXPECT_THROW(read_forest_file(path), ParseError);
}

TEST(DurableArtifacts, CaModelFileRoundTripFramedAndLegacy) {
  const Technology tech = technology_28soi();
  const LibraryCell cell = build_function("NAND2", tech, {1, StructureVariant::kWide}, 5);
  const CharacterizedCell cc = characterize(cell, tech);

  const std::string dir = temp_dir("camodel");
  const std::string path = dir + "/cell.camodel";
  write_ca_model_file(path, cc.model, cell.cell);
  const CaModel back = read_ca_model_file(path, cell.cell);
  EXPECT_EQ(ca_model_to_string(back, cell.cell), ca_model_to_string(cc.model, cell.cell));

  // Legacy raw artifact (pre-framing characterize output).
  io::write_file_atomic(dir + "/legacy.camodel", ca_model_to_string(cc.model, cell.cell));
  const CaModel legacy = read_ca_model_file(dir + "/legacy.camodel", cell.cell);
  EXPECT_EQ(ca_model_to_string(legacy, cell.cell), ca_model_to_string(cc.model, cell.cell));

  flip_tail_byte(path);
  EXPECT_THROW(read_ca_model_file(path, cell.cell), ParseError);
}

// ---------------------------------------------------------------------------
// Characterize checkpoint/resume

TEST(CharacterizeCheckpoint, ResumeReproducesUninterruptedRunExactly) {
  const Library lib = small_library();

  // Reference: one uninterrupted checkpointed run.
  CharacterizeOptions ref_opts;
  ref_opts.jobs = 1;
  ref_opts.checkpoint.dir = temp_dir("ref");
  ref_opts.checkpoint.every = 1;
  const std::vector<CharacterizedCell> reference = characterize_library(lib, ref_opts);

  // Interrupted run: only the first cell completes (a sub-library stands
  // in for a crash — the journal and artifact state is exactly what a
  // kill after cell 1 leaves behind, with every=1).
  CharacterizeOptions part_opts = ref_opts;
  part_opts.checkpoint.dir = temp_dir("resumed");
  Library prefix = lib;
  prefix.cells.resize(1);
  characterize_library(prefix, part_opts);

  // Resume over the full library: completed cells load from artifacts,
  // the rest characterize fresh.
  CharacterizeOptions resume_opts = part_opts;
  resume_opts.checkpoint.resume = true;
  const std::vector<CharacterizedCell> resumed = characterize_library(lib, resume_opts);

  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(ca_model_to_string(resumed[i].model, resumed[i].source.cell),
              ca_model_to_string(reference[i].model, reference[i].source.cell))
        << lib.cells[i].cell.name();
    EXPECT_EQ(resumed[i].canonical.structure_signature,
              reference[i].canonical.structure_signature);
  }
  // The checkpoint directories — artifacts and journal — are
  // byte-identical: resuming leaves no trace of the interruption.
  EXPECT_EQ(snapshot_dir(resume_opts.checkpoint.dir), snapshot_dir(ref_opts.checkpoint.dir));
}

TEST(CharacterizeCheckpoint, CorruptArtifactIsRecharacterizedOnResume) {
  const Library lib = small_library();
  CharacterizeOptions opts;
  opts.jobs = 1;
  opts.checkpoint.dir = temp_dir("recover");
  opts.checkpoint.every = 1;
  const std::vector<CharacterizedCell> first = characterize_library(lib, opts);

  // Corrupt one completed artifact; resume must fall back to
  // re-simulation for that cell instead of failing or trusting it.
  const std::string victim =
      opts.checkpoint.dir + "/" + lib.cells[1].cell.name() + ".camodel";
  flip_tail_byte(victim);

  CharacterizeOptions resume_opts = opts;
  resume_opts.checkpoint.resume = true;
  const std::vector<CharacterizedCell> resumed = characterize_library(lib, resume_opts);
  ASSERT_EQ(resumed.size(), first.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(ca_model_to_string(resumed[i].model, resumed[i].source.cell),
              ca_model_to_string(first[i].model, first[i].source.cell));
  }
  // The re-characterized artifact is durable and valid again.
  EXPECT_NO_THROW(read_ca_model_file(victim, lib.cells[1].cell));
}

// ---------------------------------------------------------------------------
// Hybrid flow: graceful degradation + journal replay

/// One NAND2 training cell and one NAND2 twin target (same structure,
/// different seed) — the minimal corpus where the target routes to ML.
struct TinyHybridCorpus {
  std::vector<CharacterizedCell> training;
  std::vector<CharacterizedCell> targets;
};

TinyHybridCorpus tiny_hybrid_corpus() {
  const Technology tech = technology_28soi();
  TinyHybridCorpus corpus;
  corpus.training.push_back(
      characterize(build_function("NAND2", tech, {1, StructureVariant::kWide}, 21), tech));
  corpus.targets.push_back(
      characterize(build_function("NAND2", tech, {1, StructureVariant::kWide}, 22), tech));
  return corpus;
}

TEST(HybridDegradation, MlFailureFallsBackToConventional) {
  const TinyHybridCorpus corpus = tiny_hybrid_corpus();

  HybridOptions options;
  options.ml.forest.num_trees = 4;
  // Sanity: with a healthy classifier the target routes to ML.
  const HybridReport healthy = run_hybrid_flow(corpus.training, corpus.targets, options);
  ASSERT_EQ(healthy.count_routed_to_ml(), 1u);
  ASSERT_EQ(healthy.count_degraded(), 0u);

  // A classifier factory that always fails stands in for a missing or
  // corrupt group model. The run must complete, count the degradation,
  // and charge the cell its conventional cost.
  options.ml.make_classifier = []() -> std::unique_ptr<Classifier> {
    throw Error("injected classifier failure");
  };
  const HybridReport degraded = run_hybrid_flow(corpus.training, corpus.targets, options);
  ASSERT_EQ(degraded.outcomes.size(), 1u);
  EXPECT_EQ(degraded.count_routed_to_ml(), 0u);
  EXPECT_EQ(degraded.count_degraded(), 1u);
  EXPECT_FALSE(degraded.outcomes[0].routed_to_ml);
  EXPECT_TRUE(degraded.outcomes[0].degraded);
  EXPECT_DOUBLE_EQ(degraded.outcomes[0].accuracy, 1.0);
  EXPECT_DOUBLE_EQ(degraded.hybrid_seconds(), degraded.conventional_only_seconds());
}

TEST(HybridCheckpoint, ResumeReplaysOutcomesWithoutRetraining) {
  const TinyHybridCorpus corpus = tiny_hybrid_corpus();
  const std::string dir = temp_dir("hybrid");

  int trainings = 0;
  HybridOptions options;
  options.ml.forest.num_trees = 4;
  options.ml.make_classifier = [&trainings]() -> std::unique_ptr<Classifier> {
    ++trainings;
    ForestParams params;
    params.num_trees = 4;
    return std::make_unique<RandomForest>(params);
  };
  options.checkpoint.dir = dir;
  options.checkpoint.every = 1;

  const HybridReport first = run_hybrid_flow(corpus.training, corpus.targets, options);
  ASSERT_EQ(first.outcomes.size(), 1u);
  EXPECT_EQ(trainings, 1);

  // Resume over the same targets: everything replays from the journal —
  // zero classifier trainings, decisions and accuracies reproduced.
  trainings = 0;
  options.checkpoint.resume = true;
  const HybridReport replayed = run_hybrid_flow(corpus.training, corpus.targets, options);
  EXPECT_EQ(trainings, 0);
  ASSERT_EQ(replayed.outcomes.size(), first.outcomes.size());
  for (std::size_t i = 0; i < replayed.outcomes.size(); ++i) {
    EXPECT_EQ(replayed.outcomes[i].match, first.outcomes[i].match);
    EXPECT_EQ(replayed.outcomes[i].routed_to_ml, first.outcomes[i].routed_to_ml);
    EXPECT_EQ(replayed.outcomes[i].degraded, first.outcomes[i].degraded);
    EXPECT_DOUBLE_EQ(replayed.outcomes[i].accuracy, first.outcomes[i].accuracy);
    EXPECT_DOUBLE_EQ(replayed.outcomes[i].conventional_seconds,
                     first.outcomes[i].conventional_seconds);
  }
}

// ---------------------------------------------------------------------------
// Real crash: SIGKILL mid-run, then resume (fault-injection builds only)

TEST(DurabilityFault, KillMidRunThenResumeIsByteIdentical) {
  if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";

  const Library lib = small_library();
  CharacterizeOptions opts;
  opts.jobs = 1;  // deterministic op order in the child
  opts.checkpoint.every = 1;

  // Reference: uninterrupted run.
  opts.checkpoint.dir = temp_dir("kill_ref");
  characterize_library(lib, opts);
  const auto reference = snapshot_dir(opts.checkpoint.dir);

  // Crash run: a forked child SIGKILLs itself at the 4th persistence
  // operation (mid-library: each cell costs an artifact write+rename
  // plus a journal write+rename with every=1).
  opts.checkpoint.dir = temp_dir("kill_run");
  const std::string crash_dir = opts.checkpoint.dir;
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    fault::arm({"*", fault::Kind::kKill, 4, 0});
    CharacterizeOptions child_opts = opts;
    characterize_library(lib, child_opts);
    ::_exit(7);  // ran to completion: the fault never fired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with " << WEXITSTATUS(status);
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The interrupted directory holds only verifiable state: every
  // artifact present either validates or is ignored by resume.
  CharacterizeOptions resume_opts = opts;
  resume_opts.checkpoint.resume = true;
  characterize_library(lib, resume_opts);
  EXPECT_EQ(snapshot_dir(crash_dir), reference);
}

}  // namespace
}  // namespace caml
