#include <gtest/gtest.h>

#include <sstream>

#include "flow/hybrid.hpp"
#include "flow/model_store.hpp"
#include "util/error.hpp"
#include <sstream>
#include "ml/knn.hpp"
#include "flow/report.hpp"
#include "test_support.hpp"

namespace caml {
namespace {

using testing::build_function;
using testing::characterize;

TEST(Characterize, PolicyProfileSelectsByInputCount) {
  PolicyProfile profile;
  profile.exhaustive_max_inputs = 3;
  EXPECT_EQ(profile.policy_for(2), StimulusPolicy::kExhaustivePairs);
  EXPECT_EQ(profile.policy_for(3), StimulusPolicy::kExhaustivePairs);
  EXPECT_EQ(profile.policy_for(4), StimulusPolicy::kSingleInputChange);
}

TEST(Characterize, CellCarriesModelCanonicalAndSim) {
  const Technology tech = technology_28soi();
  const CharacterizedCell cell = characterize(build_function("NAND2", tech), tech);
  EXPECT_EQ(cell.num_inputs(), 2u);
  EXPECT_EQ(cell.num_transistors(), 4u);
  EXPECT_EQ(cell.model.defects.size(), cell.model.defects.size());
  EXPECT_FALSE(cell.canonical.structure_signature.empty());
  EXPECT_EQ(cell.sim.unit_width_um, tech.sim.unit_width_um);
}

TEST(Grouping, GroupsByInputsAndTransistors) {
  const Technology tech = technology_28soi();
  std::vector<CharacterizedCell> cells;
  cells.push_back(characterize(build_function("NAND2", tech, {1, StructureVariant::kWide}, 1),
                               tech));
  cells.push_back(characterize(build_function("NOR2", tech, {1, StructureVariant::kWide}, 2),
                               tech));
  cells.push_back(characterize(build_function("INV", tech, {1, StructureVariant::kWide}, 3),
                               tech));
  cells.push_back(characterize(build_function("NAND3", tech, {1, StructureVariant::kWide}, 4),
                               tech));
  const GroupMap groups = group_cells(cells);
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.at(GroupKey{2, 4}).size(), 2u);
  EXPECT_EQ(groups.at(GroupKey{1, 2}).size(), 1u);
  EXPECT_EQ(groups.at(GroupKey{3, 6}).size(), 1u);
}

TEST(MlFlow, TrainingSetWidthMatchesGroupShape) {
  const Technology tech = technology_28soi();
  const CharacterizedCell a = characterize(build_function("NAND2", tech), tech);
  const CharacterizedCell b =
      characterize(build_function("NOR2", tech, {1, StructureVariant::kWide}, 2), tech);
  MlOptions options;
  const Dataset data = build_training_set({&a, &b}, options);
  EXPECT_EQ(data.num_features(), matrix_feature_count(2, 4, options.matrix));
  EXPECT_GT(data.num_rows(), 0u);
  EXPECT_GT(data.num_positive(), 0u);
}

TEST(MlFlow, RowSamplingCapsTrainingRows) {
  const Technology tech = technology_28soi();
  const CharacterizedCell a = characterize(build_function("NAND2", tech), tech);
  MlOptions capped;
  capped.max_train_rows_per_cell = 100;
  const Dataset small = build_training_set({&a}, capped);
  EXPECT_LE(small.num_rows(), 110u);
  MlOptions uncapped;
  uncapped.max_train_rows_per_cell = 0;
  const Dataset full = build_training_set({&a}, uncapped);
  EXPECT_EQ(full.num_rows(), (a.model.defects.size() + 1) * a.model.num_stimuli());
}

TEST(MlFlow, PredictedModelIsExactForIdenticalTwin) {
  const Technology tech = technology_28soi();
  const CharacterizedCell a =
      characterize(build_function("NAND2", tech, {1, StructureVariant::kWide}, 1), tech);
  const CharacterizedCell b =
      characterize(build_function("NAND2", tech, {1, StructureVariant::kWide}, 2), tech);
  MlOptions options;
  options.forest.num_trees = 10;
  const auto classifier = train_group_classifier({&a}, options);
  const CaModel predicted = predict_ca_model(*classifier, b, options);
  EXPECT_GT(ca_model_agreement(b.model, predicted), 0.999);
  // The predicted model classifies defects like the ground truth.
  EXPECT_EQ(predicted.count_class(DefectClass::kStatic),
            b.model.count_class(DefectClass::kStatic));
}

TEST(MlFlow, AgreementIsOneForIdenticalModels) {
  const Technology tech = technology_28soi();
  const CharacterizedCell a = characterize(build_function("NAND2", tech), tech);
  EXPECT_DOUBLE_EQ(ca_model_agreement(a.model, a.model), 1.0);
}

TEST(MlFlow, LeaveOneOutSkipsSingletonGroups) {
  const Technology tech = technology_28soi();
  std::vector<CharacterizedCell> cells;
  cells.push_back(characterize(build_function("INV", tech), tech));  // alone in (1, 2)
  MlOptions options;
  const auto evals = evaluate_leave_one_out(cells, options);
  EXPECT_TRUE(evals.empty());
}

TEST(MlFlow, CrossLibrarySkipsGroupsWithoutCounterpart) {
  const Technology soi = technology_28soi();
  const Technology c28 = technology_c28();
  std::vector<CharacterizedCell> train;
  train.push_back(characterize(build_function("NAND2", soi), soi));
  std::vector<CharacterizedCell> eval;
  eval.push_back(characterize(build_function("NAND3", c28), c28));  // (3, 6): no counterpart
  eval.push_back(characterize(build_function("NOR2", c28), c28));   // (2, 4): trains on NAND2
  MlOptions options;
  options.forest.num_trees = 5;
  const auto evals = evaluate_cross_library(train, eval, options);
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_EQ(evals[0].group, (GroupKey{2, 4}));
}

TEST(MlFlow, CustomClassifierFactoryIsUsed) {
  const Technology tech = technology_28soi();
  const CharacterizedCell a = characterize(build_function("NAND2", tech), tech);
  MlOptions options;
  options.make_classifier = [] { return std::make_unique<KnnClassifier>(); };
  const auto classifier = train_group_classifier({&a}, options);
  EXPECT_EQ(classifier->name(), "kNN");
}

TEST(Report, AggregateGridStats) {
  std::vector<CellEvaluation> evals;
  evals.push_back({0, GroupKey{2, 4}, 1.0});
  evals.push_back({1, GroupKey{2, 4}, 0.95});
  evals.push_back({2, GroupKey{3, 6}, 0.90});
  const AccuracyGrid grid = aggregate_grid(evals);
  ASSERT_EQ(grid.size(), 2u);
  const GroupStats& g = grid.at(GroupKey{2, 4});
  EXPECT_EQ(g.count, 2u);
  EXPECT_NEAR(g.average(), 0.975, 1e-12);
  EXPECT_EQ(g.perfect, 1u);
  EXPECT_TRUE(g.any_perfect());
  EXPECT_FALSE(grid.at(GroupKey{3, 6}).any_perfect());
}

TEST(Report, PrintGridContainsEntriesAndMarks) {
  std::vector<CellEvaluation> evals;
  evals.push_back({0, GroupKey{2, 4}, 1.0});
  evals.push_back({1, GroupKey{3, 6}, 0.9});
  std::ostringstream os;
  print_accuracy_grid(os, aggregate_grid(evals), "Table IV.a");
  const std::string out = os.str();
  EXPECT_NE(out.find("Table IV.a"), std::string::npos);
  EXPECT_NE(out.find("100.00*"), std::string::npos);
  EXPECT_NE(out.find("90.00"), std::string::npos);
}

TEST(Report, DistributionStats) {
  std::vector<CellEvaluation> evals;
  for (double acc : {1.0, 0.99, 0.98, 0.96, 0.80}) {
    evals.push_back({0, GroupKey{2, 4}, acc});
  }
  const AccuracyDistribution dist = summarize_distribution(evals);
  EXPECT_EQ(dist.cells, 5u);
  EXPECT_NEAR(dist.fraction_above_97, 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(dist.min, 0.80, 1e-12);
  EXPECT_EQ(dist.histogram[0], 1u);  // the 0.80 cell in the underflow bucket
  std::ostringstream os;
  print_distribution(os, dist, "V.B");
  EXPECT_NE(os.str().find("cells > 97%"), std::string::npos);
}

TEST(CostModel, ScalesWithSizeAndSimulationCount) {
  const Technology tech = technology_28soi();
  const CharacterizedCell small = characterize(build_function("NAND2", tech), tech);
  const CharacterizedCell large = characterize(
      build_function("NAND2", tech, {4, StructureVariant::kMerged}, 2), tech);
  const CostModel cost;
  EXPECT_GT(cost.conventional_seconds(small), 0.0);
  EXPECT_GT(cost.conventional_seconds(large), cost.conventional_seconds(small));
  EXPECT_GT(cost.seconds_per_simulation(40), cost.seconds_per_simulation(10));
}

TEST(Hybrid, FeedbackRoutesLaterTwinsToMl) {
  // Two identical new-structure cells: without feedback both simulate;
  // with feedback the second one rides on the first one's model.
  const Technology soi = technology_28soi();
  const Technology c28 = technology_c28();
  std::vector<CharacterizedCell> training;
  training.push_back(characterize(build_function("NAND2", soi), soi));
  std::vector<CharacterizedCell> targets;
  targets.push_back(characterize(build_function("XOR2", c28, {1, StructureVariant::kWide}, 1),
                                 c28));
  targets.push_back(characterize(build_function("XOR2", c28, {1, StructureVariant::kWide}, 2),
                                 c28));

  HybridOptions with_feedback;
  with_feedback.ml.forest.num_trees = 5;
  const HybridReport fb = run_hybrid_flow(training, targets, with_feedback);
  EXPECT_FALSE(fb.outcomes[0].routed_to_ml);
  EXPECT_TRUE(fb.outcomes[1].routed_to_ml);
  EXPECT_GT(fb.outcomes[1].accuracy, 0.999);

  HybridOptions no_feedback = with_feedback;
  no_feedback.feedback = false;
  const HybridReport nofb = run_hybrid_flow(training, targets, no_feedback);
  EXPECT_FALSE(nofb.outcomes[0].routed_to_ml);
  EXPECT_FALSE(nofb.outcomes[1].routed_to_ml);
}

TEST(Hybrid, ReportArithmetic) {
  HybridReport report;
  HybridCellOutcome ml;
  ml.routed_to_ml = true;
  ml.conventional_seconds = 100.0;
  ml.ml_seconds = 1.0;
  ml.accuracy = 0.99;
  ml.match = StructureMatch::kIdentical;
  HybridCellOutcome sim;
  sim.routed_to_ml = false;
  sim.conventional_seconds = 50.0;
  sim.match = StructureMatch::kNew;
  report.outcomes = {ml, sim};
  EXPECT_DOUBLE_EQ(report.conventional_only_seconds(), 150.0);
  EXPECT_DOUBLE_EQ(report.hybrid_seconds(), 51.0);
  EXPECT_DOUBLE_EQ(report.ml_portion_reduction(), 0.99);
  EXPECT_NEAR(report.overall_reduction(), 1.0 - 51.0 / 150.0, 1e-12);
  EXPECT_EQ(report.count_match(StructureMatch::kNew), 1u);
  EXPECT_EQ(report.count_routed_to_ml(), 1u);
  EXPECT_DOUBLE_EQ(report.ml_accuracy_above(0.97), 1.0);
}

TEST(Hybrid, ReportGuardsAgainstZeroMlRoutes) {
  // A library where nothing routes to ML (every structure is new, e.g.
  // an empty training set) must report 0.0 ratios, not NaN from 0/0.
  HybridReport empty;
  EXPECT_DOUBLE_EQ(empty.ml_portion_reduction(), 0.0);
  EXPECT_DOUBLE_EQ(empty.ml_accuracy_above(0.97), 0.0);
  EXPECT_DOUBLE_EQ(empty.overall_reduction(), 0.0);

  HybridCellOutcome sim;
  sim.routed_to_ml = false;
  sim.conventional_seconds = 50.0;
  sim.match = StructureMatch::kNew;
  HybridReport all_simulated;
  all_simulated.outcomes = {sim, sim};
  EXPECT_DOUBLE_EQ(all_simulated.ml_portion_reduction(), 0.0);
  EXPECT_DOUBLE_EQ(all_simulated.ml_accuracy_above(0.97), 0.0);
  EXPECT_DOUBLE_EQ(all_simulated.overall_reduction(), 0.0);

  // End to end: an empty-route run (no training data, feedback off
  // keeps later twins unmatched too) exercises the same guards.
  const Technology c28 = technology_c28();
  std::vector<CharacterizedCell> targets;
  targets.push_back(characterize(build_function("XOR2", c28), c28));
  HybridOptions options;
  options.feedback = false;
  const HybridReport report = run_hybrid_flow({}, targets, options);
  EXPECT_EQ(report.count_routed_to_ml(), 0u);
  EXPECT_DOUBLE_EQ(report.ml_portion_reduction(), 0.0);
  EXPECT_DOUBLE_EQ(report.ml_accuracy_above(0.97), 0.0);
}


TEST(ModelStore, TrainSaveLoadPredictRoundTrip) {
  const Technology tech = technology_28soi();
  std::vector<CharacterizedCell> training;
  training.push_back(characterize(build_function("NAND2", tech, {1, StructureVariant::kWide}, 1),
                                  tech));
  training.push_back(characterize(build_function("NOR2", tech, {1, StructureVariant::kWide}, 2),
                                  tech));
  training.push_back(characterize(build_function("INV", tech, {1, StructureVariant::kWide}, 3),
                                  tech));
  MlOptions options;
  options.forest.num_trees = 8;
  const GroupModelStore store = GroupModelStore::train(training, options);
  EXPECT_EQ(store.num_groups(), 2u);  // (2,4) and (1,2)

  std::stringstream buffer;
  store.save(buffer);
  const GroupModelStore loaded = GroupModelStore::load(buffer);
  EXPECT_EQ(loaded.num_groups(), store.num_groups());

  // Predict a fresh NAND2 twin through both stores: identical models.
  const CharacterizedCell target =
      characterize(build_function("NAND2", tech, {1, StructureVariant::kWide}, 9), tech);
  const CaModel a = store.predict(target.source.cell, target.canonical, target.model.policy,
                                  target.sim);
  const CaModel b = loaded.predict(target.source.cell, target.canonical, target.model.policy,
                                   target.sim);
  ASSERT_EQ(a.defects.size(), b.defects.size());
  for (std::size_t d = 0; d < a.defects.size(); ++d) {
    EXPECT_EQ(a.defects[d].detection, b.defects[d].detection);
  }
  EXPECT_GT(ca_model_agreement(target.model, a), 0.999);
}

TEST(ModelStore, MissingGroupThrows) {
  const Technology tech = technology_28soi();
  std::vector<CharacterizedCell> training;
  training.push_back(characterize(build_function("INV", tech), tech));
  MlOptions options;
  options.forest.num_trees = 4;
  const GroupModelStore store = GroupModelStore::train(training, options);
  const CharacterizedCell target = characterize(build_function("NAND3", tech), tech);
  EXPECT_THROW(store.predict(target.source.cell, target.canonical, target.model.policy,
                             target.sim),
               Error);
}

// A truncated or corrupt store file raises ParseError — previously bad
// numeric tokens escaped as std::invalid_argument from std::stoul.
TEST(ModelStore, RejectsCorruptStoreFile) {
  const std::string header = "CAMLMODELS groups=1 activity=1 response=1 truthtable=1 kind=0\n";
  std::istringstream bad_count(
      "CAMLMODELS groups=zz activity=1 response=1 truthtable=1 kind=0\n");
  EXPECT_THROW(GroupModelStore::load(bad_count), ParseError);
  std::istringstream bad_prefix("CAMLMODELS grps=1 activity=1 response=1 truthtable=1 kind=0\n");
  EXPECT_THROW(GroupModelStore::load(bad_prefix), ParseError);
  std::istringstream truncated(header);
  EXPECT_THROW(GroupModelStore::load(truncated), ParseError);
  std::istringstream bad_group(header + "GROUP x 4\n");
  EXPECT_THROW(GroupModelStore::load(bad_group), ParseError);
  std::istringstream missing_end(header + "GROUP 2 4\nFOREST trees=0 features=3\nENDFOREST\n");
  EXPECT_THROW(GroupModelStore::load(missing_end), ParseError);
}

TEST(MlFlow, PredictForCellMatchesPredictFromModel) {
  // predict_ca_model_for_cell (new-cell path: defect universe from the
  // netlist) must agree with predict_ca_model (evaluation path: defect
  // list from the ground-truth model) because the conventional flow
  // enumerates defects in the same deterministic order.
  const Technology tech = technology_28soi();
  const CharacterizedCell train =
      characterize(build_function("AOI21", tech, {1, StructureVariant::kWide}, 4), tech);
  const CharacterizedCell target =
      characterize(build_function("AOI21", tech, {1, StructureVariant::kWide}, 5), tech);
  MlOptions options;
  options.forest.num_trees = 6;
  const auto classifier = train_group_classifier({&train}, options);
  const CaModel via_model = predict_ca_model(*classifier, target, options);
  const CaModel via_cell = predict_ca_model_for_cell(
      *classifier, target.source.cell, target.canonical, target.model.policy, target.sim,
      options);
  ASSERT_EQ(via_model.defects.size(), via_cell.defects.size());
  for (std::size_t d = 0; d < via_model.defects.size(); ++d) {
    EXPECT_EQ(via_model.defects[d].defect, via_cell.defects[d].defect);
    EXPECT_EQ(via_model.defects[d].detection, via_cell.defects[d].detection);
  }
}

}  // namespace
}  // namespace caml
