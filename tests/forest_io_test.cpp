#include <gtest/gtest.h>

#include <sstream>

#include "ml/forest_io.hpp"
#include "ml/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace caml {
namespace {

Dataset make_data(std::size_t rows, Rng& rng) {
  Dataset data(5);
  for (std::size_t r = 0; r < rows; ++r) {
    std::int8_t row[5];
    for (auto& v : row) v = static_cast<std::int8_t>(rng.range(-2, 3));
    data.add_row(row, (row[0] > 0 && row[2] <= 1) ? 1 : 0);
  }
  return data;
}

TEST(ForestIo, RoundTripPreservesPredictions) {
  Rng rng(31);
  const Dataset train = make_data(1500, rng);
  const Dataset test = make_data(300, rng);
  ForestParams params;
  params.num_trees = 8;
  RandomForest forest(params);
  forest.fit(train);

  std::stringstream buffer;
  write_forest(buffer, forest, train.num_features());
  const LoadedForest loaded = read_forest(buffer);
  EXPECT_EQ(loaded.num_features, train.num_features());
  EXPECT_EQ(loaded.forest.trees().size(), forest.trees().size());
  EXPECT_EQ(loaded.forest.predict_all(test), forest.predict_all(test));
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_DOUBLE_EQ(loaded.forest.predict_proba(test.row(r)),
                     forest.predict_proba(test.row(r)));
  }
}

TEST(ForestIo, RejectsMalformedInput) {
  std::istringstream junk("JUNK\n");
  EXPECT_THROW(read_forest(junk), ParseError);
  std::istringstream truncated("FOREST trees=2 features=3\nTREE nodes=1\n-1 -1 0 0 1 1\n");
  EXPECT_THROW(read_forest(truncated), ParseError);
  std::istringstream bad_child("FOREST trees=1 features=3\nTREE nodes=1\n5 6 0 0 1 1\nENDFOREST\n");
  EXPECT_THROW(read_forest(bad_child), ParseError);
}

// Corrupt numeric tokens must surface as ParseError (with line context),
// never as the uncaught std::invalid_argument / std::out_of_range that
// std::stoul-family parsing aborts with.
TEST(ForestIo, RejectsCorruptNumericTokens) {
  std::istringstream bad_trees("FOREST trees=x features=3\n");
  EXPECT_THROW(read_forest(bad_trees), ParseError);
  std::istringstream empty_features("FOREST trees=1 features=\n");
  EXPECT_THROW(read_forest(empty_features), ParseError);
  std::istringstream overflow("FOREST trees=99999999999999999999999 features=3\n");
  EXPECT_THROW(read_forest(overflow), ParseError);
  std::istringstream bad_node_count("FOREST trees=1 features=3\nTREE nodes=1q\n");
  EXPECT_THROW(read_forest(bad_node_count), ParseError);
  std::istringstream bad_node_field(
      "FOREST trees=1 features=3\nTREE nodes=1\n-1 -1 zz 0 1 1\nENDFOREST\n");
  EXPECT_THROW(read_forest(bad_node_field), ParseError);
  std::istringstream negative_count(
      "FOREST trees=1 features=3\nTREE nodes=1\n-1 -1 0 0 -4 1\nENDFOREST\n");
  EXPECT_THROW(read_forest(negative_count), ParseError);
}

TEST(ForestIo, NumFeaturesTrackedAtFit) {
  Rng rng(33);
  const Dataset train = make_data(100, rng);
  RandomForest forest;
  EXPECT_EQ(forest.num_features(), 0u);
  forest.fit(train);
  EXPECT_EQ(forest.num_features(), 5u);
}

}  // namespace
}  // namespace caml
