// Fuzz target for the serve wire protocol: every decoder that touches
// attacker-controlled bytes (FrameAssembler, decode_frame, decode_error,
// split_predict_payload) must either produce a structured frame or throw
// ProtocolError — never crash, leak, overflow, or loop, for ANY byte
// sequence and ANY fragmentation of it.
//
// Two build modes share this file (see tests/fuzz/CMakeLists.txt):
//   * libFuzzer (`-fsanitize=fuzzer`, clang): LLVMFuzzerTestOneInput is
//     the coverage-guided entry point.
//   * standalone (gcc, the default toolchain here): main() drives the
//     same body from a seeded mt19937 corpus mutator — a fixed-seed
//     smoke run for CI (scripts/check_fuzz_smoke.sh), not
//     coverage-guided, but the identical property is checked.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"

namespace {

using caml::serve::decode_error;
using caml::serve::decode_frame;
using caml::serve::encode_error;
using caml::serve::encode_frame;
using caml::serve::ErrorBody;
using caml::serve::Frame;
using caml::serve::FrameAssembler;
using caml::serve::ProtocolError;

/// Frames decoded by the assembler must re-encode to decodable bytes and
/// survive a decode round trip unchanged — the oracle that catches a
/// decoder accepting what the encoder would refuse (or vice versa).
void roundtrip_oracle(const Frame& frame) {
  const std::string bytes = encode_frame(frame);
  const Frame back = decode_frame(bytes);
  if (back.version != frame.version || back.type != frame.type ||
      back.request_id != frame.request_id || back.payload != frame.payload) {
    __builtin_trap();  // identity violation: make the fuzzer notice
  }
}

void fuzz_one(const std::uint8_t* data, std::size_t size) {
  // 1. Incremental assembly under input-derived fragmentation: the first
  //    byte seeds the chunking pattern, so the corpus explores header
  //    splits, pipelined frames, and mid-payload cuts.
  {
    FrameAssembler assembler;
    std::size_t chunk_seed = size == 0 ? 1 : 1 + (data[0] % 37);
    std::size_t at = 0;
    try {
      while (at < size) {
        const std::size_t n = std::min(size - at, chunk_seed);
        assembler.feed(reinterpret_cast<const char*>(data) + at, n);
        at += n;
        chunk_seed = chunk_seed * 3 % 41 + 1;
        while (auto frame = assembler.next_frame()) {
          roundtrip_oracle(*frame);
          // A structurally valid frame's payload feeds the payload-level
          // decoders exactly as the server's dispatch would.
          try {
            (void)decode_error(frame->payload);
          } catch (const ProtocolError&) {
          }
          try {
            (void)caml::serve::split_predict_payload(frame->version,
                                                     std::string(frame->payload));
          } catch (const ProtocolError&) {
          }
        }
      }
    } catch (const ProtocolError&) {
      // Structured rejection is the correct outcome for malformed bytes.
    }
  }

  // 2. One-shot decode of the raw input.
  try {
    roundtrip_oracle(decode_frame(
        std::string_view(reinterpret_cast<const char*>(data), size)));
  } catch (const ProtocolError&) {
  }

  // 3. Error-body decoder on the raw input; decodable bodies must
  //    re-encode losslessly (modulo the truncated-message case where the
  //    decoder already consumed the whole buffer).
  try {
    const ErrorBody body =
        decode_error(std::string_view(reinterpret_cast<const char*>(data), size));
    const ErrorBody back = decode_error(encode_error(body));
    if (back.retry_after_ms != body.retry_after_ms || back.message != body.message) {
      __builtin_trap();
    }
  } catch (const ProtocolError&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  fuzz_one(data, size);
  return 0;
}

#if !defined(CAML_FUZZ_LIBFUZZER)

// ---------------------------------------------------------------------------
// Standalone driver: seeded corpus + random mutations, no libFuzzer.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>

namespace {

/// Seed corpus: well-formed frames of every type plus the malformed
/// shapes the unit tests call out (truncations, bad magic, oversize
/// lengths, trailing bytes, short error bodies, v2 deadline payloads).
std::vector<std::string> seed_corpus() {
  std::vector<std::string> corpus;
  for (const caml::serve::MsgType type :
       {caml::serve::MsgType::kPredictCell, caml::serve::MsgType::kPredictOk,
        caml::serve::MsgType::kError, caml::serve::MsgType::kPing,
        caml::serve::MsgType::kPong, caml::serve::MsgType::kStats,
        caml::serve::MsgType::kStatsOk}) {
    Frame frame;
    frame.type = type;
    frame.request_id = 0x0123456789ABCDEFull;
    frame.payload = "* netlist\n.SUBCKT X A Z\n.ENDS\n";
    corpus.push_back(encode_frame(frame));
  }
  {
    Frame v2;
    v2.version = caml::serve::kProtocolVersionDeadline;
    v2.type = caml::serve::MsgType::kPredictCell;
    v2.payload = caml::serve::encode_predict_payload(250, ".SUBCKT Y A Z\n.ENDS\n");
    corpus.push_back(encode_frame(v2));
  }
  corpus.push_back(encode_error(ErrorBody{caml::serve::ErrorCode::kOverloaded, 75, "q"}));
  const std::string good = corpus.front();
  corpus.push_back(good.substr(0, 3));                        // truncated header
  corpus.push_back(good.substr(0, caml::serve::kHeaderSize)); // header only
  corpus.push_back(good + "x");                               // trailing byte
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  corpus.push_back(bad_magic);
  std::string oversized = good;
  const std::uint32_t huge = caml::serve::kMaxPayload + 1;
  std::memcpy(oversized.data() + 16, &huge, 4);
  corpus.push_back(oversized);
  corpus.push_back("");       // empty input
  corpus.push_back("short");  // shorter than any header
  // Two pipelined frames in one buffer (assembler path).
  corpus.push_back(good + good);
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 0xC0FFEEull;
  long long runs = -1;
  int seconds = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--runs") {
      runs = std::atoll(value());
    } else if (arg == "--seconds") {
      seconds = std::atoi(value());
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--runs N] [--seconds N]\n"
                   "Seeded random fuzzing of the serve protocol decoders\n"
                   "(standalone driver; build with clang + -fsanitize=fuzzer\n"
                   "for coverage-guided fuzzing of the same target).\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<std::string> corpus = seed_corpus();
  for (const std::string& input : corpus) {
    fuzz_one(reinterpret_cast<const std::uint8_t*>(input.data()), input.size());
  }

  std::mt19937_64 rng(seed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  long long executed = 0;
  std::string input;
  while ((runs < 0 || executed < runs) &&
         (runs >= 0 || std::chrono::steady_clock::now() < deadline)) {
    input = corpus[rng() % corpus.size()];
    // A handful of byte-level mutations: flips, truncations, splices,
    // and appends — the classic dumb-fuzz moves.
    const int mutations = 1 + static_cast<int>(rng() % 8);
    for (int m = 0; m < mutations; ++m) {
      switch (rng() % 5) {
        case 0:  // flip a byte
          if (!input.empty()) input[rng() % input.size()] ^= static_cast<char>(1 + rng() % 255);
          break;
        case 1:  // truncate
          if (!input.empty()) input.resize(rng() % input.size());
          break;
        case 2:  // append random bytes
          for (std::size_t i = rng() % 24; i > 0; --i) {
            input.push_back(static_cast<char>(rng()));
          }
          break;
        case 3: {  // splice another corpus entry in
          const std::string& other = corpus[rng() % corpus.size()];
          if (!other.empty()) {
            input.insert(input.empty() ? 0 : rng() % input.size(), other, 0,
                         1 + rng() % other.size());
          }
          break;
        }
        case 4:  // overwrite a 4-byte window with an interesting value
          if (input.size() >= 4) {
            static const std::uint32_t kInteresting[] = {
                0,          1,          0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu,
                0x514D4143u /* magic */, caml::serve::kMaxPayload,
                caml::serve::kMaxPayload + 1};
            const std::uint32_t v = kInteresting[rng() % (sizeof(kInteresting) /
                                                          sizeof(kInteresting[0]))];
            std::memcpy(input.data() + rng() % (input.size() - 3), &v, 4);
          }
          break;
      }
    }
    fuzz_one(reinterpret_cast<const std::uint8_t*>(input.data()), input.size());
    ++executed;
  }
  std::printf("fuzz_protocol: %lld runs, seed %llu, no crashes\n", executed,
              static_cast<unsigned long long>(seed));
  return 0;
}

#endif  // !CAML_FUZZ_LIBFUZZER
