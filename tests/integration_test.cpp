#include <gtest/gtest.h>

#include "camatrix/matrix.hpp"
#include "camodel/model_io.hpp"
#include "flow/hybrid.hpp"
#include "flow/report.hpp"
#include "netlist/spice_parser.hpp"
#include "netlist/spice_writer.hpp"
#include "test_support.hpp"

namespace caml {
namespace {

using testing::build_function;
using testing::characterize;
using testing::make_nand2;

// End-to-end: conventional CA generation on the paper's NAND2 example.
TEST(Integration, Nand2ConventionalFlowProducesSaneModel) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);

  EXPECT_EQ(model.num_inputs, 2u);
  EXPECT_EQ(model.stimuli.size(), 4u + 12u);  // exhaustive pairs
  // Opens: 3 per transistor. Intra shorts: 6 terminal pairs minus the
  // pairs already connected (bulk-source on the rail-adjacent devices:
  // N11, Px, Py) -> 12 + (6 + 5 + 5 + 5) = 33.
  EXPECT_EQ(model.defects.size(), 33u);

  // NAND truth table on the static prefix: Z = !(A&B).
  for (InputPattern p = 0; p < 4; ++p) {
    const bool expect_one = !((p & 1u) && (p & 2u));
    EXPECT_EQ(model.golden_responses[p], expect_one ? Sig::kOne : Sig::kZero)
        << "pattern " << p;
  }

  // Some defects are detected, and stuck-open-style defects exist that
  // need two-pattern tests (the dynamic class is non-empty).
  EXPECT_GT(model.count_class(DefectClass::kStatic), 0u);
  EXPECT_GT(model.count_class(DefectClass::kDynamic), 0u);
  EXPECT_GT(model.detection_density(), 0.0);
  EXPECT_LT(model.detection_density(), 1.0);
  EXPECT_GT(model.equivalence_classes.size(), 2u);
}

// End-to-end: SPICE text -> parse -> characterize -> CA-matrix.
TEST(Integration, SpiceRoundTripAndMatrixShape) {
  const Cell cell = make_nand2();
  const SpiceWriter writer;
  const SpiceParser parser;
  const std::vector<Cell> parsed = parser.parse_string(writer.to_string(cell));
  ASSERT_EQ(parsed.size(), 1u);

  const CaModel model = generate_ca_model(parsed[0]);
  const CanonicalCell canon = canonicalize(parsed[0]);
  const CaMatrix matrix = build_ca_matrix(parsed[0], model, canon);

  // Rows: (defects + 1 free) * stimuli. Columns: 2 inputs + Z +
  // 4 truth-table + 4 activity + 16 defect-terminal columns.
  EXPECT_EQ(matrix.num_rows(), (model.defects.size() + 1) * model.stimuli.size());
  EXPECT_EQ(matrix.num_features(), 2u + 1u + 4u + 4u + 16u);
  EXPECT_TRUE(matrix.has_labels());
}

// End-to-end ML: leave-one-out inside a group of structurally identical
// sizing variants — the paper's dominant same-technology case, which it
// predicts at ~100%.
TEST(Integration, LeaveOneOutPredictsIdenticalStructureSiblings) {
  const Technology tech = technology_28soi();
  std::vector<CharacterizedCell> cells;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    cells.push_back(characterize(build_function("NAND2", tech, {1, StructureVariant::kWide},
                                                seed),
                                 tech));
  }
  MlOptions options;
  options.forest.num_trees = 10;
  const std::vector<CellEvaluation> evals = evaluate_leave_one_out(cells, options);
  ASSERT_EQ(evals.size(), cells.size());
  for (const CellEvaluation& e : evals) {
    EXPECT_GT(e.accuracy, 0.999) << "cell " << cells[e.cell_index].model.cell_name;
  }
}

// Mixed-function group: NAND2 and NOR2 rows collide on a few feature
// vectors with conflicting labels (an irreducible ambiguity of the
// paper's feature set), so cells of the majority structure stay highly
// accurate while the minority structure degrades — the paper's
// low-accuracy tail in miniature.
TEST(Integration, LeaveOneOutMixedFunctionGroupDegradesGracefully) {
  const Technology tech = technology_28soi();
  std::vector<CharacterizedCell> cells;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    cells.push_back(characterize(build_function("NAND2", tech, {1, StructureVariant::kWide},
                                                seed),
                                 tech));
  }
  cells.push_back(characterize(build_function("NOR2", tech, {1, StructureVariant::kWide}, 9),
                               tech));
  cells.push_back(characterize(build_function("NOR2", tech, {1, StructureVariant::kWide}, 10),
                               tech));

  MlOptions options;
  options.forest.num_trees = 10;
  const std::vector<CellEvaluation> evals = evaluate_leave_one_out(cells, options);
  ASSERT_EQ(evals.size(), cells.size());
  double mean = 0.0;
  for (const CellEvaluation& e : evals) {
    mean += e.accuracy;
    const bool is_nand = cells[e.cell_index].source.function == "NAND2";
    if (is_nand) {
      EXPECT_GT(e.accuracy, 0.97) << cells[e.cell_index].model.cell_name;
    } else {
      EXPECT_GT(e.accuracy, 0.85) << cells[e.cell_index].model.cell_name;
    }
  }
  EXPECT_GT(mean / static_cast<double>(evals.size()), 0.93);
}

// End-to-end hybrid flow on a tiny cross-technology corpus.
TEST(Integration, HybridFlowRoutesAndReports) {
  const testing::SmallCorpus corpus = testing::make_small_corpus();
  HybridOptions options;
  options.ml.forest.num_trees = 10;
  const HybridReport report = run_hybrid_flow(corpus.train, corpus.eval, options);

  ASSERT_EQ(report.outcomes.size(), corpus.eval.size());
  // The shared functions must be structurally matched; XOR2 must not.
  std::size_t new_cells = report.count_match(StructureMatch::kNew);
  EXPECT_GT(new_cells, 0u);
  EXPECT_GT(report.count_routed_to_ml(), 0u);
  EXPECT_LT(report.count_routed_to_ml(), corpus.eval.size());
  // The ML path must be dramatically cheaper than modeled SPICE.
  EXPECT_GT(report.ml_portion_reduction(), 0.9);
  EXPECT_GT(report.overall_reduction(), 0.0);
}

// CA model text round trip through the rewriting step.
TEST(Integration, CaModelTextRoundTrip) {
  const Cell cell = make_nand2();
  const CaModel model = generate_ca_model(cell);
  const std::string text = ca_model_to_string(model, cell);
  const CaModel back = ca_model_from_string(text, cell);

  ASSERT_EQ(back.defects.size(), model.defects.size());
  for (std::size_t d = 0; d < model.defects.size(); ++d) {
    EXPECT_EQ(back.defects[d].detection, model.defects[d].detection);
    EXPECT_EQ(back.defects[d].defect, model.defects[d].defect);
    EXPECT_EQ(back.defects[d].klass, model.defects[d].klass);
  }
  EXPECT_EQ(back.golden_responses, model.golden_responses);
}

}  // namespace
}  // namespace caml
