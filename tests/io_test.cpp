// Tests for the durable-I/O layer: CRC-32, atomic file replacement, the
// CAMLF1 checksummed container, and the fault-injection hooks wired into
// AtomicFileWriter (the latter only under -DCAML_FAULT_INJECTION=ON).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"

namespace caml {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const char* tag) {
  const fs::path dir =
      fs::temp_directory_path() / ("caml_io_" + std::to_string(::getpid()) + "_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// No stray `<target>.tmp.<pid>` staging files left behind in `dir`.
bool no_temp_files(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// CRC-32

TEST(IoCrc32, KnownVectors) {
  // The IEEE 802.3 check value ("123456789" -> 0xCBF43926) pins both the
  // polynomial and the reflection convention.
  EXPECT_EQ(io::crc32(""), 0u);
  EXPECT_EQ(io::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(io::crc32(std::string_view("\0\0\0\0", 4)), 0x2144DF1Cu);
}

TEST(IoCrc32, SensitiveToEveryByte) {
  const std::string base(1024, 'x');
  const std::uint32_t reference = io::crc32(base);
  for (std::size_t i : {std::size_t{0}, std::size_t{511}, std::size_t{1023}}) {
    std::string flipped = base;
    flipped[i] ^= 0x01;
    EXPECT_NE(io::crc32(flipped), reference) << "flip at " << i;
  }
}

// ---------------------------------------------------------------------------
// Atomic replacement

TEST(IoAtomicWriter, PublishesAllOrNothing) {
  const std::string dir = temp_dir("atomic");
  const std::string path = dir + "/artifact.txt";

  io::write_file_atomic(path, "first version\n");
  EXPECT_EQ(slurp(path), "first version\n");

  // An abandoned writer (no commit) must leave the target untouched and
  // clean up its staging file.
  {
    io::AtomicFileWriter writer(path);
    writer.stream() << "half-finished";
  }
  EXPECT_EQ(slurp(path), "first version\n");
  EXPECT_TRUE(no_temp_files(dir));

  io::write_file_atomic(path, "second version\n");
  EXPECT_EQ(slurp(path), "second version\n");
  EXPECT_TRUE(no_temp_files(dir));
}

TEST(IoAtomicWriter, CommitIntoMissingDirectoryThrowsAndTargetStaysAbsent) {
  const std::string path = temp_dir("missing") + "/no/such/dir/artifact.txt";
  io::AtomicFileWriter writer(path);
  writer.stream() << "payload";
  EXPECT_THROW(writer.commit(), Error);
  EXPECT_FALSE(fs::exists(path));
}

// ---------------------------------------------------------------------------
// CAMLF1 container

TEST(IoContainer, FramedRoundTrip) {
  const std::string payload = "line one\nline two\nbinary \0 byte\n";
  const std::string framed = io::frame_checksummed("camodel", payload);
  EXPECT_TRUE(io::is_checksummed(framed));
  EXPECT_FALSE(io::is_checksummed(payload));
  EXPECT_EQ(io::unwrap_checksummed(framed, "camodel", "mem"), payload);
}

TEST(IoContainer, FileRoundTripAndLegacyPassthrough) {
  const std::string dir = temp_dir("container");
  const std::string framed_path = dir + "/framed.bin";
  const std::string legacy_path = dir + "/legacy.txt";
  const std::string payload = "the payload\n";

  io::write_checksummed_file(framed_path, "models", payload);
  EXPECT_EQ(io::read_checksummed_file(framed_path, "models"), payload);
  EXPECT_EQ(io::read_checksummed_or_raw(framed_path, "models"), payload);

  // A pre-framing artifact loads verbatim through the sniffing reader.
  io::write_file_atomic(legacy_path, payload);
  EXPECT_EQ(io::read_checksummed_or_raw(legacy_path, "models"), payload);
}

TEST(IoContainer, RejectsTruncationCorruptionAndKindMismatch) {
  const std::string payload(300, 'p');
  const std::string framed = io::frame_checksummed("forest", payload);

  // Truncation: every strict prefix must fail, loudly, not quietly.
  for (std::size_t keep : {framed.size() - 1, framed.size() / 2, std::size_t{10}}) {
    EXPECT_THROW(io::unwrap_checksummed(framed.substr(0, keep), "forest", "f"), ParseError)
        << "prefix of " << keep;
  }
  // Bit flip in the payload trips the CRC.
  std::string flipped = framed;
  flipped[framed.size() - 7] ^= 0x20;
  EXPECT_THROW(io::unwrap_checksummed(flipped, "forest", "f"), ParseError);
  // A valid container of the wrong kind must not feed the wrong parser.
  EXPECT_THROW(io::unwrap_checksummed(framed, "models", "f"), ParseError);
  // Garbage that merely starts with the magic.
  EXPECT_THROW(io::unwrap_checksummed("CAMLF1 oops\n", "forest", "f"), ParseError);
  // Trailing bytes after the declared payload length.
  EXPECT_THROW(io::unwrap_checksummed(framed + "x", "forest", "f"), ParseError);
}

TEST(IoStreamingWriter, MatchesBufferedFramingAndSurvivesLargePayloads) {
  const std::string dir = temp_dir("streamed");
  const std::string streamed_path = dir + "/streamed.caml";

  // A payload larger than the writer's 64 KiB chunk, fed in mixed-size
  // pieces through both the ostream and the raw-write entry points.
  std::string payload;
  payload.reserve(300 * 1024);
  for (int i = 0; i < 12000; ++i) payload += "row " + std::to_string(i * 7) + "\n";

  io::ChecksummedFileWriter writer(streamed_path, "models");
  writer.stream() << payload.substr(0, 100);
  writer.write(payload.data() + 100, payload.size() - 100);
  writer.commit();
  EXPECT_EQ(writer.bytes_written(), payload.size());

  // The streamed container validates and unwraps like the buffered one
  // (the fixed-width len= field parses as the same number).
  EXPECT_EQ(io::read_checksummed_file(streamed_path, "models"), payload);
  const std::string on_disk = slurp(streamed_path);
  EXPECT_NE(on_disk.find("len=00000000000000"), std::string::npos)
      << "streamed header should carry the zero-padded fixed-width length";
  EXPECT_EQ(on_disk.substr(on_disk.find('\n') + 1), payload);

  // Same CRC as the buffered framing path computes.
  const std::string buffered = io::frame_checksummed("models", payload);
  const std::string crc_field = buffered.substr(buffered.find("crc32="), 6 + 8);
  EXPECT_NE(on_disk.find(crc_field), std::string::npos);
}

TEST(IoStreamingWriter, AbandonedWriterLeavesNoFile) {
  const std::string dir = temp_dir("abandoned");
  const std::string path = dir + "/never.caml";
  {
    io::ChecksummedFileWriter writer(path, "models");
    writer.stream() << "half a payload";
    // No commit: destructor must clean the staging file.
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(std::distance(fs::directory_iterator(dir), fs::directory_iterator{}), 0)
      << "staging temp file should have been removed";
}

TEST(IoContainer, ParseErrorNamesTheFile) {
  const std::string dir = temp_dir("named");
  const std::string path = dir + "/store.caml";
  io::write_checksummed_file(path, "models", "payload");
  std::string bytes = slurp(path);
  bytes[bytes.size() - 2] ^= 0x01;
  io::write_file_atomic(path, bytes);
  try {
    io::read_checksummed_file(path, "models");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------------------
// Fault injection (compiled in only under -DCAML_FAULT_INJECTION=ON)

class IoFault : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";
  }
  void TearDown() override { fault::disarm(); }
};

TEST_F(IoFault, FailWriteLeavesPreviousVersionIntact) {
  const std::string dir = temp_dir("failwrite");
  const std::string path = dir + "/artifact.txt";
  io::write_file_atomic(path, "old\n");

  fault::arm({"*", fault::Kind::kFailWrite, 1, 0});
  EXPECT_THROW(io::write_file_atomic(path, "new\n"), Error);
  fault::disarm();
  EXPECT_EQ(fault::times_triggered(), 0u);  // disarm resets counters

  EXPECT_EQ(slurp(path), "old\n");
  EXPECT_TRUE(no_temp_files(dir));
  // With the fault gone the same write succeeds.
  io::write_file_atomic(path, "new\n");
  EXPECT_EQ(slurp(path), "new\n");
}

TEST_F(IoFault, ShortWriteNeverPublishesTornBytes) {
  const std::string dir = temp_dir("shortwrite");
  const std::string path = dir + "/artifact.bin";
  const std::string payload(4096, 'z');
  io::write_checksummed_file(path, "camodel", payload);

  fault::arm({"*", fault::Kind::kShortWrite, 1, 100});
  EXPECT_THROW(io::write_checksummed_file(path, "camodel", std::string(4096, 'q')), Error);
  fault::disarm();

  // The target still validates and still holds the previous payload.
  EXPECT_EQ(io::read_checksummed_file(path, "camodel"), payload);
  EXPECT_TRUE(no_temp_files(dir));
}

TEST_F(IoFault, TornRenameLeavesTargetUntouched) {
  const std::string dir = temp_dir("tornrename");
  const std::string path = dir + "/artifact.txt";
  io::write_file_atomic(path, "old\n");

  fault::arm({"*", fault::Kind::kTornRename, 1, 0});
  EXPECT_THROW(io::write_file_atomic(path, "new\n"), Error);
  EXPECT_EQ(fault::times_triggered(), 1u);
  fault::disarm();

  EXPECT_EQ(slurp(path), "old\n");
  EXPECT_TRUE(no_temp_files(dir));
}

TEST_F(IoFault, PointNamesSelectInjectionSites) {
  const std::string dir = temp_dir("points");
  // A spec armed for point "store" must not fire on point "checkpoint".
  fault::arm({"store", fault::Kind::kFailWrite, 1, 0});
  io::write_file_atomic(dir + "/a.txt", "ok\n", "checkpoint");
  EXPECT_EQ(fault::times_triggered(), 0u);
  EXPECT_THROW(io::write_file_atomic(dir + "/b.txt", "boom\n", "store"), Error);
  EXPECT_EQ(fault::times_triggered(), 1u);
}

TEST_F(IoFault, NthSelectsTheMatchingOperation) {
  const std::string dir = temp_dir("nth");
  // fail-write counts write operations only (renames can't fail-write),
  // so nth=2 spares the first commit and fails the second.
  fault::arm({"*", fault::Kind::kFailWrite, 2, 0});
  io::write_file_atomic(dir + "/first.txt", "1\n");
  EXPECT_THROW(io::write_file_atomic(dir + "/second.txt", "2\n"), Error);
  EXPECT_EQ(slurp(dir + "/first.txt"), "1\n");
  EXPECT_FALSE(fs::exists(dir + "/second.txt"));
}

}  // namespace
}  // namespace caml
