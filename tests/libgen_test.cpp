#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "libgen/builder.hpp"
#include "libgen/catalog.hpp"
#include "libgen/expr.hpp"
#include "netlist/spice_writer.hpp"
#include "util/error.hpp"

namespace caml {
namespace {

TEST(Expr, EvalSeriesParallel) {
  const Expr e = p({s({x(0), x(1)}), x(2)});  // (0&1)|2
  EXPECT_FALSE(e.eval({false, true, false}));
  EXPECT_TRUE(e.eval({true, true, false}));
  EXPECT_TRUE(e.eval({false, false, true}));
}

TEST(Expr, DualSwapsOperators) {
  const Expr e = p({s({x(0), x(1)}), x(2)});
  const Expr d = e.dual();
  // dual((0&1)|2) = (0|1)&2
  EXPECT_EQ(d.to_string(), "((0|1)&2)");
  EXPECT_EQ(d.dual().to_string(), e.to_string());
}

TEST(Expr, CountsAndDepth) {
  const Expr e = p({s({x(0), x(1), x(2)}), s({x(3), x(4)})});
  EXPECT_EQ(e.num_leaves(), 5u);
  EXPECT_EQ(e.max_stack_depth(), 3u);
  EXPECT_EQ(e.max_signal(), 4);
  EXPECT_EQ(x(7).max_stack_depth(), 1u);
}

TEST(Expr, SingleChildCollapses) {
  EXPECT_EQ(Expr::series({x(3)}).to_string(), "3");
  EXPECT_EQ(Expr::parallel({x(3)}).to_string(), "3");
}

TEST(Catalog, AllFunctionsHaveDistinctNamesAndValidTruthTables) {
  std::set<std::string> names;
  for (const CellFunction& f : function_catalog()) {
    EXPECT_TRUE(names.insert(f.name).second) << "duplicate " << f.name;
    EXPECT_GE(f.num_inputs, 1);
    EXPECT_LE(f.num_inputs, 6);
    EXPECT_FALSE(f.stages.empty());
    // Truth table must not be constant (no degenerate cells).
    const std::uint64_t tt = f.truth_table();
    const std::size_t patterns = std::size_t{1} << f.num_inputs;
    const std::uint64_t mask =
        patterns >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << patterns) - 1;
    EXPECT_NE(tt & mask, 0u) << f.name;
    EXPECT_NE(tt & mask, mask) << f.name;
  }
  EXPECT_GE(function_catalog().size(), 45u);
}

TEST(Catalog, SpotCheckTruthTables) {
  EXPECT_EQ(find_function("INV").truth_table(), 0b01u);
  EXPECT_EQ(find_function("BUF").truth_table(), 0b10u);
  EXPECT_EQ(find_function("NAND2").truth_table(), 0b0111u);
  EXPECT_EQ(find_function("NOR2").truth_table(), 0b0001u);
  EXPECT_EQ(find_function("AND2").truth_table(), 0b1000u);
  EXPECT_EQ(find_function("XOR2").truth_table(), 0b0110u);
  EXPECT_EQ(find_function("XNOR2").truth_table(), 0b1001u);
  // MAJ3: majority of three inputs (bit p set iff popcount(p) >= 2).
  EXPECT_EQ(find_function("MAJ3").truth_table(), 0b11101000u);
  // XOR3: odd parity.
  EXPECT_EQ(find_function("XOR3").truth_table(), 0b10010110u);
  // MUX2I: NOT(S ? B : A), inputs (A, B, S) with A = bit 0, S = bit 2.
  const std::uint64_t mux2 = find_function("MUX2").truth_table();
  for (unsigned p = 0; p < 8; ++p) {
    const bool a = p & 1, b = p & 2, s = p & 4;
    EXPECT_EQ((mux2 >> p) & 1, static_cast<unsigned>(s ? b : a)) << p;
  }
  EXPECT_EQ(find_function("NAND4ALT").truth_table(), find_function("NAND4").truth_table());
  EXPECT_EQ(find_function("NOR4ALT").truth_table(), find_function("NOR4").truth_table());
}

TEST(Catalog, FindFunctionThrowsOnUnknown) {
  EXPECT_THROW(find_function("FROBNICATOR"), Error);
  EXPECT_EQ(catalog_names().size(), function_catalog().size());
}

TEST(Technology, SizingRules) {
  const Technology t = technology_28soi();
  // Stack upsizing grows widths.
  EXPECT_GT(t.nmos_width(1, 3), t.nmos_width(1, 1));
  // Drive scaling.
  EXPECT_GT(t.nmos_width(4, 1), t.nmos_width(1, 1));
  // PMOS wider than NMOS.
  EXPECT_GT(t.pmos_width(1, 1), t.nmos_width(1, 1));
  // Quantization: widths are multiples of the quantum.
  const double w = t.nmos_width(2, 2);
  const double q = t.width_quantum_um;
  EXPECT_NEAR(std::round(w / q) * q, w, 1e-9);
}

TEST(Technology, ProfilesAreDistinct) {
  const auto techs = default_technologies();
  ASSERT_EQ(techs.size(), 3u);
  std::set<std::string> names, models;
  for (const Technology& t : techs) {
    names.insert(t.name);
    models.insert(t.nmos_model);
  }
  EXPECT_EQ(names.size(), 3u);
  EXPECT_EQ(models.size(), 3u);
  EXPECT_GT(technology_c40().nmos_unit_width_um, technology_28soi().nmos_unit_width_um);
}

TEST(Builder, TransistorCountsFollowVariant) {
  const Technology tech = technology_28soi();
  Rng rng(1);
  const CellFunction& nand2 = find_function("NAND2");
  const Cell x1 = build_cell(nand2, tech, {1, StructureVariant::kWide}, {"", 1.0}, "a", rng);
  const Cell x2w = build_cell(nand2, tech, {2, StructureVariant::kWide}, {"", 1.0}, "b", rng);
  const Cell x2m = build_cell(nand2, tech, {2, StructureVariant::kMerged}, {"", 1.0}, "c", rng);
  const Cell x2s = build_cell(nand2, tech, {2, StructureVariant::kSplit}, {"", 1.0}, "d", rng);
  EXPECT_EQ(x1.num_transistors(), 4u);
  EXPECT_EQ(x2w.num_transistors(), 4u);   // wide: same structure
  EXPECT_EQ(x2m.num_transistors(), 8u);   // merged: leaf duplication
  EXPECT_EQ(x2s.num_transistors(), 8u);   // split: path duplication
  // Wide variant has wider devices than X1.
  double w1 = 0, w2 = 0;
  for (const Transistor& t : x1.transistors()) w1 += t.width_um;
  for (const Transistor& t : x2w.transistors()) w2 += t.width_um;
  EXPECT_GT(w2, w1 * 1.5);
}

TEST(Builder, MergedAndSplitDifferInInternalNets) {
  // The Fig. 6 distinction: merged parallel stacks share the internal
  // net, split stacks have independent ones.
  const Technology tech = technology_28soi();
  Rng rng(2);
  const CellFunction& nand2 = find_function("NAND2");
  const Cell merged =
      build_cell(nand2, tech, {2, StructureVariant::kMerged}, {"", 1.0}, "m", rng);
  const Cell split = build_cell(nand2, tech, {2, StructureVariant::kSplit}, {"", 1.0}, "s", rng);
  const auto internals = [](const Cell& c) {
    std::size_t n = 0;
    for (const Net& net : c.nets()) n += net.kind == NetKind::kInternal;
    return n;
  };
  EXPECT_EQ(internals(merged), 1u);  // one shared stack midpoint
  EXPECT_EQ(internals(split), 2u);   // one midpoint per stack
}

TEST(Builder, ScrambleKeepsBehaviourChangesNames) {
  const Technology tech = technology_c28();
  Rng build_rng(3);
  const Cell cell = build_cell(find_function("AOI21"), tech, {1, StructureVariant::kWide},
                               {"", 1.0}, "AOI21", build_rng);
  Rng scramble_rng(99);
  const Cell scrambled = scramble_cell(cell, tech, scramble_rng);
  EXPECT_EQ(scrambled.num_transistors(), cell.num_transistors());
  EXPECT_EQ(scrambled.num_nets(), cell.num_nets());
  // Device naming follows the technology convention (C28: M0, M1, ...).
  for (const Transistor& t : scrambled.transistors()) {
    EXPECT_EQ(t.name[0], 'M');
  }
}

TEST(Builder, PinNamingFollowsTechnology) {
  Rng rng(4);
  const Cell soi = build_cell(find_function("NAND2"), technology_28soi(),
                              {1, StructureVariant::kWide}, {"", 1.0}, "n", rng);
  EXPECT_TRUE(soi.find_net("A").has_value());
  EXPECT_TRUE(soi.find_net("Z").has_value());
  const Cell c40 = build_cell(find_function("NAND2"), technology_c40(),
                              {1, StructureVariant::kWide}, {"", 1.0}, "n", rng);
  EXPECT_TRUE(c40.find_net("IN1").has_value());
  EXPECT_TRUE(c40.find_net("Q").has_value());
}

TEST(Builder, LibraryCompositionExpands) {
  LibraryComposition comp;
  comp.functions = {"INV", "NAND2"};
  comp.drives = {{1, StructureVariant::kWide}, {2, StructureVariant::kMerged}};
  comp.flavors = {{"", 1.0}, {"LP", 0.8}};
  const Library lib = build_library(technology_28soi(), comp);
  EXPECT_EQ(lib.cells.size(), 2u * 2u * 2u);
  std::set<std::string> names;
  for (const LibraryCell& c : lib.cells) names.insert(c.cell.name());
  EXPECT_EQ(names.size(), lib.cells.size());  // unique cell names
  EXPECT_TRUE(names.count("NAND2X2M_LP"));
}

TEST(Builder, LibraryIsDeterministic) {
  LibraryComposition comp;
  comp.functions = {"NAND2"};
  comp.drives = {{1, StructureVariant::kWide}};
  comp.flavors = {{"", 1.0}};
  const Library a = build_library(technology_28soi(), comp);
  const Library b = build_library(technology_28soi(), comp);
  const SpiceWriter writer;
  EXPECT_EQ(writer.to_string(a.cells[0].cell), writer.to_string(b.cells[0].cell));
}

TEST(BenchmarkSuite, CompositionMirrorsPaperSetup) {
  const BenchmarkSuite suite = build_benchmark_suite();
  // 28SOI is the largest library (the paper's 825-cell training set).
  EXPECT_GT(suite.soi28.cells.size(), suite.c40.cells.size());
  EXPECT_GT(suite.soi28.cells.size(), suite.c28.cells.size());
  EXPECT_GT(suite.soi28.cells.size(), 300u);

  const auto functions = [](const Library& lib) {
    std::set<std::string> f;
    for (const LibraryCell& c : lib.cells) f.insert(c.function);
    return f;
  };
  const auto soi_f = functions(suite.soi28);
  const auto c40_f = functions(suite.c40);
  const auto c28_f = functions(suite.c28);
  // C40 and C28 both contain functions absent from the training library.
  std::size_t c40_new = 0, c28_new = 0;
  for (const auto& f : c40_f) c40_new += !soi_f.count(f);
  for (const auto& f : c28_f) c28_new += !soi_f.count(f);
  EXPECT_GT(c40_new, 0u);
  EXPECT_GT(c28_new, 0u);
  // C28 has more genuinely new content than C40 (paper: 68% vs 80%
  // accurately predicted).
  EXPECT_GT(c28_new, 0u);
}


TEST(Catalog, ExtendedFunctionsSpotChecks) {
  // XNOR3 is XOR3's complement over all 8 patterns.
  const std::uint64_t xor3 = find_function("XOR3").truth_table();
  const std::uint64_t xnor3 = find_function("XNOR3").truth_table();
  EXPECT_EQ(xnor3 & 0xFFu, (~xor3) & 0xFFu);

  // AOI41: Z = NOT((A&B&C&D) | E), inputs A..D = bits 0..3, E = bit 4.
  const std::uint64_t aoi41 = find_function("AOI41").truth_table();
  for (unsigned p = 0; p < 32; ++p) {
    const bool expect = !(((p & 0xF) == 0xF) || (p & 0x10));
    EXPECT_EQ((aoi41 >> p) & 1, static_cast<unsigned>(expect)) << p;
  }

  // MUX4I: Z = NOT(D[s]) with s = S0 + 2*S1 (D0..D3 = bits 0..3,
  // S0 = bit 4, S1 = bit 5).
  const std::uint64_t mux4i = find_function("MUX4I").truth_table();
  for (unsigned p = 0; p < 64; ++p) {
    const unsigned sel = ((p >> 4) & 1) + 2 * ((p >> 5) & 1);
    const bool selected = (p >> sel) & 1;
    EXPECT_EQ((mux4i >> p) & 1, static_cast<unsigned>(!selected)) << p;
  }

  // NAND5 / NOR5 endpoints.
  EXPECT_EQ(find_function("NAND5").truth_table() & 0xFFFFFFFFu, 0x7FFFFFFFu);
  EXPECT_EQ(find_function("NOR5").truth_table() & 0xFFFFFFFFu, 0x1u);
}

}  // namespace
}  // namespace caml
