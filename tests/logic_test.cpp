#include <gtest/gtest.h>

#include <set>

#include "logic/stimulus.hpp"
#include "logic/wave.hpp"
#include "util/error.hpp"

namespace caml {
namespace {

TEST(Wave, InitialFinalSemantics) {
  EXPECT_FALSE(wave_initial(Wave::kZero));
  EXPECT_FALSE(wave_final(Wave::kZero));
  EXPECT_TRUE(wave_initial(Wave::kOne));
  EXPECT_TRUE(wave_final(Wave::kOne));
  EXPECT_FALSE(wave_initial(Wave::kRise));
  EXPECT_TRUE(wave_final(Wave::kRise));
  EXPECT_TRUE(wave_initial(Wave::kFall));
  EXPECT_FALSE(wave_final(Wave::kFall));
}

TEST(Wave, FromPairRoundTrip) {
  for (Wave w : {Wave::kZero, Wave::kOne, Wave::kRise, Wave::kFall}) {
    EXPECT_EQ(wave_from_pair(wave_initial(w), wave_final(w)), w);
  }
}

TEST(Wave, InvertIsInvolution) {
  for (Wave w : {Wave::kZero, Wave::kOne, Wave::kRise, Wave::kFall}) {
    EXPECT_EQ(wave_invert(wave_invert(w)), w);
    EXPECT_NE(wave_invert(w), w);
  }
}

TEST(Wave, CharRoundTrip) {
  for (Wave w : {Wave::kZero, Wave::kOne, Wave::kRise, Wave::kFall}) {
    EXPECT_EQ(wave_from_char(wave_char(w)), w);
  }
  EXPECT_EQ(wave_from_char('r'), Wave::kRise);
  EXPECT_THROW(wave_from_char('x'), Error);
}

TEST(Wave, StaticClassification) {
  EXPECT_TRUE(wave_is_static(Wave::kZero));
  EXPECT_TRUE(wave_is_static(Wave::kOne));
  EXPECT_FALSE(wave_is_static(Wave::kRise));
  EXPECT_FALSE(wave_is_static(Wave::kFall));
}

TEST(Sig, BasicProperties) {
  EXPECT_TRUE(sig_is_binary(Sig::kZero));
  EXPECT_TRUE(sig_is_binary(Sig::kOne));
  EXPECT_FALSE(sig_is_binary(Sig::kX));
  EXPECT_FALSE(sig_is_binary(Sig::kZ));
  EXPECT_EQ(sig_from_bool(true), Sig::kOne);
  EXPECT_EQ(sig_from_bool(false), Sig::kZero);
  EXPECT_EQ(sig_char(Sig::kX), 'X');
}

TEST(Stimulus, StaticFromPattern) {
  const Stimulus s = Stimulus::from_pattern(0b101, 3);
  EXPECT_TRUE(s.is_static());
  EXPECT_EQ(s.to_string(), "101");
  EXPECT_EQ(s.initial_pattern(), 0b101u);
  EXPECT_EQ(s.final_pattern(), 0b101u);
}

TEST(Stimulus, DynamicFromPair) {
  const Stimulus s = Stimulus::from_pair(0b00, 0b01, 2);
  EXPECT_FALSE(s.is_static());
  EXPECT_EQ(s.to_string(), "R0");  // input 0 rises, input 1 static 0
  EXPECT_EQ(s.initial_pattern(), 0b00u);
  EXPECT_EQ(s.final_pattern(), 0b01u);
}

TEST(Stimulus, ParseRoundTrip) {
  const Stimulus s = Stimulus::parse("0F1R");
  EXPECT_EQ(s.num_inputs(), 4u);
  EXPECT_EQ(s.to_string(), "0F1R");
  EXPECT_EQ(s.wave(1), Wave::kFall);
  EXPECT_THROW(Stimulus::parse("0Q"), Error);
}

TEST(StimulusSet, CountsMatchFormulae) {
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    const std::size_t statics = std::size_t{1} << n;
    EXPECT_EQ(stimulus_count(n, StimulusPolicy::kStaticOnly), statics);
    EXPECT_EQ(stimulus_count(n, StimulusPolicy::kSingleInputChange), statics + statics * n);
    EXPECT_EQ(stimulus_count(n, StimulusPolicy::kExhaustivePairs),
              statics + statics * (statics - 1));
  }
}

TEST(StimulusSet, GenerateMatchesCount) {
  for (StimulusPolicy p : {StimulusPolicy::kStaticOnly, StimulusPolicy::kSingleInputChange,
                           StimulusPolicy::kExhaustivePairs}) {
    for (std::size_t n : {1u, 2u, 3u}) {
      EXPECT_EQ(generate_stimuli(n, p).size(), stimulus_count(n, p));
    }
  }
}

TEST(StimulusSet, StaticPrefixInPatternOrder) {
  const auto stimuli = generate_stimuli(3, StimulusPolicy::kExhaustivePairs);
  for (InputPattern p = 0; p < 8; ++p) {
    EXPECT_TRUE(stimuli[p].is_static());
    EXPECT_EQ(stimuli[p].initial_pattern(), p);
  }
  EXPECT_FALSE(stimuli[8].is_static());
}

TEST(StimulusSet, ExhaustivePairsAreAllDistinctOrderedPairs) {
  const auto stimuli = generate_stimuli(2, StimulusPolicy::kExhaustivePairs);
  std::set<std::pair<InputPattern, InputPattern>> pairs;
  for (const Stimulus& s : stimuli) {
    pairs.insert({s.initial_pattern(), s.final_pattern()});
  }
  EXPECT_EQ(pairs.size(), 16u);  // 4 static + 12 dynamic, all distinct
}

TEST(StimulusSet, SingleInputChangeTogglesOneBit) {
  const auto stimuli = generate_stimuli(3, StimulusPolicy::kSingleInputChange);
  for (std::size_t i = 8; i < stimuli.size(); ++i) {
    const InputPattern x = stimuli[i].initial_pattern() ^ stimuli[i].final_pattern();
    EXPECT_EQ(__builtin_popcount(x), 1) << stimuli[i].to_string();
  }
}

TEST(StimulusSet, RejectsBadArity) {
  EXPECT_THROW(generate_stimuli(0, StimulusPolicy::kStaticOnly), Error);
  EXPECT_THROW(generate_stimuli(17, StimulusPolicy::kStaticOnly), Error);
}

}  // namespace
}  // namespace caml
