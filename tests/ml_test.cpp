#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ml/dataset.hpp"
#include "ml/forest.hpp"
#include "ml/forest_io.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/tree.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace caml {
namespace {

// Synthetic dataset: label = f(features) for a known boolean function
// over small-int features, plus optional noise.
Dataset make_and_dataset(std::size_t rows, Rng& rng) {
  Dataset data(4);
  data.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::int8_t row[4];
    for (auto& v : row) v = static_cast<std::int8_t>(rng.below(4));
    const std::uint8_t label = (row[0] >= 2 && row[1] >= 2) ? 1 : 0;
    data.add_row(row, label);
  }
  return data;
}

Dataset make_xor_dataset(std::size_t rows, Rng& rng) {
  Dataset data(3);
  for (std::size_t r = 0; r < rows; ++r) {
    std::int8_t row[3];
    for (auto& v : row) v = static_cast<std::int8_t>(rng.below(2));
    const std::uint8_t label = static_cast<std::uint8_t>(row[0] ^ row[1]);
    data.add_row(row, label);
  }
  return data;
}

TEST(Dataset, AddRowAndAccessors) {
  Dataset data(3);
  const std::int8_t r0[] = {1, -2, 3};
  const std::int8_t r1[] = {0, 0, 0};
  data.add_row(r0, 1);
  data.add_row(r1, 0);
  EXPECT_EQ(data.num_rows(), 2u);
  EXPECT_EQ(data.num_features(), 3u);
  EXPECT_EQ(data.row(0)[1], -2);
  EXPECT_EQ(data.label(0), 1);
  EXPECT_EQ(data.num_positive(), 1u);
  EXPECT_EQ(data.feature_range(), (std::pair<std::int8_t, std::int8_t>{-2, 3}));
}

TEST(Dataset, SampledPreservesClassPresence) {
  Rng rng(1);
  Dataset source(2);
  // 990 negatives, 10 positives.
  for (int i = 0; i < 1000; ++i) {
    const std::int8_t row[] = {static_cast<std::int8_t>(i % 3), 1};
    source.add_row(row, i < 10 ? 1 : 0);
  }
  Dataset sampled(2);
  sampled.add_sampled(source, 100, rng);
  EXPECT_LE(sampled.num_rows(), 110u);
  EXPECT_GE(sampled.num_rows(), 90u);
  // The rare positive class must survive the sampling.
  EXPECT_GE(sampled.num_positive(), 1u);
}

TEST(Dataset, SampledCopiesAllWhenUnderCap) {
  Rng rng(2);
  Dataset source(1);
  const std::int8_t row[] = {1};
  source.add_row(row, 1);
  Dataset out(1);
  out.add_sampled(source, 100, rng);
  EXPECT_EQ(out.num_rows(), 1u);
  out.add_sampled(source, 0, rng);  // 0 = everything
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(DecisionTree, LearnsAndFunction) {
  Rng rng(3);
  const Dataset train = make_and_dataset(2000, rng);
  const Dataset test = make_and_dataset(500, rng);
  DecisionTree tree;
  tree.fit(train);
  EXPECT_GT(accuracy(test.labels(), tree.predict_all(test)), 0.98);
  EXPECT_GT(tree.num_nodes(), 1u);
}

TEST(DecisionTree, LearnsXorDespiteZeroGainRoot) {
  // XOR has no single-feature gain at the root: the learner must accept
  // zero-gain splits to solve it.
  Rng rng(4);
  const Dataset train = make_xor_dataset(400, rng);
  DecisionTree tree;
  tree.fit(train);
  EXPECT_GT(accuracy(train.labels(), tree.predict_all(train)), 0.99);
}

TEST(DecisionTree, PureLeafShortCircuit) {
  Dataset data(2);
  const std::int8_t row[] = {1, 1};
  for (int i = 0; i < 10; ++i) data.add_row(row, 1);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.predict(row), 1);
}

TEST(DecisionTree, DepthLimitRespected) {
  Rng rng(5);
  const Dataset train = make_and_dataset(2000, rng);
  TreeParams params;
  params.max_depth = 2;
  DecisionTree tree(params);
  tree.fit(train);
  EXPECT_LE(tree.depth(), 3u);  // root + 2 levels
}

TEST(DecisionTree, ConflictingDuplicatesResolveByMajority) {
  Dataset data(1);
  const std::int8_t row[] = {1};
  for (int i = 0; i < 7; ++i) data.add_row(row, 1);
  for (int i = 0; i < 3; ++i) data.add_row(row, 0);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.predict(row), 1);
  const auto [c0, c1] = tree.leaf_votes(row);
  EXPECT_EQ(c0, 3u);
  EXPECT_EQ(c1, 7u);
}

TEST(RandomForest, LearnsAndBeatsChance) {
  Rng rng(6);
  const Dataset train = make_and_dataset(2000, rng);
  const Dataset test = make_and_dataset(500, rng);
  ForestParams params;
  params.num_trees = 15;
  RandomForest forest(params);
  forest.fit(train);
  EXPECT_GT(accuracy(test.labels(), forest.predict_all(test)), 0.97);
  EXPECT_EQ(forest.trees().size(), 15u);
}

TEST(RandomForest, ProbaMonotoneWithVotes) {
  Rng rng(7);
  const Dataset train = make_and_dataset(1000, rng);
  RandomForest forest;
  forest.fit(train);
  const std::int8_t positive[] = {3, 3, 0, 0};
  const std::int8_t negative[] = {0, 0, 3, 3};
  EXPECT_GT(forest.predict_proba(positive), 0.5);
  EXPECT_LT(forest.predict_proba(negative), 0.5);
}

TEST(RandomForest, DeterministicForSeed) {
  Rng rng(8);
  const Dataset train = make_and_dataset(500, rng);
  const Dataset test = make_and_dataset(100, rng);
  ForestParams params;
  params.seed = 123;
  RandomForest a(params), b(params);
  a.fit(train);
  b.fit(train);
  EXPECT_EQ(a.predict_all(test), b.predict_all(test));
}

TEST(RandomForest, EmptyLeafVotesAreNeutralNotNaN) {
  // A leaf with zero recorded votes (possible in forests loaded from
  // sparse files) used to contribute 0/0 = NaN, silently poisoning the
  // whole probability average; it must count as a neutral 0.5 instead.
  std::istringstream in(
      "FOREST trees=2 features=1\n"
      "TREE nodes=1\n"
      "-1 -1 0 0 0 0\n"
      "TREE nodes=1\n"
      "-1 -1 0 0 1 3\n"
      "ENDFOREST\n");
  const LoadedForest loaded = read_forest(in);
  const std::int8_t row[] = {0};
  const double p = loaded.forest.predict_proba(row);
  EXPECT_FALSE(std::isnan(p));
  EXPECT_DOUBLE_EQ(p, (0.5 + 0.75) / 2.0);
}

TEST(RandomForest, BootstrapModeStillLearns) {
  Rng rng(9);
  const Dataset train = make_and_dataset(2000, rng);
  const Dataset test = make_and_dataset(500, rng);
  ForestParams params;
  params.bootstrap = true;
  RandomForest forest(params);
  forest.fit(train);
  EXPECT_GT(accuracy(test.labels(), forest.predict_all(test)), 0.95);
}

TEST(Knn, LearnsAndFunction) {
  Rng rng(10);
  const Dataset train = make_and_dataset(2000, rng);
  const Dataset test = make_and_dataset(300, rng);
  KnnClassifier knn;
  knn.fit(train);
  EXPECT_GT(accuracy(test.labels(), knn.predict_all(test)), 0.95);
}

TEST(Knn, ReferenceCapApplied) {
  Rng rng(11);
  const Dataset train = make_and_dataset(1000, rng);
  KnnParams params;
  params.max_reference_rows = 50;
  params.k = 3;
  KnnClassifier knn(params);
  knn.fit(train);
  const Dataset test = make_and_dataset(200, rng);
  // Still clearly better than chance even with a tiny reference set.
  EXPECT_GT(accuracy(test.labels(), knn.predict_all(test)), 0.8);
}

TEST(Logistic, LearnsLinearlySeparableData) {
  Rng rng(12);
  Dataset train(2);
  for (int i = 0; i < 2000; ++i) {
    std::int8_t row[2] = {static_cast<std::int8_t>(rng.range(-3, 3)),
                          static_cast<std::int8_t>(rng.range(-3, 3))};
    train.add_row(row, row[0] + row[1] > 0 ? 1 : 0);
  }
  LogisticClassifier clf;
  clf.fit(train);
  EXPECT_GT(accuracy(train.labels(), clf.predict_all(train)), 0.93);
}

TEST(LinearSvm, LearnsLinearlySeparableData) {
  Rng rng(13);
  Dataset train(2);
  for (int i = 0; i < 2000; ++i) {
    std::int8_t row[2] = {static_cast<std::int8_t>(rng.range(-3, 3)),
                          static_cast<std::int8_t>(rng.range(-3, 3))};
    train.add_row(row, row[0] - row[1] >= 1 ? 1 : 0);
  }
  LinearSvmClassifier clf;
  clf.fit(train);
  EXPECT_GT(accuracy(train.labels(), clf.predict_all(train)), 0.9);
}

TEST(Ridge, ClosedFormSolvesLinearProblem) {
  Rng rng(14);
  Dataset train(3);
  for (int i = 0; i < 1000; ++i) {
    std::int8_t row[3] = {static_cast<std::int8_t>(rng.range(-2, 2)),
                          static_cast<std::int8_t>(rng.range(-2, 2)),
                          static_cast<std::int8_t>(rng.range(-2, 2))};
    train.add_row(row, 2 * row[0] - row[1] > 0 ? 1 : 0);
  }
  RidgeClassifier clf(0.1);
  clf.fit(train);
  EXPECT_GT(accuracy(train.labels(), clf.predict_all(train)), 0.9);
}

TEST(Ridge, HandlesConstantColumn) {
  // A constant feature makes the normal equations singular in that
  // direction; the solver must not blow up.
  Dataset train(2);
  for (int i = 0; i < 50; ++i) {
    std::int8_t row[2] = {static_cast<std::int8_t>(i % 2), 1};
    train.add_row(row, static_cast<std::uint8_t>(i % 2));
  }
  RidgeClassifier clf(0.01);
  EXPECT_NO_THROW(clf.fit(train));
  const std::int8_t q1[] = {1, 1};
  const std::int8_t q0[] = {0, 1};
  EXPECT_EQ(clf.predict(q1), 1);
  EXPECT_EQ(clf.predict(q0), 0);
}

TEST(Metrics, ConfusionMatrixAndScores) {
  const std::vector<std::uint8_t> truth = {1, 1, 1, 0, 0, 0, 0, 1};
  const std::vector<std::uint8_t> pred = {1, 0, 1, 0, 0, 1, 0, 1};
  const ConfusionMatrix cm = confusion(truth, pred);
  EXPECT_EQ(cm.true_positive, 3u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_EQ(cm.true_negative, 3u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.75);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.75);
  EXPECT_NEAR(cm.f1(), 0.75, 1e-12);
  EXPECT_NE(cm.to_string().find("acc=75.00%"), std::string::npos);
}

TEST(Metrics, EmptyAndDegenerateCases) {
  ConfusionMatrix empty;
  EXPECT_EQ(empty.accuracy(), 0.0);
  EXPECT_EQ(empty.precision(), 0.0);
  EXPECT_EQ(empty.recall(), 0.0);
  EXPECT_EQ(empty.f1(), 0.0);
  EXPECT_THROW(accuracy({1}, {1, 0}), Error);
}


TEST(Dataset, DeduplicationMergesWeights) {
  Dataset a(2);
  const std::int8_t r0[] = {1, 2};
  const std::int8_t r1[] = {3, 4};
  a.add_row(r0, 1);
  a.add_row(r1, 0);
  a.add_row(r0, 1);  // duplicate of r0 with same label

  Dataset out(2);
  out.add_deduplicated(a);
  EXPECT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.total_weight(), 3u);
  // Merging again doubles weights, not rows.
  out.add_deduplicated(a);
  EXPECT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.total_weight(), 6u);
}

TEST(Dataset, DeduplicationKeepsConflictingLabelsSeparate) {
  Dataset a(1);
  const std::int8_t row[] = {5};
  a.add_row(row, 0);
  a.add_row(row, 1);  // same features, different label
  Dataset out(1);
  out.add_deduplicated(a);
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(DecisionTree, WeightedMajorityWins) {
  // One row with label 0 and weight 10 vs three distinct rows with
  // label 1: at the shared leaf the weighted class must win.
  Dataset data(1);
  const std::int8_t row[] = {2};
  data.add_row(row, 0, 10);
  data.add_row(row, 1, 3);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.predict(row), 0);
  const auto [c0, c1] = tree.leaf_votes(row);
  EXPECT_EQ(c0, 10u);
  EXPECT_EQ(c1, 3u);
}

TEST(DecisionTree, WeightedEqualsExpandedTraining) {
  // Training on deduplicated weighted rows must behave like training on
  // the expanded multiset.
  Rng rng(21);
  Dataset expanded(3);
  for (int i = 0; i < 900; ++i) {
    std::int8_t row[3];
    for (auto& v : row) v = static_cast<std::int8_t>(rng.below(3));
    const std::uint8_t label = (row[0] + row[1] > 2) ? 1 : 0;
    expanded.add_row(row, label);
  }
  Dataset dedup(3);
  dedup.add_deduplicated(expanded);
  EXPECT_LT(dedup.num_rows(), expanded.num_rows());
  EXPECT_EQ(dedup.total_weight(), expanded.num_rows());

  TreeParams params;  // deterministic: all features examined
  DecisionTree a(params, 7), b(params, 7);
  a.fit(expanded);
  b.fit(dedup);
  const Dataset test = [&] {
    Dataset t(3);
    for (int i = 0; i < 200; ++i) {
      std::int8_t row[3];
      for (auto& v : row) v = static_cast<std::int8_t>(rng.below(3));
      t.add_row(row, (row[0] + row[1] > 2) ? 1 : 0);
    }
    return t;
  }();
  EXPECT_EQ(a.predict_all(test), b.predict_all(test));
}


TEST(FeatureImportance, IdentifiesInformativeFeatures) {
  // Label depends only on features 0 and 1; features 2/3 are noise.
  Rng rng(77);
  const Dataset train = make_and_dataset(3000, rng);
  ForestParams params;
  params.num_trees = 10;
  RandomForest forest(params);
  forest.fit(train);
  const std::vector<double> imp = forest.feature_importance();
  ASSERT_EQ(imp.size(), 4u);
  double total = 0.0;
  for (double v : imp) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(imp[0] + imp[1], 0.8);
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[1], imp[3]);
}

TEST(FeatureImportance, SingleLeafTreeHasZeroImportance) {
  Dataset data(2);
  const std::int8_t row[] = {1, 1};
  data.add_row(row, 1);
  DecisionTree tree;
  tree.fit(data);
  for (double v : tree.feature_importance()) EXPECT_EQ(v, 0.0);
}


TEST(Dataset, SubtractDeduplicatedEqualsRebuild) {
  Rng rng(55);
  std::vector<Dataset> parts;
  for (int c = 0; c < 4; ++c) {
    Dataset part(2);
    for (int i = 0; i < 200; ++i) {
      std::int8_t row[2] = {static_cast<std::int8_t>(rng.below(3)),
                            static_cast<std::int8_t>(rng.below(3))};
      part.add_row(row, static_cast<std::uint8_t>((row[0] + c) % 2));
    }
    parts.push_back(std::move(part));
  }
  Dataset master(2);
  for (const Dataset& p : parts) master.add_deduplicated(p);

  for (std::size_t held = 0; held < parts.size(); ++held) {
    const Dataset fast = master.subtract_deduplicated(parts[held]);
    Dataset slow(2);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (i != held) slow.add_deduplicated(parts[i]);
    }
    EXPECT_EQ(fast.total_weight(), slow.total_weight());
    // Same multiset of (row, label, weight): compare as sorted strings.
    const auto dump = [](const Dataset& d) {
      std::vector<std::string> rows;
      for (std::size_t r = 0; r < d.num_rows(); ++r) {
        std::string s(reinterpret_cast<const char*>(d.row(r)), d.num_features());
        s += static_cast<char>(d.label(r));
        s += std::to_string(d.weight(r));
        rows.push_back(std::move(s));
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    EXPECT_EQ(dump(fast), dump(slow));
  }
}

TEST(Dataset, SubtractDeduplicatedRejectsUnknownRows) {
  Dataset master(1);
  const std::int8_t a[] = {1};
  Dataset part(1);
  part.add_row(a, 1);
  master.add_deduplicated(part);
  Dataset stranger(1);
  const std::int8_t b[] = {2};
  stranger.add_row(b, 0);
  EXPECT_THROW(master.subtract_deduplicated(stranger), Error);
}

}  // namespace
}  // namespace caml
