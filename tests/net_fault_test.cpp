#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/net.hpp"

namespace caml {
namespace {

/// Every test arms one process-wide fault spec, exercises a util/net
/// primitive over a socketpair, and asserts the retry loop absorbed (or
/// correctly surfaced) the injected kernel behavior. All tests skip in
/// builds without -DCAML_FAULT_INJECTION=ON.

struct SocketPair {
  Fd a, b;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a.reset(fds[0]);
    b.reset(fds[1]);
  }
};

/// RAII disarm so a failing assertion cannot leak an armed fault into
/// the next test.
struct Armed {
  explicit Armed(const fault::Spec& spec) { fault::arm(spec); }
  ~Armed() { fault::disarm(); }
};

std::string pattern_bytes(std::size_t n) {
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; ++i) s[i] = static_cast<char>('A' + (i % 23));
  return s;
}

TEST(NetFault, EintrStormOnReadIsRetried) {
  if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";
  SocketPair sp;
  const std::string sent = pattern_bytes(64);
  ASSERT_EQ(::send(sp.b.get(), sent.data(), sent.size(), 0),
            static_cast<ssize_t>(sent.size()));

  // 5 consecutive reads fail EINTR before any byte arrives; read_exact
  // must absorb every one and still deliver the exact bytes.
  Armed armed({"net-read", fault::Kind::kEintr, 1, 5});
  std::string got(sent.size(), '\0');
  ASSERT_TRUE(read_exact(sp.a.get(), got.data(), got.size(), 2000));
  EXPECT_EQ(got, sent);
  EXPECT_GE(fault::times_triggered(), 5u);
}

TEST(NetFault, EintrStormOnWriteIsRetried) {
  if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";
  SocketPair sp;
  const std::string sent = pattern_bytes(64);
  {
    Armed armed({"net-write", fault::Kind::kEintr, 1, 5});
    write_all(sp.a.get(), sent.data(), sent.size(), 2000);
    EXPECT_GE(fault::times_triggered(), 5u);
  }
  std::string got(sent.size(), '\0');
  ASSERT_TRUE(read_exact(sp.b.get(), got.data(), got.size(), 2000));
  EXPECT_EQ(got, sent);
}

TEST(NetFault, EintrStormOnPollIsRetried) {
  if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";
  SocketPair sp;
  const char byte = 'x';
  ASSERT_EQ(::send(sp.b.get(), &byte, 1, 0), 1);
  // The poll retry loop eats the storm and still reports readability.
  Armed armed({"net-poll", fault::Kind::kEintr, 1, 6});
  EXPECT_TRUE(wait_readable(sp.a.get(), 2000));
  EXPECT_GE(fault::times_triggered(), 6u);
}

TEST(NetFault, EagainStormOnReadIsAbsorbed) {
  if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";
  SocketPair sp;
  const std::string sent = pattern_bytes(128);
  ASSERT_EQ(::send(sp.b.get(), sent.data(), sent.size(), 0),
            static_cast<ssize_t>(sent.size()));

  // A spurious-readiness storm: poll says readable, recv fails EAGAIN
  // 8 times. The loop must re-poll, not error out.
  Armed armed({"net-read", fault::Kind::kEagain, 1, 8});
  std::string got(sent.size(), '\0');
  ASSERT_TRUE(read_exact(sp.a.get(), got.data(), got.size(), 2000));
  EXPECT_EQ(got, sent);
  EXPECT_GE(fault::times_triggered(), 8u);
}

TEST(NetFault, ShortReadTrickleReassembles) {
  if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";
  SocketPair sp;
  const std::string sent = pattern_bytes(300);
  ASSERT_EQ(::send(sp.b.get(), sent.data(), sent.size(), 0),
            static_cast<ssize_t>(sent.size()));

  // Every read from the 1st on delivers a single byte — the worst-case
  // kernel short read. read_exact must reassemble the record intact.
  Armed armed({"net-read", fault::Kind::kShortRead, 1, 1});
  std::string got(sent.size(), '\0');
  ASSERT_TRUE(read_exact(sp.a.get(), got.data(), got.size(), 5000));
  EXPECT_EQ(got, sent);
  EXPECT_GE(fault::times_triggered(), sent.size());
}

TEST(NetFault, ShortWriteTrickleDeliversEverything) {
  if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";
  SocketPair sp;
  const std::string sent = pattern_bytes(300);
  // Drain concurrently: 300 one-byte sends each cost a whole skb of
  // send-buffer accounting, so an unread socketpair fills up after a few
  // dozen and POLLOUT would block forever.
  std::string got(sent.size(), '\0');
  std::thread reader(
      [&] { EXPECT_TRUE(read_exact(sp.b.get(), got.data(), got.size(), 5000)); });
  {
    Armed armed({"net-write", fault::Kind::kShortWrite, 1, 1});
    write_all(sp.a.get(), sent.data(), sent.size(), 5000);
    EXPECT_GE(fault::times_triggered(), sent.size());
  }
  reader.join();
  EXPECT_EQ(got, sent);
}

TEST(NetFault, ConnResetOnReadSurfacesAsConnectionLost) {
  if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";
  SocketPair sp;
  Armed armed({"net-read", fault::Kind::kConnReset, 1, 0});
  char buf[16];
  // Make the fd readable so poll passes and the injected recv fires.
  ASSERT_EQ(::send(sp.b.get(), "zz", 2, 0), 2);
  try {
    read_exact(sp.a.get(), buf, sizeof buf, 2000);
    FAIL() << "expected the injected ECONNRESET to surface";
  } catch (const Error& e) {
    EXPECT_TRUE(is_connection_lost_error(e.what())) << e.what();
  }
  EXPECT_EQ(fault::times_triggered(), 1u);
}

TEST(NetFault, ConnResetOnWriteSurfacesAsConnectionLost) {
  if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";
  SocketPair sp;
  Armed armed({"net-write", fault::Kind::kConnReset, 1, 0});
  const std::string sent = pattern_bytes(32);
  try {
    write_all(sp.a.get(), sent.data(), sent.size(), 2000);
    FAIL() << "expected the injected ECONNRESET to surface";
  } catch (const Error& e) {
    EXPECT_TRUE(is_connection_lost_error(e.what())) << e.what();
  }
}

TEST(NetFault, NonBlockingReadSomeAbsorbsEintrAndReportsEagain) {
  if (!fault::enabled()) GTEST_SKIP() << "built without CAML_FAULT_INJECTION";
  SocketPair sp;
  set_nonblocking(sp.a.get(), true, "test socket");
  const std::string sent = pattern_bytes(16);
  ASSERT_EQ(::send(sp.b.get(), sent.data(), sent.size(), 0),
            static_cast<ssize_t>(sent.size()));

  char buf[64];
  {
    // EINTR mid-stream: the reactor-facing read_some retries internally.
    Armed armed({"net-read", fault::Kind::kEintr, 1, 3});
    const IoResult r = read_some(sp.a.get(), buf, sizeof buf);
    EXPECT_FALSE(r.closed);
    EXPECT_FALSE(r.would_block);
    EXPECT_EQ(std::string(buf, r.bytes), sent);
  }
  {
    // Injected EAGAIN on a drained socket surfaces as would_block, which
    // is exactly what a real empty non-blocking socket reports.
    Armed armed({"net-read", fault::Kind::kEagain, 1, 1});
    const IoResult r = read_some(sp.a.get(), buf, sizeof buf);
    EXPECT_TRUE(r.would_block);
    EXPECT_EQ(r.bytes, 0u);
  }
}

}  // namespace
}  // namespace caml
