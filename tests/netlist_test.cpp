#include <gtest/gtest.h>

#include <sstream>

#include "netlist/graph.hpp"
#include "netlist/spice_parser.hpp"
#include "netlist/spice_writer.hpp"
#include "netlist/verilog_writer.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace caml {
namespace {

using testing::make_fig5_cell;
using testing::make_nand2;

TEST(Cell, AddNetRejectsDuplicates) {
  Cell cell("C");
  cell.add_net("A", NetKind::kInput);
  EXPECT_THROW(cell.add_net("A", NetKind::kInput), Error);
}

TEST(Cell, PinCaching) {
  const Cell cell = make_nand2();
  EXPECT_EQ(cell.num_inputs(), 2u);
  EXPECT_EQ(cell.net(cell.output()).name, "Z");
  EXPECT_EQ(cell.net(cell.vdd()).name, "VDD");
  EXPECT_EQ(cell.net(cell.vss()).name, "VSS");
}

TEST(Cell, SingleOutputEnforced) {
  Cell cell("C");
  cell.add_net("Z", NetKind::kOutput);
  EXPECT_THROW(cell.add_net("Y", NetKind::kOutput), Error);
}

TEST(Cell, ValidateCatchesMissingRails) {
  Cell cell("C");
  const NetId a = cell.add_net("A", NetKind::kInput);
  const NetId z = cell.add_net("Z", NetKind::kOutput);
  cell.add_net("VDD", NetKind::kPower);
  const NetId vss = cell.add_net("VSS", NetKind::kGround);
  cell.add_transistor({"M1", MosType::kNmos, z, a, vss, vss, 0.4, 0.03});
  EXPECT_NO_THROW(cell.validate());

  Cell no_rail("C2");
  const NetId a2 = no_rail.add_net("A", NetKind::kInput);
  const NetId z2 = no_rail.add_net("Z", NetKind::kOutput);
  const NetId g2 = no_rail.add_net("VSS", NetKind::kGround);
  no_rail.add_transistor({"M1", MosType::kNmos, z2, a2, g2, g2, 0.4, 0.03});
  EXPECT_THROW(no_rail.validate(), Error);
}

TEST(Cell, ValidateCatchesDuplicateDeviceNames) {
  Cell cell = make_nand2();
  Transistor dup = cell.transistors()[0];
  EXPECT_THROW(
      {
        cell.add_transistor(dup);
        cell.validate();
      },
      Error);
}

TEST(Cell, TransistorTerminalAccessors) {
  Transistor t;
  t.drain = 1;
  t.gate = 2;
  t.source = 3;
  t.bulk = 4;
  EXPECT_EQ(t.terminal(Terminal::kDrain), 1);
  EXPECT_EQ(t.terminal(Terminal::kGate), 2);
  EXPECT_EQ(t.terminal(Terminal::kSource), 3);
  EXPECT_EQ(t.terminal(Terminal::kBulk), 4);
  t.set_terminal(Terminal::kGate, 7);
  EXPECT_EQ(t.gate, 7);
}

TEST(SpiceWriter, EmitsSubcktWithPininfo) {
  const SpiceWriter writer;
  const std::string text = writer.to_string(make_nand2());
  EXPECT_NE(text.find(".SUBCKT NAND2_FIG4 A B Z VDD VSS"), std::string::npos);
  EXPECT_NE(text.find("*.PININFO A:I B:I Z:O VDD:P VSS:G"), std::string::npos);
  EXPECT_NE(text.find(".ENDS"), std::string::npos);
  // Non-M device names get the mandatory SPICE 'M' prefix.
  EXPECT_NE(text.find("MN10 "), std::string::npos);
  EXPECT_NE(text.find("MPx "), std::string::npos);
}

TEST(SpiceParser, RoundTripPreservesStructure) {
  const Cell original = make_nand2();
  const SpiceWriter writer;
  const SpiceParser parser;
  const std::vector<Cell> cells = parser.parse_string(writer.to_string(original));
  ASSERT_EQ(cells.size(), 1u);
  const Cell& parsed = cells[0];
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.num_inputs(), original.num_inputs());
  EXPECT_EQ(parsed.num_transistors(), original.num_transistors());
  for (std::size_t i = 0; i < parsed.num_transistors(); ++i) {
    const Transistor& a = parsed.transistors()[i];
    const Transistor& b = original.transistors()[i];
    EXPECT_EQ(a.type, b.type);
    EXPECT_NEAR(a.width_um, b.width_um, 1e-6);
    EXPECT_NEAR(a.length_um, b.length_um, 1e-6);
    EXPECT_EQ(parsed.net(a.gate).name, original.net(b.gate).name);
  }
}

TEST(SpiceParser, ContinuationLinesAndComments) {
  const std::string text = R"(
* a comment
.SUBCKT INV A Z VDD VSS
*.PININFO A:I Z:O VDD:P VSS:G
MN0 Z A VSS
+ VSS nch W=0.4U L=0.03U $ trailing comment
MP0 Z A VDD VDD pch W=0.8U L=0.03U
.ENDS
)";
  const std::vector<Cell> cells = SpiceParser().parse_string(text);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].num_transistors(), 2u);
  EXPECT_NEAR(cells[0].transistors()[0].width_um, 0.4, 1e-9);
}

TEST(SpiceParser, InfersPinDirectionsWithoutPininfo) {
  const std::string text = R"(
.SUBCKT INV IN OUT VDD GND
MN0 OUT IN GND GND nch W=0.4U L=0.03U
MP0 OUT IN VDD VDD pch W=0.8U L=0.03U
.ENDS
)";
  const std::vector<Cell> cells = SpiceParser().parse_string(text);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].num_inputs(), 1u);
  EXPECT_EQ(cells[0].net(cells[0].output()).name, "OUT");
  EXPECT_EQ(cells[0].net(cells[0].vss()).name, "GND");
}

TEST(SpiceParser, SizeUnits) {
  const std::string text = R"(
.SUBCKT INV A Z VDD VSS
MN0 Z A VSS VSS nch W=400N L=30N
MP0 Z A VDD VDD pch W=8E-7 L=0.03U
.ENDS
)";
  const std::vector<Cell> cells = SpiceParser().parse_string(text);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_NEAR(cells[0].transistors()[0].width_um, 0.4, 1e-9);
  EXPECT_NEAR(cells[0].transistors()[0].length_um, 0.03, 1e-9);
  EXPECT_NEAR(cells[0].transistors()[1].width_um, 0.8, 1e-9);
}

TEST(SpiceParser, MultipleSubckts) {
  const SpiceWriter writer;
  std::ostringstream os;
  writer.write_library(os, {make_nand2(), testing::make_nor2()});
  const std::vector<Cell> cells = SpiceParser().parse_string(os.str());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].name(), "NAND2_FIG4");
  EXPECT_EQ(cells[1].name(), "NOR2_T");
}

TEST(SpiceParser, RejectsMalformedInput) {
  EXPECT_THROW(SpiceParser().parse_string("MN0 a b c d nch\n"), ParseError);
  EXPECT_THROW(SpiceParser().parse_string(".SUBCKT X A\nMN0 A A A A nch\n"), ParseError);
  EXPECT_THROW(SpiceParser().parse_string(".SUBCKT X A B VDD VSS\nMN0 B A VSS VSS what\n.ENDS\n"),
               ParseError);
  // Missing .ENDS.
  EXPECT_THROW(SpiceParser().parse_string(".SUBCKT X A B VDD VSS\n"), ParseError);
}

TEST(SpiceParser, RejectsUnsupportedDevices) {
  const std::string text = R"(
.SUBCKT BAD A Z VDD VSS
R1 A Z 100
.ENDS
)";
  EXPECT_THROW(SpiceParser().parse_string(text), ParseError);
}

TEST(CellGraph, IncidenceAndChannel) {
  const Cell cell = make_nand2();
  const CellGraph graph(cell);
  const NetId z = cell.output();
  // Z touches N10 drain, Px drain, Py drain.
  EXPECT_EQ(graph.channel_transistors(z).size(), 3u);
  const NetId a = cell.inputs()[0];
  EXPECT_EQ(graph.gate_loads(a).size(), 2u);  // N10 and Px
  EXPECT_EQ(graph.incidence(a).size(), 2u);
}

TEST(CellGraph, Nand2IsOneChannelConnectedComponent) {
  const Cell cell = make_nand2();
  const CellGraph graph(cell);
  const auto components = graph.channel_connected_components();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), 4u);
}

TEST(CellGraph, Fig5HasTwoComponents) {
  const Cell cell = make_fig5_cell();
  const CellGraph graph(cell);
  const auto components = graph.channel_connected_components();
  ASSERT_EQ(components.size(), 2u);
  // One component is the 2-transistor inverter, the other the 8-device
  // complex stage.
  const std::size_t small = std::min(components[0].size(), components[1].size());
  const std::size_t large = std::max(components[0].size(), components[1].size());
  EXPECT_EQ(small, 2u);
  EXPECT_EQ(large, 8u);
}

TEST(CellGraph, ComponentChannelNetsExcludeRails) {
  const Cell cell = make_nand2();
  const CellGraph graph(cell);
  const auto components = graph.channel_connected_components();
  const auto nets = graph.component_channel_nets(components[0]);
  for (NetId n : nets) {
    EXPECT_NE(n, cell.vdd());
    EXPECT_NE(n, cell.vss());
  }
  // Z and net0.
  EXPECT_EQ(nets.size(), 2u);
}


TEST(VerilogWriter, EmitsSwitchLevelModule) {
  const VerilogWriter writer;
  const std::string text = writer.to_string(make_nand2());
  EXPECT_NE(text.find("module NAND2_FIG4 (input A, input B, output Z);"), std::string::npos)
      << text;
  EXPECT_NE(text.find("supply1 VDD;"), std::string::npos);
  EXPECT_NE(text.find("supply0 VSS;"), std::string::npos);
  EXPECT_NE(text.find("wire net0;"), std::string::npos);
  // Primitive port order is (drain, source, gate).
  EXPECT_NE(text.find("nmos N10 (Z, net0, A);"), std::string::npos) << text;
  EXPECT_NE(text.find("pmos Px (Z, VDD, A);"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(VerilogWriter, EscapesAwkwardNames) {
  Cell cell("X1-odd");
  const NetId a = cell.add_net("in.0", NetKind::kInput);
  const NetId z = cell.add_net("Z", NetKind::kOutput);
  cell.add_net("VDD", NetKind::kPower);
  const NetId vss = cell.add_net("VSS", NetKind::kGround);
  cell.add_transistor({"M0", MosType::kNmos, z, a, vss, vss, 0.4, 0.03});
  const std::string text = VerilogWriter().to_string(cell);
  EXPECT_NE(text.find("\\X1-odd "), std::string::npos) << text;
  EXPECT_NE(text.find("\\in.0 "), std::string::npos);
}

}  // namespace
}  // namespace caml
